//! Process-level tests of the `ebda` CLI binary.

use std::process::Command;

fn ebda(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_ebda"))
        .args(args)
        .output()
        .expect("spawn ebda binary")
}

#[test]
fn help_prints_usage() {
    let out = ebda(&["help"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("usage:"));
    assert!(text.contains("ebda verify"));
}

#[test]
fn design_and_verify_roundtrip() {
    let out = ebda(&["design", "--vcs", "1,2"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    let design_line = text.lines().next().unwrap().replace(['[', ']'], " ");
    let spec = design_line.replace(" -> ", "|");
    let out = ebda(&["verify", spec.trim(), "--mesh", "5x5"]);
    assert!(
        out.status.success(),
        "verify failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("deadlock-free"));
}

#[test]
fn verify_fails_on_invalid_design_with_nonzero_exit() {
    let out = ebda(&["verify", "X+ X- Y+ Y-"]);
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(
        err.contains("Theorem 1") || err.contains("complete D-pairs"),
        "stderr: {err}"
    );
}

#[test]
fn turns_lists_the_extraction() {
    let out = ebda(&["turns", "X+ X- Y-"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("90-degree"));
    assert!(text.contains("X1+->Y1-"));
}

#[test]
fn simulate_reports_completion() {
    let out = ebda(&[
        "simulate",
        "X- | X+ Y+ Y-",
        "--mesh",
        "4x4",
        "--rate",
        "0.02",
    ]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("completed"), "got: {text}");
}

#[test]
fn simulate_trace_out_roundtrips_through_obs_parser() {
    let dir = std::env::temp_dir();
    let json_path = dir.join(format!("ebda-cli-trace-{}.json", std::process::id()));
    let out = ebda(&[
        "simulate",
        "X- | X+ Y+ Y-",
        "--mesh",
        "4x4",
        "--rate",
        "0.02",
        "--trace-out",
        json_path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&json_path).expect("trace file written");
    std::fs::remove_file(&json_path).ok();
    let doc = ebda::obs::json::Value::parse(&text).expect("trace JSON parses");
    let events = doc.get("events").unwrap().as_arr().unwrap();
    assert!(!events.is_empty());
    assert!(doc.get("totals").unwrap().get("inject").unwrap().as_u64() > Some(0));
    assert!(!doc.get("samples").unwrap().as_arr().unwrap().is_empty());

    // The CSV flavour: an events table our own parser accepts.
    let csv_path = dir.join(format!("ebda-cli-trace-{}.csv", std::process::id()));
    let out = ebda(&[
        "simulate",
        "X- | X+ Y+ Y-",
        "--mesh",
        "4x4",
        "--rate",
        "0.02",
        "--trace-out",
        csv_path.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let csv = std::fs::read_to_string(&csv_path).expect("CSV trace written");
    std::fs::remove_file(&csv_path).ok();
    let mut lines = csv.lines();
    let header = lines.next().unwrap();
    let cols = header.split(',').count();
    for line in lines {
        let fields = ebda::obs::csv::parse_line(line).expect("CSV row parses");
        assert_eq!(fields.len(), cols);
    }
}

#[test]
fn certify_both_ways() {
    let ok = ebda(&[
        "certify",
        "--turns",
        "X1+>Y1+,Y1+>X1+,X1+>Y1-,Y1->X1+,X1->Y1+,X1->Y1-",
    ]);
    assert!(ok.status.success());
    assert!(String::from_utf8(ok.stdout).unwrap().contains("CERTIFIED"));

    let bad = ebda(&["certify", "--turns", "X1+>Y1+,Y1+>X1-,X1->Y1-,Y1->X1+"]);
    assert!(!bad.status.success());
    assert!(String::from_utf8(bad.stderr)
        .unwrap()
        .contains("not certifiable"));
}

#[test]
fn unknown_flags_do_not_crash() {
    let out = ebda(&["design"]);
    assert!(!out.status.success());
    let out = ebda(&["bogus"]);
    assert!(!out.status.success());
}
