//! The differential oracle through the `ebda` facade: a small fixed-seed
//! campaign must stay clean, and a mutated checker must be caught — the
//! same invariants CI enforces with the `oracle` binary at a larger budget.

use ebda::oracle::differential::{run_campaign, CampaignConfig};
use ebda::oracle::verdict::Mutation;
use std::time::Duration;

fn quick(mutation: Mutation) -> CampaignConfig {
    CampaignConfig {
        seed: 7,
        budget: Duration::ZERO,
        min_configs: 60,
        max_configs: 1_000,
        max_nodes: 16,
        mutation,
        journey_sample_rate: 1.0,
        threads: 0,
        ledger: None,
        coverage: None,
        coverage_guided: false,
    }
}

#[test]
fn facade_campaign_is_clean_at_the_ci_seed() {
    let report = run_campaign(&quick(Mutation::None));
    assert!(report.is_clean(), "{report}");
    assert_eq!(report.configs, 60);
    assert!(report.deadlock_free > 0 && report.deadlocking > 0);
}

#[test]
fn facade_campaign_catches_a_broken_checker() {
    let cfg = CampaignConfig {
        min_configs: 1_000,
        ..quick(Mutation::DallyIgnoresWrap)
    };
    let report = run_campaign(&cfg);
    let caught = report
        .caught
        .expect("the broken Dally checker must be caught");
    assert_eq!(caught.disagreement.rule, "dally-vs-brute");
    let replay = caught.replay.expect("shrunk witness must replay");
    assert!(replay.deadlocked);
}
