//! Structural checks of the Graphviz exports: every DOT document is
//! well-formed, node/edge counts match the underlying objects, and the
//! styling conventions hold.

use ebda::cdg::Cdg;
use ebda::core::dot::{extraction_dot, turn_graph_dot};
use ebda::prelude::*;

fn design_cdg(seq: &PartitionSeq, radix: usize) -> Cdg {
    let ex = extract_turns(seq).unwrap();
    let universe = seq.channels();
    let vcs = ebda::cdg::dally::infer_vcs(&universe, 2);
    Cdg::from_turn_set(
        &Topology::mesh(&[radix, radix]),
        &vcs,
        &universe,
        ex.turn_set(),
    )
}

#[test]
fn turn_graphs_for_all_catalog_designs_are_well_formed() {
    for (name, seq) in catalog::all_designs() {
        let ex = extract_turns(&seq).unwrap();
        let dot = turn_graph_dot(&seq.channels(), ex.turn_set());
        assert!(dot.starts_with("digraph turns {"), "{name}");
        assert!(dot.ends_with("}\n"), "{name}");
        assert_eq!(
            dot.matches(" -> ").count(),
            ex.turn_set().len(),
            "{name}: one edge per turn"
        );
        // Balanced braces.
        assert_eq!(dot.matches('{').count(), dot.matches('}').count(), "{name}");
    }
}

#[test]
fn extraction_dot_carries_theorem_colors() {
    let seq = catalog::fig9b();
    let ex = extract_turns(&seq).unwrap();
    let dot = extraction_dot(&seq, &ex);
    // One cluster per partition.
    for p in 0..seq.len() {
        assert!(dot.contains(&format!("cluster_{p}")));
    }
    // All three theorem colours appear for this design.
    for color in ["color=black", "color=blue", "color=red"] {
        assert!(dot.contains(color), "missing {color}");
    }
    assert_eq!(dot.matches(" -> ").count(), ex.turn_set().len());
}

#[test]
fn cdg_dot_matches_graph_dimensions() {
    let seq = catalog::north_last();
    let cdg = design_cdg(&seq, 3);
    let dot = cdg.to_dot();
    assert!(dot.starts_with("digraph cdg {"));
    assert_eq!(dot.matches("label=").count(), cdg.node_count());
    assert_eq!(dot.matches(" -> ").count(), cdg.edge_count());
}
