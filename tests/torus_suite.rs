//! Torus coverage beyond the basic example: rectangular tori, mixed
//! mesh/torus dimensions, and the dateline designs end to end.

use ebda::prelude::*;
use ebda::routing::{find_delivery_failure, verify_relation};

#[test]
fn dateline_design_on_rectangular_tori() {
    for radix in [[5usize, 3], [3, 6], [4, 4]] {
        let topo = Topology::torus(&radix);
        let seq = catalog::torus_dateline(&radix);
        let report = verify_design(&topo, &seq).unwrap();
        assert!(report.is_deadlock_free(), "{radix:?}: {report}");
        let relation = TurnRouting::from_design("dl", &seq).unwrap();
        assert_eq!(
            find_delivery_failure(&relation, &topo, 24),
            None,
            "delivery failed on {radix:?}"
        );
        assert!(verify_relation(&topo, &relation).is_ok());
    }
}

#[test]
fn mixed_mesh_torus_dimensions() {
    // X wraps (k-ary ring), Y is a mesh dimension.
    let radix = [5usize, 4];
    let wrap = [true, false];
    let topo = Topology::mesh(&radix).with_wrap(&wrap);
    let seq = catalog::dateline_design(&radix, &wrap);
    // Class-level verification passes on the mixed topology.
    let report = verify_design(&topo, &seq).unwrap();
    assert!(report.is_deadlock_free(), "{report}");
    // The derived router uses the wrap when shorter and delivers all pairs.
    let relation = TurnRouting::from_design("mixed", &seq).unwrap();
    assert_eq!(find_delivery_failure(&relation, &topo, 24), None);
    let a = topo.node_at(&[0, 0]);
    let b = topo.node_at(&[4, 0]);
    let path = walk_first_choice(&relation, &topo, a, b, 8).unwrap();
    assert_eq!(path.len(), 2, "one wrap hop, not four mesh hops");
    // And it simulates cleanly under pressure.
    let cfg = SimConfig {
        injection_rate: 0.20,
        warmup: 300,
        measurement: 1_500,
        drain: 2_000,
        deadlock_threshold: 1_000,
        ..SimConfig::default()
    };
    let result = simulate(&topo, &relation, &cfg);
    assert!(result.outcome.is_deadlock_free(), "{result}");
}

#[test]
fn all_mesh_dateline_degenerates_to_dimension_order() {
    // With no wrapped dimension the design is plain per-dimension pairs:
    // dimension-ordered fully-adaptive-within-dimension routing.
    let seq = catalog::dateline_design(&[4, 4], &[false, false]);
    assert_eq!(seq.len(), 2);
    assert_eq!(seq.channel_count(), 4);
    let topo = Topology::mesh(&[4, 4]);
    assert!(verify_design(&topo, &seq).unwrap().is_deadlock_free());
    let relation = TurnRouting::from_design("plain", &seq).unwrap();
    assert_eq!(find_delivery_failure(&relation, &topo, 16), None);
}

#[test]
fn torus_dateline_channel_budget_scales_with_dimensions() {
    // 3 stages x 2 channels per wrapped dimension.
    for n in 2..=3usize {
        let radix = vec![4usize; n];
        let seq = catalog::torus_dateline(&radix);
        assert_eq!(seq.len(), 3 * n);
        assert_eq!(seq.channel_count(), 6 * n);
    }
}
