//! Every quantitative claim the paper makes, asserted in one place.
//! EXPERIMENTS.md indexes these against the paper's sections.

use ebda::cdg::turn_model::{
    abstract_cycle_count, combination_count, deadlock_free_combinations_2d, unique_up_to_symmetry,
};
use ebda::core::adaptiveness::{fig4_turn_counts, is_fully_adaptive};
use ebda::core::algorithm1::partition_sets;
use ebda::core::min_channels::{merged_partitioning, min_channels, vcs_per_dimension};
use ebda::core::sets::DimensionSet;
use ebda::prelude::*;

/// Section 2: the verification-space sizes.
#[test]
fn section2_combination_counts() {
    assert_eq!(combination_count(&[1, 1]), Some(16)); // "16 (4^2)"
    assert_eq!(combination_count(&[2, 2]), Some(65_536)); // "65,536 (4^8)"
                                                          // The paper writes "29,696 (4^6)" for 3D/no-VC; 4^6 = 4,096 — we follow
                                                          // the formula (see EXPERIMENTS.md for the discrepancy note).
    assert_eq!(combination_count(&[1, 1, 1]), Some(4_096));
    // "more than 8 billion" for 3D with one added VC per dimension.
    assert!(combination_count(&[2, 2, 2]).unwrap() > 8_000_000_000);
    assert_eq!(abstract_cycle_count(&[2, 2, 2]), 24);
}

/// Section 6.1 (citing Glass & Ni): 16 combinations, 12 deadlock-free,
/// 3 unique under symmetry.
#[test]
fn section6_glass_ni_counts() {
    let free = deadlock_free_combinations_2d(5);
    assert_eq!(free.len(), 12);
    assert_eq!(unique_up_to_symmetry(&free), 3);
}

/// Section 4: N = (n+1)·2^(n-1); 6 channels in 2D, 16 in 3D.
#[test]
fn section4_minimum_channels() {
    assert_eq!(min_channels(2), 6);
    assert_eq!(min_channels(3), 16);
    for n in 1..=6usize {
        let seq = merged_partitioning(n).unwrap();
        assert_eq!(seq.channel_count() as u64, min_channels(n as u32));
        assert_eq!(seq.len(), 1 << (n - 1));
        assert!(is_fully_adaptive(&seq, n));
    }
}

/// Figure 7/9 VC budgets as printed in the paper.
#[test]
fn figure_vc_budgets() {
    assert_eq!(vcs_per_dimension(&catalog::fig7a(), 2), vec![2, 2]);
    assert_eq!(vcs_per_dimension(&catalog::fig7b_dyxy(), 2), vec![1, 2]);
    assert_eq!(vcs_per_dimension(&catalog::fig7c(), 2), vec![2, 1]);
    assert_eq!(vcs_per_dimension(&catalog::fig9a(), 3), vec![4, 4, 4]);
    assert_eq!(vcs_per_dimension(&catalog::fig9b(), 3), vec![2, 2, 4]);
    assert_eq!(vcs_per_dimension(&catalog::fig9c(), 3), vec![3, 2, 3]);
    assert_eq!(catalog::fig9a().channel_count(), 24);
}

/// Figure 4: nine U-turns and six I-turns from three VCs; the identity.
#[test]
fn figure4_counts() {
    let seq = PartitionSeq::parse("Y1+ Y1- Y2+ Y2- Y3+ Y3-").unwrap();
    let c = extract_turns(&seq).unwrap().turn_set().counts();
    assert_eq!((c.u_turns, c.i_turns), (9, 6));
    assert_eq!(fig4_turn_counts(3, 3), (15, 9, 6));
}

/// Figure 3 / Figure 5: the exact turn sets.
#[test]
fn figures_3_and_5_turn_sets() {
    let fig3 = extract_turns(&PartitionSeq::parse("X+ X- Y-").unwrap()).unwrap();
    assert_eq!(fig3.turn_set().counts().ninety, 4);
    let nl = extract_turns(&catalog::north_last()).unwrap();
    assert_eq!(nl.turn_set().counts().ninety, 6);
    let ch = |s: &str| Channel::parse(s).unwrap();
    assert!(!nl.turn_set().contains(Turn::new(ch("Y+"), ch("X+"))));
    assert!(!nl.turn_set().contains(Turn::new(ch("Y+"), ch("X-"))));
}

/// Section 5's worked example reproduces Fig. 9c exactly.
#[test]
fn section5_worked_example_matches_fig9c() {
    let sets = vec![
        DimensionSet::interleaved(Dimension::Z, 3),
        DimensionSet::interleaved(Dimension::X, 3),
        DimensionSet::grouped(Dimension::Y, 2),
    ];
    assert_eq!(partition_sets(sets).unwrap(), catalog::fig9c());
}

/// Section 6.2: Odd-Even's 12 turns with west-first-level adaptiveness;
/// Hamiltonian's 12 turns including the strategy's 8.
#[test]
fn section6_2_odd_even_and_hamiltonian() {
    let oe = extract_turns(&catalog::odd_even()).unwrap();
    assert_eq!(oe.turn_set().counts().ninety, 12);
    let h = extract_turns(&catalog::hamiltonian()).unwrap();
    assert_eq!(h.turn_set().counts().ninety, 12);
}

/// Section 6.3 / Table 5: thirty 90-degree turns with 1, 2, 1 VCs.
#[test]
fn section6_3_table5() {
    let seq = catalog::table5_partial3d();
    let c = extract_turns(&seq).unwrap().turn_set().counts();
    assert_eq!(c.ninety, 30);
    assert_eq!(vcs_per_dimension(&seq, 3), vec![1, 2, 1]);
}

/// Table 1's highlighted entries: among the 12 maximum-adaptiveness
/// options, the west-first, north-last and negative-first turn models
/// appear (as the paper highlights) — checked by turn-set equality against
/// the Section 4 partitionings.
#[test]
fn table1_contains_the_three_named_turn_models() {
    use ebda::core::algorithm2::{derive_all, transition_reorderings};
    use ebda::core::exceptional::exceptional_partitionings;
    use ebda::core::sets::arrangement2;

    let mut options = Vec::new();
    for arr in arrangement2(&[1, 1]).unwrap() {
        for seq in derive_all(arr).unwrap() {
            for alt in transition_reorderings(&seq) {
                if !options.contains(&alt) {
                    options.push(alt);
                }
            }
        }
    }
    options.extend(exceptional_partitionings(2).unwrap());
    assert_eq!(options.len(), 12);

    for (name, reference) in [
        ("west-first", catalog::p3_west_first()),
        ("north-last", catalog::north_last()),
        ("negative-first", catalog::p4_negative_first()),
    ] {
        let want: TurnSet = extract_turns(&reference)
            .unwrap()
            .turn_set()
            .of_kind(TurnKind::Ninety)
            .collect();
        let found = options.iter().any(|seq| {
            let got: TurnSet = extract_turns(seq)
                .unwrap()
                .turn_set()
                .of_kind(TurnKind::Ninety)
                .collect();
            got.same_as(&want)
        });
        assert!(found, "{name} missing from the Table 1 options");
    }
}

/// Closing the loop: on the 2D/4-channel space, EbDa certification
/// (reconstructing a partition sequence from a turn set) agrees exactly
/// with brute-force CDG verification — a combination is deadlock-free iff
/// it is EbDa-certifiable. This is the strongest executable form of the
/// paper's claim that its partitioning options "are the same as those
/// obtained by applying turn models".
#[test]
fn certification_agrees_with_brute_force_on_all_16_combinations() {
    use ebda::cdg::turn_model::combinations_2d;
    use ebda::core::certify::certify;
    let universe = parse_channels("X+ X- Y+ Y-").unwrap();
    let topo = Topology::mesh(&[6, 6]);
    let mut free = 0;
    for combo in combinations_2d() {
        let brute_force_safe =
            ebda::cdg::Cdg::from_turn_set(&topo, &[1, 1], &universe, &combo.allowed).is_acyclic();
        let certificate = certify(&universe, &combo.allowed);
        assert_eq!(
            brute_force_safe,
            certificate.is_ok(),
            "mismatch for combination (cw={}, ccw={}): brute force says {}, certify says {:?}",
            combo.cw,
            combo.ccw,
            brute_force_safe,
            certificate.map(|s| s.to_string())
        );
        if brute_force_safe {
            free += 1;
            // The certificate must actually cover the six turns.
            let cert = certify(&universe, &combo.allowed).unwrap();
            let ex = extract_turns(&cert).unwrap();
            for t in combo.allowed.iter() {
                assert!(ex.turn_set().contains(t), "certificate misses {t}");
            }
        }
    }
    assert_eq!(free, 12);
}

/// Note to Theorem 1: "The maximum number of channels that can be grouped
/// inside a partition is n+1 in an n-dimensional network when no
/// redundancy is taken into account" — checked exhaustively: every
/// (n+2)-subset of the 2n no-VC channels has two complete pairs; some
/// (n+1)-subset is valid.
#[test]
fn theorem1_max_partition_size_is_n_plus_1() {
    for n in 2..=4usize {
        let mut universe = Vec::new();
        for d in 0..n {
            universe.push(Channel::new(Dimension::new(d as u8), Direction::Plus));
            universe.push(Channel::new(Dimension::new(d as u8), Direction::Minus));
        }
        let mut valid_at_n_plus_1 = 0u32;
        for mask in 0..(1u32 << (2 * n)) {
            let size = mask.count_ones() as usize;
            if size != n + 1 && size != n + 2 {
                continue;
            }
            let channels: Vec<Channel> = universe
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, &c)| c)
                .collect();
            let p = Partition::from_channels(channels).unwrap();
            if size == n + 2 {
                assert!(
                    !p.theorem1_holds(),
                    "n={n}: {p} has n+2 channels yet satisfies Theorem 1"
                );
            } else if p.theorem1_holds() {
                valid_at_n_plus_1 += 1;
            }
        }
        // Exactly n dimensions to pick the pair from, times 2^(n-1) sign
        // choices for the other dimensions.
        assert_eq!(
            valid_at_n_plus_1 as usize,
            n << (n - 1),
            "n={n}: count of maximal valid partitions"
        );
    }
}

/// Note to Theorem 1: the maximum partition size is n+1 without VC
/// redundancy, and the two worked validity examples.
#[test]
fn theorem1_notes() {
    // P = {X1+ X2- Y1+ Y2-} is not cycle-free (two pairs across VCs).
    assert!(PartitionSeq::parse("X1+ X2- Y1+ Y2-")
        .unwrap()
        .validate()
        .is_err());
    // P = {X1+ Y1+ Y1- Y2+ Y2-} is cycle-free (one pair dimension).
    assert!(PartitionSeq::parse("X1+ Y1+ Y1- Y2+ Y2-")
        .unwrap()
        .validate()
        .is_ok());
}
