//! End-to-end integration: design → extract → verify → route → simulate,
//! across all four crates, for every design the paper names.

use ebda::core::algorithm1::partition_network;
use ebda::prelude::*;
use ebda::routing::find_delivery_failure;

/// Every catalog design: valid, acyclic CDG, full delivery, and a clean
/// simulation run at moderate load.
#[test]
fn full_pipeline_for_all_2d_catalog_designs() {
    let topo = Topology::mesh(&[5, 5]);
    for (name, seq) in [
        ("P1", catalog::p1_xy()),
        ("P2", catalog::p2_partially_adaptive()),
        ("P3", catalog::p3_west_first()),
        ("P4", catalog::p4_negative_first()),
        ("P5", catalog::p5_west_first_vcs()),
        ("north-last", catalog::north_last()),
        ("fig7a", catalog::fig7a()),
        ("fig7b", catalog::fig7b_dyxy()),
        ("fig7c", catalog::fig7c()),
        ("odd-even", catalog::odd_even()),
        ("hamiltonian", catalog::hamiltonian()),
    ] {
        // 1. Structure.
        seq.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
        // 2. Dally.
        let report = verify_design(&topo, &seq).unwrap();
        assert!(report.is_deadlock_free(), "{name}: {report}");
        // 3. Functional delivery.
        let relation = TurnRouting::from_design(name, &seq).unwrap();
        assert_eq!(
            find_delivery_failure(&relation, &topo, 40),
            None,
            "{name} failed delivery"
        );
        // 4. Simulation.
        let cfg = SimConfig {
            injection_rate: 0.05,
            warmup: 200,
            measurement: 600,
            drain: 2_000,
            deadlock_threshold: 800,
            ..SimConfig::default()
        };
        let result = simulate(&topo, &relation, &cfg);
        assert!(result.outcome.is_deadlock_free(), "{name}: {result}");
        assert_eq!(result.routing_faults, 0, "{name} produced routing faults");
        assert_eq!(
            result.measured_delivered, result.measured_injected,
            "{name} failed to drain: {result}"
        );
    }
}

#[test]
fn full_pipeline_for_3d_designs() {
    let topo = Topology::mesh(&[3, 3, 3]);
    for (name, seq) in [("fig9b", catalog::fig9b()), ("fig9c", catalog::fig9c())] {
        let report = verify_design(&topo, &seq).unwrap();
        assert!(report.is_deadlock_free(), "{name}: {report}");
        let relation = TurnRouting::from_design(name, &seq).unwrap();
        assert_eq!(find_delivery_failure(&relation, &topo, 30), None);
        let cfg = SimConfig {
            injection_rate: 0.03,
            warmup: 200,
            measurement: 600,
            drain: 2_000,
            deadlock_threshold: 800,
            ..SimConfig::default()
        };
        let result = simulate(&topo, &relation, &cfg);
        assert!(result.outcome.is_deadlock_free(), "{name}: {result}");
        assert_eq!(result.measured_delivered, result.measured_injected);
    }
}

/// Algorithm 1 outputs, for a sweep of VC budgets, pass the whole pipeline.
#[test]
fn algorithm1_outputs_survive_the_pipeline() {
    let topo = Topology::mesh(&[4, 4]);
    for x in 1..=3u8 {
        for y in 1..=3u8 {
            let seq = partition_network(&[x, y]).unwrap();
            let report = verify_design(&topo, &seq).unwrap();
            assert!(report.is_deadlock_free(), "vcs ({x},{y}): {report}");
            let relation = TurnRouting::from_design("gen", &seq).unwrap();
            assert_eq!(
                find_delivery_failure(&relation, &topo, 24),
                None,
                "vcs ({x},{y}) failed delivery"
            );
        }
    }
}

/// The saturation contrast under transpose traffic: the EbDa fully
/// adaptive 6-channel design sustains at least as much accepted
/// throughput as deterministic XY at high load.
#[test]
fn adaptive_beats_deterministic_on_transpose() {
    let topo = Topology::mesh(&[6, 6]);
    let cfg = SimConfig {
        injection_rate: 0.20,
        traffic: TrafficPattern::Transpose,
        warmup: 300,
        measurement: 1_500,
        drain: 1_500,
        deadlock_threshold: 1_200,
        ..SimConfig::default()
    };
    let xy = TurnRouting::from_design("xy", &catalog::p1_xy()).unwrap();
    let fa = TurnRouting::from_design("dyxy", &catalog::fig7b_dyxy()).unwrap();
    let r_xy = simulate(&topo, &xy, &cfg);
    let r_fa = simulate(&topo, &fa, &cfg);
    assert!(r_xy.outcome.is_deadlock_free());
    assert!(r_fa.outcome.is_deadlock_free());
    assert!(
        r_fa.throughput >= r_xy.throughput * 0.95,
        "adaptive {:.4} vs deterministic {:.4}",
        r_fa.throughput,
        r_xy.throughput
    );
}

/// Four-dimensional designs: the Section 4 construction scales beyond the
/// paper's worked examples, and e-cube/negative-first route hypercubes.
#[test]
fn four_dimensional_and_hypercube_coverage() {
    use ebda::core::min_channels::{merged_partitioning, min_channels};
    use ebda::routing::classic::NegativeFirst;
    use ebda::routing::find_delivery_failure;

    // 4D minimum-channel design on a 3^4 mesh.
    let seq = merged_partitioning(4).unwrap();
    assert_eq!(seq.channel_count() as u64, min_channels(4)); // 40
    let topo = Topology::mesh(&[3, 3, 3, 3]);
    let report = verify_design(&topo, &seq).unwrap();
    assert!(report.is_deadlock_free(), "{report}");
    let relation = TurnRouting::from_design("4d", &seq).unwrap();
    // Spot-check delivery across the 4D mesh (full sweep is slow).
    for (src, dst) in [(0usize, 80usize), (80, 0), (40, 3), (27, 53)] {
        let path = ebda::routing::walk_first_choice(&relation, &topo, src, dst, 32).unwrap();
        assert_eq!(path.len() as u64 - 1, topo.distance(src, dst));
    }

    // Hypercube: e-cube (dimension order) and negative-first both deliver.
    let cube = Topology::hypercube(4);
    let ecube =
        classic::DimensionOrder::new("ecube", (0..4).map(|i| Dimension::new(i as u8)).collect());
    assert_eq!(find_delivery_failure(&ecube, &cube, 8), None);
    assert_eq!(
        find_delivery_failure(&NegativeFirst::new(4), &cube, 8),
        None
    );
    let nf4 = PartitionSeq::parse("X- Y- Z- T1- | X+ Y+ Z+ T1+").unwrap();
    assert!(verify_design(&cube, &nf4).unwrap().is_deadlock_free());
}

/// Torus wraparounds without extra VCs are cyclic — and the simulator's
/// watchdog agrees with the CDG verdict.
#[test]
fn torus_needs_more_than_mesh_designs() {
    let torus = Topology::torus(&[4, 4]);
    let report = verify_design(&torus, &catalog::p1_xy()).unwrap();
    assert!(
        !report.is_deadlock_free(),
        "XY on an unmodified torus must have a cyclic CDG"
    );
    // The same design on a mesh is fine.
    let mesh = Topology::mesh(&[4, 4]);
    assert!(verify_design(&mesh, &catalog::p1_xy())
        .unwrap()
        .is_deadlock_free());
}
