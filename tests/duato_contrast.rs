//! The headline E1b experiment as a regression test: Duato's
//! adaptive+escape routing is deadlock-free under its own Assumption 3
//! (single-packet input buffers) and deadlocks under EbDa's unrestricted
//! multi-packet wormhole buffers — while the EbDa fully adaptive design
//! needs no such restriction. This is Section 2's criticism of Duato's
//! theory, observed.

use ebda::prelude::*;
use ebda::routing::classic::DuatoFullyAdaptive;

fn pressure(policy: BufferPolicy) -> SimConfig {
    SimConfig {
        injection_rate: 0.30,
        buffer_policy: policy,
        warmup: 500,
        measurement: 2_000,
        drain: 3_000,
        deadlock_threshold: 1_500,
        ..SimConfig::default()
    }
}

#[test]
fn duato_safe_under_assumption_3_deadlocks_without_it() {
    let topo = Topology::mesh(&[8, 8]);
    let duato = DuatoFullyAdaptive::new(2);

    let single = simulate(&topo, &duato, &pressure(BufferPolicy::SinglePacket));
    assert!(
        single.outcome.is_deadlock_free(),
        "duato must be safe under its own assumption: {single}"
    );

    let multi = simulate(&topo, &duato, &pressure(BufferPolicy::MultiPacket));
    assert!(
        !multi.outcome.is_deadlock_free(),
        "duato with multi-packet buffers should deadlock at this load: {multi}"
    );
    // The watchdog's diagnosis names a genuine circular wait.
    if let Outcome::Deadlocked { wait_cycle, .. } = &multi.outcome {
        assert!(wait_cycle.len() >= 2, "no circular wait found: {multi}");
    }
}

#[test]
fn ebda_design_is_safe_in_both_buffer_regimes() {
    let topo = Topology::mesh(&[8, 8]);
    let fa = TurnRouting::from_design("dyxy", &catalog::fig7b_dyxy()).unwrap();
    for policy in [BufferPolicy::SinglePacket, BufferPolicy::MultiPacket] {
        let r = simulate(&topo, &fa, &pressure(policy));
        assert!(
            r.outcome.is_deadlock_free(),
            "EbDa design deadlocked under {policy:?}: {r}"
        );
        assert_eq!(r.routing_faults, 0);
    }
}
