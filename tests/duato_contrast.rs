//! The headline E1b experiment as a regression test: Duato's
//! adaptive+escape routing is deadlock-free under its own Assumption 3
//! (single-packet input buffers) and deadlocks under EbDa's unrestricted
//! multi-packet wormhole buffers — while the EbDa fully adaptive design
//! needs no such restriction. This is Section 2's criticism of Duato's
//! theory, observed.

use ebda::prelude::*;
use ebda::routing::classic::DuatoFullyAdaptive;

fn pressure(policy: BufferPolicy) -> SimConfig {
    SimConfig {
        injection_rate: 0.30,
        buffer_policy: policy,
        warmup: 500,
        measurement: 2_000,
        drain: 3_000,
        deadlock_threshold: 1_500,
        ..SimConfig::default()
    }
}

#[test]
fn duato_safe_under_assumption_3_deadlocks_without_it() {
    let topo = Topology::mesh(&[8, 8]);
    let duato = DuatoFullyAdaptive::new(2);

    // Whether a particular run deadlocks depends on the traffic stream, so
    // scan a few seeds: single-packet must survive every one of them,
    // multi-packet must deadlock on at least one.
    let mut multi_deadlocked = false;
    for seed in 1..=5u64 {
        let mut single_cfg = pressure(BufferPolicy::SinglePacket);
        single_cfg.seed = seed;
        let single = simulate(&topo, &duato, &single_cfg);
        assert!(
            single.outcome.is_deadlock_free(),
            "duato must be safe under its own assumption (seed {seed}): {single}"
        );

        let mut multi_cfg = pressure(BufferPolicy::MultiPacket);
        multi_cfg.seed = seed;
        let multi = simulate(&topo, &duato, &multi_cfg);
        if let Outcome::Deadlocked { wait_cycle, .. } = &multi.outcome {
            // The watchdog's diagnosis names a genuine circular wait.
            assert!(
                wait_cycle.len() >= 2,
                "no circular wait found (seed {seed}): {multi}"
            );
            multi_deadlocked = true;
        }
    }
    assert!(
        multi_deadlocked,
        "duato with multi-packet buffers should deadlock at this load for some seed"
    );
}

#[test]
fn ebda_design_is_safe_in_both_buffer_regimes() {
    let topo = Topology::mesh(&[8, 8]);
    let fa = TurnRouting::from_design("dyxy", &catalog::fig7b_dyxy()).unwrap();
    for policy in [BufferPolicy::SinglePacket, BufferPolicy::MultiPacket] {
        let r = simulate(&topo, &fa, &pressure(policy));
        assert!(
            r.outcome.is_deadlock_free(),
            "EbDa design deadlocked under {policy:?}: {r}"
        );
        assert_eq!(r.routing_faults, 0);
    }
}
