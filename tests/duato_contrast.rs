//! The headline E1b experiment as a regression test: Duato's
//! adaptive+escape routing is deadlock-free under its own Assumption 3
//! (single-packet input buffers) and deadlocks under EbDa's unrestricted
//! multi-packet wormhole buffers — while the EbDa fully adaptive design
//! needs no such restriction. This is Section 2's criticism of Duato's
//! theory, observed.

use ebda::prelude::*;
use ebda::routing::classic::DuatoFullyAdaptive;

fn pressure(policy: BufferPolicy) -> SimConfig {
    SimConfig {
        injection_rate: 0.30,
        buffer_policy: policy,
        warmup: 500,
        measurement: 2_000,
        drain: 3_000,
        deadlock_threshold: 1_500,
        ..SimConfig::default()
    }
}

/// The traffic seed is pinned: a scan of seeds 1–10 at this load showed
/// seed 1 is the first whose multi-packet run deadlocks (seed 5 also does,
/// with a longer wait cycle; the others complete). The simulator is
/// deterministic for a fixed seed, so asserting on seed 1 directly turns
/// the old scan-until-found loop into an exact regression test — if either
/// outcome below changes, engine behavior changed, and that should be
/// loud, not absorbed by a scan.
const PINNED_SEED: u64 = 1;

#[test]
fn duato_safe_under_assumption_3_deadlocks_without_it() {
    let topo = Topology::mesh(&[8, 8]);
    let duato = DuatoFullyAdaptive::new(2);

    let mut single_cfg = pressure(BufferPolicy::SinglePacket);
    single_cfg.seed = PINNED_SEED;
    let single = simulate(&topo, &duato, &single_cfg);
    assert!(
        single.outcome.is_deadlock_free(),
        "duato must be safe under its own assumption: {single}"
    );

    let mut multi_cfg = pressure(BufferPolicy::MultiPacket);
    multi_cfg.seed = PINNED_SEED;
    let multi = simulate(&topo, &duato, &multi_cfg);
    match &multi.outcome {
        Outcome::Deadlocked { wait_cycle, .. } => {
            // The watchdog's diagnosis names a genuine circular wait.
            assert!(wait_cycle.len() >= 2, "no circular wait found: {multi}");
        }
        Outcome::Completed => panic!(
            "duato with multi-packet buffers must deadlock at this load (seed {PINNED_SEED}): {multi}"
        ),
    }
}

#[test]
fn duato_single_packet_buffers_survive_every_scanned_seed() {
    // The safety half of the contrast stays a scan: Assumption 3 must hold
    // for *every* traffic stream, so more seeds mean a stronger claim.
    let topo = Topology::mesh(&[8, 8]);
    let duato = DuatoFullyAdaptive::new(2);
    for seed in 2..=5u64 {
        let mut cfg = pressure(BufferPolicy::SinglePacket);
        cfg.seed = seed;
        let r = simulate(&topo, &duato, &cfg);
        assert!(
            r.outcome.is_deadlock_free(),
            "duato must be safe under its own assumption (seed {seed}): {r}"
        );
    }
}

#[test]
fn ebda_design_is_safe_in_both_buffer_regimes() {
    let topo = Topology::mesh(&[8, 8]);
    let fa = TurnRouting::from_design("dyxy", &catalog::fig7b_dyxy()).unwrap();
    for policy in [BufferPolicy::SinglePacket, BufferPolicy::MultiPacket] {
        let r = simulate(&topo, &fa, &pressure(policy));
        assert!(
            r.outcome.is_deadlock_free(),
            "EbDa design deadlocked under {policy:?}: {r}"
        );
        assert_eq!(r.routing_faults, 0);
    }
}
