//! Paper Assumption 1 across the board: wormhole, virtual cut-through and
//! store-and-forward all stay deadlock-free for EbDa designs, with the
//! expected latency ordering (WH ≤ VCT ≤ SAF at low load).

use ebda::prelude::*;
use ebda::sim::Switching;

fn cfg(switching: Switching) -> SimConfig {
    SimConfig {
        switching,
        buffer_depth: 8,
        packet_length: 5,
        injection_rate: 0.03,
        warmup: 300,
        measurement: 1_200,
        drain: 3_000,
        deadlock_threshold: 1_200,
        ..SimConfig::default()
    }
}

#[test]
fn all_switching_modes_for_representative_designs() {
    let topo = Topology::mesh(&[4, 4]);
    for (name, seq) in [
        ("xy", catalog::p1_xy()),
        ("west-first", catalog::p3_west_first()),
        ("dyxy", catalog::fig7b_dyxy()),
        ("odd-even", catalog::odd_even()),
    ] {
        let relation = TurnRouting::from_design(name, &seq).unwrap();
        let mut latencies = Vec::new();
        for mode in [
            Switching::Wormhole,
            Switching::VirtualCutThrough,
            Switching::StoreAndForward,
        ] {
            let r = simulate(&topo, &relation, &cfg(mode));
            assert!(r.outcome.is_deadlock_free(), "{name}/{mode:?}: {r}");
            assert_eq!(
                r.measured_delivered, r.measured_injected,
                "{name}/{mode:?} failed to drain"
            );
            latencies.push(r.avg_latency);
        }
        // SAF pays per-hop serialization: strictly slower than wormhole.
        assert!(
            latencies[2] > latencies[0],
            "{name}: SAF {} must exceed WH {}",
            latencies[2],
            latencies[0]
        );
        // VCT sits between (equal-ish at low load is fine).
        assert!(
            latencies[1] <= latencies[2] + 1e-9,
            "{name}: VCT {} above SAF {}",
            latencies[1],
            latencies[2]
        );
    }
}

#[test]
fn saf_latency_scales_with_packet_length() {
    // SAF per-hop cost is proportional to the packet length; doubling the
    // packet should far more than double SAF transit time relative to WH.
    let topo = Topology::mesh(&[4, 4]);
    let relation = TurnRouting::from_design("xy", &catalog::p1_xy()).unwrap();
    let run = |mode, len| {
        let mut c = cfg(mode);
        c.packet_length = len;
        c.buffer_depth = len + 2;
        let r = simulate(&topo, &relation, &c);
        assert!(r.outcome.is_deadlock_free());
        r.avg_latency
    };
    let wh_long = run(Switching::Wormhole, 10);
    let saf_long = run(Switching::StoreAndForward, 10);
    let saf_short = run(Switching::StoreAndForward, 3);
    assert!(saf_long > wh_long * 1.5, "{saf_long} vs wh {wh_long}");
    assert!(saf_long > saf_short, "{saf_long} vs short {saf_short}");
}
