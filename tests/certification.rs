//! Soundness and completeness of EbDa certification against brute-force
//! CDG verification, beyond the 2D space (which `paper_claims.rs` shows is
//! an exact match).

use ebda::cdg::turn_model::{abstract_cycles, deadlock_free_combinations};
use ebda::core::certify::certify;
use ebda::prelude::*;

/// In 3D the picture splits: certification remains *sound* (every
/// certificate really is deadlock-free) but is *incomplete* at channel-
/// class granularity — most deadlock-free prohibition combinations have
/// mutual turns that force all six channels into one partition, which
/// Theorem 1 rejects. The measured numbers are locked in here so the
/// trade-off is tracked.
#[test]
fn certification_is_sound_but_incomplete_in_3d() {
    let cycles = abstract_cycles(3);
    let free: std::collections::HashSet<Vec<usize>> =
        deadlock_free_combinations(3, 3).into_iter().collect();
    let universe = parse_channels("X+ X- Y+ Y- Z+ Z-").unwrap();
    let all_turns: Vec<Turn> = {
        let mut v: Vec<Turn> = cycles.iter().flatten().copied().collect();
        v.sort();
        v.dedup();
        v
    };
    let mut certified_free = 0u32;
    let mut certified_cyclic = 0u32;
    let mut free_uncertified = 0u32;
    for combo in 0..4096usize {
        let mut idx = Vec::with_capacity(6);
        let mut prohibited = Vec::with_capacity(6);
        let mut rest = combo;
        for c in &cycles {
            let k = rest % 4;
            rest /= 4;
            idx.push(k);
            prohibited.push(c[k]);
        }
        let allowed: TurnSet = all_turns
            .iter()
            .copied()
            .filter(|t| !prohibited.contains(t))
            .collect();
        let is_free = free.contains(&idx);
        let is_certified = certify(&universe, &allowed).is_ok();
        match (is_free, is_certified) {
            (true, true) => certified_free += 1,
            (false, true) => certified_cyclic += 1,
            (true, false) => free_uncertified += 1,
            (false, false) => {}
        }
    }
    // Soundness: a certificate NEVER covers a cyclic relation.
    assert_eq!(certified_cyclic, 0, "certification must be sound");
    // Completeness gap, measured: 32 of the 176 deadlock-free 3D
    // combinations are certifiable at channel-class granularity.
    assert_eq!(free.len(), 176);
    assert_eq!(certified_free, 32);
    assert_eq!(free_uncertified, 144);
}

/// Certificates from the routing crate's exact relation-level CDG agree
/// with structural verification for every catalog design.
#[test]
fn certified_catalog_designs_pass_relation_level_verification() {
    use ebda::routing::{verify_relation, TurnRouting};
    let topo = Topology::mesh(&[4, 4]);
    for (name, seq) in catalog::all_designs() {
        let dims = seq
            .partitions()
            .iter()
            .flat_map(|p| p.channels().iter())
            .map(|c| c.dim.index() + 1)
            .max()
            .unwrap();
        if dims > 2 {
            continue; // 2D topology here; 3D designs covered elsewhere
        }
        let relation = TurnRouting::from_design(name, &seq).unwrap();
        assert!(
            verify_relation(&topo, &relation).is_ok(),
            "{name} fails exact relation-level verification"
        );
    }
}
