//! A census of relation-level certification across every routing
//! implementation in the repository: which certify, under which channel
//! classes, and which expose the (documented) incompleteness of
//! class-level certificates.

use ebda::prelude::*;
use ebda::routing::certify_relation::{certify_relation, ClassScheme};
use ebda::routing::classic::{
    DimensionOrder, ElevatorFirst, NegativeFirst, NorthLast, OddEven, TorusDateline, UpDown,
    WestFirst,
};
use ebda::routing::verify_relation;

#[test]
fn certification_census_over_all_relations() {
    let mesh = Topology::mesh(&[5, 5]);

    // Plain-class certifiable: the classic turn models.
    for (name, relation) in [
        (
            "xy",
            Box::new(DimensionOrder::xy()) as Box<dyn RoutingRelation>,
        ),
        ("yx", Box::new(DimensionOrder::yx())),
        ("west-first", Box::new(WestFirst::new())),
        ("north-last", Box::new(NorthLast::new())),
        ("negative-first", Box::new(NegativeFirst::new(2))),
    ] {
        let cert = certify_relation(&mesh, relation.as_ref())
            .unwrap_or_else(|| panic!("{name} must certify"));
        assert_eq!(cert.scheme, ClassScheme::Plain, "{name}");
    }

    // Parity-class certifiable: Odd-Even (column split) and the
    // Hamiltonian-derived relation (row split).
    let oe = certify_relation(&mesh, &OddEven::new()).expect("odd-even certifies");
    assert_eq!(oe.scheme, ClassScheme::ParityOf(Dimension::X));
    let ham = TurnRouting::from_design("ham", &catalog::hamiltonian()).unwrap();
    let ham_cert = certify_relation(&mesh, &ham).expect("hamiltonian certifies");
    assert_ne!(
        ham_cert.scheme,
        ClassScheme::Plain,
        "hamiltonian needs a split scheme"
    );
}

#[test]
fn elevator_first_certifies_on_its_partial_topology() {
    let topo = Topology::mesh(&[3, 3, 2]).with_partial_dim(Dimension::Z, [vec![0, 0], vec![2, 2]]);
    let ef = ElevatorFirst::new([vec![0, 0], vec![2, 2]]);
    let cert = certify_relation(&topo, &ef).expect("elevator-first certifies");
    assert!(cert.design.validate().is_ok());
}

#[test]
fn up_down_root_placement_decides_certifiability() {
    // Corner-rooted Up*/Down* on a mesh *is* negative-first ("up" hops are
    // exactly the negative directions), so it certifies with plain classes
    // in two partitions. A central root makes up/down position-dependent
    // in a way no scheme in the ladder captures — deadlock-free (exact CDG
    // acyclic) yet uncertifiable: the documented incompleteness of
    // channel-class certificates.
    let topo = Topology::mesh(&[4, 4]);

    let corner = UpDown::new(&topo);
    let cert = certify_relation(&topo, &corner).expect("corner root certifies");
    assert_eq!(cert.scheme, ClassScheme::Plain);
    assert_eq!(cert.design.len(), 2, "the negative-first shape");

    let center = UpDown::with_root(&topo, topo.node_at(&[1, 1]));
    assert!(verify_relation(&topo, &center).is_ok(), "still safe");
    assert!(
        certify_relation(&topo, &center).is_none(),
        "central root should exceed the class-scheme ladder"
    );
}

#[test]
fn torus_relations_respect_the_exact_precheck() {
    let torus = Topology::torus(&[4, 4]);
    assert!(certify_relation(&torus, &TorusDateline::new(2)).is_some());
    assert!(certify_relation(&torus, &TorusDateline::without_dateline(2)).is_none());
    // The EbDa class-level dateline design certifies as well.
    let d = TurnRouting::from_design("dl", &catalog::torus_dateline(&[4, 4])).unwrap();
    assert!(certify_relation(&torus, &d).is_some());
}
