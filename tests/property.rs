//! Randomized tests of the EbDa theorems: randomly generated designs
//! that satisfy the hypotheses of Theorems 1–3 must always produce acyclic
//! channel dependency graphs, and the corollaries must hold.
//!
//! Driven by a seeded [`Rng64`] instead of a property-testing framework
//! so the suite is fully deterministic and dependency-free; every assert
//! message carries the case index for replay.

use ebda::core::adaptiveness::{count_minimal_paths, max_minimal_paths};
use ebda::prelude::*;
use ebda_obs::Rng64;

/// The 2D channel universe with up to 2 VCs per dimension (8 classes).
fn universe_2d() -> Vec<Channel> {
    parse_channels("X1+ X1- X2+ X2- Y1+ Y1- Y2+ Y2-").expect("static universe")
}

/// An ordered assignment of a random subset of `len` channels into up to
/// 4 partitions (assignment value 0 = unused).
fn random_assignment(rng: &mut Rng64, len: usize) -> Vec<u8> {
    (0..len).map(|_| rng.gen_index(5) as u8).collect()
}

/// Builds the partition sequence from an assignment, returning `None` when
/// the result violates Theorem 1 / disjointness or is empty.
fn build_seq(assign: &[u8]) -> Option<PartitionSeq> {
    build_seq_over(&universe_2d(), assign)
}

fn build_seq_over(universe: &[Channel], assign: &[u8]) -> Option<PartitionSeq> {
    let mut parts: Vec<Partition> = Vec::new();
    for block in 1..=4u8 {
        let channels: Vec<Channel> = universe
            .iter()
            .zip(assign.iter())
            .filter(|(_, &a)| a == block)
            .map(|(&c, _)| c)
            .collect();
        if channels.is_empty() {
            continue;
        }
        parts.push(Partition::from_channels(channels).ok()?);
    }
    if parts.is_empty() {
        return None;
    }
    let seq = PartitionSeq::from_partitions(parts);
    seq.validate().ok()?;
    Some(seq)
}

/// THE theorem: any partitioning satisfying Theorems 1–3 has an
/// acyclic CDG on a concrete mesh (checked on 4x4).
#[test]
fn valid_partitionings_always_have_acyclic_cdgs() {
    let mut rng = Rng64::new(0xEBDA_0001);
    let mut checked = 0;
    for case in 0..256 {
        let assign = random_assignment(&mut rng, 8);
        if let Some(seq) = build_seq(&assign) {
            checked += 1;
            let topo = Topology::mesh(&[4, 4]);
            let report = verify_design(&topo, &seq).unwrap();
            assert!(
                report.is_deadlock_free(),
                "case {case}: {seq} gave {report}"
            );
        }
    }
    assert!(checked > 20, "only {checked} valid designs drawn");
}

/// Corollary of Theorem 1: any sub-partition of a cycle-free partition
/// is cycle-free, and dropping whole partitions keeps the design valid
/// and acyclic.
#[test]
fn sub_designs_remain_acyclic() {
    let mut rng = Rng64::new(0xEBDA_0002);
    for case in 0..256 {
        let assign = random_assignment(&mut rng, 8);
        let keep_mask = 1 + rng.gen_index(15) as u8;
        if let Some(seq) = build_seq(&assign) {
            let kept: Vec<Partition> = seq
                .partitions()
                .iter()
                .enumerate()
                .filter(|(i, _)| keep_mask & (1 << i) != 0)
                .map(|(_, p)| p.clone())
                .collect();
            if kept.is_empty() {
                continue;
            }
            let sub = PartitionSeq::from_partitions(kept);
            assert!(sub.validate().is_ok(), "case {case}");
            let topo = Topology::mesh(&[4, 4]);
            let report = verify_design(&topo, &sub).unwrap();
            assert!(report.is_deadlock_free(), "case {case}");
        }
    }
}

/// Corollary of Theorem 3: any permutation of the partitions is also a
/// valid, deadlock-free design (only the turn sets differ).
#[test]
fn permuted_transition_orders_remain_acyclic() {
    let mut rng = Rng64::new(0xEBDA_0003);
    for case in 0..256 {
        let assign = random_assignment(&mut rng, 8);
        if let Some(seq) = build_seq(&assign) {
            let n = seq.len();
            let mut order: Vec<usize> = (0..n).collect();
            rng.shuffle(&mut order);
            let permuted = seq.permuted(&order);
            let topo = Topology::mesh(&[4, 4]);
            let report = verify_design(&topo, &permuted).unwrap();
            assert!(report.is_deadlock_free(), "case {case}");
        }
    }
}

/// Algorithm 1 produces valid, acyclic designs for every VC budget.
#[test]
fn algorithm1_is_total_and_sound() {
    for x in 1u8..=4 {
        for y in 1u8..=4 {
            for z in 1u8..=3 {
                let seq = ebda::core::algorithm1::partition_network(&[x, y, z]).unwrap();
                assert!(seq.validate().is_ok());
                assert_eq!(seq.channel_count(), 2 * (x + y + z) as usize);
                let topo = Topology::mesh(&[3, 3, 3]);
                let report = verify_design(&topo, &seq).unwrap();
                assert!(report.is_deadlock_free(), "vcs ({x},{y},{z})");
            }
        }
    }
}

/// Path counting never exceeds the fully adaptive multinomial bound,
/// and a valid design always allows at least one minimal path in 2D
/// full meshes when its channels cover all four directions.
#[test]
fn path_counts_bounded() {
    let mut rng = Rng64::new(0xEBDA_0004);
    for case in 0..256 {
        let assign = random_assignment(&mut rng, 8);
        let (sx, sy) = (rng.gen_index(4) as i64, rng.gen_index(4) as i64);
        let (dx, dy) = (rng.gen_index(4) as i64, rng.gen_index(4) as i64);
        if (sx, sy) == (dx, dy) {
            continue;
        }
        if let Some(seq) = build_seq(&assign) {
            let ex = extract_turns(&seq).unwrap();
            let universe = seq.channels();
            let count = count_minimal_paths(ex.turn_set(), &universe, &[sx, sy], &[dx, dy]);
            let bound = max_minimal_paths(&[sx, sy], &[dx, dy]);
            assert!(
                count <= bound,
                "case {case}: {count} > bound {bound} for {seq}"
            );
        }
    }
}

/// Certification round-trip: the extraction of any valid design is
/// always certifiable, and the certificate covers every extracted
/// turn (EbDa certificates are complete over EbDa-generated sets).
#[test]
fn certification_roundtrips_on_valid_designs() {
    let mut rng = Rng64::new(0xEBDA_0005);
    for case in 0..256 {
        let assign = random_assignment(&mut rng, 8);
        if let Some(seq) = build_seq(&assign) {
            let ex = extract_turns(&seq).unwrap();
            let universe = seq.channels();
            let (cert, _surplus) = ebda::core::certify::certify_checked(&universe, ex.turn_set())
                .unwrap_or_else(|e| panic!("case {case}: {seq} not certifiable: {e}"));
            assert!(cert.validate().is_ok(), "case {case}");
            // The certificate itself verifies on a concrete mesh.
            let report = verify_design(&Topology::mesh(&[4, 4]), &cert).unwrap();
            assert!(report.is_deadlock_free(), "case {case}");
        }
    }
}

/// The Figure 4 identity holds for arbitrary channel counts.
#[test]
fn fig4_identity() {
    let mut rng = Rng64::new(0xEBDA_0006);
    for case in 0..256 {
        let a = rng.gen_range(500);
        let b = rng.gen_range(500);
        let (total, u, i) = ebda::core::adaptiveness::fig4_turn_counts(a, b);
        assert_eq!(total, u + i, "case {case}");
        assert_eq!(u, a * b, "case {case}");
    }
}

/// Exceptional partitionings are valid and acyclic for any dimension
/// count in range.
#[test]
fn exceptional_options_sound() {
    for n in 1usize..=3 {
        for seq in ebda::core::exceptional::exceptional_partitionings(n).unwrap() {
            assert!(seq.validate().is_ok());
            let radix = vec![3usize; n];
            let report = verify_design(&Topology::mesh(&radix), &seq).unwrap();
            assert!(report.is_deadlock_free());
        }
    }
}

/// 3D universe with an extra VC on Z: 8 channel classes.
fn universe_3d() -> Vec<Channel> {
    parse_channels("X1+ X1- Y1+ Y1- Z1+ Z1- Z2+ Z2-").expect("static universe")
}

/// Parity-split 2D universe (the Odd-Even shape): 6 channel classes.
fn universe_parity() -> Vec<Channel> {
    parse_channels("X1+ X1- Ye1+ Ye1- Yo1+ Yo1-").expect("static universe")
}

/// The theorem holds in 3D with mixed VCs too.
#[test]
fn valid_3d_partitionings_have_acyclic_cdgs() {
    let mut rng = Rng64::new(0xEBDA_0007);
    let mut checked = 0;
    for case in 0..96 {
        let assign = random_assignment(&mut rng, 8);
        if let Some(seq) = build_seq_over(&universe_3d(), &assign) {
            checked += 1;
            let topo = Topology::mesh(&[3, 3, 3]);
            let report = verify_design(&topo, &seq).unwrap();
            assert!(
                report.is_deadlock_free(),
                "case {case}: {seq} gave {report}"
            );
        }
    }
    assert!(checked > 5, "only {checked} valid 3D designs drawn");
}

/// And with parity-split channel classes (Odd-Even-style universes),
/// on meshes of both radix parities.
#[test]
fn valid_parity_partitionings_have_acyclic_cdgs() {
    let mut rng = Rng64::new(0xEBDA_0008);
    let mut checked = 0;
    for case in 0..96 {
        let assign = random_assignment(&mut rng, 6);
        if let Some(seq) = build_seq_over(&universe_parity(), &assign) {
            checked += 1;
            for radix in [4usize, 5] {
                let topo = Topology::mesh(&[radix, radix]);
                let report = verify_design(&topo, &seq).unwrap();
                assert!(
                    report.is_deadlock_free(),
                    "case {case}: {seq} on {radix}: {report}"
                );
            }
        }
    }
    assert!(checked > 5, "only {checked} valid parity designs drawn");
}

/// A deterministic negative control: two complete pairs in one partition
/// must be rejected before any CDG is built.
#[test]
fn negative_control_invalid_designs_rejected() {
    let seq = PartitionSeq::parse("X+ X- Y+ Y-").unwrap();
    assert!(seq.validate().is_err());
    assert!(verify_design(&Topology::mesh(&[4, 4]), &seq).is_err());
}
