//! Property-based tests of the EbDa theorems: randomly generated designs
//! that satisfy the hypotheses of Theorems 1–3 must always produce acyclic
//! channel dependency graphs, and the corollaries must hold.

use ebda::core::adaptiveness::{count_minimal_paths, max_minimal_paths};
use ebda::prelude::*;
use proptest::prelude::*;

/// The 2D channel universe with up to 2 VCs per dimension (8 classes).
fn universe_2d() -> Vec<Channel> {
    parse_channels("X1+ X1- X2+ X2- Y1+ Y1- Y2+ Y2-").expect("static universe")
}

/// Strategy: an ordered assignment of a random subset of the 8 channels
/// into up to 4 partitions (assignment value 0 = unused).
fn assignment() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..=4, 8)
}

/// Builds the partition sequence from an assignment, returning `None` when
/// the result violates Theorem 1 / disjointness or is empty.
fn build_seq(assign: &[u8]) -> Option<PartitionSeq> {
    let universe = universe_2d();
    let mut parts: Vec<Partition> = Vec::new();
    for block in 1..=4u8 {
        let channels: Vec<Channel> = universe
            .iter()
            .zip(assign.iter())
            .filter(|(_, &a)| a == block)
            .map(|(&c, _)| c)
            .collect();
        if channels.is_empty() {
            continue;
        }
        parts.push(Partition::from_channels(channels).ok()?);
    }
    if parts.is_empty() {
        return None;
    }
    let seq = PartitionSeq::from_partitions(parts);
    seq.validate().ok()?;
    Some(seq)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// THE theorem: any partitioning satisfying Theorems 1–3 has an
    /// acyclic CDG on a concrete mesh (checked on 4x4).
    #[test]
    fn valid_partitionings_always_have_acyclic_cdgs(assign in assignment()) {
        if let Some(seq) = build_seq(&assign) {
            let topo = Topology::mesh(&[4, 4]);
            let report = verify_design(&topo, &seq).unwrap();
            prop_assert!(report.is_deadlock_free(), "{seq} gave {report}");
        }
    }

    /// Corollary of Theorem 1: any sub-partition of a cycle-free partition
    /// is cycle-free, and dropping whole partitions keeps the design valid
    /// and acyclic.
    #[test]
    fn sub_designs_remain_acyclic(assign in assignment(), keep_mask in 1u8..16) {
        if let Some(seq) = build_seq(&assign) {
            let kept: Vec<Partition> = seq
                .partitions()
                .iter()
                .enumerate()
                .filter(|(i, _)| keep_mask & (1 << i) != 0)
                .map(|(_, p)| p.clone())
                .collect();
            if kept.is_empty() {
                return Ok(());
            }
            let sub = PartitionSeq::from_partitions(kept);
            prop_assert!(sub.validate().is_ok());
            let topo = Topology::mesh(&[4, 4]);
            let report = verify_design(&topo, &sub).unwrap();
            prop_assert!(report.is_deadlock_free());
        }
    }

    /// Corollary of Theorem 3: any permutation of the partitions is also a
    /// valid, deadlock-free design (only the turn sets differ).
    #[test]
    fn permuted_transition_orders_remain_acyclic(assign in assignment(), seed in 0u64..1000) {
        if let Some(seq) = build_seq(&assign) {
            let n = seq.len();
            let mut order: Vec<usize> = (0..n).collect();
            // Cheap deterministic shuffle from the seed.
            for i in (1..n).rev() {
                let j = (seed as usize).wrapping_mul(31).wrapping_add(i) % (i + 1);
                order.swap(i, j);
            }
            let permuted = seq.permuted(&order);
            let topo = Topology::mesh(&[4, 4]);
            let report = verify_design(&topo, &permuted).unwrap();
            prop_assert!(report.is_deadlock_free());
        }
    }

    /// Algorithm 1 produces valid, acyclic designs for every VC budget.
    #[test]
    fn algorithm1_is_total_and_sound(x in 1u8..=4, y in 1u8..=4, z in 1u8..=3) {
        let seq = ebda::core::algorithm1::partition_network(&[x, y, z]).unwrap();
        prop_assert!(seq.validate().is_ok());
        prop_assert_eq!(seq.channel_count(), 2 * (x + y + z) as usize);
        let topo = Topology::mesh(&[3, 3, 3]);
        let report = verify_design(&topo, &seq).unwrap();
        prop_assert!(report.is_deadlock_free(), "vcs ({},{},{})", x, y, z);
    }

    /// Path counting never exceeds the fully adaptive multinomial bound,
    /// and a valid design always allows at least one minimal path in 2D
    /// full meshes when its channels cover all four directions.
    #[test]
    fn path_counts_bounded(assign in assignment(), sx in 0i64..4, sy in 0i64..4, dx in 0i64..4, dy in 0i64..4) {
        prop_assume!((sx, sy) != (dx, dy));
        if let Some(seq) = build_seq(&assign) {
            let ex = extract_turns(&seq).unwrap();
            let universe = seq.channels();
            let count = count_minimal_paths(ex.turn_set(), &universe, &[sx, sy], &[dx, dy]);
            let bound = max_minimal_paths(&[sx, sy], &[dx, dy]);
            prop_assert!(count <= bound, "{count} > bound {bound} for {seq}");
        }
    }

    /// Certification round-trip: the extraction of any valid design is
    /// always certifiable, and the certificate covers every extracted
    /// turn (EbDa certificates are complete over EbDa-generated sets).
    #[test]
    fn certification_roundtrips_on_valid_designs(assign in assignment()) {
        if let Some(seq) = build_seq(&assign) {
            let ex = extract_turns(&seq).unwrap();
            let universe = seq.channels();
            let (cert, _surplus) =
                ebda::core::certify::certify_checked(&universe, ex.turn_set())
                    .unwrap_or_else(|e| panic!("{seq} not certifiable: {e}"));
            prop_assert!(cert.validate().is_ok());
            // The certificate itself verifies on a concrete mesh.
            let report = verify_design(&Topology::mesh(&[4, 4]), &cert).unwrap();
            prop_assert!(report.is_deadlock_free());
        }
    }

    /// The Figure 4 identity holds for arbitrary channel counts.
    #[test]
    fn fig4_identity(a in 0u64..500, b in 0u64..500) {
        let (total, u, i) = ebda::core::adaptiveness::fig4_turn_counts(a, b);
        prop_assert_eq!(total, u + i);
        prop_assert_eq!(u, a * b);
    }

    /// Exceptional partitionings are valid and acyclic for any dimension
    /// count in range.
    #[test]
    fn exceptional_options_sound(n in 1usize..=3) {
        for seq in ebda::core::exceptional::exceptional_partitionings(n).unwrap() {
            prop_assert!(seq.validate().is_ok());
            let radix = vec![3usize; n];
            let report = verify_design(&Topology::mesh(&radix), &seq).unwrap();
            prop_assert!(report.is_deadlock_free());
        }
    }
}

/// 3D universe with an extra VC on Z: 8 channel classes.
fn universe_3d() -> Vec<Channel> {
    parse_channels("X1+ X1- Y1+ Y1- Z1+ Z1- Z2+ Z2-").expect("static universe")
}

/// Parity-split 2D universe (the Odd-Even shape): 6 channel classes.
fn universe_parity() -> Vec<Channel> {
    parse_channels("X1+ X1- Ye1+ Ye1- Yo1+ Yo1-").expect("static universe")
}

fn build_seq_over(universe: &[Channel], assign: &[u8]) -> Option<PartitionSeq> {
    let mut parts: Vec<Partition> = Vec::new();
    for block in 1..=4u8 {
        let channels: Vec<Channel> = universe
            .iter()
            .zip(assign.iter())
            .filter(|(_, &a)| a == block)
            .map(|(&c, _)| c)
            .collect();
        if channels.is_empty() {
            continue;
        }
        parts.push(Partition::from_channels(channels).ok()?);
    }
    if parts.is_empty() {
        return None;
    }
    let seq = PartitionSeq::from_partitions(parts);
    seq.validate().ok()?;
    Some(seq)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The theorem holds in 3D with mixed VCs too.
    #[test]
    fn valid_3d_partitionings_have_acyclic_cdgs(
        assign in proptest::collection::vec(0u8..=4, 8)
    ) {
        if let Some(seq) = build_seq_over(&universe_3d(), &assign) {
            let topo = Topology::mesh(&[3, 3, 3]);
            let report = verify_design(&topo, &seq).unwrap();
            prop_assert!(report.is_deadlock_free(), "{seq} gave {report}");
        }
    }

    /// And with parity-split channel classes (Odd-Even-style universes),
    /// on meshes of both radix parities.
    #[test]
    fn valid_parity_partitionings_have_acyclic_cdgs(
        assign in proptest::collection::vec(0u8..=4, 6)
    ) {
        if let Some(seq) = build_seq_over(&universe_parity(), &assign) {
            for radix in [4usize, 5] {
                let topo = Topology::mesh(&[radix, radix]);
                let report = verify_design(&topo, &seq).unwrap();
                prop_assert!(report.is_deadlock_free(), "{seq} on {radix}: {report}");
            }
        }
    }
}

/// A deterministic negative control outside proptest: two complete pairs in
/// one partition must be rejected before any CDG is built.
#[test]
fn negative_control_invalid_designs_rejected() {
    let seq = PartitionSeq::parse("X+ X- Y+ Y-").unwrap();
    assert!(seq.validate().is_err());
    assert!(verify_design(&Topology::mesh(&[4, 4]), &seq).is_err());
}
