//! API-guideline conformance checks: iteration conventions, conversion
//! traits, Display/FromStr pairs, builder ergonomics and witness
//! reporting — the small contracts that make the crate pleasant to embed.

use ebda::cdg::verify_turn_set;
use ebda::core::builder::DesignBuilder;
use ebda::prelude::*;
use std::str::FromStr;

#[test]
fn partition_iteration_conventions() {
    let p = Partition::parse("X+ X- Y-").unwrap();
    // iter() and (&p).into_iter() agree with channels().
    let a: Vec<_> = p.iter().copied().collect();
    let b: Vec<_> = (&p).into_iter().copied().collect();
    assert_eq!(a, p.channels());
    assert_eq!(b, p.channels());
    // FromIterator round-trip.
    let q: Partition = p.iter().copied().collect();
    assert_eq!(q, p);
}

#[test]
fn fromstr_parses_and_validates() {
    let seq = PartitionSeq::from_str("X- | X+ Y+ Y-").unwrap();
    assert_eq!(seq, catalog::p3_west_first());
    // FromStr validates, unlike parse().
    assert!(PartitionSeq::from_str("X+ X- Y+ Y-").is_err());
    assert!(PartitionSeq::parse("X+ X- Y+ Y-").is_ok());
    // Channel FromStr.
    let c: Channel = "Ye2-".parse().unwrap();
    assert_eq!(c.to_string(), "Ye2-");
}

#[test]
fn builder_and_parser_agree() {
    let built = DesignBuilder::new()
        .partition(["X+", "X-", "Y-"])
        .unwrap()
        .partition(["Y+"])
        .unwrap()
        .build()
        .unwrap();
    assert_eq!(built, PartitionSeq::from_str("X+ X- Y- | Y+").unwrap());
}

#[test]
fn witness_scenarios_read_as_blocked_packets() {
    // A deliberately cyclic turn set produces a report whose scenario
    // rendering names packets and the channels they hold/await.
    let universe = parse_channels("X+ X- Y+ Y-").unwrap();
    let mut turns = TurnSet::new();
    for &a in &universe {
        for &b in &universe {
            if a != b && a.dim != b.dim {
                turns.insert(Turn::new(a, b));
            }
        }
    }
    let report = verify_turn_set(&Topology::mesh(&[4, 4]), &[1, 1], &universe, &turns);
    assert!(!report.is_deadlock_free());
    let scenario = report.witness_scenario().expect("cyclic report");
    assert!(scenario.contains("packet A holds"));
    assert!(scenario.contains("no packet can advance"));
    // Deadlock-free reports have no scenario.
    let clean = ebda::cdg::verify_design(&Topology::mesh(&[4, 4]), &catalog::p1_xy()).unwrap();
    assert_eq!(clean.witness_scenario(), None);
}

#[test]
fn error_values_are_well_behaved() {
    fn assert_error<T: std::error::Error + Send + Sync + 'static>() {}
    assert_error::<EbdaError>();
    // Error messages are lowercase, concise, no trailing period.
    let err = PartitionSeq::from_str("X+ X- Y+ Y-").unwrap_err();
    let msg = err.to_string();
    assert!(msg.chars().next().unwrap().is_lowercase());
    assert!(!msg.ends_with('.'));
}
