//! # ebda — design and verification of deadlock-free interconnection networks
//!
//! A comprehensive reproduction of *EbDa: A New Theory on Design and
//! Verification of Deadlock-free Interconnection Networks* (Ebrahimi &
//! Daneshtalab, ISCA 2017), as a facade over four crates:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `ebda-core` | channel algebra, Theorems 1–3, turn extraction, partitioning algorithms, minimum-channel constructions |
//! | [`cdg`] | `ebda-cdg` | channel dependency graphs, Dally/Duato verification, brute-force turn-model enumeration |
//! | [`routing`] | `ebda-routing` | turn-set-driven routing + classic algorithms (XY, West-First, Odd-Even, Elevator-First, Duato, …) |
//! | [`sim`] | `noc-sim` | cycle-driven wormhole simulator with deadlock watchdog |
//! | [`oracle`] | `ebda-oracle` | differential verification: brute-force deadlock search, verdict cross-checking, counterexample shrinking |
//!
//! ## The whole pipeline in one example
//!
//! ```
//! use ebda::prelude::*;
//!
//! // 1. Design: partition the channels (Theorem 1 + disjointness).
//! let design = PartitionSeq::parse("X- | X+ Y+ Y-")?; // west-first
//! design.validate()?;
//!
//! // 2. Extract every allowable turn (Theorems 1–3).
//! let turns = extract_turns(&design)?;
//! assert_eq!(turns.turn_set().counts().ninety, 6);
//!
//! // 3. Verify with Dally's criterion on a concrete mesh.
//! let topo = Topology::mesh(&[4, 4]);
//! assert!(verify_design(&topo, &design)?.is_deadlock_free());
//!
//! // 4. Route and simulate.
//! let relation = TurnRouting::from_design("west-first", &design)?;
//! let cfg = SimConfig { injection_rate: 0.02, ..SimConfig::default() };
//! let result = simulate(&topo, &relation, &cfg);
//! assert!(result.outcome.is_deadlock_free());
//! # Ok::<(), ebda::core::EbdaError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ebda_bench as bench;
pub use ebda_cdg as cdg;
pub use ebda_core as core;
pub use ebda_corpus as corpus;
pub use ebda_obs as obs;
pub use ebda_oracle as oracle;
pub use ebda_routing as routing;
pub use noc_sim as sim;

/// One-stop imports for the full design→verify→simulate pipeline.
pub mod prelude {
    pub use ebda_cdg::{verify_design, verify_turn_set, Topology};
    pub use ebda_core::{
        catalog, extract_turns, parse_channels, Channel, Dimension, Direction, EbdaError,
        Partition, PartitionSeq, Turn, TurnKind, TurnSet,
    };
    pub use ebda_routing::{classic, walk_first_choice, RoutingRelation, TurnRouting, INJECT};
    pub use noc_sim::{simulate, BufferPolicy, Outcome, SimConfig, SimResult, TrafficPattern};
}
