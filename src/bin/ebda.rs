//! The `ebda` command-line tool: design, inspect, verify and simulate
//! deadlock-free routing algorithms from the shell.
//!
//! ```text
//! ebda design   --vcs 3,2,3                     # Algorithm 1
//! ebda turns    "X- | X+ Y+ Y-"                 # Theorem 1-3 extraction
//! ebda verify   "X- | X+ Y+ Y-" --mesh 8x8      # Dally check
//! ebda options  --vcs 1,1                       # Algorithm 2 derivations
//! ebda simulate "X1+ Y1+ Y1- | X1- Y2+ Y2-" --mesh 8x8 --rate 0.05
//! ```

use ebda::core::algorithm1::{partition_network, partition_network_region_covering};
use ebda::core::algorithm2::derive_all;
use ebda::core::sets::arrangement1;
use ebda::core::theorems::analyze;
use ebda::prelude::catalog;
use ebda::prelude::*;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  ebda design   --vcs <a,b[,c...]> [--arrangement region|plain]
                                             run Algorithm 1 on a VC budget
  ebda options  --vcs <a,b[,c...]>           enumerate Algorithm 2 derivations
  ebda turns    \"<design>\" [--dot]            extract all allowable turns
                                             (--dot: Graphviz output)
  ebda verify   \"<design>\" [--mesh AxB[xC]] [--torus AxB[xC]] [--ledger FILE]
                                             (--ledger: run all four verdict
                                             paths and append one provenance-
                                             carrying run-ledger record)
  ebda certify  --turns \"X1+>Y1+,Y1->X1-,...\"  reconstruct a partitioning
                                             certificate from raw turns
  ebda check-cert FILE                       independently re-validate every
                                             certificate / witness in a run
                                             ledger (or a single provenance
                                             JSON document) without re-running
                                             any prover
  ebda ledger   list FILE [--json]           one summary line per ledger record
                                             (--json: one canonical JSON array)
  ebda ledger   show FILE [HASH]             canonical JSON of the records
  ebda ledger   diff FILE1 FILE2             byte-compare two run ledgers
  ebda coverage report FILE                  per-family table of a design-space
                                             coverage map (written by campaigns
                                             run with --coverage-out)
  ebda coverage diff FILE1 FILE2             compare two coverage maps; exit 0
                                             iff they are identical
  ebda coverage merge OUT FILE...            merge coverage maps (associative,
                                             commutative) into OUT
  ebda explain  HASH --ledger FILE           human narrative of one verdict's
                                             proof evidence
  ebda report   \"<design>\"                    markdown design review
  ebda simulate \"<design>\" [--mesh AxB] [--rate R] [--traffic uniform|transpose|bitcomp]
                 [--policy multi|single] [--switching wh|vct|saf]
                 [--seed N]                  traffic RNG seed
                 [--watchdog-window W]       online stall watchdog: after W
                                             frozen/credit-stalled cycles, dump
                                             a suspected wait cycle (run goes on)
                 [--trace-out FILE]          flight-recorder trace (.json or
                                             .csv; EBDA_TRACE env works too)
                 [--journey-out FILE]        per-packet journey timeline as
                                             Chrome Trace JSON for Perfetto /
                                             chrome://tracing (EBDA_JOURNEY_OUT;
                                             --journey-sample-rate P thins it)
                 [--metrics-addr HOST:PORT]  serve live Prometheus metrics at
                                             /metrics (EBDA_METRICS_ADDR too;
                                             --metrics-linger SECS keeps it up)
                 [--profile-out FILE]        deterministic self-profiler report:
                                             phase tree + worker timeline as
                                             Chrome Trace JSON (EBDA_PROFILE_OUT;
                                             render with `ebda profile FILE`)
                 [--threads N]               worker threads for parallel helpers
                                             (EBDA_THREADS; default: hardware
                                             parallelism; results are identical
                                             at every value)
                 [--heatmap-out FILE]        per-channel utilization heatmap CSV
  ebda corpus   generate --out DIR           build the labeled seed corpus
                                             (ten families, labels proven at
                                             generation time)
  ebda corpus   run DIR [--archive-to DIR] [--mutate NAME] [--inject-mismatch]
                 [--expect-mismatch] [--shrink-budget N] [--threads N]
                 [--ledger FILE] [--coverage-out FILE]
                                             regression campaign: check every
                                             entry against all four verdict
                                             paths; mismatches are shrunk and
                                             archived as labeled witnesses
  ebda corpus   stats DIR [--json]           deterministic corpus statistics
  ebda monitor  --addr HOST:PORT [--once] [--interval SECS] [--interval-ms N]
                 [--ledger FILE]             poll a /metrics endpoint and render
                                             a compact terminal snapshot;
                                             --interval re-renders in place;
                                             --ledger adds a recent-verdicts
                                             section from the run-ledger tail
  ebda profile  FILE [--counters|--flame]    render a --profile-out report:
                                             default is the phase table with
                                             self/total times; --counters prints
                                             the deterministic work-unit tree
                                             (byte-identical at every --threads);
                                             --flame prints nested flame JSON

a <design> is partitions separated by '|' or '->', channels like X1+, Ye2-
(example: \"X- | X+ Y+ Y-\" is the west-first turn model), or a preset:
xy, west-first, north-last, negative-first, odd-even, dyxy, fig7c, fig9b,
fig9c, hamiltonian, table5.";

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        return Err("missing subcommand".into());
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "design" => cmd_design(rest),
        "options" => cmd_options(rest),
        "turns" => cmd_turns(rest),
        "verify" => cmd_verify(rest),
        "certify" => cmd_certify(rest),
        "check-cert" => cmd_check_cert(rest),
        "ledger" => cmd_ledger(rest),
        "coverage" => cmd_coverage(rest),
        "explain" => cmd_explain(rest),
        "report" => cmd_report(rest),
        "simulate" => cmd_simulate(rest),
        "corpus" => match ebda::bench::corpus_cli::run(rest.to_vec()) {
            0 => Ok(()),
            code => Err(format!("corpus command failed (exit {code})")),
        },
        "monitor" => cmd_monitor(rest),
        "profile" => cmd_profile(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse_vcs(args: &[String]) -> Result<Vec<u8>, String> {
    let spec = flag_value(args, "--vcs").ok_or("missing --vcs a,b[,c...]")?;
    spec.split(',')
        .map(|t| {
            t.trim()
                .parse::<u8>()
                .map_err(|e| format!("bad VC count {t:?}: {e}"))
        })
        .collect()
}

fn parse_radix(spec: &str) -> Result<Vec<usize>, String> {
    spec.split(['x', 'X'])
        .map(|t| {
            t.parse::<usize>()
                .map_err(|e| format!("bad radix {t:?}: {e}"))
        })
        .collect()
}

/// Named design presets accepted wherever a design string is.
fn preset(name: &str) -> Option<PartitionSeq> {
    Some(match name {
        "xy" => catalog::p1_xy(),
        "west-first" | "wf" => catalog::p3_west_first(),
        "north-last" | "nl" => catalog::north_last(),
        "negative-first" | "nf" => catalog::p4_negative_first(),
        "odd-even" | "oe" => catalog::odd_even(),
        "dyxy" | "fig7b" => catalog::fig7b_dyxy(),
        "fig7c" => catalog::fig7c(),
        "fig9b" => catalog::fig9b(),
        "fig9c" => catalog::fig9c(),
        "hamiltonian" => catalog::hamiltonian(),
        "table5" => catalog::table5_partial3d(),
        _ => return None,
    })
}

fn parse_design(args: &[String]) -> Result<PartitionSeq, String> {
    if let Some(seq) = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .find_map(|a| preset(a))
    {
        return Ok(seq);
    }
    let spec = args
        .iter()
        .find(|a| !a.starts_with("--") && !a.contains('=') && a.contains(['+', '-']))
        .ok_or("missing design argument (a preset like west-first, or \"X- | X+ Y+ Y-\")")?;
    let seq = PartitionSeq::parse(spec).map_err(|e| e.to_string())?;
    seq.validate().map_err(|e| e.to_string())?;
    Ok(seq)
}

fn cmd_report(args: &[String]) -> Result<(), String> {
    let seq = parse_design(args)?;
    let n = design_dims(&seq);
    let report = ebda::core::theorems::markdown_report(&seq, n, 3).map_err(|e| e.to_string())?;
    print!("{report}");
    Ok(())
}

fn topology(args: &[String], default_dims: usize) -> Result<Topology, String> {
    if let Some(spec) = flag_value(args, "--torus") {
        return Ok(Topology::torus(&parse_radix(spec)?));
    }
    if let Some(spec) = flag_value(args, "--mesh") {
        return Ok(Topology::mesh(&parse_radix(spec)?));
    }
    Ok(Topology::mesh(&vec![4; default_dims.max(1)]))
}

fn design_dims(seq: &PartitionSeq) -> usize {
    seq.partitions()
        .iter()
        .flat_map(|p| p.channels().iter())
        .map(|c| c.dim.index() + 1)
        .max()
        .unwrap_or(1)
}

fn cmd_design(args: &[String]) -> Result<(), String> {
    let vcs = parse_vcs(args)?;
    let seq = match flag_value(args, "--arrangement") {
        None | Some("region") => {
            partition_network_region_covering(&vcs).map_err(|e| e.to_string())?
        }
        Some("plain") => partition_network(&vcs).map_err(|e| e.to_string())?,
        Some(other) => return Err(format!("unknown arrangement {other:?}")),
    };
    println!("{seq}");
    let report = analyze(&seq, vcs.len()).map_err(|e| e.to_string())?;
    println!("{report}");
    Ok(())
}

fn cmd_options(args: &[String]) -> Result<(), String> {
    let vcs = parse_vcs(args)?;
    let options =
        derive_all(arrangement1(&vcs).map_err(|e| e.to_string())?).map_err(|e| e.to_string())?;
    println!("{} derivations from Algorithm 2:", options.len());
    for seq in options {
        println!("  {seq}");
    }
    Ok(())
}

fn cmd_turns(args: &[String]) -> Result<(), String> {
    let seq = parse_design(args)?;
    let ex = extract_turns(&seq).map_err(|e| e.to_string())?;
    if args.iter().any(|a| a == "--dot") {
        print!("{}", ebda::core::dot::extraction_dot(&seq, &ex));
        return Ok(());
    }
    println!("design: {seq}");
    for (kind, label) in [
        (TurnKind::Ninety, "90-degree"),
        (TurnKind::UTurn, "U-turns"),
        (TurnKind::ITurn, "I-turns"),
    ] {
        let list: Vec<String> = ex.turn_set().of_kind(kind).map(|t| t.to_string()).collect();
        if !list.is_empty() {
            println!("{label:>10}: {}", list.join(", "));
        }
    }
    println!("{}", ex.turn_set().counts());
    Ok(())
}

fn cmd_verify(args: &[String]) -> Result<(), String> {
    let seq = parse_design(args)?;
    let topo = topology(args, design_dims(&seq))?;
    if topo.dims() < design_dims(&seq) {
        return Err(format!(
            "the design uses {} dimensions but the topology has {}",
            design_dims(&seq),
            topo.dims()
        ));
    }
    let report = verify_design(&topo, &seq).map_err(|e| e.to_string())?;
    println!("{report}");
    if let Some(path) = flag_value(args, "--ledger") {
        // The ledger record carries full provenance, so the honest
        // four-path evaluation (including brute force) runs here — the
        // Dally verdict above is untouched.
        let universe = seq.channels();
        let dims = topo.dims();
        let ex = extract_turns(&seq).map_err(|e| e.to_string())?;
        let artifact = ebda::oracle::artifact::Artifact {
            id: 0,
            kind: ebda::oracle::artifact::ArtifactKind::Partitioning,
            radix: topo.radix().to_vec(),
            wrap: (0..dims)
                .map(|d| topo.wraps(Dimension::new(d as u8)))
                .collect(),
            vcs: ebda::cdg::dally::infer_vcs(&universe, dims),
            universe,
            turns: ex.turn_set().clone(),
            design: Some(seq.clone()),
        };
        let verdicts =
            ebda::oracle::verdict::evaluate(&artifact, ebda::oracle::verdict::Mutation::None);
        let prov = ebda::oracle::Provenance::from_artifact(&artifact, &verdicts);
        let coverage = ebda::oracle::artifact_coverage(&artifact, &verdicts);
        let record = ebda_obs::LedgerRecord {
            index: 0,
            source: "cli".into(),
            name: artifact.summary(),
            git_rev: ebda_obs::ledger::git_rev(),
            seed: 0,
            verdict: prov.verdict_str().into(),
            evidence: if prov.deadlock_free {
                "certificate".into()
            } else {
                "witness".into()
            },
            hash: prov.hash_hex(),
            gfp_sweeps: verdicts.brute.sweeps as u64,
            wait_pairs: verdicts.brute.pairs as u64,
            coverage: coverage.digest(),
            provenance: prov.to_json(),
        };
        let path = std::path::PathBuf::from(path);
        ebda_obs::ledger::append(&path, &[record]).map_err(|e| format!("ledger append: {e}"))?;
        println!(
            "ledger: verdict {} recorded as {} in {}",
            prov.verdict_str(),
            prov.hash_hex(),
            path.display()
        );
    }
    if report.is_deadlock_free() {
        Ok(())
    } else {
        Err("design is NOT deadlock-free on this topology".into())
    }
}

/// Positional (non-flag) arguments, skipping every `--flag value` pair.
/// Only valid for subcommands whose flags all take a value.
fn positionals(args: &[String]) -> Vec<&str> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i].starts_with("--") {
            i += 2;
        } else {
            out.push(args[i].as_str());
            i += 1;
        }
    }
    out
}

/// `ebda check-cert FILE`: the independent certificate checker. Walks a
/// run-ledger JSONL file (or a file of bare provenance documents) and
/// re-validates every record's evidence — certificate obligations or
/// witness cycle — without calling any prover.
fn cmd_check_cert(args: &[String]) -> Result<(), String> {
    let path = positionals(args)
        .first()
        .copied()
        .ok_or("missing ledger or provenance file")?
        .to_string();
    let text = std::fs::read_to_string(&path).map_err(|e| format!("read {path}: {e}"))?;
    let mut checked = 0usize;
    let mut failed = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        checked += 1;
        let mut fail = |msg: String| {
            failed += 1;
            println!("FAIL line {}: {msg}", lineno + 1);
        };
        // A line is either one ledger record (provenance embedded) or one
        // bare provenance document.
        let (label, prov) = match ebda_obs::LedgerRecord::from_line(line) {
            Ok(rec) => match ebda::oracle::Provenance::from_json(&rec.provenance) {
                Ok(prov) => {
                    if rec.hash != prov.hash_hex() {
                        fail(format!(
                            "record #{} declares hash {} but its provenance hashes to {}",
                            rec.index,
                            rec.hash,
                            prov.hash_hex()
                        ));
                        continue;
                    }
                    if rec.verdict != prov.verdict_str() {
                        fail(format!(
                            "record #{} declares verdict {} but its provenance says {}",
                            rec.index,
                            rec.verdict,
                            prov.verdict_str()
                        ));
                        continue;
                    }
                    (format!("#{} {}", rec.index, rec.hash), prov)
                }
                Err(e) => {
                    fail(format!("embedded provenance: {e}"));
                    continue;
                }
            },
            Err(_) => match ebda::oracle::Provenance::from_json(line) {
                Ok(prov) => (prov.hash_hex(), prov),
                Err(e) => {
                    fail(format!(
                        "neither a ledger record nor a provenance document: {e}"
                    ));
                    continue;
                }
            },
        };
        match prov.check() {
            Ok(report) => println!(
                "PASS {label} {} via {} ({} obligations)",
                prov.verdict_str(),
                report.methods.join("+"),
                report.obligations
            ),
            Err(e) => fail(format!("{label}: {e}")),
        }
    }
    println!(
        "checked {checked} record(s): {} passed, {failed} failed",
        checked - failed
    );
    if checked == 0 {
        return Err(format!("{path} holds no records"));
    }
    if failed > 0 {
        return Err(format!("{failed} record(s) failed the certificate check"));
    }
    Ok(())
}

/// `ebda ledger <list|show|diff>`: inspect append-only run ledgers.
fn cmd_ledger(args: &[String]) -> Result<(), String> {
    let Some(action) = args.first() else {
        return Err("missing ledger action (list, show, diff)".into());
    };
    // --json is a bare switch: strip it before positional extraction,
    // which assumes every flag takes a value.
    let json = args.iter().any(|a| a == "--json");
    let filtered: Vec<String> = args[1..]
        .iter()
        .filter(|a| *a != "--json")
        .cloned()
        .collect();
    let rest = positionals(&filtered);
    match action.as_str() {
        "list" => {
            let path = rest.first().ok_or("ledger list needs a FILE")?;
            if json {
                print!(
                    "{}",
                    ebda_obs::ledger::render_json(std::path::Path::new(path))?
                );
                return Ok(());
            }
            let records = ebda_obs::ledger::read(std::path::Path::new(path))?;
            for r in &records {
                println!("{}", r.summary());
            }
            println!("{} record(s) in {path}", records.len());
            Ok(())
        }
        "show" => {
            let path = rest.first().ok_or("ledger show needs a FILE")?;
            let hash = rest.get(1);
            let records = ebda_obs::ledger::read(std::path::Path::new(path))?;
            let mut shown = 0;
            for r in &records {
                if hash.is_none_or(|h| r.hash.starts_with(h)) {
                    println!("{}", r.to_line());
                    shown += 1;
                }
            }
            match (shown, hash) {
                (0, Some(h)) => Err(format!("no record matches hash {h}")),
                _ => Ok(()),
            }
        }
        "diff" => {
            let (Some(a), Some(b)) = (rest.first(), rest.get(1)) else {
                return Err("ledger diff needs two FILEs".into());
            };
            match ebda_obs::ledger::diff(std::path::Path::new(a), std::path::Path::new(b))? {
                None => {
                    let n = ebda_obs::ledger::read(std::path::Path::new(a))?.len();
                    println!("ledgers are byte-identical ({n} record(s))");
                    Ok(())
                }
                Some(delta) => Err(format!("ledgers differ: {delta}")),
            }
        }
        other => Err(format!(
            "unknown ledger action {other:?} (try list, show, diff)"
        )),
    }
}

/// `ebda coverage <report|diff|merge>`: inspect and combine design-space
/// coverage maps written by `--coverage-out` campaigns.
fn cmd_coverage(args: &[String]) -> Result<(), String> {
    let Some(action) = args.first() else {
        return Err("missing coverage action (report, diff, merge)".into());
    };
    let rest = positionals(&args[1..]);
    match action.as_str() {
        "report" => {
            let path = rest.first().ok_or("coverage report needs a FILE")?;
            let map = ebda_obs::CoverageMap::read_file(std::path::Path::new(path))?;
            print!("{}", map.report());
            Ok(())
        }
        "diff" => {
            let (Some(a), Some(b)) = (rest.first(), rest.get(1)) else {
                return Err("coverage diff needs two FILEs".into());
            };
            let left = ebda_obs::CoverageMap::read_file(std::path::Path::new(a))?;
            let right = ebda_obs::CoverageMap::read_file(std::path::Path::new(b))?;
            match left.diff(&right) {
                None => {
                    println!(
                        "coverage maps are identical ({} points, digest {})",
                        left.total_points(),
                        left.digest()
                    );
                    Ok(())
                }
                Some(delta) => Err(format!("coverage maps differ: {delta}")),
            }
        }
        "merge" => {
            let Some((out, inputs)) = rest.split_first() else {
                return Err("coverage merge needs OUT FILE...".into());
            };
            if inputs.is_empty() {
                return Err("coverage merge needs at least one input FILE".into());
            }
            let mut maps = inputs
                .iter()
                .map(|p| ebda_obs::CoverageMap::read_file(std::path::Path::new(p)));
            let mut merged = maps.next().expect("non-empty inputs")?;
            for map in maps {
                merged.merge(&map?);
            }
            merged.write_file(std::path::Path::new(out))?;
            println!(
                "merged {} map(s) into {out}: {} points, digest {}",
                inputs.len(),
                merged.total_points(),
                merged.digest()
            );
            Ok(())
        }
        other => Err(format!(
            "unknown coverage action {other:?} (try report, diff, merge)"
        )),
    }
}

/// `ebda explain HASH --ledger FILE`: render the proof narrative of one
/// recorded verdict.
fn cmd_explain(args: &[String]) -> Result<(), String> {
    let ledger = flag_value(args, "--ledger").ok_or("missing --ledger FILE")?;
    let hash = positionals(args)
        .first()
        .copied()
        .ok_or("missing HASH (see `ebda ledger list`)")?
        .to_string();
    let records = ebda_obs::ledger::read(std::path::Path::new(ledger))?;
    // Prefix match, latest record wins — hashes are content addresses, so
    // duplicates describe the same problem.
    let record = records
        .iter()
        .rev()
        .find(|r| r.hash.starts_with(&hash))
        .ok_or_else(|| format!("no record in {ledger} matches hash {hash}"))?;
    let prov = ebda::oracle::Provenance::from_json(&record.provenance)?;
    println!(
        "record #{} ({}, seed {}, git {}, {} GFP sweeps over {} wait pairs)",
        record.index,
        record.source,
        record.seed,
        record.git_rev,
        record.gfp_sweeps,
        record.wait_pairs
    );
    println!("{}", prov.narrative());
    Ok(())
}

fn cmd_certify(args: &[String]) -> Result<(), String> {
    let spec = flag_value(args, "--turns").ok_or("missing --turns \"A>B,C>D,...\"")?;
    let mut turns = TurnSet::new();
    let mut universe: Vec<Channel> = Vec::new();
    for token in spec.split(',').filter(|t| !t.trim().is_empty()) {
        let (a, b) = token
            .split_once('>')
            .ok_or_else(|| format!("turn {token:?} must look like X1+>Y1+"))?;
        let from = Channel::parse(a.trim()).map_err(|e| e.to_string())?;
        let to = Channel::parse(b.trim()).map_err(|e| e.to_string())?;
        if from == to {
            return Err(format!("turn {token:?} repeats one channel"));
        }
        for c in [from, to] {
            if !universe.contains(&c) {
                universe.push(c);
            }
        }
        turns.insert(Turn::new(from, to));
    }
    if turns.is_empty() {
        return Err("no turns given".into());
    }
    match ebda::core::certify::certify_checked(&universe, &turns) {
        Ok((cert, surplus)) => {
            println!("CERTIFIED deadlock-free by the partitioning:");
            println!("  {cert}");
            if !surplus.is_empty() {
                println!(
                    "the certificate additionally allows {} unused turns",
                    surplus.len()
                );
            }
            Ok(())
        }
        Err(e) => Err(format!(
            "not certifiable: {e} (this does not prove deadlock; EbDa certificates are sufficient, not necessary)"
        )),
    }
}

fn cmd_simulate(raw_args: &[String]) -> Result<(), String> {
    // The shared observability parser consumes --trace-out/--metrics-addr/
    // --metrics-linger (and their env fallbacks); everything else stays.
    let mut argv: Vec<String> = raw_args.to_vec();
    let mut obs = ebda::bench::trace::ObsOptions::parse(&mut argv);
    obs.activate();
    let args: &[String] = &argv;
    let seq = parse_design(args)?;
    let topo = topology(args, design_dims(&seq))?;
    let relation = TurnRouting::from_design("cli", &seq).map_err(|e| e.to_string())?;
    let mut cfg = SimConfig::default();
    if let Some(r) = flag_value(args, "--rate") {
        cfg.injection_rate = r.parse().map_err(|e| format!("bad rate: {e}"))?;
    }
    if let Some(t) = flag_value(args, "--traffic") {
        cfg.traffic = match t {
            "uniform" => TrafficPattern::Uniform,
            "transpose" => TrafficPattern::Transpose,
            "bitcomp" => TrafficPattern::BitComplement,
            other => return Err(format!("unknown traffic pattern {other:?}")),
        };
    }
    if let Some(p) = flag_value(args, "--policy") {
        cfg.buffer_policy = match p {
            "multi" => BufferPolicy::MultiPacket,
            "single" => BufferPolicy::SinglePacket,
            other => return Err(format!("unknown buffer policy {other:?}")),
        };
    }
    if let Some(s) = flag_value(args, "--switching") {
        cfg.switching = match s {
            "wh" => ebda::sim::config::Switching::Wormhole,
            "vct" => ebda::sim::config::Switching::VirtualCutThrough,
            "saf" => ebda::sim::config::Switching::StoreAndForward,
            other => return Err(format!("unknown switching {other:?}")),
        };
        if cfg.switching != ebda::sim::config::Switching::Wormhole {
            cfg.buffer_depth = cfg.buffer_depth.max(cfg.packet_length);
        }
    }
    if let Some(w) = flag_value(args, "--watchdog-window") {
        cfg.watchdog_window = w
            .parse()
            .map_err(|e| format!("bad --watchdog-window: {e}"))?;
    }
    if let Some(seed) = flag_value(args, "--seed") {
        cfg.seed = seed.parse().map_err(|e| format!("bad --seed: {e}"))?;
    }
    let result = match obs.recorder() {
        Some(mut rec) => {
            let result = ebda::sim::simulate_traced(&topo, &relation, &cfg, Some(&mut rec));
            if let Some(path) = &obs.trace {
                ebda::bench::trace::write_trace(&rec, path);
            }
            if let Some(path) = &obs.journey {
                ebda::bench::trace::write_journey(&rec, "ebda simulate", path);
            }
            result
        }
        None => simulate(&topo, &relation, &cfg),
    };
    if let Some(path) = flag_value(args, "--heatmap-out") {
        let csv = ebda::sim::channel_heatmap_csv(&topo, &relation, &cfg, &result);
        std::fs::write(path, csv).map_err(|e| format!("write heatmap {path}: {e}"))?;
        eprintln!("heatmap written to {path}");
    }
    println!("{result}");
    if let Some(cv) = result.channel_balance_cv() {
        println!("channel balance (CV, lower is better): {cv:.3}");
    }
    if result.watchdog_trips > 0 {
        println!(
            "watchdog: tripped {} time(s); suspected wait cycle at cycle {}:",
            result.watchdog_trips, result.suspected_at_cycle
        );
        for edge in &result.suspected_cycle {
            println!("  {}", edge.label);
        }
    }
    obs.finish();
    Ok(())
}

fn cmd_monitor(args: &[String]) -> Result<(), String> {
    let addr = flag_value(args, "--addr").ok_or("missing --addr host:port")?;
    let once = args.iter().any(|a| a == "--once");
    // `--interval <secs>` is the watch mode: clear the terminal and
    // re-render the snapshot in place each round, like `watch(1)`.
    // `--interval-ms` keeps the original append-only polling (and wins
    // on cadence when both are given).
    let watch_secs: Option<u64> = flag_value(args, "--interval")
        .map(|v| v.parse().map_err(|e| format!("bad --interval: {e}")))
        .transpose()?;
    let interval_ms: u64 = match flag_value(args, "--interval-ms") {
        Some(v) => v.parse().map_err(|e| format!("bad --interval-ms: {e}"))?,
        None => watch_secs.map_or(2_000, |s| s.max(1) * 1_000),
    };
    let ledger = flag_value(args, "--ledger");
    let in_place = watch_secs.is_some() && !once;
    loop {
        // A dead endpoint is an expected condition, not a parse bug:
        // report it as one clean line instead of the raw io error.
        let body = ebda_obs::http_get(addr, "/metrics")
            .map_err(|_| format!("endpoint unreachable: {addr}"))?;
        let samples = ebda_obs::metrics::parse_exposition(&body)
            .map_err(|e| format!("malformed exposition from {addr}: {e}"))?;
        if in_place {
            print!("\x1b[2J\x1b[H");
        }
        println!("{}", monitor_snapshot(addr, &samples));
        if let Some(path) = ledger {
            match ebda_obs::ledger::tail(std::path::Path::new(path), 5) {
                Ok(records) if records.is_empty() => {
                    println!("recent verdicts ({path}): none yet");
                }
                Ok(records) => {
                    println!("recent verdicts ({path}):");
                    for r in &records {
                        println!("  {}", r.summary());
                    }
                }
                Err(e) => println!("recent verdicts: unavailable ({e})"),
            }
        }
        if once {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
}

/// Renders a `--profile-out` report (or a bare snapshot JSON) in one of
/// three views: the human phase table (default), the deterministic
/// work-unit counter tree (`--counters`), or nested flame-style JSON
/// (`--flame`).
fn cmd_profile(args: &[String]) -> Result<(), String> {
    let path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .ok_or("missing profile file (written by --profile-out / EBDA_PROFILE_OUT)")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let doc = ebda_obs::json::Value::parse(&text).map_err(|e| format!("parse {path}: {e}"))?;
    // A --profile-out file is a Chrome trace with the snapshot spliced in
    // under "ebdaProfile"; a bare snapshot document works too.
    let snap = ebda_obs::ProfSnapshot::from_value(doc.get("ebdaProfile").unwrap_or(&doc))
        .map_err(|e| format!("{path}: {e}"))?;
    if args.iter().any(|a| a == "--counters") {
        print!("{}", snap.counters_text());
    } else if args.iter().any(|a| a == "--flame") {
        println!("{}", snap.flame_json());
    } else {
        print!("{}", snap.table());
    }
    Ok(())
}

/// Renders one compact terminal snapshot of a scraped exposition: run and
/// packet counters, latency quantiles reconstructed from the histogram
/// buckets, sweep/oracle campaign progress, worker-pool and stall-watchdog
/// state, and the busiest channels.
fn monitor_snapshot(addr: &str, samples: &[ebda_obs::metrics::Sample]) -> String {
    use ebda_obs::metrics::quantile_from_buckets;
    use std::fmt::Write as _;
    let value =
        |name: &str| -> Option<f64> { samples.iter().find(|s| s.name == name).map(|s| s.value) };
    let count = |name: &str| value(name).unwrap_or(0.0) as u64;
    let mut out = String::new();
    let _ = writeln!(out, "=== {addr} ({} samples) ===", samples.len());
    if value("ebda_sim_runs_total").is_some() {
        let _ = writeln!(
            out,
            "sim    : {} runs, {} injected, {} delivered, {} deadlocks, {} credit stalls",
            count("ebda_sim_runs_total"),
            count("ebda_sim_packets_injected_total"),
            count("ebda_sim_packets_delivered_total"),
            count("ebda_sim_deadlocks_total"),
            count("ebda_sim_credit_stalls_total"),
        );
    }
    let latency_buckets: Vec<(f64, f64)> = samples
        .iter()
        .filter(|s| s.name == "ebda_sim_packet_latency_cycles_bucket")
        .filter_map(|s| {
            let le = s.label("le")?;
            let le = if le == "+Inf" {
                f64::INFINITY
            } else {
                le.parse().ok()?
            };
            Some((le, s.value))
        })
        .collect();
    if !latency_buckets.is_empty() {
        let q = |p: f64| {
            quantile_from_buckets(&latency_buckets, p)
                .map_or_else(|| "-".into(), |v| format!("{v:.0}"))
        };
        let _ = writeln!(
            out,
            "latency: p50 {} p90 {} p99 {} p999 {} (cycles)",
            q(0.50),
            q(0.90),
            q(0.99),
            q(0.999),
        );
    }
    if value("ebda_sweep_points_total").is_some() {
        let _ = writeln!(out, "sweep  : {} points", count("ebda_sweep_points_total"));
    }
    if value("ebda_par_jobs_total").is_some() {
        let busy = value("ebda_par_worker_busy_ns_total").unwrap_or(0.0);
        let idle = value("ebda_par_worker_idle_ns_total").unwrap_or(0.0);
        let util = if busy + idle > 0.0 {
            100.0 * busy / (busy + idle)
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "par    : {} jobs, {} tasks, queue depth {}, workers {util:.0}% busy",
            count("ebda_par_jobs_total"),
            count("ebda_par_tasks_total"),
            count("ebda_par_queue_depth"),
        );
    }
    if value("ebda_watchdog_trips_total").is_some() {
        let _ = writeln!(
            out,
            "watchdog: {} trips, {} suspected cycles (last len {})",
            count("ebda_watchdog_trips_total"),
            count("ebda_watchdog_suspected_cycles_total"),
            count("ebda_watchdog_suspected_cycle_len"),
        );
    }
    if value("ebda_oracle_artifacts_checked_total").is_some() {
        let _ = writeln!(
            out,
            "oracle : {} artifacts checked, {} deadlocking, {} disagreements, {} shrunk",
            count("ebda_oracle_artifacts_checked_total"),
            count("ebda_oracle_deadlocking_artifacts_total"),
            count("ebda_oracle_disagreements_total"),
            count("ebda_oracle_artifacts_shrunk_total"),
        );
    }
    let mut hot: Vec<&ebda_obs::metrics::Sample> = samples
        .iter()
        .filter(|s| s.name == "ebda_sim_channel_utilization")
        .collect();
    hot.sort_by(|a, b| b.value.partial_cmp(&a.value).expect("finite gauges"));
    if !hot.is_empty() {
        let top: Vec<String> = hot
            .iter()
            .take(5)
            .map(|s| {
                format!(
                    "n{} d{}{} vc{} {:.3}",
                    s.label("node").unwrap_or("?"),
                    s.label("dim").unwrap_or("?"),
                    s.label("dir").unwrap_or("?"),
                    s.label("vc").unwrap_or("?"),
                    s.value
                )
            })
            .collect();
        let _ = writeln!(out, "hottest channels: {}", top.join(" | "));
    }
    let spans = samples
        .iter()
        .filter(|s| s.name == "ebda_span_invocations_total")
        .count();
    if spans > 0 {
        let _ = writeln!(out, "telemetry: {spans} span families");
    }
    out.trim_end().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn design_subcommand() {
        run(&s(&["design", "--vcs", "1,2"])).unwrap();
    }

    #[test]
    fn verify_subcommand_accepts_good_designs() {
        run(&s(&["verify", "X- | X+ Y+ Y-", "--mesh", "5x5"])).unwrap();
    }

    #[test]
    fn verify_rejects_invalid_designs() {
        assert!(run(&s(&["verify", "X+ X- Y+ Y-"])).is_err());
    }

    #[test]
    fn turns_subcommand() {
        run(&s(&["turns", "X+ X- Y-"])).unwrap();
        run(&s(&["turns", "X+ X- Y-", "--dot"])).unwrap();
    }

    #[test]
    fn options_subcommand() {
        run(&s(&["options", "--vcs", "1,1"])).unwrap();
    }

    #[test]
    fn simulate_subcommand_small() {
        run(&s(&[
            "simulate",
            "X- | X+ Y+ Y-",
            "--mesh",
            "4x4",
            "--rate",
            "0.02",
        ]))
        .unwrap();
    }

    #[test]
    fn presets_and_report_subcommand() {
        run(&s(&["verify", "west-first", "--mesh", "4x4"])).unwrap();
        run(&s(&["report", "dyxy"])).unwrap();
        run(&s(&["turns", "odd-even"])).unwrap();
        assert!(run(&s(&["report", "no-such-preset"])).is_err());
    }

    #[test]
    fn certify_subcommand_accepts_west_first_turns() {
        run(&s(&[
            "certify",
            "--turns",
            "X1+>Y1+,Y1+>X1+,X1+>Y1-,Y1->X1+,X1->Y1+,X1->Y1-",
        ]))
        .unwrap();
    }

    #[test]
    fn certify_subcommand_rejects_all_turns() {
        let result = run(&s(&[
            "certify",
            "--turns",
            "X1+>Y1+,Y1+>X1+,X1+>Y1-,Y1->X1+,X1->Y1+,Y1+>X1-,X1->Y1-,Y1->X1-",
        ]));
        assert!(result.is_err());
        assert!(result.unwrap_err().contains("not certifiable"));
    }

    // One test for everything touching the process-global metrics
    // registry and a live endpoint, to avoid parallel-runner interference.
    #[test]
    fn monitor_scrapes_and_renders_a_live_endpoint() {
        let reg = ebda_obs::metrics::global();
        reg.counter_add("ebda_sim_runs_total", &[], 2);
        reg.counter_add("ebda_sim_packets_injected_total", &[], 10);
        reg.observe("ebda_sim_packet_latency_cycles", &[], 12);
        reg.counter_add("ebda_par_jobs_total", &[], 3);
        reg.counter_add("ebda_par_tasks_total", &[], 24);
        reg.counter_add("ebda_par_worker_busy_ns_total", &[], 900);
        reg.counter_add("ebda_par_worker_idle_ns_total", &[], 100);
        reg.counter_add("ebda_watchdog_trips_total", &[], 1);
        reg.counter_add("ebda_watchdog_suspected_cycles_total", &[], 1);
        reg.gauge_set("ebda_watchdog_suspected_cycle_len", &[], 4.0);
        reg.gauge_set(
            "ebda_sim_channel_utilization",
            &[
                ("node", "3".into()),
                ("dim", "0".into()),
                ("dir", "+".into()),
                ("vc", "0".into()),
            ],
            0.25,
        );
        let server = ebda_obs::MetricsServer::serve("127.0.0.1:0").unwrap();
        let addr = server.local_addr().to_string();
        run(&s(&["monitor", "--addr", &addr, "--once"])).unwrap();
        let body = ebda_obs::http_get(&addr, "/metrics").unwrap();
        let samples = ebda_obs::metrics::parse_exposition(&body).unwrap();
        let snap = monitor_snapshot(&addr, &samples);
        assert!(snap.contains("sim    : 2 runs"), "{snap}");
        assert!(snap.contains("latency: p50 12"), "{snap}");
        assert!(
            snap.contains("par    : 3 jobs, 24 tasks, queue depth 0, workers 90% busy"),
            "{snap}"
        );
        assert!(
            snap.contains("watchdog: 1 trips, 1 suspected cycles (last len 4)"),
            "{snap}"
        );
        assert!(
            snap.contains("hottest channels: n3 d0+ vc0 0.250"),
            "{snap}"
        );
        server.shutdown();
    }

    #[test]
    fn simulate_writes_a_journey_trace() {
        let path = std::env::temp_dir().join("ebda-cli-journey.json");
        run(&s(&[
            "simulate",
            "X- | X+ Y+ Y-",
            "--mesh",
            "4x4",
            "--rate",
            "0.02",
            "--seed",
            "42",
            "--watchdog-window",
            "200",
            "--journey-out",
            path.to_str().unwrap(),
            "--journey-sample-rate",
            "0.5",
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let summary = ebda_obs::chrome::validate(&text).expect("valid Trace Event Format");
        assert!(summary.complete > 0, "hold spans expected");
        assert!(summary.tracks > 1, "per-router tracks expected");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn simulate_profile_out_roundtrips_through_profile_subcommand() {
        let path = std::env::temp_dir().join("ebda-cli-profile.json");
        run(&s(&[
            "simulate",
            "X- | X+ Y+ Y-",
            "--mesh",
            "4x4",
            "--rate",
            "0.02",
            "--profile-out",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        ebda_obs::chrome::validate(&text).expect("profile is a valid Chrome trace");
        let doc = ebda_obs::json::Value::parse(&text).unwrap();
        let snap = ebda_obs::ProfSnapshot::from_value(doc.get("ebdaProfile").unwrap()).unwrap();
        assert!(snap.phases.contains_key("sim/run"), "{:?}", snap.phases);
        // All three render modes work off the written file.
        run(&s(&["profile", path.to_str().unwrap()])).unwrap();
        run(&s(&["profile", path.to_str().unwrap(), "--counters"])).unwrap();
        run(&s(&["profile", path.to_str().unwrap(), "--flame"])).unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn profile_requires_a_readable_file() {
        assert!(run(&s(&["profile"])).is_err());
        assert!(run(&s(&["profile", "/nonexistent/p.json"])).is_err());
    }

    #[test]
    fn monitor_requires_an_addr() {
        assert!(run(&s(&["monitor"])).is_err());
    }

    #[test]
    fn monitor_reports_a_dead_endpoint_cleanly() {
        // Nothing listens on a freshly bound-then-dropped port; the error
        // must be the clean one-liner, not a raw io error string.
        let addr = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap().to_string()
        };
        let err = run(&s(&["monitor", "--addr", &addr, "--once"])).unwrap_err();
        assert_eq!(err, format!("endpoint unreachable: {addr}"));
    }

    #[test]
    fn coverage_report_diff_merge_roundtrip() {
        let dir = std::env::temp_dir().join(format!("ebda-cli-cov-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut a = ebda_obs::CoverageMap::new("cli-a");
        a.record("design_bin", "d2.r4.w0.v1.tlo.free");
        a.record("obligation", "theorem1/p0");
        let mut b = ebda_obs::CoverageMap::new("cli-b");
        b.record("design_bin", "d2.r4.w0.v1.tlo.free");
        b.record("gfp_pair", "X1+>Y1+");
        let pa = dir.join("a.json");
        let pb = dir.join("b.json");
        let pm = dir.join("m.json");
        a.write_file(&pa).unwrap();
        b.write_file(&pb).unwrap();
        let arg = |p: &std::path::Path| p.to_str().unwrap().to_string();
        run(&s(&["coverage", "report", &arg(&pa)])).unwrap();
        run(&s(&["coverage", "diff", &arg(&pa), &arg(&pa)])).unwrap();
        assert!(run(&s(&["coverage", "diff", &arg(&pa), &arg(&pb)])).is_err());
        run(&s(&["coverage", "merge", &arg(&pm), &arg(&pa), &arg(&pb)])).unwrap();
        let merged = ebda_obs::CoverageMap::read_file(&pm).unwrap();
        assert_eq!(merged.hits("design_bin", "d2.r4.w0.v1.tlo.free"), 2);
        assert_eq!(merged.hits("gfp_pair", "X1+>Y1+"), 1);
        assert!(run(&s(&["coverage"])).is_err());
        assert!(run(&s(&["coverage", "frobnicate"])).is_err());
        assert!(run(&s(&["coverage", "merge", &arg(&pm)])).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn monitor_rejects_a_bad_interval() {
        let r = run(&s(&[
            "monitor",
            "--addr",
            "127.0.0.1:1",
            "--interval",
            "soon",
        ]));
        assert!(r.unwrap_err().contains("bad --interval"));
    }

    #[test]
    fn verify_ledger_check_cert_explain_roundtrip() {
        let path =
            std::env::temp_dir().join(format!("ebda-cli-ledger-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let p = path.to_str().unwrap().to_string();
        run(&s(&[
            "verify",
            "X- | X+ Y+ Y-",
            "--mesh",
            "4x4",
            "--ledger",
            &p,
        ]))
        .unwrap();
        // A deadlocking design still gets its verdict recorded, even
        // though verify itself exits non-zero.
        assert!(run(&s(&["verify", "xy", "--torus", "4x4", "--ledger", &p])).is_err());

        run(&s(&["check-cert", &p])).unwrap();
        run(&s(&["ledger", "list", &p])).unwrap();
        run(&s(&["ledger", "list", &p, "--json"])).unwrap();
        run(&s(&["ledger", "show", &p])).unwrap();
        run(&s(&["ledger", "diff", &p, &p])).unwrap();

        // The --json body is one parseable array with a coverage digest
        // per record (cmd_verify computes per-artifact coverage).
        let body = ebda_obs::ledger::render_json(&path).unwrap();
        let doc = ebda_obs::json::Value::parse(&body).unwrap();
        let arr = doc.as_arr().unwrap();
        assert_eq!(arr.len(), 2);
        let digest = arr[0].get("coverage").and_then(|v| v.as_str()).unwrap();
        assert_eq!(digest.len(), 16, "digest: {digest}");

        let records = ebda_obs::ledger::read(&path).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].index, 0);
        assert_eq!(records[0].source, "cli");
        assert_eq!(records[0].verdict, "deadlock-free");
        assert_eq!(records[0].evidence, "certificate");
        assert_eq!(records[1].verdict, "deadlocking");
        assert_eq!(records[1].evidence, "witness");

        run(&s(&["explain", &records[1].hash, "--ledger", &p])).unwrap();
        assert!(run(&s(&["explain", "ffffffffffffffff", "--ledger", &p])).is_err());
        assert!(run(&s(&["ledger", "show", &p, "ffff"])).is_err());

        // Tampering with a record's verdict must trip the independent
        // checker (the outer verdict no longer matches the provenance).
        let text = std::fs::read_to_string(&path).unwrap();
        let tampered = text.replacen(
            "\"verdict\":\"deadlock-free\"",
            "\"verdict\":\"deadlocking\"",
            1,
        );
        assert_ne!(text, tampered, "tamper target not found");
        let bad = path.with_extension("tampered.jsonl");
        std::fs::write(&bad, tampered).unwrap();
        let err = run(&s(&["check-cert", bad.to_str().unwrap()])).unwrap_err();
        assert!(err.contains("failed the certificate check"), "{err}");
        assert!(run(&s(&["ledger", "diff", &p, bad.to_str().unwrap()])).is_err());

        std::fs::remove_file(&bad).ok();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn check_cert_and_ledger_usage_errors() {
        assert!(run(&s(&["check-cert"])).is_err());
        assert!(run(&s(&["check-cert", "/nonexistent/ledger.jsonl"])).is_err());
        assert!(run(&s(&["ledger"])).is_err());
        assert!(run(&s(&["ledger", "frobnicate"])).is_err());
        assert!(run(&s(&["ledger", "list"])).is_err());
        assert!(run(&s(&["ledger", "diff", "/tmp/only-one"])).is_err());
        assert!(run(&s(&["explain", "abcd"])).is_err());
    }

    #[test]
    fn unknown_subcommand_errors() {
        assert!(run(&s(&["frobnicate"])).is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn radix_and_vcs_parsing() {
        assert_eq!(parse_radix("4x4x2").unwrap(), vec![4, 4, 2]);
        assert!(parse_radix("4xq").is_err());
        assert_eq!(parse_vcs(&s(&["--vcs", "3,2,3"])).unwrap(), vec![3, 2, 3]);
    }
}
