//! Differential verification oracle: random artifacts through four verdict
//! paths, shrinking and replaying any disagreement. See
//! [`ebda_bench::oracle_cli`] for the flags.
//!
//! `cargo run --release --bin oracle -- --budget 60 --seed 7`

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(ebda_bench::oracle_cli::run(args));
}
