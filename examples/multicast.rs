//! Dual-path multicast over the Hamiltonian-path strategy (Section 6.2's
//! second case study, in its original multicast context).
//!
//! Run with: `cargo run --example multicast`

use ebda::prelude::*;
use ebda::routing::multicast::{hamiltonian_label, DualPathMulticast};

fn main() -> Result<(), EbdaError> {
    let topo = Topology::mesh(&[6, 6]);

    // The snake labelling, printed as the paper draws it (row 0 at the
    // bottom).
    println!("hamiltonian (snake) labels of the 6x6 mesh:");
    for y in (0..6).rev() {
        let row: Vec<String> = (0..6)
            .map(|x| format!("{:>3}", hamiltonian_label(&topo, topo.node_at(&[x, y]))))
            .collect();
        println!("  {}", row.join(" "));
    }

    // The two subnetworks are the two partitions of the EbDa design.
    let design = catalog::hamiltonian();
    println!("\npartitioning: {design}");
    let report = verify_design(&topo, &design)?;
    println!("dally check : {report}");
    assert!(report.is_deadlock_free());

    // Multicast from the mesh centre to six destinations.
    let mc = DualPathMulticast::new();
    let src = topo.node_at(&[2, 2]);
    let dests: Vec<_> = [[0, 0], [5, 0], [0, 5], [5, 5], [4, 2], [1, 3]]
        .iter()
        .map(|c| topo.node_at(&[c[0], c[1]]))
        .collect();
    let plan = mc.plan(&topo, src, &dests);
    println!(
        "\nmulticast from {:?} to {} destinations:",
        topo.coords(src),
        dests.len()
    );
    let show = |label: &str, chain: &[usize], path: &[usize]| {
        let chain_coords: Vec<Vec<i64>> = chain.iter().map(|&n| topo.coords(n)).collect();
        println!(
            "  {label}: visits {chain_coords:?} in {} hops",
            path.len().saturating_sub(1)
        );
    };
    show("high copy", &plan.high_chain, &plan.high_path);
    show("low copy ", &plan.low_chain, &plan.low_path);
    println!("  total: {} hops across both copies", plan.total_hops());

    // Sanity: every destination is on one of the two paths.
    for &d in &dests {
        assert!(plan.high_path.contains(&d) || plan.low_path.contains(&d));
    }
    Ok(())
}
