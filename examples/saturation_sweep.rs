//! Latency/load sweep: deterministic vs partially vs fully adaptive EbDa
//! designs on an 8x8 mesh — the classic NoC evaluation, driven by the
//! `noc_sim::sweep` utilities (curves + bisected saturation points).
//!
//! Run with: `cargo run --release --example saturation_sweep`

use ebda::prelude::*;
use ebda::sim::{latency_curve, saturation_rate};

fn base_cfg() -> SimConfig {
    SimConfig {
        warmup: 500,
        measurement: 2_000,
        drain: 3_000,
        deadlock_threshold: 1_500,
        ..SimConfig::default()
    }
}

fn main() -> Result<(), EbdaError> {
    let topo = Topology::mesh(&[8, 8]);
    let rates = [0.005, 0.01, 0.02, 0.04, 0.06, 0.08];

    let designs: Vec<(&str, TurnRouting)> = vec![
        (
            "XY (deterministic)",
            TurnRouting::from_design("xy", &catalog::p1_xy())?,
        ),
        (
            "west-first (partial)",
            TurnRouting::from_design("wf", &catalog::p3_west_first())?,
        ),
        (
            "odd-even (partial)",
            TurnRouting::from_design("oe", &catalog::odd_even())?,
        ),
        (
            "DyXY 6ch (fully adpt)",
            TurnRouting::from_design("fa", &catalog::fig7b_dyxy())?,
        ),
    ];

    println!("average packet latency (cycles) on an 8x8 mesh, uniform traffic");
    print!("{:<24}", "rate (pkts/node/cycle)");
    for r in rates {
        print!(" {r:>8}");
    }
    println!(" {:>10}", "saturation");

    for (name, relation) in &designs {
        let curve = latency_curve(&topo, relation, &base_cfg(), &rates);
        print!("{name:<24}");
        for point in &curve {
            if point.deadlocked {
                print!(" {:>8}", "DEADLOCK");
            } else if point.drained {
                print!(" {:>8.1}", point.avg_latency);
            } else {
                print!(" {:>8}", "sat");
            }
        }
        let sat = saturation_rate(&topo, relation, &base_cfg(), 0.005, 0.30, 0.01);
        match sat {
            Some(rate) => println!(" {rate:>10.3}"),
            None => println!(" {:>10}", "-"),
        }
    }
    println!(
        "\n'sat' = saturated (not all measured packets drained in time);\n\
         the last column is the bisected saturation estimate."
    );
    Ok(())
}
