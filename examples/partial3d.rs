//! Section 6.3: routing in a vertically partially connected 3D NoC.
//!
//! The Elevator-First baseline (2+2+1 VCs, deterministic) against the EbDa
//! partitioning of Table 5 (1+2+1 VCs, partially adaptive) on a 4x4x3 mesh
//! where only four (x, y) positions have vertical links.
//!
//! Run with: `cargo run --example partial3d`

use ebda::prelude::*;
use ebda::routing::classic::ElevatorFirst;
use ebda::routing::find_delivery_failure;

fn main() -> Result<(), EbdaError> {
    let elevators = [vec![0, 0], vec![3, 0], vec![0, 3], vec![2, 2]];
    let topo = Topology::mesh(&[4, 4, 3]).with_partial_dim(Dimension::Z, elevators.iter().cloned());
    println!(
        "topology: 4x4x3 mesh, vertical links only at {:?}",
        elevators
    );

    // --- Baseline: Elevator-First (deterministic, 2/2/1 VCs). ----------
    let ef = ElevatorFirst::new(elevators.iter().cloned());
    assert_eq!(find_delivery_failure(&ef, &topo, 64), None);
    let ef_report = verify_turn_set(&topo, &[2, 2, 1], ef.universe(), &ef.turn_set());
    println!("elevator-first : {ef_report}");

    // --- EbDa: the Table 5 partitioning (adaptive, 1/2/1 VCs). ---------
    let design = catalog::table5_partial3d();
    println!("ebda design    : {design}");
    let report = verify_design(&topo, &design)?;
    println!("dally check    : {report}");
    let ebda = TurnRouting::from_design("table5", &design)?;
    assert_eq!(find_delivery_failure(&ebda, &topo, 64), None);

    // A packet that must detour: its column has no elevator.
    let src = topo.node_at(&[1, 1, 0]);
    let dst = topo.node_at(&[1, 1, 2]);
    let path = walk_first_choice(&ebda, &topo, src, dst, 64).expect("delivers");
    let coords: Vec<Vec<i64>> = path.iter().map(|&n| topo.coords(n)).collect();
    println!("detour sample  : {coords:?}");

    // --- Simulate both under uniform traffic. ---------------------------
    let cfg = SimConfig {
        injection_rate: 0.02,
        warmup: 500,
        measurement: 2_500,
        drain: 6_000,
        deadlock_threshold: 2_000,
        ..SimConfig::default()
    };
    println!("\nuniform traffic at rate 0.02:");
    for (name, r) in [
        ("elevator-first (baseline)", simulate(&topo, &ef, &cfg)),
        ("ebda table-5 (adaptive)", simulate(&topo, &ebda, &cfg)),
    ] {
        println!("  {name:<28} {r}");
        assert!(r.outcome.is_deadlock_free());
        assert_eq!(r.routing_faults, 0);
    }
    Ok(())
}
