//! Quickstart: design a deadlock-free routing algorithm with EbDa, verify
//! it with Dally's criterion, and run it through the wormhole simulator.
//!
//! Run with: `cargo run --example quickstart`

use ebda::prelude::*;

fn main() -> Result<(), EbdaError> {
    // ------------------------------------------------------------------
    // 1. Design: divide the channels of a 2D network into disjoint
    //    partitions, each with at most one complete D-pair (Theorem 1).
    //    This one is the paper's P3 — the west-first turn model.
    // ------------------------------------------------------------------
    let design = PartitionSeq::parse("X- | X+ Y+ Y-")?;
    design.validate()?;
    println!("design      : {design}");

    // ------------------------------------------------------------------
    // 2. Extract every allowable turn (Theorems 1 + 2 + 3).
    // ------------------------------------------------------------------
    let extraction = extract_turns(&design)?;
    let counts = extraction.turn_set().counts();
    println!("turns       : {counts}");
    for turn in extraction.turn_set().iter() {
        println!("   allowed  : {turn} ({})", turn.kind());
    }

    // ------------------------------------------------------------------
    // 3. Verify: build the channel dependency graph on a concrete 8x8
    //    mesh and check it is acyclic (Dally's criterion).
    // ------------------------------------------------------------------
    let topo = Topology::mesh(&[8, 8]);
    let report = verify_design(&topo, &design)?;
    println!("dally check : {report}");
    assert!(report.is_deadlock_free());

    // ------------------------------------------------------------------
    // 4. Route: turn the design into a working router and walk a packet.
    // ------------------------------------------------------------------
    let relation = TurnRouting::from_design("west-first", &design)?;
    let src = topo.node_at(&[7, 0]);
    let dst = topo.node_at(&[0, 7]);
    let path = walk_first_choice(&relation, &topo, src, dst, 32).expect("delivers");
    println!("sample path : {path:?} ({} hops)", path.len() - 1);

    // ------------------------------------------------------------------
    // 5. Simulate: uniform random traffic, multi-packet wormhole buffers
    //    (the unrestricted mode EbDa permits), deadlock watchdog armed.
    // ------------------------------------------------------------------
    let cfg = SimConfig {
        injection_rate: 0.05,
        ..SimConfig::default()
    };
    let result = simulate(&topo, &relation, &cfg);
    println!("simulation  : {result}");
    assert!(result.outcome.is_deadlock_free());
    Ok(())
}
