//! Section 4 in action: fully adaptive 3D routing with the minimum number
//! of channels, `N = (n+1)·2^(n-1) = 16`, verified and simulated.
//!
//! Run with: `cargo run --example fully_adaptive_3d`

use ebda::core::adaptiveness::is_fully_adaptive;
use ebda::core::min_channels::{
    merged_partitioning, min_channels, region_partitioning, vcs_per_dimension,
};
use ebda::prelude::*;

fn main() -> Result<(), EbdaError> {
    println!("minimum channels for full adaptiveness: N = (n+1)*2^(n-1)");
    for n in 1..=6u32 {
        println!("  n = {n}: N = {}", min_channels(n));
    }

    // The naive design: one partition per octant, 24 channels (Fig. 9a).
    let naive = region_partitioning(3)?;
    println!(
        "\nnaive 3D design : {} partitions, {} channels",
        naive.len(),
        naive.channel_count()
    );

    // The merged design: 4 partitions, 16 channels (Fig. 9b).
    let merged = merged_partitioning(3)?;
    println!(
        "merged 3D design: {} partitions, {} channels, VCs per dim {:?}",
        merged.len(),
        merged.channel_count(),
        vcs_per_dimension(&merged, 3)
    );
    println!("  {merged}");
    assert!(is_fully_adaptive(&merged, 3));

    // Verify both on a concrete 4x4x4 mesh.
    let topo = Topology::mesh(&[4, 4, 4]);
    for (name, seq) in [
        ("naive", &naive),
        ("merged", &merged),
        ("fig9c", &catalog::fig9c()),
    ] {
        let report = verify_design(&topo, seq)?;
        println!("dally check [{name:>6}]: {report}");
        assert!(report.is_deadlock_free());
    }

    // Simulate the minimum-channel design against deterministic XYZ.
    let adaptive = TurnRouting::from_design("fig9b", &catalog::fig9b())?;
    let xyz = classic::DimensionOrder::xyz();
    let cfg = SimConfig {
        injection_rate: 0.04,
        traffic: TrafficPattern::BitComplement,
        warmup: 500,
        measurement: 2_000,
        drain: 4_000,
        ..SimConfig::default()
    };
    println!("\nbit-complement traffic on a 4x4x4 mesh at rate 0.04:");
    for (name, result) in [
        ("XYZ deterministic", simulate(&topo, &xyz, &cfg)),
        (
            "EbDa fully adaptive (16ch)",
            simulate(&topo, &adaptive, &cfg),
        ),
    ] {
        println!("  {name:<28} {result}");
        assert!(result.outcome.is_deadlock_free());
    }
    Ok(())
}
