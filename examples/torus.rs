//! k-ary n-cubes (tori): why wrap channels need care (the Theorem 2 note
//! about wraparound channels) and how dateline VCs fix them.
//!
//! Run with: `cargo run --example torus`

use ebda::prelude::*;
use ebda::routing::classic::TorusDateline;
use ebda::routing::verify_relation;

fn main() -> Result<(), EbdaError> {
    let topo = Topology::torus(&[6, 6]);

    // Naive shortest-way routing with one VC: the wrap rings close
    // dependency cycles — both the exact CDG and the simulator agree.
    let naive = TorusDateline::without_dateline(2);
    match verify_relation(&topo, &naive) {
        Ok(()) => unreachable!("the naive torus routing must be cyclic"),
        Err(cycle) => println!(
            "naive torus routing: CYCLIC — witness cycle of {} concrete channels",
            cycle.len()
        ),
    }
    let pressure = SimConfig {
        injection_rate: 0.35,
        packet_length: 8,
        buffer_depth: 2,
        warmup: 0,
        measurement: 5_000,
        drain: 1_000,
        deadlock_threshold: 500,
        ..SimConfig::default()
    };
    let r = simulate(&topo, &naive, &pressure);
    println!("  under pressure: {r}");
    assert!(!r.outcome.is_deadlock_free());

    // Dateline VCs: packets switch to VC 2 exactly when crossing the wrap
    // link — an ascending channel ordering in EbDa terms.
    let dateline = TorusDateline::new(2);
    assert!(verify_relation(&topo, &dateline).is_ok());
    println!("\ndateline routing: exact CDG acyclic");
    let r = simulate(&topo, &dateline, &pressure);
    println!("  under the same pressure: {r}");
    assert!(r.outcome.is_deadlock_free());

    // The same dateline idea expressed *inside* EbDa: coordinate-
    // restricted channel classes split each ring into pre-dateline (VC 1),
    // wrap (VC 2) and post-dateline (VC 2) partitions — and then even the
    // conservative class-level Dally check accepts it.
    let design = catalog::torus_dateline(&[6, 6]);
    println!("\nEbDa dateline partitioning:\n  {design}");
    let report = verify_design(&topo, &design)?;
    println!("  class-level dally check: {report}");
    assert!(report.is_deadlock_free());
    let ebda_dateline = TurnRouting::from_design("ebda-dateline", &design)?;
    let r = simulate(&topo, &ebda_dateline, &pressure);
    println!("  under pressure: {r}");
    assert!(r.outcome.is_deadlock_free());

    // Wraps make distant traffic cheap: bit-complement has every packet
    // cross the network; tori halve the distance.
    let mesh = Topology::mesh(&[6, 6]);
    let cfg = SimConfig {
        injection_rate: 0.03,
        traffic: TrafficPattern::BitComplement,
        warmup: 500,
        measurement: 2_000,
        drain: 3_000,
        ..SimConfig::default()
    };
    let xy = TurnRouting::from_design("xy", &catalog::p1_xy())?;
    let on_mesh = simulate(&mesh, &xy, &cfg);
    let on_torus = simulate(&topo, &dateline, &cfg);
    println!("\nbit-complement at rate 0.03:");
    println!(
        "  mesh + XY        : avg latency {:.1}",
        on_mesh.avg_latency
    );
    println!(
        "  torus + dateline : avg latency {:.1}",
        on_torus.avg_latency
    );
    assert!(on_torus.avg_latency < on_mesh.avg_latency);
    Ok(())
}
