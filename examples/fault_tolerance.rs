//! Fault tolerance — the Theorem 2 note in action: "enabling U-turns is
//! essentially important in fault-tolerant designs or where rerouting
//! brings an advantage".
//!
//! Three tiers of resilience, demonstrated:
//! 1. XY routing: a single cut row link strands same-row pairs;
//! 2. north-last (an EbDa design with detour turns): reroutes around that
//!    fault — but its own prohibited turns limit which faults it survives;
//! 3. Up*/Down* (the algorithm behind Theorem 2's ordering proof):
//!    delivers on any connected remnant, whatever is cut.
//!
//! Run with: `cargo run --example fault_tolerance`

use ebda::prelude::*;
use ebda::routing::classic::UpDown;
use ebda::routing::{find_delivery_failure, verify_relation};

fn main() -> Result<(), EbdaError> {
    let base = Topology::mesh(&[5, 5]);

    // --- One cut link on the top row. -----------------------------------
    let one_fault =
        base.clone()
            .with_failed_link(base.node_at(&[1, 4]), Dimension::X, Direction::Plus);
    println!("scenario A: 5x5 mesh, link (1,4)->(2,4) cut");

    let xy = TurnRouting::from_design("xy", &catalog::p1_xy())?;
    let xy_failure = find_delivery_failure(&xy, &one_fault, 40);
    println!(
        "  XY         : first undeliverable pair: {:?}",
        pretty(&one_fault, xy_failure)
    );
    assert!(xy_failure.is_some(), "XY cannot detour a cut row");

    let nl = TurnRouting::from_design("north-last", &catalog::north_last())?;
    assert_eq!(find_delivery_failure(&nl, &one_fault, 64), None);
    let src = one_fault.node_at(&[0, 4]);
    let dst = one_fault.node_at(&[4, 4]);
    let path = walk_first_choice(&nl, &one_fault, src, dst, 64).expect("delivers");
    let coords: Vec<Vec<i64>> = path.iter().map(|&n| one_fault.coords(n)).collect();
    println!("  north-last : detours everywhere; sample {coords:?}");
    assert!(
        verify_relation(&one_fault, &nl).is_ok(),
        "still deadlock-free"
    );

    // --- Three cut links: even north-last has blind spots. ---------------
    let three_faults = base
        .clone()
        .with_failed_link(base.node_at(&[1, 4]), Dimension::X, Direction::Plus)
        .with_failed_link(base.node_at(&[2, 2]), Dimension::Y, Direction::Plus)
        .with_failed_link(base.node_at(&[3, 0]), Dimension::X, Direction::Plus);
    println!("\nscenario B: three links cut");
    let nl_failure = find_delivery_failure(&nl, &three_faults, 64);
    println!(
        "  north-last : first undeliverable pair: {:?} (its prohibited NE/NW turns block the only remaining detour)",
        pretty(&three_faults, nl_failure)
    );
    assert!(nl_failure.is_some());

    // Up*/Down* delivers on any connected topology.
    let ud = UpDown::new(&three_faults);
    assert_eq!(find_delivery_failure(&ud, &three_faults, 64), None);
    assert!(verify_relation(&three_faults, &ud).is_ok());
    println!("  up*/down*  : delivers everywhere, exact CDG acyclic");

    // --- Simulate the faulty network under load. -------------------------
    let cfg = SimConfig {
        injection_rate: 0.03,
        warmup: 500,
        measurement: 2_000,
        drain: 4_000,
        deadlock_threshold: 2_000,
        ..SimConfig::default()
    };
    let nl_result = simulate(&one_fault, &nl, &cfg);
    println!("\nnorth-last under load (scenario A): {nl_result}");
    assert!(nl_result.outcome.is_deadlock_free());
    let ud_result = simulate(&three_faults, &ud, &cfg);
    println!("up*/down* under load (scenario B) : {ud_result}");
    assert!(ud_result.outcome.is_deadlock_free());

    // --- Scenario C: the link dies DURING the run. ----------------------
    // The simulator cuts the link mid-flight, tears down severed
    // wormholes (counted as drops) and lets surviving heads re-route.
    let dynamic_cfg = SimConfig {
        fault_schedule: vec![(1_000, base.node_at(&[1, 4]), Dimension::X, Direction::Plus)],
        ..cfg
    };
    let dynamic = simulate(&base, &nl, &dynamic_cfg);
    println!("\nscenario C: link (1,4)->(2,4) fails at cycle 1000, north-last:");
    println!(
        "  {dynamic}\n  dropped {} severed packets; all others rerouted",
        dynamic.dropped_packets
    );
    assert!(dynamic.outcome.is_deadlock_free());
    assert_eq!(
        dynamic.delivered_packets + dynamic.dropped_packets,
        dynamic.injected_packets
    );
    Ok(())
}

fn pretty(topo: &Topology, pair: Option<(usize, usize)>) -> Option<(Vec<i64>, Vec<i64>)> {
    pair.map(|(s, d)| (topo.coords(s), topo.coords(d)))
}
