//! The Section 5 design-space walk: from maximally adaptive routing down
//! to deterministic routing, all generated systematically and all verified
//! deadlock-free.
//!
//! Run with: `cargo run --example design_space`

use ebda::core::algorithm2::{enumerate_partitionings, transition_reorderings};
use ebda::core::exceptional::exceptional_partitionings;
use ebda::core::sets::arrangement2;
use ebda::core::{algorithm1, theorems};
use ebda::prelude::*;

fn verify_and_report(label: &str, seq: &PartitionSeq, topo: &Topology) {
    let report = verify_design(topo, seq).expect("valid design");
    let analysis = theorems::analyze(seq, topo.dims()).expect("analyzable");
    println!(
        "  {label:<34} {seq}  [{} turns, {}]",
        analysis.turns.total(),
        if report.is_deadlock_free() {
            "deadlock-free"
        } else {
            "CYCLIC!"
        }
    );
    assert!(report.is_deadlock_free());
}

fn main() -> Result<(), EbdaError> {
    let topo = Topology::mesh(&[6, 6]);

    println!("== Algorithm 1: maximum adaptiveness (2 partitions) ==");
    for arr in arrangement2(&[1, 1])? {
        let seq = algorithm1::partition_sets(arr)?;
        verify_and_report("algorithm-1 output", &seq, &topo);
        // Section 5.3.3: tracing the partitions in the other order.
        for alt in transition_reorderings(&seq) {
            if alt != seq {
                verify_and_report("  reordered transitions", &alt, &topo);
            }
        }
    }

    println!("\n== The exceptional no-VC options (Section 5.2.2) ==");
    for seq in exceptional_partitionings(2)? {
        verify_and_report("exceptional split", &seq, &topo);
    }

    println!("\n== More partitions, less adaptiveness (Section 5.3.2) ==");
    let channels = parse_channels("X+ X- Y+ Y-")?;
    let three = enumerate_partitionings(&channels, 3);
    println!(
        "  {} valid three-partition options; four examples:",
        three.len()
    );
    for seq in three.iter().take(4) {
        verify_and_report("three partitions", seq, &topo);
    }

    println!("\n== Deterministic routing: four singleton partitions ==");
    let four = enumerate_partitionings(&channels, 4);
    println!(
        "  all {} orderings are deadlock-free; two examples:",
        four.len()
    );
    verify_and_report(
        "XY (X+ X- then Y+ Y-)",
        &PartitionSeq::parse("X+ | X- | Y+ | Y-")?,
        &topo,
    );
    verify_and_report(
        "interleaved order",
        &PartitionSeq::parse("X+ | Y+ | X- | Y-")?,
        &topo,
    );

    println!("\n== Adaptiveness, quantified ==");
    let universe = parse_channels("X+ X- Y+ Y-")?;
    for (name, seq) in [
        ("XY (deterministic)", catalog::p1_xy()),
        ("west-first", catalog::p3_west_first()),
        ("negative-first", catalog::p4_negative_first()),
        ("north-last", catalog::north_last()),
    ] {
        let ex = extract_turns(&seq)?;
        let profile =
            ebda::core::adaptiveness::adaptiveness_profile(ex.turn_set(), &universe, 5, 2);
        println!(
            "  {name:<22} minimal paths per pair: min {} / max {} / avg {:.2}",
            profile.min,
            profile.max,
            profile.sum as f64 / profile.pairs as f64
        );
    }
    Ok(())
}
