//! A design assistant: given a VC budget and a traffic profile, enumerate
//! the EbDa design space, verify every candidate, simulate the finalists
//! and recommend a routing algorithm — the end-to-end workflow the theory
//! enables.
//!
//! Run with: `cargo run --release --example design_assistant`

use ebda::core::adaptiveness::adaptiveness_profile;
use ebda::core::algorithm2::{derive_all, transition_reorderings};
use ebda::core::sets::{arrangement1, arrangement2};
use ebda::prelude::*;
use std::collections::BTreeSet;

fn main() -> Result<(), EbdaError> {
    let vcs = [1u8, 2];
    let traffic = TrafficPattern::Transpose;
    let rate = 0.05;
    let topo = Topology::mesh(&[8, 8]);
    println!(
        "assistant brief: {vcs:?} VCs per dimension, transpose traffic at rate {rate}, 8x8 mesh\n"
    );

    // 1. Enumerate the candidate space (Algorithms 1+2 across arrangements,
    //    plus transition reorderings).
    let mut seen = BTreeSet::new();
    let mut candidates = Vec::new();
    let mut arrangements = vec![arrangement1(&vcs)?];
    arrangements.extend(arrangement2(&vcs)?);
    for arr in arrangements {
        for seq in derive_all(arr)? {
            for alt in transition_reorderings(&seq) {
                if seen.insert(alt.canonical_string()) {
                    candidates.push(alt);
                }
            }
        }
    }
    println!("step 1: {} candidate designs enumerated", candidates.len());

    // 2. Verify every candidate (Dally on the target topology) and rank by
    //    static adaptiveness; keep the top three.
    let mut ranked = Vec::new();
    for seq in &candidates {
        let report = verify_design(&topo, seq)?;
        assert!(report.is_deadlock_free(), "{seq}: {report}");
        let ex = extract_turns(seq)?;
        let channels = seq.channels();
        let profile = adaptiveness_profile(ex.turn_set(), &channels, 4, 2);
        ranked.push((profile.sum as f64 / profile.pairs as f64, seq.clone()));
    }
    ranked.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite"));
    println!("step 2: all candidates verified deadlock-free; top 3 by adaptiveness:");
    for (score, seq) in ranked.iter().take(3) {
        println!("   {score:.2} avg minimal paths  {seq}");
    }

    // 3. Simulate the finalists under the target workload.
    let cfg = SimConfig {
        injection_rate: rate,
        traffic,
        warmup: 500,
        measurement: 2_000,
        drain: 3_000,
        deadlock_threshold: 1_500,
        ..SimConfig::default()
    };
    println!("\nstep 3: simulating the finalists under the brief's workload:");
    let mut best: Option<(f64, &PartitionSeq)> = None;
    for (_, seq) in ranked.iter().take(3) {
        let relation = TurnRouting::from_design("candidate", seq)?;
        let result = simulate(&topo, &relation, &cfg);
        assert!(result.outcome.is_deadlock_free());
        println!(
            "   {seq}\n      avg latency {:.1}, p99 {}, throughput {:.4}",
            result.avg_latency,
            result.latency_percentile(99.0).unwrap_or(0),
            result.throughput
        );
        if best.is_none() || result.avg_latency < best.as_ref().unwrap().0 {
            best = Some((result.avg_latency, seq));
        }
    }

    let (latency, winner) = best.expect("at least one finalist");
    println!("\nrecommendation: {winner}");
    println!("  ({latency:.1} cycles average latency under the brief's workload; deadlock-free by construction, Dally-verified, simulation-validated)");
    Ok(())
}
