//! Golden-file tests of the on-disk corpus format.
//!
//! The checked-in `tests/golden/mesh-xy-00.json` pins three contracts at
//! once: the JSON shape (key order, indentation, field spellings), the
//! canonical hash algorithm (a changed hash breaks every content-addressed
//! file name and cache key in the wild), and the `mesh-xy` generator's
//! output. Any intentional format change must bump
//! [`ebda_corpus::FORMAT_VERSION`] / `CANONICAL_VERSION` and regenerate
//! the golden file in the same commit.

use ebda_core::canonical::canonical_hash;
use ebda_corpus::{families, store, CorpusEntry};

const GOLDEN: &str = include_str!("golden/mesh-xy-00.json");
const GOLDEN_HASH: &str = "499b374294581b24";

#[test]
fn golden_file_round_trips_byte_identically() {
    let entry = CorpusEntry::from_json(GOLDEN).unwrap();
    assert_eq!(entry.name, "mesh-xy-00");
    assert_eq!(
        entry.to_json(),
        GOLDEN,
        "serializer drifted from the golden file"
    );
}

#[test]
fn golden_hash_is_pinned() {
    let entry = CorpusEntry::from_json(GOLDEN).unwrap();
    assert_eq!(
        entry.hash_hex(),
        GOLDEN_HASH,
        "canonical hash changed — every content-addressed file name and cache key breaks"
    );
    assert_eq!(entry.file_name(), format!("{GOLDEN_HASH}.json"));
}

#[test]
fn generator_still_produces_the_golden_entry() {
    let generated = &families::generate_family("mesh-xy")[0];
    assert_eq!(generated.to_json(), GOLDEN, "mesh-xy generator drifted");
}

#[test]
fn hash_ignores_channel_and_turn_enumeration_order() {
    let entry = CorpusEntry::from_json(GOLDEN).unwrap();
    let mut reversed_universe = entry.universe.clone();
    reversed_universe.reverse();
    let reversed_turns = entry
        .turns
        .iter()
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    let reordered = canonical_hash(
        &entry.radix,
        &entry.wrap,
        &entry.vcs,
        &reversed_universe,
        &reversed_turns,
    );
    assert_eq!(reordered, entry.content_hash());
}

#[test]
fn stats_are_byte_identical_across_thread_counts() {
    // render_stats is pure; the thread-sensitive surface is the load path
    // feeding it. Save under one pool size, reload and render under
    // another, and require identical bytes.
    let dir = std::env::temp_dir().join(format!("ebda-golden-stats-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let entries = families::generate_family("mesh-xy");
    ebda_par::set_threads(1);
    for e in &entries {
        store::save_entry(&dir, e).unwrap();
    }
    let serial = store::render_stats(&store::load_dir(&dir).unwrap());
    ebda_par::set_threads(8);
    let parallel = store::render_stats(&store::load_dir(&dir).unwrap());
    assert_eq!(serial, parallel);
    assert!(
        serial.starts_with("corpus: 5 entries (5 deadlock-free, 0 deadlocking)\n"),
        "{serial}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
