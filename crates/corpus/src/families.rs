//! The ten deterministic generator families.
//!
//! Five provably deadlock-free families and five provably deadlocking
//! ones, in the mold of verilock's `Gen1–Gen10` labeled generators. Every
//! entry's label is *proven* at generation time: the entry is pushed
//! through the full four-path check ([`crate::campaign::check_entry`])
//! and generation panics on any disagreement with the intended label, so
//! a mislabeled entry cannot enter a corpus.
//!
//! All families are deterministic — same code, same entries, same
//! canonical hashes — which is what lets the seed corpus live in git.

use crate::campaign::check_entry;
use crate::entry::{CorpusEntry, ExpectedVerdict};
use ebda_cdg::dally::infer_vcs;
use ebda_cdg::Topology;
use ebda_core::{
    algorithm1, catalog, extract_turns, Channel, Dimension, Direction, Partition, PartitionSeq,
    Turn, TurnSet,
};
use ebda_obs::Rng64;
use ebda_oracle::artifact::naive_turns;
use ebda_oracle::brute;
use ebda_oracle::verdict::Mutation;

/// The family slugs, deadlock-free first, in generation order.
pub const FAMILIES: [&str; 10] = [
    "mesh-xy",
    "torus-dateline",
    "turn-model",
    "duato-escape",
    "ebda-3d",
    "removed-dateline",
    "merged-partitions",
    "cyclic-turns",
    "escape-starved",
    "adversarial-random",
];

/// Generates every family's entries, proves each label with the honest
/// four-path check, and deduplicates by canonical hash.
///
/// # Panics
///
/// Panics if any generated entry fails its own label check — that means a
/// family's construction (or one of the verdict paths) is wrong, and a
/// corpus must never be built on top of it.
pub fn generate_all() -> Vec<CorpusEntry> {
    let mut entries = Vec::new();
    for family in FAMILIES {
        entries.extend(generate_family(family));
    }
    let mut seen = std::collections::BTreeSet::new();
    entries.retain(|e| seen.insert(e.content_hash()));
    for (i, e) in entries.iter().enumerate() {
        if let Some(reason) = check_entry(e, i as u64, Mutation::None) {
            panic!(
                "generated entry {} fails its own label: {reason}",
                e.summary()
            );
        }
    }
    entries
}

/// Generates one family's entries by slug.
///
/// # Panics
///
/// Panics on an unknown slug or when a deadlocking family cannot realize
/// a deadlock (a construction bug).
pub fn generate_family(family: &str) -> Vec<CorpusEntry> {
    match family {
        "mesh-xy" => mesh_xy(),
        "torus-dateline" => torus_dateline(),
        "turn-model" => turn_model(),
        "duato-escape" => duato_escape(),
        "ebda-3d" => ebda_3d(),
        "removed-dateline" => removed_dateline(),
        "merged-partitions" => merged_partitions(),
        "cyclic-turns" => cyclic_turns(),
        "escape-starved" => escape_starved(),
        "adversarial-random" => adversarial_random(),
        other => panic!("unknown corpus family {other:?}"),
    }
}

/// Builds an entry from a partition-sequence design: universe and VC
/// budget are derived from the design, turns come from the Theorem 1–3
/// extraction (or the naive router for invalid sequences).
#[allow(clippy::too_many_arguments)] // one argument per corpus-entry field
fn design_entry(
    family: &str,
    idx: usize,
    seq: PartitionSeq,
    radix: &[usize],
    wrap: &[bool],
    expected: ExpectedVerdict,
    ebda_certified: bool,
    provenance: String,
) -> CorpusEntry {
    let universe = seq.channels();
    let vcs = infer_vcs(&universe, radix.len());
    let turns = match extract_turns(&seq) {
        Ok(extraction) => extraction.into_turn_set(),
        Err(_) => naive_turns(&seq),
    };
    CorpusEntry {
        name: format!("{family}-{idx:02}"),
        family: family.to_string(),
        radix: radix.to_vec(),
        wrap: wrap.to_vec(),
        vcs,
        universe,
        turns,
        design: Some(seq),
        expected,
        ebda_certified,
        provenance,
    }
}

/// The dimension-order design for `dims` dimensions: one complete-pair
/// partition per dimension, visited in index order (XY/XYZ routing).
fn dim_order(dims: usize) -> PartitionSeq {
    let partitions: Vec<Partition> = (0..dims)
        .map(|d| {
            let dim = Dimension::new(d as u8);
            Partition::from_channels([
                Channel::new(dim, Direction::Plus),
                Channel::new(dim, Direction::Minus),
            ])
            .expect("complete pairs are disjoint")
        })
        .collect();
    PartitionSeq::from_partitions(partitions)
}

/// The acceptance-criteria demo mutation: removes the dateline from a
/// wrapped entry by swapping its design for the plain dimension-order
/// partitioning while *keeping* the now-wrong deadlock-free label. Run
/// through the campaign, the result must be caught, shrunk, and archived
/// as an honestly labeled witness.
pub fn strip_dateline(entry: &CorpusEntry) -> CorpusEntry {
    assert!(
        entry.wrap.iter().any(|&w| w),
        "strip_dateline needs a wrapped entry, got {}",
        entry.summary()
    );
    let seq = dim_order(entry.radix.len());
    let universe = seq.channels();
    let vcs = infer_vcs(&universe, entry.radix.len());
    let turns = extract_turns(&seq)
        .expect("dim-order is valid")
        .into_turn_set();
    CorpusEntry {
        name: format!("{}-stripped", entry.name),
        family: entry.family.clone(),
        radix: entry.radix.clone(),
        wrap: entry.wrap.clone(),
        vcs,
        universe,
        turns,
        design: Some(seq),
        expected: entry.expected,
        ebda_certified: true,
        provenance: format!(
            "DEMO MUTATION: dateline stripped from {} [{}], label left as-is (now wrong)",
            entry.name,
            entry.hash_hex()
        ),
    }
}

/// Family 1 (free): dimension-order routing on 2D/3D meshes. The textbook
/// EbDa base case — each partition holds exactly one complete pair.
fn mesh_xy() -> Vec<CorpusEntry> {
    let shapes: [&[usize]; 5] = [&[4, 4], &[5, 3], &[3, 6], &[3, 3, 3], &[4, 3, 2]];
    shapes
        .iter()
        .enumerate()
        .map(|(i, radix)| {
            design_entry(
                "mesh-xy",
                i,
                dim_order(radix.len()),
                radix,
                &vec![false; radix.len()],
                ExpectedVerdict::DeadlockFree,
                true,
                format!(
                    "dimension-order partitioning on a {radix:?} mesh; deadlock-free by Theorems 1-3, label re-proven by brute force"
                ),
            )
        })
        .collect()
}

/// Family 2 (free): the dateline construction on tori and mixed
/// mesh/torus shapes — wrapped dimensions ride VC 1 up to the dateline
/// and VC 2 beyond it.
fn torus_dateline() -> Vec<CorpusEntry> {
    let shapes: [(&[usize], &[bool]); 5] = [
        (&[4, 4], &[true, true]),
        (&[5, 3], &[true, false]),
        (&[3, 5], &[false, true]),
        (&[3, 3, 3], &[true, true, false]),
        (&[6, 3], &[true, true]),
    ];
    shapes
        .iter()
        .enumerate()
        .map(|(i, (radix, wrap))| {
            design_entry(
                "torus-dateline",
                i,
                catalog::dateline_design(radix, wrap),
                radix,
                wrap,
                ExpectedVerdict::DeadlockFree,
                true,
                format!(
                    "catalog::dateline_design on {radix:?} with wrap {wrap:?}; the VC-2 dateline breaks every wrap ring, label re-proven by brute force"
                ),
            )
        })
        .collect()
}

/// Family 3 (free): the classic turn models from the paper's catalog,
/// on unwrapped meshes.
fn turn_model() -> Vec<CorpusEntry> {
    let designs: [(&str, PartitionSeq, &[usize]); 5] = [
        ("west-first", catalog::p3_west_first(), &[4, 4]),
        ("north-last", catalog::north_last(), &[5, 4]),
        ("negative-first", catalog::p4_negative_first(), &[4, 5]),
        ("odd-even", catalog::odd_even(), &[6, 4]),
        ("dyxy", catalog::fig7b_dyxy(), &[4, 4]),
    ];
    designs
        .into_iter()
        .enumerate()
        .map(|(i, (name, seq, radix))| {
            design_entry(
                "turn-model",
                i,
                seq,
                radix,
                &vec![false; radix.len()],
                ExpectedVerdict::DeadlockFree,
                true,
                format!(
                    "catalog {name} turn model on a {radix:?} mesh; label re-proven by brute force"
                ),
            )
        })
        .collect()
}

/// Family 4 (free): Duato-style layered designs — a dimension-order
/// escape layer on VC 1 with additional adaptivity stages on VC 2,
/// expressed as EbDa partition sequences so the whole relation stays
/// constructively deadlock-free.
fn duato_escape() -> Vec<CorpusEntry> {
    let designs: [(&str, &[usize]); 5] = [
        ("X1+ X1- | Y1+ Y1- | X2+ X2- | Y2+ Y2-", &[4, 4]),
        ("X1+ X1- | Y1+ Y1- | X2+ X2- | Y2+ Y2-", &[5, 3]),
        ("X1+ X1- | Y1+ Y1- | Y2+ Y2- | X2+ X2-", &[4, 4]),
        ("X1- | X1+ Y1+ Y1- | X2+ X2- | Y2+ Y2-", &[4, 4]),
        ("X1+ X1- | Y1+ Y1- | X2+ X2- Y2+", &[4, 4]),
    ];
    designs
        .into_iter()
        .enumerate()
        .map(|(i, (text, radix))| {
            design_entry(
                "duato-escape",
                i,
                PartitionSeq::parse(text).expect("escape design parses"),
                radix,
                &vec![false; radix.len()],
                ExpectedVerdict::DeadlockFree,
                true,
                format!(
                    "escape-layered design \"{text}\" on a {radix:?} mesh (VC 1 = dimension-order escape, VC 2 = adaptive stages); label re-proven by brute force"
                ),
            )
        })
        .collect()
}

/// Family 5 (free): Algorithm 1 partitionings of 3D VC budgets on 3D
/// meshes — the paper's own constructive methodology.
fn ebda_3d() -> Vec<CorpusEntry> {
    let budgets: [(&[u8], &[usize]); 4] = [
        (&[1, 1, 1], &[3, 3, 3]),
        (&[2, 1, 1], &[3, 3, 2]),
        (&[1, 2, 1], &[2, 3, 3]),
        (&[1, 1, 2], &[3, 2, 3]),
    ];
    let mut out: Vec<CorpusEntry> = budgets
        .iter()
        .enumerate()
        .map(|(i, (vcs, radix))| {
            let seq = algorithm1::partition_network(vcs).expect("Algorithm 1 succeeds");
            design_entry(
                "ebda-3d",
                i,
                seq,
                radix,
                &vec![false; radix.len()],
                ExpectedVerdict::DeadlockFree,
                true,
                format!(
                    "Algorithm 1 on VC budget {vcs:?}, verified on a {radix:?} mesh; label re-proven by brute force"
                ),
            )
        })
        .collect();
    // A reversed Algorithm 1 sequence: Theorem 3 holds for any fixed
    // partition order, so the permutation is still deadlock-free.
    let base = algorithm1::partition_network(&[1, 1, 1]).expect("Algorithm 1 succeeds");
    let order: Vec<usize> = (0..base.len()).rev().collect();
    out.push(design_entry(
        "ebda-3d",
        4,
        base.permuted(&order),
        &[3, 3, 3],
        &[false, false, false],
        ExpectedVerdict::DeadlockFree,
        true,
        "Algorithm 1 on VC budget [1,1,1], partitions reversed (Theorem 3 holds for any fixed order), on a [3,3,3] mesh; label re-proven by brute force".to_string(),
    ));
    out
}

/// Family 6 (deadlocking): dimension-order routing on tori *without* the
/// dateline — the canonical wrap-ring deadlock. EbDa still accepts the
/// design (its guarantee is mesh-only), which is exactly why these
/// entries exist.
fn removed_dateline() -> Vec<CorpusEntry> {
    let shapes: [(&[usize], &[bool]); 5] = [
        (&[4, 4], &[true, true]),
        (&[3, 3], &[true, true]),
        (&[5, 3], &[true, false]),
        (&[3, 3, 3], &[true, false, false]),
        (&[6, 3], &[false, true]),
    ];
    shapes
        .iter()
        .enumerate()
        .map(|(i, (radix, wrap))| {
            design_entry(
                "removed-dateline",
                i,
                dim_order(radix.len()),
                radix,
                wrap,
                ExpectedVerdict::Deadlocking,
                true,
                format!(
                    "dimension-order partitioning on {radix:?} with wrap {wrap:?} and no dateline: the wrap rings deadlock (EbDa's acceptance is mesh-only); label proven by brute-force witness"
                ),
            )
        })
        .collect()
}

/// Family 7 (deadlocking): partition sequences that merge both complete
/// pairs into one partition, violating Theorem 1. EbDa rejects them; the
/// naive router a designer would build from the broken partitioning
/// allows every turn and deadlocks.
fn merged_partitions() -> Vec<CorpusEntry> {
    let designs: [(&str, &[usize]); 5] = [
        ("X+ X- Y+ Y-", &[4, 4]),
        ("X+ X- Y+ Y-", &[3, 3]),
        ("X+ X- Y+ Y-", &[4, 3]),
        ("X+ X- Y+ Y-", &[5, 4]),
        ("X+ X- Y+ Y- Z+ Z-", &[3, 3, 2]),
    ];
    designs
        .into_iter()
        .enumerate()
        .map(|(i, (text, radix))| {
            design_entry(
                "merged-partitions",
                i,
                PartitionSeq::parse(text).expect("merged design parses"),
                radix,
                &vec![false; radix.len()],
                ExpectedVerdict::Deadlocking,
                false,
                format!(
                    "merged partitioning \"{text}\" on a {radix:?} mesh violates Theorem 1; EbDa rejects it and the naive all-turns router deadlocks; label proven by brute-force witness"
                ),
            )
        })
        .collect()
}

/// Family 8 (deadlocking): a sound turn model with the smallest
/// deterministic turn injection that closes a cycle. The injector tries
/// single extra turns in sorted order, then pairs, and keeps the first
/// set the brute-force searcher proves deadlocking.
fn cyclic_turns() -> Vec<CorpusEntry> {
    let bases: [(&str, PartitionSeq, &[usize]); 5] = [
        ("west-first", catalog::p3_west_first(), &[4, 4]),
        ("north-last", catalog::north_last(), &[4, 4]),
        ("negative-first", catalog::p4_negative_first(), &[5, 4]),
        ("xy", catalog::p1_xy(), &[4, 4]),
        ("odd-even", catalog::odd_even(), &[5, 4]),
    ];
    bases
        .into_iter()
        .enumerate()
        .map(|(i, (name, seq, radix))| {
            let universe = seq.channels();
            let vcs = infer_vcs(&universe, radix.len());
            let base_turns = extract_turns(&seq).expect("catalog designs are valid").into_turn_set();
            let topo = Topology::mesh(radix);
            let (turns, injected) = inject_cycle(&topo, &vcs, &universe, &base_turns)
                .unwrap_or_else(|| panic!("no turn injection deadlocks {name} on {radix:?}"));
            CorpusEntry {
                name: format!("cyclic-turns-{i:02}"),
                family: "cyclic-turns".to_string(),
                radix: radix.to_vec(),
                wrap: vec![false; radix.len()],
                vcs,
                universe,
                turns,
                design: None,
                expected: ExpectedVerdict::Deadlocking,
                ebda_certified: false,
                provenance: format!(
                    "catalog {name} turns on a {radix:?} mesh plus injected turn(s) {injected}: the smallest deterministic injection closing a dependency cycle; label proven by brute-force witness"
                ),
            }
        })
        .collect()
}

/// Finds the first (in sorted candidate order) injection of one or two
/// extra turns under which the brute-force searcher finds a deadlock.
/// Returns the augmented turn set and a rendering of what was injected.
fn inject_cycle(
    topo: &Topology,
    vcs: &[u8],
    universe: &[Channel],
    base: &TurnSet,
) -> Option<(TurnSet, String)> {
    let mut missing: Vec<Turn> = Vec::new();
    for &a in universe {
        for &b in universe {
            if a != b && !base.contains(Turn::new(a, b)) {
                missing.push(Turn::new(a, b));
            }
        }
    }
    missing.sort();
    let deadlocks = |turns: &TurnSet| !brute::search(topo, vcs, universe, turns).is_deadlock_free();
    let with = |extra: &[Turn]| {
        let mut t: TurnSet = base.iter().collect();
        for &x in extra {
            t.insert(x);
        }
        t
    };
    for &t in &missing {
        let turns = with(&[t]);
        if deadlocks(&turns) {
            return Some((turns, format!("{{{}>{}}}", t.from, t.to)));
        }
    }
    for i in 0..missing.len() {
        for j in (i + 1)..missing.len() {
            let pair = [missing[i], missing[j]];
            let turns = with(&pair);
            if deadlocks(&turns) {
                return Some((
                    turns,
                    format!(
                        "{{{}>{}, {}>{}}}",
                        pair[0].from, pair[0].to, pair[1].from, pair[1].to
                    ),
                ));
            }
        }
    }
    None
}

/// Family 9 (deadlocking): the adaptive VC-2 layer of a Duato-style
/// design with its escape starved away — full adaptivity with no acyclic
/// subnetwork left to drain it.
fn escape_starved() -> Vec<CorpusEntry> {
    let shapes: [&[usize]; 4] = [&[4, 4], &[3, 3], &[5, 3], &[3, 3, 2]];
    let mut out: Vec<CorpusEntry> = shapes
        .iter()
        .enumerate()
        .map(|(i, radix)| {
            let dims = radix.len();
            let universe = vc2_pool(dims);
            let turns = all_turns(&universe);
            CorpusEntry {
                name: format!("escape-starved-{i:02}"),
                family: "escape-starved".to_string(),
                radix: radix.to_vec(),
                wrap: vec![false; dims],
                vcs: vec![2; dims],
                universe,
                turns,
                design: None,
                expected: ExpectedVerdict::Deadlocking,
                ebda_certified: false,
                provenance: format!(
                    "fully adaptive VC-2 layer on a {radix:?} mesh with the VC-1 escape removed: no acyclic subnetwork remains; label proven by brute-force witness"
                ),
            }
        })
        .collect();
    // A variant that keeps the escape channels in the universe but never
    // turns *out of* them: packets can flee into VC 1 yet the VC-2 cycle
    // is still a self-supporting configuration.
    let dims = 2;
    let mut universe = vc2_pool(dims);
    let mut turns = all_turns(&universe);
    for d in 0..dims {
        let dim = Dimension::new(d as u8);
        for dir in [Direction::Plus, Direction::Minus] {
            let esc = Channel::with_vc(dim, dir, 1);
            for &from in &vc2_pool(dims) {
                turns.insert(Turn::new(from, esc));
            }
            universe.push(esc);
        }
    }
    out.push(CorpusEntry {
        name: "escape-starved-04".to_string(),
        family: "escape-starved".to_string(),
        radix: vec![4, 4],
        wrap: vec![false, false],
        vcs: vec![2, 2],
        universe,
        turns,
        design: None,
        expected: ExpectedVerdict::Deadlocking,
        ebda_certified: false,
        provenance: "adaptive VC-2 layer on a [4,4] mesh with one-way drains into an escape that grants no onward turns: the VC-2 cycle remains self-supporting; label proven by brute-force witness".to_string(),
    });
    out
}

/// All VC-2 channel classes of a `dims`-dimensional network.
fn vc2_pool(dims: usize) -> Vec<Channel> {
    let mut pool = Vec::new();
    for d in 0..dims {
        for dir in [Direction::Plus, Direction::Minus] {
            pool.push(Channel::with_vc(Dimension::new(d as u8), dir, 2));
        }
    }
    pool
}

/// Every ordered pair of distinct channels as a turn set.
fn all_turns(universe: &[Channel]) -> TurnSet {
    let mut turns = TurnSet::new();
    for &a in universe {
        for &b in universe {
            if a != b {
                turns.insert(Turn::new(a, b));
            }
        }
    }
    turns
}

/// Family 10 (deadlocking): seed-pinned random turn relations filtered by
/// the brute-force searcher — only draws with a concrete deadlock witness
/// become entries, and the provenance records the seed and how many draws
/// were skipped.
fn adversarial_random() -> Vec<CorpusEntry> {
    let shapes: [&[usize]; 5] = [&[3, 3], &[4, 3], &[4, 4], &[3, 3, 2], &[5, 3]];
    shapes
        .iter()
        .enumerate()
        .map(|(i, radix)| {
            let dims = radix.len();
            let vcs = vec![1u8; dims];
            let mut universe = Vec::new();
            for d in 0..dims {
                for dir in [Direction::Plus, Direction::Minus] {
                    universe.push(Channel::new(Dimension::new(d as u8), dir));
                }
            }
            let topo = Topology::mesh(radix);
            let seed = 0xEBDA_C0DE + i as u64;
            let mut rng = Rng64::new(seed);
            let mut skipped = 0usize;
            let turns = loop {
                let mut t = TurnSet::new();
                for &a in &universe {
                    for &b in &universe {
                        if a != b && rng.gen_bool(0.5) {
                            t.insert(Turn::new(a, b));
                        }
                    }
                }
                if !brute::search(&topo, &vcs, &universe, &t).is_deadlock_free() {
                    break t;
                }
                skipped += 1;
                assert!(skipped < 256, "no deadlocking draw within 256 attempts");
            };
            CorpusEntry {
                name: format!("adversarial-random-{i:02}"),
                family: "adversarial-random".to_string(),
                radix: radix.to_vec(),
                wrap: vec![false; dims],
                vcs,
                universe,
                turns,
                design: None,
                expected: ExpectedVerdict::Deadlocking,
                ebda_certified: false,
                provenance: format!(
                    "random turn relation on a {radix:?} mesh (Rng64 seed {seed:#x}, p=0.5, {skipped} deadlock-free draws skipped); label proven by brute-force witness"
                ),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_list_is_complete_and_generators_run() {
        for family in FAMILIES {
            let entries = generate_family(family);
            assert!(!entries.is_empty(), "{family} generated nothing");
            for e in &entries {
                assert_eq!(e.family, family);
                assert!(!e.universe.is_empty());
                assert_eq!(e.radix.len(), e.wrap.len());
                assert_eq!(e.radix.len(), e.vcs.len());
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_family("adversarial-random");
        let b = generate_family("adversarial-random");
        assert_eq!(a, b);
    }

    #[test]
    fn free_families_carry_free_labels_and_vice_versa() {
        for family in &FAMILIES[..5] {
            for e in generate_family(family) {
                assert_eq!(e.expected, ExpectedVerdict::DeadlockFree, "{}", e.summary());
            }
        }
        for family in &FAMILIES[5..] {
            for e in generate_family(family) {
                assert_eq!(e.expected, ExpectedVerdict::Deadlocking, "{}", e.summary());
            }
        }
    }

    #[test]
    fn corpus_holds_at_least_forty_proven_entries() {
        // `generate_all` re-proves every label via the four-path check and
        // panics on any mismatch, so reaching here means all labels hold.
        let entries = generate_all();
        assert!(entries.len() >= 40, "only {} entries", entries.len());
        let mut hashes: Vec<u64> = entries.iter().map(|e| e.content_hash()).collect();
        hashes.sort();
        hashes.dedup();
        assert_eq!(hashes.len(), entries.len(), "duplicate content hashes");
    }
}
