//! The corpus regression campaign: check every labeled entry against all
//! four verdict paths, shrink any mismatch, archive the shrunk witness.
//!
//! Unlike the oracle's random differential campaign (which only checks
//! that the paths agree with *each other*), the corpus campaign holds
//! every path to the entry's proven `expected` label — a bug that breaks
//! all four paths in the same direction still gets caught here.
//!
//! Determinism contract: for a fixed entry list and configuration, the
//! report's [`fmt::Display`] output is byte-identical at every thread
//! count. Checks fan out over [`ebda_par::parallel_map`] (index-order
//! merge); shrinking and archiving run serially afterwards, in entry
//! order. Wall-clock time lives only in `elapsed_ms`, which Display
//! excludes.

use std::collections::BTreeMap;
use std::fmt;
use std::path::PathBuf;
use std::time::Instant;

use ebda_obs::prof;
use ebda_oracle::artifact::Artifact;
use ebda_oracle::incr::IncrementalSession;
use ebda_oracle::provenance::Provenance;
use ebda_oracle::shrink::{shrink_with_context, DEFAULT_SHRINK_BUDGET};
use ebda_oracle::verdict::{cross_check, disagreement_rule, evaluate, Mutation, Verdicts};

use crate::entry::{CorpusEntry, ExpectedVerdict};
use crate::store;

/// Configuration for one corpus campaign run.
#[derive(Debug, Clone)]
pub struct CorpusCampaignConfig {
    /// Worker threads (0 = the `ebda-par` global default).
    pub threads: usize,
    /// Fault injected into the verdict paths — [`Mutation::None`] for an
    /// honest run, anything else for a self-check that the corpus trips.
    pub mutation: Mutation,
    /// Predicate-evaluation budget for shrinking each mismatch.
    pub shrink_budget: usize,
    /// Where to write shrunk witnesses as new labeled entries, if anywhere.
    pub archive_dir: Option<PathBuf>,
    /// When set, append one [`ebda_obs::ledger`] record per entry, in
    /// entry order — so ledger bytes are identical at any thread count.
    pub ledger: Option<PathBuf>,
    /// When set, accumulate an obligation-level [`ebda_obs::CoverageMap`]
    /// over every entry (merged in entry order) and write it to this path
    /// as canonical JSON.
    pub coverage: Option<PathBuf>,
}

impl Default for CorpusCampaignConfig {
    fn default() -> CorpusCampaignConfig {
        CorpusCampaignConfig {
            threads: 0,
            mutation: Mutation::None,
            shrink_budget: DEFAULT_SHRINK_BUDGET,
            archive_dir: None,
            ledger: None,
            coverage: None,
        }
    }
}

/// One entry whose four-path check disagreed with its label.
#[derive(Debug, Clone)]
pub struct CorpusMismatch {
    /// The offending entry's name.
    pub name: String,
    /// The offending entry's canonical hash.
    pub hash: String,
    /// Which check failed and how.
    pub reason: String,
    /// Summary of the shrunk witness artifact.
    pub shrunk: String,
    /// File name of the archived witness entry, if archiving was enabled
    /// and the witness was new.
    pub archived: Option<String>,
}

/// The deterministic result of a corpus campaign.
#[derive(Debug, Clone)]
pub struct CorpusCampaignReport {
    /// Total entries checked.
    pub entries: usize,
    /// Entries labeled deadlock-free.
    pub free: usize,
    /// Entries labeled deadlocking.
    pub deadlocking: usize,
    /// Entry count per family, sorted by family name.
    pub families: BTreeMap<String, usize>,
    /// Every entry whose check disagreed with its label, in entry order.
    pub mismatches: Vec<CorpusMismatch>,
    /// File names of newly archived witness entries, in entry order.
    pub archived: Vec<String>,
    /// The merged coverage map, when [`CorpusCampaignConfig::coverage`]
    /// was set. Keyed by a content hash over the entry list, so the same
    /// corpus always yields the same key.
    pub coverage: Option<ebda_obs::CoverageMap>,
    /// Wall-clock duration — excluded from [`fmt::Display`] so campaign
    /// output stays byte-comparable across runs and thread counts.
    pub elapsed_ms: u128,
}

impl CorpusCampaignReport {
    /// True when every entry's four verdict paths matched its label.
    pub fn is_clean(&self) -> bool {
        self.mismatches.is_empty()
    }
}

impl fmt::Display for CorpusCampaignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "corpus campaign: {} entries ({} deadlock-free, {} deadlocking), {} families",
            self.entries,
            self.free,
            self.deadlocking,
            self.families.len()
        )?;
        for (family, count) in &self.families {
            writeln!(f, "  family {family}: {count}")?;
        }
        writeln!(f, "mismatches: {}", self.mismatches.len())?;
        for m in &self.mismatches {
            writeln!(f, "  MISMATCH {} [{}]: {}", m.name, m.hash, m.reason)?;
            writeln!(f, "    shrunk witness: {}", m.shrunk)?;
            match &m.archived {
                Some(file) => writeln!(f, "    archived as: {file}")?,
                None => writeln!(f, "    archived as: (not archived)")?,
            }
        }
        if let Some(map) = &self.coverage {
            writeln!(
                f,
                "coverage: {} design-space bins, {} points total, digest {}",
                map.covered("design_bin"),
                map.total_points(),
                map.digest()
            )?;
        }
        Ok(())
    }
}

/// Checks one labeled entry against all four verdict paths. Returns
/// `None` when everything matches the label, or a human-readable reason
/// for the first failed check.
pub fn check_entry(entry: &CorpusEntry, id: u64, mutation: Mutation) -> Option<String> {
    let artifact = entry.to_artifact(id);
    let verdicts = evaluate(&artifact, mutation);
    mismatch_reason(
        &artifact,
        entry.expected,
        Some(entry.ebda_certified),
        &verdicts,
    )
}

/// The label check on a bare artifact with already-computed verdicts.
/// `ebda_certified` is compared only when the artifact still carries a
/// design (shrinking may drop it).
fn mismatch_reason(
    artifact: &Artifact,
    expected: ExpectedVerdict,
    ebda_certified: Option<bool>,
    verdicts: &Verdicts,
) -> Option<String> {
    if let Some(d) = cross_check(artifact, verdicts) {
        return Some(format!("cross-check violation: {d}"));
    }
    let want_free = expected.is_free();
    if verdicts.brute.is_deadlock_free() != want_free {
        return Some(format!(
            "brute disagrees with label {expected}: {}",
            verdicts.brute
        ));
    }
    if verdicts.dally.is_deadlock_free() != want_free {
        return Some(format!(
            "dally disagrees with label {expected}: {}",
            verdicts.dally
        ));
    }
    if verdicts.duato.escape_acyclic != want_free {
        return Some(format!(
            "duato disagrees with label {expected}: {}",
            verdicts.duato
        ));
    }
    if let (Some(v), Some(certified)) = (&verdicts.ebda, ebda_certified) {
        if v.is_deadlock_free() != certified {
            return Some(format!(
                "ebda verdict contradicts ebda_certified={certified}: {v}"
            ));
        }
    }
    None
}

/// Runs the regression campaign over `entries`.
///
/// Every entry is checked against all four verdict paths under
/// `cfg.mutation`. Each mismatching entry is then shrunk (the predicate
/// being "the shrunk artifact still disagrees with the label") and, when
/// `cfg.archive_dir` is set, the shrunk witness is written back as a new
/// labeled entry whose `expected`/`ebda_certified` fields are re-proven
/// honestly (always under [`Mutation::None`]) so even witnesses born
/// from an injected fault carry true labels.
pub fn run_corpus_campaign(
    entries: &[CorpusEntry],
    cfg: &CorpusCampaignConfig,
) -> CorpusCampaignReport {
    let started = Instant::now();
    let _campaign = prof::phase("corpus/campaign");

    let with_ledger = cfg.ledger.is_some();
    let with_coverage = cfg.coverage.is_some();
    #[allow(clippy::type_complexity)]
    let checks: Vec<(
        Option<String>,
        Option<Provenance>,
        Option<ebda_obs::CoverageMap>,
    )> = {
        let _check = prof::phase("corpus/check");
        prof::work("corpus/check", "entries", entries.len() as u64);
        ebda_par::parallel_map(cfg.threads, entries, |i, entry| {
            let artifact = entry.to_artifact(i as u64);
            let verdicts = evaluate(&artifact, cfg.mutation);
            let reason = mismatch_reason(
                &artifact,
                entry.expected,
                Some(entry.ebda_certified),
                &verdicts,
            );
            let prov = with_ledger.then(|| Provenance::from_artifact(&artifact, &verdicts));
            let cov = with_coverage.then(|| ebda_oracle::artifact_coverage(&artifact, &verdicts));
            (reason, prov, cov)
        })
    };

    // Per-entry coverage was computed in parallel above; the merge runs
    // here on the coordinator, in entry order, so the merged map — and
    // its digest — is byte-identical at every thread count. The map key
    // is a content hash over the entry list: same corpus, same key.
    let coverage_map = with_coverage.then(|| {
        let joined: String = entries.iter().map(|e| e.hash_hex()).collect();
        let mut map = ebda_obs::CoverageMap::new(format!(
            "corpus-{}",
            ebda_obs::coverage::fnv1a_hex(joined.as_bytes())
        ));
        for (_, _, cov) in &checks {
            if let Some(cov) = cov {
                map.merge(cov);
            }
        }
        map
    });

    let mut report = CorpusCampaignReport {
        entries: entries.len(),
        free: entries.iter().filter(|e| e.expected.is_free()).count(),
        deadlocking: entries.iter().filter(|e| !e.expected.is_free()).count(),
        families: BTreeMap::new(),
        mismatches: Vec::new(),
        archived: Vec::new(),
        coverage: None,
        elapsed_ms: 0,
    };
    for entry in entries {
        *report.families.entry(entry.family.clone()).or_insert(0) += 1;
    }
    ebda_obs::metrics::counter_add(
        "ebda_corpus_entries_checked_total",
        &[],
        entries.len() as u64,
    );
    ebda_obs::metrics::counter_add("ebda_corpus_deadlock_free_total", &[], report.free as u64);
    ebda_obs::metrics::counter_add(
        "ebda_corpus_deadlocking_total",
        &[],
        report.deadlocking as u64,
    );

    if let Some(path) = &cfg.ledger {
        // Parallel checks were merged in index order, so the records —
        // and therefore the ledger bytes — are entry-ordered regardless
        // of the thread count.
        let git_rev = ebda_obs::ledger::git_rev();
        let records: Vec<ebda_obs::LedgerRecord> = entries
            .iter()
            .zip(&checks)
            .filter_map(|(entry, (_, prov, cov))| prov.as_ref().map(|p| (entry, p, cov)))
            .map(|(entry, prov, cov)| ebda_obs::LedgerRecord {
                index: 0,
                source: "corpus".into(),
                name: entry.name.clone(),
                git_rev: git_rev.clone(),
                seed: 0,
                verdict: prov.verdict_str().into(),
                evidence: if prov.deadlock_free {
                    "certificate".into()
                } else {
                    "witness".into()
                },
                hash: prov.hash_hex(),
                gfp_sweeps: prov.brute.sweeps as u64,
                wait_pairs: prov.brute.pairs as u64,
                coverage: cov.as_ref().map(|c| c.digest()).unwrap_or_default(),
                provenance: prov.to_json(),
            })
            .collect();
        if let Err(e) = ebda_obs::ledger::append(path, &records) {
            eprintln!("warning: corpus ledger append failed: {e}");
        }
    }

    for (i, (reason, _, _)) in checks.into_iter().enumerate() {
        let Some(reason) = reason else { continue };
        let entry = &entries[i];
        ebda_obs::metrics::counter_add("ebda_corpus_mismatches_total", &[], 1);
        let shrunk = {
            let _shrink = prof::phase("corpus/shrink");
            prof::work("corpus/shrink", "mismatches", 1);
            let artifact = entry.to_artifact(i as u64);
            // Without a design the label check reduces to the four path
            // booleans, so turn/channel-drop candidates are answered by
            // the incremental session's dirty-SCC queries; structural
            // candidates (and `EBDA_INCREMENTAL=0`) take the identical
            // full-evaluate path.
            let want_free = entry.expected.is_free();
            shrink_with_context(
                &artifact,
                cfg.shrink_budget,
                cfg.threads,
                |parent| IncrementalSession::new(parent, cfg.mutation),
                |session, candidate, delta| match session.path_verdicts(candidate, delta) {
                    Some(p) => {
                        disagreement_rule(
                            candidate,
                            p.ebda_free,
                            p.dally_free,
                            p.duato_acyclic,
                            p.brute_free,
                        )
                        .is_some()
                            || p.brute_free != want_free
                            || p.dally_free != want_free
                            || p.duato_acyclic != want_free
                    }
                    None => {
                        let verdicts = evaluate(candidate, cfg.mutation);
                        mismatch_reason(candidate, entry.expected, None, &verdicts).is_some()
                    }
                },
            )
        };
        let witness = witness_entry(entry, &reason, &shrunk);
        let mut archived = None;
        if let Some(dir) = &cfg.archive_dir {
            let _archive = prof::phase("corpus/archive");
            prof::work("corpus/archive", "witnesses", 1);
            match store::save_entry(dir, &witness) {
                Ok(file) => {
                    ebda_obs::metrics::counter_add("ebda_corpus_witnesses_archived_total", &[], 1);
                    report.archived.push(file.clone());
                    archived = Some(file);
                }
                Err(e) => {
                    eprintln!("warning: failed to archive witness for {}: {e}", entry.name)
                }
            }
        }
        report.mismatches.push(CorpusMismatch {
            name: entry.name.clone(),
            hash: entry.hash_hex(),
            reason,
            shrunk: shrunk.summary(),
            archived,
        });
    }

    if let Some(map) = coverage_map {
        map.publish_metrics();
        if let Some(path) = &cfg.coverage {
            if let Err(e) = map.write_file(path) {
                eprintln!("warning: corpus coverage write failed: {e}");
            }
        }
        report.coverage = Some(map);
    }

    report.elapsed_ms = started.elapsed().as_millis();
    report
}

/// Builds the labeled corpus entry for a shrunk witness. Labels are
/// re-proven honestly from the shrunk artifact — never inherited from
/// the (possibly wrong, possibly mutation-tainted) source entry.
fn witness_entry(source: &CorpusEntry, reason: &str, shrunk: &Artifact) -> CorpusEntry {
    let verdicts = evaluate(shrunk, Mutation::None);
    let expected = if verdicts.brute.is_deadlock_free() {
        ExpectedVerdict::DeadlockFree
    } else {
        ExpectedVerdict::Deadlocking
    };
    let ebda_certified = verdicts
        .ebda
        .as_ref()
        .map(|v| v.is_deadlock_free())
        .unwrap_or(false);
    let mut witness = CorpusEntry {
        name: String::new(),
        family: "witness".to_string(),
        radix: shrunk.radix.clone(),
        wrap: shrunk.wrap.clone(),
        vcs: shrunk.vcs.clone(),
        universe: shrunk.universe.clone(),
        turns: shrunk.turns.clone(),
        design: shrunk.design.clone(),
        expected,
        ebda_certified,
        provenance: format!(
            "witness shrunk from corpus entry {} [{}]; original failure: {reason}; label re-proven by brute force on the shrunk artifact",
            source.name,
            source.hash_hex()
        ),
    };
    witness.name = format!("witness-{}", witness.hash_hex());
    witness
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families;

    fn small_corpus() -> Vec<CorpusEntry> {
        let mut entries = families::generate_family("mesh-xy");
        entries.truncate(2);
        entries.extend(
            families::generate_family("removed-dateline")
                .into_iter()
                .take(2),
        );
        entries
    }

    #[test]
    fn honest_campaign_is_clean() {
        let entries = small_corpus();
        let report = run_corpus_campaign(&entries, &CorpusCampaignConfig::default());
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.entries, 4);
        assert_eq!(report.free, 2);
        assert_eq!(report.deadlocking, 2);
        assert_eq!(report.families.len(), 2);
    }

    #[test]
    fn report_is_byte_identical_across_thread_counts() {
        let entries = small_corpus();
        let base = run_corpus_campaign(
            &entries,
            &CorpusCampaignConfig {
                threads: 1,
                ..CorpusCampaignConfig::default()
            },
        )
        .to_string();
        for threads in [2, 8] {
            let other = run_corpus_campaign(
                &entries,
                &CorpusCampaignConfig {
                    threads,
                    ..CorpusCampaignConfig::default()
                },
            )
            .to_string();
            assert_eq!(base, other, "threads {threads}");
        }
    }

    #[test]
    fn coverage_map_is_keyed_merged_in_entry_order_and_thread_invariant() {
        let entries = small_corpus();
        let dir = std::env::temp_dir().join(format!("ebda-corpus-cov-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let run = |threads: usize, tag: &str| {
            let path = dir.join(format!("cov-{tag}.json"));
            let report = run_corpus_campaign(
                &entries,
                &CorpusCampaignConfig {
                    threads,
                    coverage: Some(path.clone()),
                    ..CorpusCampaignConfig::default()
                },
            );
            (report, std::fs::read_to_string(&path).unwrap())
        };
        let (serial, serial_bytes) = run(1, "1");
        let (parallel, parallel_bytes) = run(8, "8");
        assert_eq!(serial_bytes, parallel_bytes, "coverage depends on threads");
        let map = serial.coverage.as_ref().expect("coverage accumulated");
        assert!(map.key().starts_with("corpus-"), "key: {}", map.key());
        // Every static family is fed by the four verdict paths; only the
        // simulator family stays empty (the corpus campaign never replays).
        for family in [
            "cdg_edge",
            "design_bin",
            "escape_drain",
            "gfp_pair",
            "turn_admitted",
        ] {
            assert!(map.covered(family) > 0, "family {family} uncovered");
        }
        assert_eq!(map.covered("sim_event"), 0);
        assert_eq!(map.digest(), parallel.coverage.as_ref().unwrap().digest());
        assert!(serial.to_string().contains("coverage:"), "{serial}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mislabeled_entry_is_caught_shrunk_and_archived() {
        // Flip a deadlocking entry's label: the campaign must catch it,
        // shrink the counterexample, and archive an honestly labeled
        // witness.
        let mut entries = small_corpus();
        entries[2].expected = ExpectedVerdict::DeadlockFree;
        let dir = std::env::temp_dir().join(format!(
            "ebda-corpus-test-{}-{}",
            std::process::id(),
            entries[2].hash_hex()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let report = run_corpus_campaign(
            &entries,
            &CorpusCampaignConfig {
                archive_dir: Some(dir.clone()),
                ..CorpusCampaignConfig::default()
            },
        );
        assert_eq!(report.mismatches.len(), 1, "{report}");
        let m = &report.mismatches[0];
        assert_eq!(m.name, entries[2].name);
        assert!(m.reason.contains("label deadlock-free"), "{}", m.reason);
        let file = m.archived.clone().expect("witness archived");
        let loaded = store::load_dir(&dir).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].family, "witness");
        assert_eq!(loaded[0].expected, ExpectedVerdict::Deadlocking);
        assert_eq!(loaded[0].file_name(), file);
        // The honest witness must itself pass the check.
        assert!(check_entry(&loaded[0], 0, Mutation::None).is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_oracle_fault_trips_the_corpus() {
        // The dally-ignores-wrap mutation makes Dally miss wrap rings:
        // torus entries must catch it.
        let entries: Vec<CorpusEntry> = families::generate_family("removed-dateline")
            .into_iter()
            .take(1)
            .collect();
        let report = run_corpus_campaign(
            &entries,
            &CorpusCampaignConfig {
                mutation: Mutation::DallyIgnoresWrap,
                ..CorpusCampaignConfig::default()
            },
        );
        assert!(!report.is_clean(), "mutation went uncaught: {report}");
    }
}
