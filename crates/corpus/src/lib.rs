//! # ebda-corpus — labeled ground-truth scenario corpus
//!
//! A persistent, growing regression suite for the four verdict paths of
//! the differential oracle (EbDa theorems, Dally CDG, Duato escape,
//! brute-force search). Where the oracle's random campaign asks "do the
//! paths agree with *each other*?", the corpus asks the stronger
//! question: "do they agree with the *known truth*?" — every entry
//! carries a proven `expected` verdict established at generation time.
//!
//! The crate has four parts:
//!
//! * [`entry`] — [`CorpusEntry`]: one labeled verification problem with
//!   its provenance and canonical content hash, JSON round-trip included.
//! * [`families`] — ten deterministic generator families in the verilock
//!   mold: five provably deadlock-free (mesh XY, torus dateline, turn
//!   models, Duato-style escape layers, EbDa-partitioned 3D) and five
//!   provably deadlocking (removed dateline, merged partitions, cyclic
//!   turn injections, escape-starved layers, adversarial random turn
//!   sets filtered by brute force).
//! * [`store`] — the versioned on-disk format: one JSON file per entry,
//!   content-addressed as `<canonical-hash>.json`.
//! * [`campaign`] — the regression runner: fans entries across
//!   [`ebda_par`] workers, checks each against all four verdict paths,
//!   and on any mismatch shrinks the counterexample and archives the
//!   shrunk witness as a new labeled corpus entry.
//!
//! Campaign results are byte-identical at every thread count, so CI can
//! diff the output of `--threads 1` against `--threads 8`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod entry;
pub mod families;
pub mod store;

pub use campaign::{run_corpus_campaign, CorpusCampaignConfig, CorpusCampaignReport};
pub use entry::{CorpusEntry, ExpectedVerdict, FORMAT_VERSION};
