//! The versioned on-disk corpus format.
//!
//! A corpus directory holds one JSON file per entry, content-addressed as
//! `<canonical-hash>.json` — the same canonical hash the verdict cache
//! keys on, so a design's corpus file, cache slot, and CLI identity all
//! agree. Content addressing makes writes idempotent (re-archiving a
//! known witness is a no-op) and lets `load_dir` verify every file's name
//! against its recomputed hash, catching hand-edited entries loudly.

use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

use crate::entry::CorpusEntry;

/// Writes `entry` into `dir` (created if missing) under its
/// content-addressed file name. Returns the file name. Writing an entry
/// that already exists is a no-op, so archiving the same witness twice —
/// or from two thread counts — cannot diverge.
pub fn save_entry(dir: &Path, entry: &CorpusEntry) -> Result<String, String> {
    let file = entry.file_name();
    let path = dir.join(&file);
    fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    if !path.exists() {
        fs::write(&path, entry.to_json())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    Ok(file)
}

/// Loads every `*.json` entry in `dir`, sorted by file name (which is
/// hash order, hence deterministic). Fails loudly on unparsable entries,
/// on hash/content tampering (via [`CorpusEntry::from_json`]), and on
/// files whose name does not match their content hash.
pub fn load_dir(dir: &Path) -> Result<Vec<CorpusEntry>, String> {
    let mut names: Vec<String> = Vec::new();
    let listing =
        fs::read_dir(dir).map_err(|e| format!("cannot read corpus dir {}: {e}", dir.display()))?;
    for item in listing {
        let item = item.map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
        let name = item.file_name().to_string_lossy().into_owned();
        if name.ends_with(".json") {
            names.push(name);
        }
    }
    names.sort();
    let mut entries = Vec::with_capacity(names.len());
    for name in names {
        let path = dir.join(&name);
        let text = fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let entry =
            CorpusEntry::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        if entry.file_name() != name {
            return Err(format!(
                "{}: file name does not match content hash {}",
                path.display(),
                entry.hash_hex()
            ));
        }
        entries.push(entry);
    }
    Ok(entries)
}

/// Renders deterministic corpus statistics: totals, per-family counts
/// with label splits, and per-entry lines in hash order. Contains no
/// timestamps or wall-clock data, so output is byte-identical across
/// runs and thread counts.
pub fn render_stats(entries: &[CorpusEntry]) -> String {
    let mut out = String::new();
    let free = entries.iter().filter(|e| e.expected.is_free()).count();
    out.push_str(&format!(
        "corpus: {} entries ({} deadlock-free, {} deadlocking)\n",
        entries.len(),
        free,
        entries.len() - free
    ));
    let mut families: BTreeMap<&str, (usize, usize)> = BTreeMap::new();
    for e in entries {
        let slot = families.entry(&e.family).or_insert((0, 0));
        if e.expected.is_free() {
            slot.0 += 1;
        } else {
            slot.1 += 1;
        }
    }
    for (family, (f, d)) in &families {
        out.push_str(&format!(
            "  family {family}: {} entries ({f} deadlock-free, {d} deadlocking)\n",
            f + d
        ));
    }
    let mut by_hash: Vec<&CorpusEntry> = entries.iter().collect();
    by_hash.sort_by_key(|e| e.content_hash());
    for e in by_hash {
        out.push_str(&format!("  {}\n", e.summary()));
    }
    out
}

/// The machine-readable sibling of [`render_stats`]: the same totals,
/// per-family splits, and hash-ordered entry list as one canonical JSON
/// document (single line, sorted keys, trailing newline). Deterministic
/// for a fixed corpus, so dashboards and CI can diff it byte-for-byte.
pub fn render_stats_json(entries: &[CorpusEntry]) -> String {
    use ebda_obs::json::escape;
    let free = entries.iter().filter(|e| e.expected.is_free()).count();
    let mut families: BTreeMap<&str, (usize, usize)> = BTreeMap::new();
    for e in entries {
        let slot = families.entry(&e.family).or_insert((0, 0));
        if e.expected.is_free() {
            slot.0 += 1;
        } else {
            slot.1 += 1;
        }
    }
    let family_fields: Vec<String> = families
        .iter()
        .map(|(family, (f, d))| {
            format!(
                "{}:{{\"entries\":{},\"deadlock_free\":{f},\"deadlocking\":{d}}}",
                escape(family),
                f + d
            )
        })
        .collect();
    let mut by_hash: Vec<&CorpusEntry> = entries.iter().collect();
    by_hash.sort_by_key(|e| e.content_hash());
    let entry_fields: Vec<String> = by_hash
        .iter()
        .map(|e| {
            format!(
                "{{\"hash\":\"{}\",\"name\":{},\"family\":{},\"expected\":\"{}\"}}",
                e.hash_hex(),
                escape(&e.name),
                escape(&e.family),
                if e.expected.is_free() {
                    "deadlock-free"
                } else {
                    "deadlocking"
                }
            )
        })
        .collect();
    format!(
        "{{\"deadlock_free\":{free},\"deadlocking\":{},\"entries\":{},\"families\":{{{}}},\"listing\":[{}]}}\n",
        entries.len() - free,
        entries.len(),
        family_fields.join(","),
        entry_fields.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ebda-store-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_load_round_trips_in_hash_order() {
        let dir = temp_dir("roundtrip");
        let entries = families::generate_family("mesh-xy");
        for e in &entries {
            let file = save_entry(&dir, e).unwrap();
            assert_eq!(file, format!("{}.json", e.hash_hex()));
        }
        // Saving again is a no-op, not an error.
        save_entry(&dir, &entries[0]).unwrap();
        let loaded = load_dir(&dir).unwrap();
        assert_eq!(loaded.len(), entries.len());
        let mut sorted = entries.clone();
        sorted.sort_by_key(|e| e.file_name());
        assert_eq!(loaded, sorted);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn misnamed_file_is_rejected() {
        let dir = temp_dir("misnamed");
        let entries = families::generate_family("mesh-xy");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("0000000000000000.json"), entries[0].to_json()).unwrap();
        let err = load_dir(&dir).unwrap_err();
        assert!(err.contains("does not match content hash"), "{err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stats_are_deterministic_and_timestamp_free() {
        let mut entries = families::generate_family("mesh-xy");
        entries.extend(families::generate_family("merged-partitions"));
        let a = render_stats(&entries);
        let b = render_stats(&entries);
        assert_eq!(a, b);
        assert!(
            a.starts_with("corpus: 10 entries (5 deadlock-free, 5 deadlocking)\n"),
            "{a}"
        );
        assert!(
            a.contains("family mesh-xy: 5 entries (5 deadlock-free, 0 deadlocking)"),
            "{a}"
        );
    }

    #[test]
    fn json_stats_parse_back_and_agree_with_the_text_renderer() {
        let mut entries = families::generate_family("mesh-xy");
        entries.extend(families::generate_family("merged-partitions"));
        let text = render_stats_json(&entries);
        assert_eq!(text, render_stats_json(&entries), "nondeterministic");
        assert!(text.ends_with('\n'));
        let doc = ebda_obs::json::Value::parse(&text).unwrap();
        assert_eq!(doc.get("entries").and_then(|v| v.as_u64()), Some(10));
        assert_eq!(doc.get("deadlock_free").and_then(|v| v.as_u64()), Some(5));
        assert_eq!(doc.get("deadlocking").and_then(|v| v.as_u64()), Some(5));
        let mesh = doc.get("families").and_then(|f| f.get("mesh-xy")).unwrap();
        assert_eq!(mesh.get("entries").and_then(|v| v.as_u64()), Some(5));
        let listing = doc.get("listing").and_then(|v| v.as_arr()).unwrap();
        assert_eq!(listing.len(), 10);
        assert!(listing[0].get("hash").and_then(|v| v.as_str()).is_some());
    }
}
