//! One labeled verification problem: topology, turn relation (and the
//! partition-sequence design it came from, when there is one), the proven
//! expected verdict, provenance, and a canonical content hash.

use ebda_core::{canonical, Channel, Partition, PartitionSeq, Turn, TurnSet};
use ebda_obs::json::{self, Value};
use ebda_oracle::artifact::{Artifact, ArtifactKind};
use std::fmt;

/// On-disk format version; entries with any other version are rejected.
pub const FORMAT_VERSION: u64 = 1;

/// The ground-truth label of a corpus entry, proven at generation time by
/// the brute-force searcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpectedVerdict {
    /// The design/relation is deadlock-free on the entry's topology.
    DeadlockFree,
    /// The design/relation deadlocks on the entry's topology.
    Deadlocking,
}

impl ExpectedVerdict {
    /// `true` for [`ExpectedVerdict::DeadlockFree`].
    pub fn is_free(self) -> bool {
        matches!(self, ExpectedVerdict::DeadlockFree)
    }

    /// Parses the on-disk name.
    pub fn parse(s: &str) -> Option<ExpectedVerdict> {
        match s {
            "deadlock-free" => Some(ExpectedVerdict::DeadlockFree),
            "deadlocking" => Some(ExpectedVerdict::Deadlocking),
            _ => None,
        }
    }
}

impl ExpectedVerdict {
    /// The stable on-disk name.
    pub fn name(self) -> &'static str {
        match self {
            ExpectedVerdict::DeadlockFree => "deadlock-free",
            ExpectedVerdict::Deadlocking => "deadlocking",
        }
    }
}

impl fmt::Display for ExpectedVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// One labeled corpus entry.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusEntry {
    /// Human-readable entry name (`<family>-<index>`, or `witness-…` for
    /// archived counterexamples).
    pub name: String,
    /// Generator-family slug (see [`crate::families`]).
    pub family: String,
    /// Per-dimension radices of the topology.
    pub radix: Vec<usize>,
    /// Per-dimension wrap flags (`true` = torus dimension).
    pub wrap: Vec<bool>,
    /// Per-dimension virtual-channel budget.
    pub vcs: Vec<u8>,
    /// The channel-class universe.
    pub universe: Vec<Channel>,
    /// The allowed turns over `universe`.
    pub turns: TurnSet,
    /// The partition-sequence design the relation came from, if any.
    pub design: Option<PartitionSeq>,
    /// The proven ground-truth verdict.
    pub expected: ExpectedVerdict,
    /// Whether EbDa's constructive check is expected to *accept* the
    /// design (meaningful only when `design` is present). Deadlocking
    /// torus entries can be EbDa-certified: the constructive guarantee is
    /// mesh-only, so acceptance plus a wrap-link deadlock is consistent.
    pub ebda_certified: bool,
    /// How the entry was produced and how its label was proven.
    pub provenance: String,
}

impl CorpusEntry {
    /// The canonical content hash of the (topology, turn-set) pair —
    /// independent of channel/turn enumeration order. This is the same
    /// hash a persistent verdict cache keys on.
    pub fn content_hash(&self) -> u64 {
        canonical::canonical_hash(
            &self.radix,
            &self.wrap,
            &self.vcs,
            &self.universe,
            &self.turns,
        )
    }

    /// The content hash in the fixed-width hex used for file names.
    pub fn hash_hex(&self) -> String {
        canonical::hash_hex(self.content_hash())
    }

    /// The content-addressed file name of this entry (`<hash>.json`).
    pub fn file_name(&self) -> String {
        format!("{}.json", self.hash_hex())
    }

    /// Converts the entry into an oracle [`Artifact`] so the existing
    /// evaluation, shrinking and replay machinery applies unchanged.
    pub fn to_artifact(&self, id: u64) -> Artifact {
        Artifact {
            id,
            kind: if self.design.is_some() {
                ArtifactKind::Partitioning
            } else {
                ArtifactKind::RandomTurns
            },
            radix: self.radix.clone(),
            wrap: self.wrap.clone(),
            vcs: self.vcs.clone(),
            universe: self.universe.clone(),
            turns: self.turns.clone(),
            design: self.design.clone(),
        }
    }

    /// Serializes the entry as the versioned on-disk JSON document. Keys
    /// are written in a fixed order and the rendering has no wall-clock
    /// or environment dependence, so the bytes are stable.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"format\": {FORMAT_VERSION},\n"));
        out.push_str(&format!(
            "  \"hash\": {},\n",
            json::escape(&self.hash_hex())
        ));
        out.push_str(&format!("  \"name\": {},\n", json::escape(&self.name)));
        out.push_str(&format!("  \"family\": {},\n", json::escape(&self.family)));
        out.push_str(&format!(
            "  \"radix\": [{}],\n",
            join(self.radix.iter().map(|r| r.to_string()))
        ));
        out.push_str(&format!(
            "  \"wrap\": [{}],\n",
            join(self.wrap.iter().map(|w| w.to_string()))
        ));
        out.push_str(&format!(
            "  \"vcs\": [{}],\n",
            join(self.vcs.iter().map(|v| v.to_string()))
        ));
        out.push_str(&format!(
            "  \"universe\": [{}],\n",
            join(self.universe.iter().map(|c| json::escape(&c.to_string())))
        ));
        out.push_str(&format!(
            "  \"turns\": [{}],\n",
            join(
                self.turns
                    .iter()
                    .map(|t| json::escape(&format!("{}>{}", t.from, t.to)))
            )
        ));
        match &self.design {
            Some(seq) => {
                let parts: Vec<String> = seq
                    .partitions()
                    .iter()
                    .map(|p| format!("[{}]", join(p.iter().map(|c| json::escape(&c.to_string())))))
                    .collect();
                out.push_str(&format!("  \"design\": [{}],\n", parts.join(", ")));
            }
            None => out.push_str("  \"design\": null,\n"),
        }
        out.push_str(&format!(
            "  \"expected\": {},\n",
            json::escape(self.expected.name())
        ));
        out.push_str(&format!("  \"ebda_certified\": {},\n", self.ebda_certified));
        out.push_str(&format!(
            "  \"provenance\": {}\n",
            json::escape(&self.provenance)
        ));
        out.push_str("}\n");
        out
    }

    /// Parses the on-disk JSON document, verifying the format version and
    /// that the embedded hash matches the recomputed canonical hash (a
    /// tampered or hand-mangled entry is rejected loudly).
    pub fn from_json(text: &str) -> Result<CorpusEntry, String> {
        let v = Value::parse(text).map_err(|e| format!("corpus entry: bad JSON: {e}"))?;
        let format = v
            .get("format")
            .and_then(Value::as_u64)
            .ok_or("corpus entry: missing \"format\"")?;
        if format != FORMAT_VERSION {
            return Err(format!(
                "corpus entry: format v{format} not supported (this build reads v{FORMAT_VERSION})"
            ));
        }
        let str_field = |key: &str| -> Result<String, String> {
            Ok(v.get(key)
                .and_then(Value::as_str)
                .ok_or_else(|| format!("corpus entry: missing \"{key}\""))?
                .to_string())
        };
        let name = str_field("name")?;
        let family = str_field("family")?;
        let radix: Vec<usize> = num_array(&v, "radix")?;
        let wrap: Vec<bool> = v
            .get("wrap")
            .and_then(Value::as_arr)
            .ok_or("corpus entry: missing \"wrap\"")?
            .iter()
            .map(|x| match x {
                Value::Bool(b) => Ok(*b),
                _ => Err("corpus entry: non-boolean wrap flag".to_string()),
            })
            .collect::<Result<_, _>>()?;
        let vcs: Vec<u8> = num_array(&v, "vcs")?;
        let universe: Vec<Channel> = str_array(&v, "universe")?
            .iter()
            .map(|s| Channel::parse(s).map_err(|e| format!("corpus entry: channel {s:?}: {e}")))
            .collect::<Result<_, _>>()?;
        let turns: TurnSet = str_array(&v, "turns")?
            .iter()
            .map(|s| parse_turn(s))
            .collect::<Result<Vec<Turn>, String>>()?
            .into_iter()
            .collect();
        let design = match v.get("design") {
            None | Some(Value::Null) => None,
            Some(Value::Arr(parts)) => {
                let mut partitions = Vec::new();
                for p in parts {
                    let channels: Vec<Channel> = p
                        .as_arr()
                        .ok_or("corpus entry: design partition must be an array")?
                        .iter()
                        .map(|c| {
                            let s = c
                                .as_str()
                                .ok_or("corpus entry: non-string design channel")?;
                            Channel::parse(s)
                                .map_err(|e| format!("corpus entry: design channel {s:?}: {e}"))
                        })
                        .collect::<Result<_, String>>()?;
                    partitions.push(
                        Partition::from_channels(channels)
                            .map_err(|e| format!("corpus entry: bad design partition: {e}"))?,
                    );
                }
                Some(PartitionSeq::from_partitions(partitions))
            }
            Some(_) => return Err("corpus entry: \"design\" must be an array or null".into()),
        };
        let expected = ExpectedVerdict::parse(&str_field("expected")?)
            .ok_or("corpus entry: bad \"expected\" verdict")?;
        let ebda_certified = match v.get("ebda_certified") {
            Some(Value::Bool(b)) => *b,
            _ => return Err("corpus entry: missing \"ebda_certified\"".into()),
        };
        let provenance = str_field("provenance")?;
        let entry = CorpusEntry {
            name,
            family,
            radix,
            wrap,
            vcs,
            universe,
            turns,
            design,
            expected,
            ebda_certified,
            provenance,
        };
        let declared = str_field("hash")?;
        let actual = entry.hash_hex();
        if declared != actual {
            return Err(format!(
                "corpus entry {}: declared hash {declared} but content hashes to {actual}",
                entry.name
            ));
        }
        Ok(entry)
    }

    /// A compact one-line description for logs and reports.
    pub fn summary(&self) -> String {
        let shape: Vec<String> = self
            .radix
            .iter()
            .zip(&self.wrap)
            .map(|(r, w)| format!("{r}{}", if *w { "t" } else { "" }))
            .collect();
        format!(
            "{} [{}] on {} (vcs {:?}, {} classes, {} turns) expecting {}",
            self.name,
            self.family,
            shape.join("x"),
            self.vcs,
            self.universe.len(),
            self.turns.len(),
            self.expected,
        )
    }
}

fn join(items: impl IntoIterator<Item = String>) -> String {
    items.into_iter().collect::<Vec<_>>().join(", ")
}

fn num_array<T: TryFrom<u64>>(v: &Value, key: &str) -> Result<Vec<T>, String> {
    v.get(key)
        .and_then(Value::as_arr)
        .ok_or_else(|| format!("corpus entry: missing \"{key}\""))?
        .iter()
        .map(|x| {
            x.as_u64()
                .and_then(|n| T::try_from(n).ok())
                .ok_or_else(|| format!("corpus entry: bad number in \"{key}\""))
        })
        .collect()
}

fn str_array<'a>(v: &'a Value, key: &str) -> Result<Vec<&'a str>, String> {
    v.get(key)
        .and_then(Value::as_arr)
        .ok_or_else(|| format!("corpus entry: missing \"{key}\""))?
        .iter()
        .map(|x| {
            x.as_str()
                .ok_or_else(|| format!("corpus entry: non-string item in \"{key}\""))
        })
        .collect()
}

/// Parses the `from>to` turn rendering (the same notation `ebda certify
/// --turns` accepts).
fn parse_turn(s: &str) -> Result<Turn, String> {
    let (from, to) = s
        .split_once('>')
        .ok_or_else(|| format!("corpus entry: turn {s:?} needs a '>'"))?;
    let from = Channel::parse(from.trim()).map_err(|e| format!("corpus entry: turn {s:?}: {e}"))?;
    let to = Channel::parse(to.trim()).map_err(|e| format!("corpus entry: turn {s:?}: {e}"))?;
    Ok(Turn::new(from, to))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebda_core::catalog;
    use ebda_core::extract_turns;

    fn sample() -> CorpusEntry {
        let seq = catalog::dateline_design(&[4, 4], &[true, false]);
        let universe = seq.channels();
        let vcs = ebda_cdg::dally::infer_vcs(&universe, 2);
        let turns = extract_turns(&seq).unwrap().into_turn_set();
        CorpusEntry {
            name: "torus-dateline-00".into(),
            family: "torus-dateline".into(),
            radix: vec![4, 4],
            wrap: vec![true, false],
            vcs,
            universe,
            turns,
            design: Some(seq),
            expected: ExpectedVerdict::DeadlockFree,
            ebda_certified: true,
            provenance: "catalog::dateline_design([4,4],[t,f]); label proven by brute force".into(),
        }
    }

    #[test]
    fn json_round_trips() {
        let entry = sample();
        let text = entry.to_json();
        let back = CorpusEntry::from_json(&text).unwrap();
        assert_eq!(back, entry);
        // And serialization is idempotent byte-for-byte.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn tampered_hash_is_rejected() {
        let entry = sample();
        let text = entry
            .to_json()
            .replace(&entry.hash_hex(), "deadbeefdeadbeef");
        let err = CorpusEntry::from_json(&text).unwrap_err();
        assert!(err.contains("content hashes to"), "{err}");
    }

    #[test]
    fn wrong_format_version_is_rejected() {
        let text = sample()
            .to_json()
            .replace("\"format\": 1", "\"format\": 99");
        let err = CorpusEntry::from_json(&text).unwrap_err();
        assert!(err.contains("format v99"), "{err}");
    }

    #[test]
    fn artifact_conversion_preserves_the_problem() {
        let entry = sample();
        let a = entry.to_artifact(3);
        assert_eq!(a.id, 3);
        assert_eq!(a.radix, entry.radix);
        assert_eq!(a.turns, entry.turns);
        assert!(a.design.is_some());
        assert_eq!(a.topology().node_count(), 16);
    }

    #[test]
    fn verdict_names_round_trip() {
        for v in [ExpectedVerdict::DeadlockFree, ExpectedVerdict::Deadlocking] {
            assert_eq!(ExpectedVerdict::parse(v.name()), Some(v));
        }
        assert_eq!(ExpectedVerdict::parse("maybe"), None);
    }
}
