//! Golden-file tests pinning the verdict-provenance format.
//!
//! Three contracts at once: the canonical single-line provenance JSON
//! (key order, field spellings, hop encoding), the run-ledger record
//! line built around it, and the `ebda explain` narrative. Any
//! intentional format change must bump
//! [`ebda_oracle::provenance::PROVENANCE_FORMAT`] (or the ledger's
//! `LEDGER_FORMAT`) and regenerate the golden files in the same commit:
//!
//! ```text
//! EBDA_BLESS=1 cargo test -p ebda-oracle --test provenance_golden
//! ```

use ebda_cdg::dally::infer_vcs;
use ebda_core::{catalog, extract_turns, Channel, TurnSet};
use ebda_obs::LedgerRecord;
use ebda_oracle::artifact::{Artifact, ArtifactKind};
use ebda_oracle::verdict::{evaluate, Mutation};
use ebda_oracle::Provenance;

/// XY routing on a 3x3 mesh: deadlock-free, and EbDa-certifiable because
/// nothing wraps — the positive side exercises both the channel-ordering
/// and the EbDa-certificate obligations.
fn positive() -> Provenance {
    let seq = catalog::p1_xy();
    let ex = extract_turns(&seq).expect("XY extracts");
    let universe = seq.channels();
    let artifact = Artifact {
        id: 0,
        kind: ArtifactKind::Partitioning,
        radix: vec![3, 3],
        wrap: vec![false, false],
        vcs: infer_vcs(&universe, 2),
        universe,
        turns: ex.turn_set().clone(),
        design: Some(seq),
    };
    let verdicts = evaluate(&artifact, Mutation::None);
    assert!(verdicts.brute.is_deadlock_free(), "XY on a mesh is free");
    Provenance::from_artifact(&artifact, &verdicts)
}

/// A unidirectional 4-node wrap ring with no dateline: the canonical
/// deadlocking shape, whose witness is the ring itself.
fn negative() -> Provenance {
    let artifact = Artifact {
        id: 1,
        kind: ArtifactKind::RandomTurns,
        radix: vec![4],
        wrap: vec![true],
        vcs: vec![1],
        universe: vec![Channel::parse("X1+").expect("parses")],
        turns: TurnSet::new(),
        design: None,
    };
    let verdicts = evaluate(&artifact, Mutation::None);
    assert!(!verdicts.brute.is_deadlock_free(), "wrap ring deadlocks");
    Provenance::from_artifact(&artifact, &verdicts)
}

/// Compares `got` against the checked-in golden file, or rewrites the
/// file when `EBDA_BLESS` is set.
fn golden(name: &str, got: &str, want: &str) {
    if std::env::var_os("EBDA_BLESS").is_some() {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("tests/golden")
            .join(name);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, got).unwrap();
        return;
    }
    assert_eq!(
        got, want,
        "tests/golden/{name} drifted — if intentional, bump the format \
         version and rerun with EBDA_BLESS=1"
    );
}

#[test]
fn positive_provenance_json_is_pinned() {
    let prov = positive();
    golden(
        "provenance_xy_mesh3x3.json",
        &format!("{}\n", prov.to_json()),
        include_str!("golden/provenance_xy_mesh3x3.json"),
    );
    // The pinned document round-trips and passes the independent checker
    // with both positive methods.
    let back = Provenance::from_json(prov.to_json().as_str()).unwrap();
    let report = back.check().unwrap();
    assert!(report.deadlock_free);
    assert_eq!(report.methods, vec!["channel-ordering", "ebda-certificate"]);
}

#[test]
fn ledger_record_lines_are_pinned() {
    // git_rev is pinned to a placeholder: the golden bytes must not
    // depend on the commit the test runs from.
    let records: Vec<LedgerRecord> = [positive(), negative()]
        .into_iter()
        .enumerate()
        .map(|(i, prov)| LedgerRecord {
            index: i as u64,
            source: "oracle".into(),
            name: format!("golden artifact {i}"),
            git_rev: "0000000".into(),
            seed: 7,
            verdict: prov.verdict_str().into(),
            evidence: if prov.deadlock_free {
                "certificate".into()
            } else {
                "witness".into()
            },
            hash: prov.hash_hex(),
            gfp_sweeps: prov.brute.sweeps as u64,
            wait_pairs: prov.brute.pairs as u64,
            coverage: String::new(),
            provenance: prov.to_json(),
        })
        .collect();
    let got: String = records
        .iter()
        .map(|r| format!("{}\n", r.to_line()))
        .collect();
    golden("ledger.jsonl", &got, include_str!("golden/ledger.jsonl"));
    // Every pinned line parses back and its evidence re-validates
    // independently — exactly what `ebda check-cert` does.
    for line in got.lines() {
        let rec = LedgerRecord::from_line(line).unwrap();
        let prov = Provenance::from_json(&rec.provenance).unwrap();
        assert_eq!(rec.hash, prov.hash_hex());
        assert_eq!(rec.verdict, prov.verdict_str());
        prov.check()
            .unwrap_or_else(|e| panic!("record #{}: {e}", rec.index));
    }
}

#[test]
fn explain_narratives_are_pinned() {
    let got = format!(
        "{}\n---\n{}\n",
        positive().narrative(),
        negative().narrative()
    );
    golden("explain.txt", &got, include_str!("golden/explain.txt"));
}
