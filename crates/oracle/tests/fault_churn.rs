//! Mid-run fault churn under the live watchdog, and its agreement with
//! the brute-force oracle through replay.
//!
//! Three claims pinned down here:
//!
//! 1. A dateline torus taking link failures mid-run stays deadlock-free,
//!    accounts for every packet, and actually drops some (the faults are
//!    not decorative).
//! 2. The whole faulted, watchdog-armed run is byte-deterministic across
//!    `ebda-par` thread counts — the worker pool may never leak into
//!    simulation results.
//! 3. On a genuine wrap-ring deadlock, the oracle's replay pipeline
//!    reports `watchdog_agrees == Some(true)`: the online watchdog's
//!    suspected cycle names the same channels as the brute-force witness.

use ebda_core::{catalog, Dimension, Direction};
use ebda_obs::JourneyConfig;
use ebda_oracle::artifact::{Artifact, ArtifactKind};
use ebda_oracle::differential::replay_artifact;
use ebda_routing::{Topology, TurnRouting};
use noc_sim::{simulate, SimConfig};

/// A 4x4 dateline torus run with two links failing mid-run and the
/// online watchdog armed.
fn churn_cfg() -> SimConfig {
    SimConfig {
        injection_rate: 0.08,
        warmup: 100,
        measurement: 600,
        drain: 2_500,
        deadlock_threshold: 900,
        watchdog_window: 150,
        fault_schedule: vec![
            (250, 5, Dimension::X, Direction::Plus),
            (400, 10, Dimension::Y, Direction::Minus),
        ],
        ..SimConfig::default()
    }
}

#[test]
fn dateline_torus_survives_fault_churn() {
    let topo = Topology::torus(&[4, 4]);
    let design = catalog::dateline_design(&[4, 4], &[true, true]);
    let routing = TurnRouting::from_design("dateline", &design).unwrap();
    let result = simulate(&topo, &routing, &churn_cfg());
    assert!(
        result.outcome.is_deadlock_free(),
        "outcome: {:?}",
        result.outcome
    );
    assert!(
        result.dropped_packets > 0,
        "faults should sever live wormholes"
    );
    assert_eq!(
        result.delivered_packets + result.dropped_packets,
        result.injected_packets,
        "every packet must be delivered or accounted as dropped"
    );
}

/// The faulted, watchdog-armed run renders byte-identically whatever the
/// `ebda-par` pool size is — simulation must be independent of the
/// worker count that other layers (campaign, shrinking) use.
#[test]
fn faulted_run_is_byte_identical_across_thread_counts() {
    let topo = Topology::torus(&[4, 4]);
    let design = catalog::dateline_design(&[4, 4], &[true, true]);
    let routing = TurnRouting::from_design("dateline", &design).unwrap();
    let render = |threads: usize| -> String {
        ebda_par::set_threads(threads);
        let result = simulate(&topo, &routing, &churn_cfg());
        format!("{result}\nheat:{:?}", result.channel_flits)
    };
    let serial = render(1);
    let parallel = render(8);
    assert_eq!(serial, parallel, "thread count leaked into the simulation");
}

/// The fault schedule above, re-verified structurally: after each link
/// failure the incremental verifier's dirty-SCC verdict must match a
/// from-scratch CDG rebuild on the faulted topology — the same
/// query/apply pattern `incr::verify_fault_schedule` feeds the churn
/// replays with.
#[test]
fn fault_schedule_verdicts_match_full_rebuild() {
    use ebda_oracle::incr::verify_fault_schedule;

    // Single-VC torus rings (cyclic base, like the wrap-ring artifact
    // below) and the empty-turn dateline-free mesh (acyclic base).
    let cyclic = Artifact {
        id: 0,
        kind: ArtifactKind::RandomTurns,
        radix: vec![4, 4],
        wrap: vec![true, true],
        vcs: vec![1, 1],
        universe: ebda_core::parse_channels("X+ X- Y+ Y-").unwrap(),
        turns: ebda_core::extract_turns(&catalog::dateline_design(&[4, 4], &[false, false]))
            .unwrap()
            .into_turn_set(),
        design: None,
    };
    let acyclic = Artifact {
        wrap: vec![false, false],
        ..cyclic.clone()
    };
    let faults = [
        (5usize, Dimension::X, Direction::Plus),
        (10, Dimension::Y, Direction::Minus),
        (0, Dimension::X, Direction::Minus),
        (1, Dimension::X, Direction::Plus),
        (2, Dimension::X, Direction::Plus),
        (3, Dimension::X, Direction::Plus),
    ];
    for artifact in [&cyclic, &acyclic] {
        let incr = verify_fault_schedule(artifact, &faults);
        let mut topo = artifact.topology();
        let full: Vec<bool> = faults
            .iter()
            .map(|&(node, dim, dir)| {
                topo = topo.clone().with_failed_link(node, dim, dir);
                ebda_cdg::verify_turn_set(&topo, &artifact.vcs, &artifact.universe, &artifact.turns)
                    .is_deadlock_free()
            })
            .collect();
        assert_eq!(incr, full, "artifact wrap={:?}", artifact.wrap);
    }
    // The cyclic torus chain must actually flip: knocking out every X+
    // link of row 0's ring plus the X- link at node 0 breaks that wrap
    // ring; earlier verdicts stay deadlocked thanks to the other rings.
    let verdicts = verify_fault_schedule(&cyclic, &faults);
    assert!(!verdicts[0], "two faults leave other wrap rings cyclic");
}

/// Replay of a wrap-ring deadlock artifact: the online watchdog's
/// suspected wait cycle must agree with the brute-force witness.
#[test]
fn watchdog_agrees_with_brute_on_replayed_wrap_ring() {
    // The classic single-VC torus rings: every dimension-order turn
    // allowed, no dateline, so each wrap ring is a circular wait.
    let design = catalog::dateline_design(&[4, 4], &[false, false]);
    let artifact = Artifact {
        id: 0,
        kind: ArtifactKind::RandomTurns,
        radix: vec![4, 4],
        wrap: vec![true, true],
        vcs: vec![1, 1],
        universe: ebda_core::parse_channels("X+ X- Y+ Y-").unwrap(),
        turns: ebda_core::extract_turns(&design).unwrap().into_turn_set(),
        design: None,
    };
    let replay = replay_artifact(&artifact, 7, JourneyConfig::default())
        .expect("a deadlocking artifact must replay");
    assert_eq!(
        replay.watchdog_agrees,
        Some(true),
        "watchdog and brute force must name the same circular wait"
    );
}
