//! End-to-end differential-oracle runs: a clean campaign at the CI seed,
//! and one campaign per mutation proving a deliberately broken checker is
//! caught, shrunk, and replayed.

use ebda_oracle::differential::{run_campaign, CampaignConfig};
use ebda_oracle::verdict::Mutation;
use std::time::Duration;

fn base(mutation: Mutation) -> CampaignConfig {
    CampaignConfig {
        seed: 7,
        budget: Duration::ZERO,
        min_configs: 120,
        max_configs: 2_000,
        max_nodes: 25,
        mutation,
        journey_sample_rate: 1.0,
        threads: 0,
        ledger: None,
        coverage: None,
        coverage_guided: false,
    }
}

#[test]
fn campaign_at_the_ci_seed_is_clean() {
    let report = run_campaign(&base(Mutation::None));
    assert!(report.is_clean(), "unexpected disagreement:\n{report}");
    assert_eq!(report.configs, 120);
    // The stream must exercise all three artifact kinds and both verdict
    // outcomes, or the campaign is not actually differential.
    assert!(report.partitionings > 0);
    assert!(report.orderings > 0);
    assert!(report.random_turns > 0);
    assert!(report.deadlock_free > 0);
    assert!(report.deadlocking > 0);
    assert!(report.ebda_accepted > 0);
}

#[test]
fn clean_campaigns_are_reproducible_from_the_seed() {
    let a = run_campaign(&base(Mutation::None));
    let b = run_campaign(&base(Mutation::None));
    assert_eq!(a.configs, b.configs);
    assert_eq!(a.deadlock_free, b.deadlock_free);
    assert_eq!(a.deadlocking, b.deadlocking);
    assert_eq!(a.ebda_accepted, b.ebda_accepted);
    assert_eq!(a.duato_connected, b.duato_connected);
}

/// Runs a mutated campaign until the broken checker is caught, then checks
/// the full investigation pipeline: shrunk witness no larger than the
/// original, still disagreeing, and replayed through the simulator.
fn assert_mutation_is_caught(mutation: Mutation, rule: &str) {
    let cfg = CampaignConfig {
        // Generous ceilings: the stream stops at the first disagreement.
        min_configs: 2_000,
        ..base(mutation)
    };
    let report = run_campaign(&cfg);
    let caught = report
        .caught
        .as_ref()
        .unwrap_or_else(|| panic!("{mutation} was not caught in {} configs", report.configs));
    assert_eq!(caught.disagreement.rule, rule, "{}", caught.disagreement);
    // The shrunk witness is no larger than the original on every axis the
    // shrinker works on, and still triggers the same cross-check.
    assert!(caught.shrunk.universe.len() <= caught.artifact.universe.len());
    assert!(caught.shrunk.turns.len() <= caught.artifact.turns.len());
    assert!(caught.shrunk.node_count() <= caught.artifact.node_count());
    let verdicts = ebda_oracle::verdict::evaluate(&caught.shrunk, mutation);
    let again = ebda_oracle::verdict::cross_check(&caught.shrunk, &verdicts)
        .expect("the shrunk witness must still disagree");
    assert_eq!(again.rule, rule);
    // The replay makes the abstract disagreement concrete: the simulator
    // deadlocks on the shrunk artifact and the flight recorder holds the
    // wait-for edges of the diagnosed cycle.
    let replay = caught
        .replay
        .as_ref()
        .expect("a shrunk counterexample must be routable");
    assert!(
        replay.deadlocked,
        "replay of the shrunk witness did not deadlock"
    );
    assert!(replay.wait_cycle.len() >= 2);
    assert_eq!(replay.wait_edges, replay.wait_cycle.len());
    assert!(replay.trace_json.contains("\"events\""));
    // And the human-readable report mentions all of it.
    let text = report.to_string();
    assert!(text.contains("DISAGREEMENT"), "{text}");
    assert!(text.contains("shrunk:"), "{text}");
    assert!(text.contains("deadlocked in the simulator"), "{text}");
}

#[test]
fn a_dally_checker_that_ignores_wraparound_is_caught() {
    assert_mutation_is_caught(Mutation::DallyIgnoresWrap, "dally-vs-brute");
}

#[test]
fn an_ebda_checker_that_skips_theorem_1_is_caught() {
    assert_mutation_is_caught(Mutation::EbdaSkipsTheorem1, "ebda-vs-brute");
}
