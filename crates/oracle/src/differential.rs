//! The differential campaign: generate, cross-check, shrink, replay.
//!
//! [`run_campaign`] is the oracle's single entry point, shared by the
//! `oracle` bench binary, the integration tests and CI: it draws artifacts
//! from the deterministic [`Generator`](crate::artifact::Generator) stream,
//! pushes each through all four verdict paths, and stops loudly at the
//! first cross-check violation — which it then minimizes with
//! [`crate::shrink`] and replays through the wormhole simulator with a
//! flight recorder attached, so the abstract disagreement arrives as a
//! concrete, watchable wait cycle.

use crate::artifact::{Artifact, ArtifactKind, Generator};
use crate::brute::BruteChannel;
use crate::provenance::Provenance;
use crate::shrink::DEFAULT_SHRINK_BUDGET;
use crate::verdict::{cross_check, evaluate, Disagreement, Mutation};
use ebda_obs::{JourneyConfig, Rng64, TraceBuilder};
use ebda_routing::{PortVc, RouteChoice, RouteState, RoutingRelation, TurnRouting, INJECT};
use noc_sim::{
    replay_traced, wait_edge_count, BufferPolicy, ChannelCoord, Outcome, SimConfig, TrafficPattern,
};
use std::fmt;
use std::time::{Duration, Instant};

/// Configuration of one differential campaign.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Seed of the artifact stream (and of the replay traffic).
    pub seed: u64,
    /// Wall-clock budget; generation continues until it is exhausted
    /// *and* `min_configs` artifacts have been checked.
    pub budget: Duration,
    /// Minimum number of artifacts to check even if the budget runs out.
    pub min_configs: usize,
    /// Hard ceiling on artifacts checked (budget notwithstanding).
    pub max_configs: usize,
    /// Node ceiling for generated topologies.
    pub max_nodes: usize,
    /// Optional deliberately-broken checker (see [`Mutation`]).
    pub mutation: Mutation,
    /// Fraction of replayed packets whose journeys are traced, in
    /// `[0, 1]`; replays are small, so tracing everything is the default.
    pub journey_sample_rate: f64,
    /// Worker threads for artifact checking and shrinking; 0 resolves via
    /// [`ebda_par::threads`] (`--threads` / `EBDA_THREADS` / hardware).
    pub threads: usize,
    /// When set, append one [`ebda_obs::ledger`] record per verdict —
    /// in stream order, so ledger bytes are identical at any thread
    /// count. Speculative evaluations past a first disagreement are
    /// discarded, exactly like the tallies.
    pub ledger: Option<std::path::PathBuf>,
    /// When set, write the campaign's merged coverage map (see
    /// [`ebda_obs::coverage`]) to this file as canonical JSON. Workers
    /// extract per-artifact coverage in parallel; the coordinator
    /// merges in stream order, so the map bytes are identical at any
    /// thread count.
    pub coverage: Option<std::path::PathBuf>,
    /// Bias the artifact generator toward unseen design-space shape
    /// bins: for each stream slot, up to a fixed number of candidates
    /// are drawn and the first whose [`crate::coverage::shape_bin`] is
    /// new this campaign is kept. Fully seed-deterministic — the extra
    /// draws come from the same stream. Implies coverage tracking (the
    /// report carries the map) even without a `coverage` path.
    pub coverage_guided: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 7,
            budget: Duration::from_secs(10),
            min_configs: 500,
            max_configs: usize::MAX,
            max_nodes: 36,
            mutation: Mutation::None,
            journey_sample_rate: 1.0,
            threads: 0,
            ledger: None,
            coverage: None,
            coverage_guided: false,
        }
    }
}

/// The replayed counterexample: what the simulator observed when the
/// shrunk artifact's relation was flooded with traffic.
#[derive(Debug, Clone)]
pub struct Replay {
    /// Whether the watchdog declared a deadlock.
    pub deadlocked: bool,
    /// The diagnosed circular wait (one entry per blocked packet).
    pub wait_cycle: Vec<String>,
    /// Wait-for edges captured by the flight recorder.
    pub wait_edges: usize,
    /// Times the *online* stall watchdog tripped before the verdict.
    pub watchdog_trips: u64,
    /// The online watchdog's suspected wait cycle (edge labels), captured
    /// while the run was still going.
    pub suspected_cycle: Vec<String>,
    /// Whether the online suspicion names only channels of the
    /// brute-force witness cycle: `Some(true)` when every suspected
    /// channel is a witness channel, `Some(false)` when the suspicion
    /// strayed, `None` when there was no witness or no trip to compare.
    pub watchdog_agrees: Option<bool>,
    /// The replay's packet journeys as Chrome Trace Event Format JSON
    /// (loadable in Perfetto / `chrome://tracing`).
    pub journey_json: String,
    /// The full recorder document (events + samples + totals) as JSON.
    pub trace_json: String,
    /// The replay's `sim_event` coverage contribution (see
    /// [`noc_sim::replay_coverage`]), merged into the campaign map when
    /// coverage tracking is on.
    pub sim_coverage: ebda_obs::CoverageMap,
}

/// A disagreement, its shrunk form, and the replay evidence.
#[derive(Debug, Clone)]
pub struct CaughtDisagreement {
    /// The artifact as generated.
    pub artifact: Artifact,
    /// The 1-minimal artifact that still disagrees.
    pub shrunk: Artifact,
    /// The violated rule, re-evaluated on the shrunk artifact.
    pub disagreement: Disagreement,
    /// Simulator replay of the shrunk artifact, when it was routable.
    pub replay: Option<Replay>,
}

/// Tallies and outcome of one campaign.
#[derive(Debug, Clone, Default)]
pub struct CampaignReport {
    /// Artifacts checked.
    pub configs: usize,
    /// Of which partitionings / channel orderings / random turn relations.
    pub partitionings: usize,
    /// Channel-ordering artifacts checked.
    pub orderings: usize,
    /// Random-turn-relation artifacts checked.
    pub random_turns: usize,
    /// Artifacts all four paths found deadlock-free.
    pub deadlock_free: usize,
    /// Artifacts with an agreed-on deadlock.
    pub deadlocking: usize,
    /// Partitioning artifacts EbDa accepted.
    pub ebda_accepted: usize,
    /// Artifacts whose full relation also satisfied Duato's connectivity.
    pub duato_connected: usize,
    /// Wall-clock milliseconds spent.
    pub elapsed_ms: u128,
    /// Artifacts whose design-space bin was new to this campaign —
    /// new-coverage-per-artifact. Zero when coverage tracking is off.
    pub bin_opening_artifacts: usize,
    /// The merged coverage map, when the campaign tracked coverage
    /// (`coverage` path set or `coverage_guided` on).
    pub coverage: Option<ebda_obs::CoverageMap>,
    /// The first cross-check violation, if any.
    pub caught: Option<CaughtDisagreement>,
}

impl CampaignReport {
    /// Returns `true` when every artifact passed every cross-check.
    pub fn is_clean(&self) -> bool {
        self.caught.is_none()
    }
}

impl fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "checked {} configurations in {} ms ({} partitionings, {} orderings, {} random relations)",
            self.configs, self.elapsed_ms, self.partitionings, self.orderings, self.random_turns
        )?;
        write!(
            f,
            "verdicts: {} deadlock-free, {} deadlocking; {} EbDa-accepted, {} Duato-connected",
            self.deadlock_free, self.deadlocking, self.ebda_accepted, self.duato_connected
        )?;
        if let Some(map) = &self.coverage {
            write!(
                f,
                "\ncoverage: {} design-space bins ({} bin-opening artifacts), {} points total, digest {}",
                map.covered("design_bin"),
                self.bin_opening_artifacts,
                map.total_points(),
                map.digest()
            )?;
        }
        match &self.caught {
            None => write!(f, "\nall verdict paths agreed on every configuration"),
            Some(c) => {
                writeln!(f, "\nDISAGREEMENT {}", c.disagreement)?;
                writeln!(f, "  original: {}", c.artifact.summary())?;
                write!(f, "  shrunk:   {}", c.shrunk.summary())?;
                if let Some(r) = &c.replay {
                    write!(
                        f,
                        "\n  replay:   {}, {} wait-for edges recorded",
                        if r.deadlocked {
                            "deadlocked in the simulator"
                        } else {
                            "did not deadlock in the simulator"
                        },
                        r.wait_edges
                    )?;
                    for w in &r.wait_cycle {
                        write!(f, "\n    {w}")?;
                    }
                    if r.watchdog_trips > 0 {
                        write!(
                            f,
                            "\n  watchdog: tripped {}x online{}",
                            r.watchdog_trips,
                            match r.watchdog_agrees {
                                Some(true) => ", suspicion matches the brute-force witness",
                                Some(false) => ", suspicion STRAYS from the brute-force witness",
                                None => "",
                            }
                        )?;
                    }
                }
                Ok(())
            }
        }
    }
}

/// Runs a differential campaign (see the module docs). This is the entry
/// point everything else wraps: the `oracle` binary, the crate's
/// integration tests and the CI job all call it with different budgets.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignReport {
    let _span = ebda_obs::span("oracle.campaign");
    let start = Instant::now();
    let threads = if cfg.threads == 0 {
        ebda_par::threads()
    } else {
        cfg.threads
    };
    // Artifacts are generated sequentially from the deterministic stream,
    // then checked in parallel batches; tallies and the first-disagreement
    // scan walk the batch in stream order, so the report is independent of
    // the thread count. The batch size is a constant (never derived from
    // `threads`) because it shapes how a budget-bound campaign rounds off.
    const BATCH: usize = 16;
    let mut generator = Generator::with_max_nodes(cfg.seed, cfg.max_nodes);
    let mut report = CampaignReport::default();
    let git_rev = cfg.ledger.as_ref().map(|_| ebda_obs::ledger::git_rev());
    let mut records: Vec<ebda_obs::LedgerRecord> = Vec::new();
    let with_coverage = cfg.coverage.is_some() || cfg.coverage_guided;
    let mut coverage_map = with_coverage.then(|| {
        ebda_obs::CoverageMap::new(format!(
            "oracle-seed-{}-mutation-{}",
            cfg.seed, cfg.mutation
        ))
    });
    // Shape bins seen at *generation* time (guided mode steers by these)
    // and design bins seen at *tally* time (new-coverage-per-artifact).
    let mut seen_shapes: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    let mut seen_bins: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    // How many candidates a guided slot may draw before settling: enough
    // to skip well-trodden shapes, bounded so generation stays cheap.
    const GUIDED_DRAWS: usize = 6;
    'campaign: while (start.elapsed() < cfg.budget || report.configs < cfg.min_configs)
        && report.configs < cfg.max_configs
    {
        let mut n = BATCH.min(cfg.max_configs - report.configs);
        if start.elapsed() >= cfg.budget {
            // Only the min-configs floor keeps us going: stop exactly at
            // it, like the serial per-artifact loop did (and like
            // config-count-bound determinism tests require).
            n = n.min(cfg.min_configs - report.configs);
        }
        let artifacts: Vec<Artifact> = {
            let _p = ebda_obs::prof::phase("oracle/generate");
            ebda_obs::prof::work("oracle/generate", "artifacts", n as u64);
            (0..n)
                .map(|_| {
                    if !cfg.coverage_guided {
                        return generator.next_artifact();
                    }
                    // Guided: rejection-sample the stream toward unseen
                    // shape bins. Generation stays sequential on the
                    // coordinator, so this is seed-deterministic and
                    // thread-count-independent.
                    let mut pick = generator.next_artifact();
                    let mut draws = 1;
                    while draws < GUIDED_DRAWS
                        && seen_shapes.contains(&crate::coverage::shape_bin(&pick))
                    {
                        pick = generator.next_artifact();
                        draws += 1;
                    }
                    seen_shapes.insert(crate::coverage::shape_bin(&pick));
                    pick
                })
                .collect()
        };
        let with_provenance = cfg.ledger.is_some();
        let batch = ebda_par::parallel_map(threads, &artifacts, |_, a| {
            let v = evaluate(a, cfg.mutation);
            let prov = with_provenance.then(|| Provenance::from_artifact(a, &v));
            let cov = with_coverage.then(|| crate::coverage::artifact_coverage(a, &v));
            (v, prov, cov)
        });
        for (artifact, (verdicts, prov, cov)) in artifacts.iter().zip(&batch) {
            report.configs += 1;
            ebda_obs::counter_add("oracle.configs", 1);
            ebda_obs::metrics::counter_add("ebda_oracle_artifacts_checked_total", &[], 1);
            match artifact.kind {
                ArtifactKind::Partitioning => report.partitionings += 1,
                ArtifactKind::ChannelOrdering => report.orderings += 1,
                ArtifactKind::RandomTurns => report.random_turns += 1,
            }
            if verdicts.brute.is_deadlock_free() {
                report.deadlock_free += 1;
            } else {
                report.deadlocking += 1;
                ebda_obs::metrics::counter_add("ebda_oracle_deadlocking_artifacts_total", &[], 1);
            }
            if verdicts.ebda.as_ref().is_some_and(|e| e.is_deadlock_free()) {
                report.ebda_accepted += 1;
            }
            if verdicts.duato.escape_connected {
                report.duato_connected += 1;
            }
            if let (Some(map), Some(cov)) = (coverage_map.as_mut(), cov) {
                // Merged in stream order on the coordinator, so the map
                // is byte-identical at any thread count.
                map.merge(cov);
                if seen_bins.insert(crate::coverage::design_bin(artifact, verdicts)) {
                    report.bin_opening_artifacts += 1;
                }
            }
            if let Some(prov) = prov {
                // Records are assembled in stream order so the ledger's
                // bytes never depend on the thread count; `index` is
                // stamped by `ledger::append`.
                records.push(ebda_obs::LedgerRecord {
                    index: 0,
                    source: "oracle".into(),
                    name: artifact.summary(),
                    git_rev: git_rev.clone().unwrap_or_default(),
                    seed: cfg.seed,
                    verdict: prov.verdict_str().into(),
                    evidence: if prov.deadlock_free {
                        "certificate".into()
                    } else {
                        "witness".into()
                    },
                    hash: prov.hash_hex(),
                    gfp_sweeps: verdicts.brute.sweeps as u64,
                    wait_pairs: verdicts.brute.pairs as u64,
                    coverage: cov.as_ref().map(|c| c.digest()).unwrap_or_default(),
                    provenance: prov.to_json(),
                });
            }
            if cross_check(artifact, verdicts).is_some() {
                ebda_obs::counter_add("oracle.disagreements", 1);
                ebda_obs::metrics::counter_add("ebda_oracle_disagreements_total", &[], 1);
                report.caught = Some(investigate(artifact, cfg, threads));
                // Later artifacts of this batch were checked speculatively;
                // they are not tallied, exactly as if never generated.
                break 'campaign;
            }
        }
    }
    if let Some(path) = &cfg.ledger {
        // The break-on-disagreement path lands here too: everything tallied
        // before the disagreement is persisted.
        if let Err(e) = ebda_obs::ledger::append(path, &records) {
            eprintln!("oracle: ledger append failed: {e}");
        }
    }
    if let Some(map) = &mut coverage_map {
        // A caught disagreement was replayed through the simulator: its
        // sim_event coverage belongs to the campaign map too.
        if let Some(replay) = report.caught.as_ref().and_then(|c| c.replay.as_ref()) {
            map.merge(&replay.sim_coverage);
        }
        map.publish_metrics();
        if let Some(path) = &cfg.coverage {
            if let Err(e) = map.write_file(path) {
                eprintln!("oracle: coverage write failed: {e}");
            }
        }
        report.coverage = coverage_map;
    }
    report.elapsed_ms = start.elapsed().as_millis();
    report
}

/// Shrinks a disagreeing artifact and replays the result.
fn investigate(artifact: &Artifact, cfg: &CampaignConfig, threads: usize) -> CaughtDisagreement {
    let shrunk = {
        let _p = ebda_obs::prof::phase("oracle/shrink");
        // Turn/channel-drop candidates are answered by dirty-SCC queries
        // on the parent's CDG; the accepted chain (and every byte
        // downstream) is identical to the full-evaluate predicate.
        crate::incr::shrink_disagreement(artifact, cfg.mutation, DEFAULT_SHRINK_BUDGET, threads)
    };
    ebda_obs::metrics::counter_add("ebda_oracle_artifacts_shrunk_total", &[], 1);
    let verdicts = evaluate(&shrunk, cfg.mutation);
    let disagreement = cross_check(&shrunk, &verdicts)
        .expect("the shrinker only keeps artifacts that still disagree");
    let journeys = JourneyConfig {
        sample_rate: cfg.journey_sample_rate,
        ..JourneyConfig::default()
    };
    let replay = {
        let _p = ebda_obs::prof::phase("oracle/replay");
        replay_artifact(&shrunk, cfg.seed, journeys)
    };
    CaughtDisagreement {
        artifact: artifact.clone(),
        shrunk,
        disagreement,
        replay,
    }
}

/// Drives packets along a brute-force witness cycle, U-turns and all.
///
/// Shortest-path routing never exercises a dependency that only appears on
/// non-minimal walks (a U-turn cycle, say), so a structural witness can be
/// invisible to ordinary traffic. This relation makes any witness concrete:
/// a packet injected at cycle position `i` claims channel `i` and then
/// requests channel `i + 1` — exactly the hold-and-wait pattern of the
/// configuration the searcher found. Destinations are chosen off the cycle,
/// so walker packets never eject and sustained injection must wedge.
struct WitnessWalker {
    universe: Vec<ebda_core::Channel>,
    cycle: Vec<BruteChannel>,
}

impl RoutingRelation for WitnessWalker {
    fn name(&self) -> &str {
        "witness-walker"
    }

    fn universe(&self) -> &[ebda_core::Channel] {
        &self.universe
    }

    fn route(
        &self,
        _topo: &ebda_cdg::topology::Topology,
        node: usize,
        state: RouteState,
        _src: usize,
        _dst: usize,
    ) -> Vec<RouteChoice> {
        let l = self.cycle.len();
        let choice = |i: usize| RouteChoice {
            port: PortVc {
                dim: self.cycle[i].dim,
                dir: self.cycle[i].dir,
                vc: self.cycle[i].vc,
            },
            state: i as RouteState,
        };
        if state == INJECT {
            (0..l)
                .filter(|&i| self.cycle[i].from == node)
                .map(choice)
                .collect()
        } else {
            let j = (state as usize + 1) % l;
            if self.cycle[j].from == node {
                vec![choice(j)]
            } else {
                Vec::new()
            }
        }
    }
}

/// Replays an artifact through the wormhole simulator with a flight
/// recorder attached. When the brute searcher finds a witness cycle, the
/// replay drives packets along it (see [`WitnessWalker`]); otherwise it
/// floods the artifact's own relation with burst traffic, which a
/// deadlock-free design drains cleanly. The run carries a journey tracer
/// (`journeys` controls its sampling) and an online stall watchdog whose
/// suspected wait cycle is cross-checked against the brute-force witness
/// (see [`Replay::watchdog_agrees`]). Returns `None` when there is
/// nothing to simulate (empty universe, or no routable pair).
pub fn replay_artifact(artifact: &Artifact, seed: u64, journeys: JourneyConfig) -> Option<Replay> {
    /// One scripted packet: (injection cycle, source node, destination node).
    type Injection = (u64, usize, usize);
    if artifact.universe.is_empty() {
        return None;
    }
    let topo = artifact.topology();
    let brute = crate::brute::search(&topo, &artifact.vcs, &artifact.universe, &artifact.turns);
    let witness = brute.witness.clone();
    let (relation, events): (Box<dyn RoutingRelation>, Vec<Injection>) = match brute.witness {
        Some(cycle) => {
            // One packet per cycle position, all injected in the same
            // instant so every channel of the circular wait is claimed
            // at once; repeated rounds re-pressure partial wedges.
            // Destinations sit off the cycle (walker packets must
            // never eject), falling back to any node that is neither
            // the source nor the first hop.
            let off_cycle =
                (0..topo.node_count()).find(|n| !cycle.iter().any(|c| c.from == *n || c.to == *n));
            let mut events = Vec::new();
            for round in 0..10u64 {
                for c in &cycle {
                    let dst = off_cycle
                        .or_else(|| (0..topo.node_count()).find(|&n| n != c.from && n != c.to))?;
                    events.push((round * 25, c.from, dst));
                }
            }
            let walker = WitnessWalker {
                universe: artifact.universe.clone(),
                cycle,
            };
            (Box::new(walker), events)
        }
        None => {
            // No structural deadlock: flood the artifact's own relation
            // with rounds of simultaneous all-pairs bursts, the most
            // wedge-prone traffic shape (in steady flow, in-network
            // heads outrank fresh injections at VC allocation, so only
            // simultaneous claims on idle channels could ever close a
            // cycle). A sound deadlock-free verdict drains every round.
            let routing = TurnRouting::new(
                "oracle-replay",
                artifact.universe.clone(),
                artifact.turns.clone(),
            );
            let n = topo.node_count();
            let mut pool = Vec::new();
            let mut short = Vec::new();
            for src in 0..n {
                for dst in 0..n {
                    match (src != dst).then(|| routing.legal_distance(&topo, src, INJECT, dst)) {
                        Some(Some(d)) if d >= 2 => pool.push((src, dst)),
                        Some(Some(_)) => short.push((src, dst)),
                        _ => {}
                    }
                }
            }
            // Prefer multi-hop pairs: only a wormhole spanning several
            // channels can hold one while waiting for another.
            if pool.is_empty() {
                pool = short;
            }
            if pool.is_empty() {
                return None;
            }
            let mut rng = Rng64::new(seed ^ 0x0ACC1E);
            let mut events = Vec::new();
            const ROUNDS: u64 = 12;
            const ROUND_GAP: u64 = 100;
            const BURST_CAP: usize = 128;
            for round in 0..ROUNDS {
                let mut order: Vec<usize> = (0..pool.len()).collect();
                for i in (1..order.len()).rev() {
                    order.swap(i, rng.gen_index(i + 1));
                }
                order.truncate(BURST_CAP);
                for &k in &order {
                    let (src, dst) = pool[k];
                    events.push((round * ROUND_GAP, src, dst));
                }
            }
            (Box::new(routing), events)
        }
    };
    let sim_cfg = SimConfig {
        traffic: TrafficPattern::trace(events),
        packet_length: 8,
        buffer_depth: 2,
        buffer_policy: BufferPolicy::MultiPacket,
        warmup: 0,
        measurement: 2_000,
        drain: 1_000,
        deadlock_threshold: 300,
        watchdog_window: 150,
        seed,
        ..SimConfig::default()
    };
    let (result, recorder) = replay_traced(&topo, relation.as_ref(), &sim_cfg, Some(journeys));
    let sim_coverage = noc_sim::replay_coverage(&result, &recorder);
    let watchdog_agrees = witness
        .as_ref()
        .filter(|_| !result.suspected_cycle.is_empty())
        .map(|cycle| {
            result
                .suspected_cycle
                .iter()
                .flat_map(|e| e.channels())
                .all(|coord| cycle.iter().any(|c| coord_matches_witness(coord, c)))
        });
    let mut journeys = TraceBuilder::new();
    journeys.add_run(
        &format!("oracle replay of {}", relation.name()),
        recorder.journeys().expect("replay journeys attached"),
    );
    let (deadlocked, wait_cycle) = match result.outcome {
        Outcome::Deadlocked { wait_cycle, .. } => (true, wait_cycle),
        Outcome::Completed => (false, Vec::new()),
    };
    Some(Replay {
        deadlocked,
        wait_cycle,
        wait_edges: wait_edge_count(&recorder),
        sim_coverage,
        watchdog_trips: result.watchdog_trips,
        suspected_cycle: result
            .suspected_cycle
            .iter()
            .map(|e| e.label.clone())
            .collect(),
        watchdog_agrees,
        journey_json: journeys.finish(),
        trace_json: recorder.write_json(),
    })
}

/// Whether an online-watchdog channel coordinate names the same concrete
/// channel as a brute-force witness entry. The two sides use different
/// vocabularies: the simulator's [`ChannelCoord`] is anchored at the
/// holding node with a 0-based VC, the oracle's [`BruteChannel`] is a
/// `from → to` link with a 1-based VC.
fn coord_matches_witness(coord: ChannelCoord, c: &BruteChannel) -> bool {
    coord.node == c.from
        && usize::from(coord.dim) == c.dim.index()
        && coord.dir
            == if c.dir == ebda_core::Direction::Plus {
                '+'
            } else {
                '-'
            }
        && c.vc >= 1
        && coord.vc == c.vc - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(mutation: Mutation) -> CampaignConfig {
        CampaignConfig {
            seed: 7,
            budget: Duration::ZERO,
            min_configs: 30,
            max_configs: 600,
            max_nodes: 16,
            mutation,
            journey_sample_rate: 1.0,
            threads: 0,
            ledger: None,
            coverage: None,
            coverage_guided: false,
        }
    }

    #[test]
    fn campaign_summary_is_thread_count_invariant() {
        // A config-count-bound campaign (budget 0) must tally identically
        // at any thread count: same stream, same batches, same order.
        let serial = run_campaign(&CampaignConfig {
            threads: 1,
            ..quick(Mutation::None)
        });
        let parallel = run_campaign(&CampaignConfig {
            threads: 8,
            ..quick(Mutation::None)
        });
        assert_eq!(serial.configs, parallel.configs);
        assert_eq!(serial.partitionings, parallel.partitionings);
        assert_eq!(serial.orderings, parallel.orderings);
        assert_eq!(serial.random_turns, parallel.random_turns);
        assert_eq!(serial.deadlock_free, parallel.deadlock_free);
        assert_eq!(serial.deadlocking, parallel.deadlocking);
        assert_eq!(serial.ebda_accepted, parallel.ebda_accepted);
        assert_eq!(serial.duato_connected, parallel.duato_connected);
        assert!(serial.is_clean() && parallel.is_clean());
    }

    #[test]
    fn coverage_map_is_byte_identical_across_thread_counts() {
        // The tentpole determinism claim: per-artifact maps are
        // extracted in parallel but merged in stream order, so the
        // campaign map's canonical JSON is identical at --threads 1/8.
        let with_coverage = |threads| {
            let mut path = std::env::temp_dir();
            path.push(format!("ebda-oracle-cov-t{threads}-{}", std::process::id()));
            let _ = std::fs::remove_file(&path);
            let report = run_campaign(&CampaignConfig {
                threads,
                coverage: Some(path.clone()),
                ..quick(Mutation::None)
            });
            let on_disk = std::fs::read_to_string(&path).expect("map written");
            let _ = std::fs::remove_file(&path);
            (report, on_disk)
        };
        let (serial, serial_bytes) = with_coverage(1);
        let (parallel, parallel_bytes) = with_coverage(8);
        assert_eq!(serial_bytes, parallel_bytes, "coverage files must match");
        let (sm, pm) = (serial.coverage.unwrap(), parallel.coverage.unwrap());
        assert_eq!(sm.to_json(), pm.to_json());
        assert_eq!(sm.diff(&pm), None);
        assert_eq!(serial.bin_opening_artifacts, parallel.bin_opening_artifacts);
        // The written file is the report's map plus a newline.
        assert_eq!(serial_bytes, sm.to_json() + "\n");
        // Every non-sim family is fed even by a 30-artifact campaign.
        for family in [
            "cdg_edge",
            "turn_admitted",
            "turn_denied",
            "obligation",
            "escape_drain",
            "gfp_pair",
            "design_bin",
        ] {
            assert!(sm.covered(family) > 0, "family {family} empty");
        }
    }

    #[test]
    fn guided_campaign_reaches_more_bins_at_equal_budget() {
        // The acceptance claim: at the same checked-artifact budget, the
        // coverage-guided stream must reach strictly more design-space
        // bins than blind sampling from the same seed.
        let base = CampaignConfig {
            min_configs: 60,
            max_configs: 60,
            ..quick(Mutation::None)
        };
        let blind = run_campaign(&CampaignConfig {
            coverage_guided: false,
            coverage: Some(
                std::env::temp_dir().join(format!("ebda-oracle-blind-{}", std::process::id())),
            ),
            ..base.clone()
        });
        let guided = run_campaign(&CampaignConfig {
            coverage_guided: true,
            ..base
        });
        let _ = std::fs::remove_file(
            std::env::temp_dir().join(format!("ebda-oracle-blind-{}", std::process::id())),
        );
        assert_eq!(blind.configs, guided.configs, "equal artifact budget");
        let blind_bins = blind.coverage.as_ref().unwrap().covered("design_bin");
        let guided_bins = guided.coverage.as_ref().unwrap().covered("design_bin");
        assert!(
            guided_bins > blind_bins,
            "guided must beat blind: {guided_bins} vs {blind_bins}"
        );
        // Guided runs track coverage even with no output path, and the
        // report narrates it.
        assert!(guided.to_string().contains("design-space bins"));
        // Determinism: the guided stream is a pure function of the seed.
        let again = run_campaign(&CampaignConfig {
            coverage_guided: true,
            min_configs: 60,
            max_configs: 60,
            ..quick(Mutation::None)
        });
        assert_eq!(
            again.coverage.as_ref().unwrap().to_json(),
            guided.coverage.as_ref().unwrap().to_json()
        );
    }

    #[test]
    fn small_clean_campaign_reports_tallies() {
        let report = run_campaign(&quick(Mutation::None));
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.configs, 30);
        assert_eq!(
            report.partitionings + report.orderings + report.random_turns,
            report.configs
        );
        assert_eq!(report.deadlock_free + report.deadlocking, report.configs);
        assert!(report.deadlock_free > 0);
        assert!(report.deadlocking > 0);
        let text = report.to_string();
        assert!(text.contains("all verdict paths agreed"));
    }

    #[test]
    fn replay_of_a_wrap_ring_deadlocks_with_wait_edges() {
        // A one-way wrap ring — the shape the shrinker reduces torus
        // counterexamples to. Two-hop packets must traverse two ring
        // channels, so flooding closes the circular wait.
        let artifact = Artifact {
            id: 0,
            kind: ArtifactKind::ChannelOrdering,
            radix: vec![3, 3],
            wrap: vec![true, false],
            vcs: vec![1, 1],
            universe: ebda_core::parse_channels("X+").unwrap(),
            turns: ebda_core::TurnSet::new(),
            design: None,
        };
        let replay =
            replay_artifact(&artifact, 7, JourneyConfig::default()).expect("rings are routable");
        assert!(replay.deadlocked, "a flooded wrap ring must deadlock");
        assert!(replay.wait_cycle.len() >= 2);
        assert_eq!(replay.wait_edges, replay.wait_cycle.len());
        assert!(replay.trace_json.contains("\"events\""));

        // The online watchdog tripped before the hard verdict and its
        // suspected cycle stayed inside the brute-force witness — the
        // live/offline cross-check of the tracing subsystem.
        assert!(replay.watchdog_trips >= 1, "online watchdog must trip");
        assert!(!replay.suspected_cycle.is_empty());
        assert_eq!(
            replay.watchdog_agrees,
            Some(true),
            "suspicion must match the witness: {:?}",
            replay.suspected_cycle
        );

        // The journey export is a valid Chrome trace with flow events.
        let summary =
            ebda_obs::chrome::validate(&replay.journey_json).expect("valid Trace Event Format");
        assert!(summary.complete > 0);
        assert!(summary.flows > 0, "hop-linking flow events expected");
    }

    #[test]
    fn unroutable_artifacts_are_not_replayed() {
        let artifact = Artifact {
            id: 0,
            kind: ArtifactKind::RandomTurns,
            radix: vec![3, 3],
            wrap: vec![false, false],
            vcs: vec![1, 1],
            universe: Vec::new(),
            turns: ebda_core::TurnSet::new(),
            design: None,
        };
        assert!(replay_artifact(&artifact, 7, JourneyConfig::default()).is_none());
    }
}
