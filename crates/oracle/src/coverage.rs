//! Per-artifact **coverage extraction**: what one evaluated artifact
//! contributes to a campaign's [`ebda_obs::CoverageMap`].
//!
//! Each verdict path already computes the raw material — the CDG's
//! edges, the extraction's theorem justifications, Duato's drained
//! escape classes, the brute searcher's realized class pairs. This
//! module translates those into the canonical coverage families (see
//! [`ebda_obs::coverage`]) plus the design-space bin of the artifact
//! itself: a coarse label over (dims, max radix, wrap, max VCs,
//! turn-set density, verdict) that coverage-guided generation steers
//! toward unseen values of.
//!
//! Everything here is a pure function of the artifact and its verdicts,
//! so workers can extract coverage in parallel and the coordinator can
//! merge the per-artifact maps in stream order — the byte-determinism
//! contract the campaigns guarantee.

use crate::artifact::Artifact;
use crate::verdict::Verdicts;
use ebda_cdg::Cdg;
use ebda_core::extract_turns;
use ebda_obs::CoverageMap;

/// Buckets a turn-set density (allowed off-diagonal class pairs over
/// all off-diagonal class pairs) into the coarse labels used in
/// design-space bins: `z` (no turns), `lo` (< 0.25), `mid` (< 0.6),
/// `hi` (≥ 0.6).
pub fn density_bucket(allowed: usize, possible: usize) -> &'static str {
    if allowed == 0 || possible == 0 {
        return "z";
    }
    let d = allowed as f64 / possible as f64;
    if d < 0.25 {
        "lo"
    } else if d < 0.6 {
        "mid"
    } else {
        "hi"
    }
}

fn turn_density(artifact: &Artifact) -> (usize, usize) {
    let mut allowed = 0usize;
    let mut possible = 0usize;
    for &a in &artifact.universe {
        for &b in &artifact.universe {
            if a == b {
                continue;
            }
            possible += 1;
            if artifact.turns.allows(a, b) {
                allowed += 1;
            }
        }
    }
    (allowed, possible)
}

/// The verdict-free **shape bin** of an artifact:
/// `d{dims}.r{max radix}.w{0|1}.v{max vcs}.t{density}`. This is what
/// coverage-guided generation can see *before* running the verdict
/// paths, so it steers on shape alone.
pub fn shape_bin(artifact: &Artifact) -> String {
    let (allowed, possible) = turn_density(artifact);
    format!(
        "d{}.r{}.w{}.v{}.t{}",
        artifact.radix.len(),
        artifact.radix.iter().copied().max().unwrap_or(0),
        u8::from(artifact.wraps()),
        artifact.vcs.iter().copied().max().unwrap_or(0),
        density_bucket(allowed, possible)
    )
}

/// The full **design-space bin**: the shape bin suffixed with the
/// ground-truth verdict (`free` or `deadlock`, from the brute path).
pub fn design_bin(artifact: &Artifact, verdicts: &Verdicts) -> String {
    let verdict = if verdicts.brute.is_deadlock_free() {
        "free"
    } else {
        "deadlock"
    };
    format!("{}.{verdict}", shape_bin(artifact))
}

/// Extracts the coverage contribution of one evaluated artifact as an
/// unkeyed [`CoverageMap`] (campaigns merge these in stream order and
/// key the merged map themselves):
///
/// * `cdg_edge` — class-level edge labels of the CDG the Dally path
///   checks, via [`Cdg::class_edges`]
/// * `turn_admitted` / `turn_denied` — each off-diagonal class pair,
///   split by whether the routing relation allows the turn
/// * `obligation` — theorem obligations the EbDa extraction discharges
///   (partitioning artifacts with a valid design only)
/// * `escape_drain` — escape classes Duato's report proves drainable
/// * `gfp_pair` — class-level hold/want pairs the brute search realized
/// * `design_bin` — the artifact's design-space bin, once
pub fn artifact_coverage(artifact: &Artifact, verdicts: &Verdicts) -> CoverageMap {
    let mut map = CoverageMap::new("");

    let cdg = Cdg::from_turn_set(
        &artifact.topology(),
        &artifact.vcs,
        &artifact.universe,
        &artifact.turns,
    );
    for edge in cdg.class_edges() {
        map.record("cdg_edge", edge);
    }

    for &a in &artifact.universe {
        for &b in &artifact.universe {
            if a == b {
                continue;
            }
            let family = if artifact.turns.allows(a, b) {
                "turn_admitted"
            } else {
                "turn_denied"
            };
            map.record(family, format!("{a}>{b}"));
        }
    }

    if let Some(extraction) = artifact
        .design
        .as_ref()
        .and_then(|seq| extract_turns(seq).ok())
    {
        for key in extraction.obligation_keys() {
            map.record("obligation", key);
        }
    }

    for class in verdicts.duato.drained_classes(&artifact.universe) {
        map.record("escape_drain", class);
    }

    for &(ca, cb) in &verdicts.brute.pair_classes {
        map.record(
            "gfp_pair",
            format!(
                "{}>{}",
                artifact.universe[ca as usize], artifact.universe[cb as usize]
            ),
        );
    }

    map.record("design_bin", design_bin(artifact, verdicts));
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::Generator;
    use crate::verdict::{evaluate, Mutation};

    #[test]
    fn every_family_is_fed_by_a_small_generated_stream() {
        let mut g = Generator::with_max_nodes(7, 16);
        let mut map = CoverageMap::new("test");
        for _ in 0..24 {
            let a = g.next_artifact();
            let v = evaluate(&a, Mutation::None);
            map.merge(&artifact_coverage(&a, &v));
        }
        for family in [
            "cdg_edge",
            "turn_admitted",
            "turn_denied",
            "obligation",
            "escape_drain",
            "gfp_pair",
            "design_bin",
        ] {
            assert!(
                map.covered(family) > 0,
                "family {family} never fed:\n{}",
                map.report()
            );
        }
    }

    #[test]
    fn extraction_is_deterministic_per_artifact() {
        let mut g1 = Generator::with_max_nodes(11, 16);
        let mut g2 = Generator::with_max_nodes(11, 16);
        for _ in 0..8 {
            let (a1, a2) = (g1.next_artifact(), g2.next_artifact());
            let c1 = artifact_coverage(&a1, &evaluate(&a1, Mutation::None));
            let c2 = artifact_coverage(&a2, &evaluate(&a2, Mutation::None));
            assert_eq!(c1.to_json(), c2.to_json());
        }
    }

    #[test]
    fn bins_compose_shape_and_verdict() {
        let mut g = Generator::with_max_nodes(3, 12);
        let a = g.next_artifact();
        let v = evaluate(&a, Mutation::None);
        let bin = design_bin(&a, &v);
        assert!(bin.starts_with(&shape_bin(&a)), "{bin}");
        assert!(
            bin.ends_with(".free") || bin.ends_with(".deadlock"),
            "{bin}"
        );
        assert_eq!(density_bucket(0, 10), "z");
        assert_eq!(density_bucket(1, 10), "lo");
        assert_eq!(density_bucket(5, 10), "mid");
        assert_eq!(density_bucket(9, 10), "hi");
    }
}
