//! **Verdict provenance**: the full proof evidence behind one verdict,
//! in a canonical JSON document an independent checker can re-validate
//! without re-running any prover.
//!
//! A [`Provenance`] record carries, per verdict path:
//!
//! * **EbDa** — the reconstructed partition sequence (Theorem 1–3
//!   certificate) or the [`CertifyFailure`] that stopped reconstruction;
//! * **Dally** — CDG size plus either the deterministic *channel
//!   ordering* (positive evidence: every dependency ascends in it) or
//!   the offending cycle;
//! * **Duato** — the escape-subnetwork drain argument (acyclic +
//!   connected) or its counterexample;
//! * **brute force** — the greatest-fixed-point summary (pairs, sweeps,
//!   survivors) and, on the negative side, the witness circular wait.
//!
//! Records are keyed by the corpus-style content hash of the
//! (topology, turn-set) pair ([`ebda_core::canonical`]), serialized as
//! a single line of fixed-key-order JSON, and re-validated by
//! [`Provenance::check`] — the checker half of a prover/checker split:
//!
//! * a **witness cycle** is walked hop by hop on a freshly built
//!   topology: every hop must be a real link with a matching channel
//!   class, and every consecutive hold→want step must be allowed by the
//!   turn relation;
//! * a **channel ordering** is checked by independently enumerating all
//!   concrete channels and admissible hold/want pairs and confirming
//!   every pair ascends in the ordering;
//! * an **EbDa certificate** is walked obligation by obligation via
//!   [`ebda_core::certify::check_certificate`] — and only counts as
//!   *proof* on unwrapped (mesh) topologies, the theory's stated scope.
//!
//! None of those walks calls `search`, `verify_turn_set`,
//! `verify_escape` or `certify`, so a prover bug cannot silently
//! validate its own output.

use crate::artifact::Artifact;
use crate::brute::BruteChannel;
use crate::verdict::Verdicts;
use ebda_cdg::graph::ConcreteChannel;
use ebda_cdg::topology::Topology;
use ebda_core::certify::{certify, check_certificate, CertifyFailure};
use ebda_core::{canonical, Channel, Dimension, Direction, Partition, PartitionSeq, Turn, TurnSet};
use ebda_obs::json::{self, Value};

/// Provenance document format version (the `format` field).
pub const PROVENANCE_FORMAT: u64 = 1;

/// One concrete channel of a cycle, ordering or witness — a directed
/// link's virtual channel, in topology-independent coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hop {
    /// Source node of the link.
    pub from: usize,
    /// Destination node of the link.
    pub to: usize,
    /// Dimension index the link runs along.
    pub dim: u8,
    /// Direction of travel.
    pub dir: Direction,
    /// Virtual channel (1-based).
    pub vc: u8,
}

impl Hop {
    fn from_concrete(c: ConcreteChannel) -> Hop {
        Hop {
            from: c.from,
            to: c.to,
            dim: c.dim.index() as u8,
            dir: c.dir,
            vc: c.vc,
        }
    }

    fn from_brute(c: &BruteChannel) -> Hop {
        Hop {
            from: c.from,
            to: c.to,
            dim: c.dim.index() as u8,
            dir: c.dir,
            vc: c.vc,
        }
    }

    fn to_json(self) -> String {
        format!(
            "{{\"from\":{},\"to\":{},\"dim\":{},\"dir\":\"{}\",\"vc\":{}}}",
            self.from,
            self.to,
            self.dim,
            match self.dir {
                Direction::Plus => "+",
                Direction::Minus => "-",
            },
            self.vc
        )
    }

    fn from_value(v: &Value) -> Result<Hop, String> {
        let num = |key: &str| {
            v.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("hop field {key} missing or not a u64"))
        };
        let dir = match v.get("dir").and_then(Value::as_str) {
            Some("+") => Direction::Plus,
            Some("-") => Direction::Minus,
            other => return Err(format!("hop dir must be \"+\" or \"-\", got {other:?}")),
        };
        Ok(Hop {
            from: num("from")? as usize,
            to: num("to")? as usize,
            dim: num("dim")? as u8,
            dir,
            vc: num("vc")? as u8,
        })
    }
}

impl std::fmt::Display for Hop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}{}{} ({}→{})",
            Dimension::new(self.dim),
            self.vc,
            self.dir,
            self.from,
            self.to
        )
    }
}

/// EbDa's side of the provenance: a certificate or the reason there is
/// none. A refusal does **not** prove deadlock — EbDa certificates are
/// sufficient, not necessary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EbdaEvidence {
    /// The reconstructed partition sequence, outer order = Theorem 3
    /// order, inner order = the Theorem 2 numbering.
    Certificate {
        /// Channels of each partition, in certificate order.
        partitions: Vec<Vec<Channel>>,
    },
    /// Reconstruction failed with this obstruction.
    Refusal {
        /// `"too-many-pairs"` or `"unorderable-channels"`.
        kind: String,
        /// The failure's display text (offending channels included).
        detail: String,
    },
}

/// Dally's side: CDG size and cycle; the positive channel ordering
/// lives in [`Provenance::ordering`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DallyEvidence {
    /// Concrete channels (CDG nodes).
    pub channels: usize,
    /// Dependency edges.
    pub dependencies: usize,
    /// The offending cycle when the CDG is cyclic.
    pub cycle: Option<Vec<Hop>>,
}

/// Duato's side: the escape-subnetwork drain argument.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DuatoEvidence {
    /// Whether the escape CDG is acyclic.
    pub escape_acyclic: bool,
    /// A cycle in the escape CDG, if any.
    pub escape_cycle: Option<Vec<Hop>>,
    /// Whether the escape subnetwork connects every ordered node pair.
    pub escape_connected: bool,
    /// A witness unreachable (source, destination) pair, if any.
    pub unreachable: Option<(usize, usize)>,
}

/// The brute GFP's side: iteration summary and witness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BruteEvidence {
    /// Concrete channels enumerated.
    pub channels: usize,
    /// Admissible hold/want pairs before pruning.
    pub pairs: usize,
    /// Pairs surviving in the greatest fixed point.
    pub surviving: usize,
    /// Pruning sweeps to convergence.
    pub sweeps: usize,
    /// The witness circular wait when the fixed point is nonempty.
    pub witness: Option<Vec<Hop>>,
}

/// The full proof evidence behind one verdict. See the module docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Provenance {
    /// Per-dimension radix of the topology.
    pub radix: Vec<usize>,
    /// Per-dimension wrap-around flags.
    pub wrap: Vec<bool>,
    /// Virtual channels per dimension.
    pub vcs: Vec<u8>,
    /// The channel-class universe.
    pub universe: Vec<Channel>,
    /// The turn relation under verdict.
    pub turns: TurnSet,
    /// The (brute-force, never-mutated) verdict this record justifies.
    pub deadlock_free: bool,
    /// EbDa certificate or refusal.
    pub ebda: EbdaEvidence,
    /// Dally's channel ordering — the positive evidence every verdict
    /// needs on wrapped topologies. `None` on negative verdicts.
    pub ordering: Option<Vec<Hop>>,
    /// Dally CDG summary and cycle.
    pub dally: DallyEvidence,
    /// Duato escape argument.
    pub duato: DuatoEvidence,
    /// Brute GFP summary and witness.
    pub brute: BruteEvidence,
}

/// What [`Provenance::check`] validated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckReport {
    /// The verdict the evidence supports.
    pub deadlock_free: bool,
    /// The independent arguments that validated: any of
    /// `"witness-cycle"`, `"channel-ordering"`, `"ebda-certificate"`.
    pub methods: Vec<&'static str>,
    /// Total obligations walked across all methods.
    pub obligations: usize,
}

impl Provenance {
    /// Builds the provenance for an artifact's verdicts.
    ///
    /// The EbDa certificate and the channel ordering are re-derived
    /// honestly here (mutations in [`crate::verdict::evaluate`] affect
    /// only the campaign's cross-check inputs, never the evidence this
    /// record archives); the Dally/Duato/brute summaries are copied
    /// from the verdicts.
    pub fn from_artifact(artifact: &Artifact, verdicts: &Verdicts) -> Provenance {
        Provenance::build(
            &artifact.radix,
            &artifact.wrap,
            &artifact.vcs,
            &artifact.universe,
            &artifact.turns,
            verdicts,
        )
    }

    /// Builds the provenance for a (topology, turn-set) pair's verdicts.
    /// See [`Provenance::from_artifact`].
    pub fn build(
        radix: &[usize],
        wrap: &[bool],
        vcs: &[u8],
        universe: &[Channel],
        turns: &TurnSet,
        verdicts: &Verdicts,
    ) -> Provenance {
        let deadlock_free = verdicts.brute.is_deadlock_free();
        let ebda = match certify(universe, turns) {
            Ok(seq) => EbdaEvidence::Certificate {
                partitions: seq
                    .partitions()
                    .iter()
                    .map(|p| p.channels().to_vec())
                    .collect(),
            },
            Err(e) => EbdaEvidence::Refusal {
                kind: match e {
                    CertifyFailure::TooManyPairs { .. } => "too-many-pairs".to_string(),
                    CertifyFailure::UnorderableChannels { .. } => {
                        "unorderable-channels".to_string()
                    }
                },
                detail: e.to_string(),
            },
        };
        let topo = Topology::mesh(radix).with_wrap(wrap);
        let ordering = if deadlock_free {
            ebda_cdg::dally::channel_ordering(&topo, vcs, universe, turns)
                .map(|o| o.into_iter().map(Hop::from_concrete).collect())
        } else {
            None
        };
        let to_hops = |cycle: &Option<Vec<ConcreteChannel>>| {
            cycle
                .as_ref()
                .map(|c| c.iter().copied().map(Hop::from_concrete).collect())
        };
        Provenance {
            radix: radix.to_vec(),
            wrap: wrap.to_vec(),
            vcs: vcs.to_vec(),
            universe: universe.to_vec(),
            turns: turns.clone(),
            deadlock_free,
            ebda,
            ordering,
            dally: DallyEvidence {
                channels: verdicts.dally.channels,
                dependencies: verdicts.dally.dependencies,
                cycle: to_hops(&verdicts.dally.cycle),
            },
            duato: DuatoEvidence {
                escape_acyclic: verdicts.duato.escape_acyclic,
                escape_cycle: to_hops(&verdicts.duato.escape_cycle),
                escape_connected: verdicts.duato.escape_connected,
                unreachable: verdicts.duato.unreachable,
            },
            brute: BruteEvidence {
                channels: verdicts.brute.channels,
                pairs: verdicts.brute.pairs,
                surviving: verdicts.brute.surviving,
                sweeps: verdicts.brute.sweeps,
                witness: verdicts
                    .brute
                    .witness
                    .as_ref()
                    .map(|w| w.iter().map(Hop::from_brute).collect()),
            },
        }
    }

    /// The canonical content hash of the record's (topology, turn-set)
    /// pair — the corpus keying scheme.
    pub fn content_hash(&self) -> u64 {
        canonical::canonical_hash(
            &self.radix,
            &self.wrap,
            &self.vcs,
            &self.universe,
            &self.turns,
        )
    }

    /// [`Provenance::content_hash`] in 16-digit lowercase hex.
    pub fn hash_hex(&self) -> String {
        canonical::hash_hex(self.content_hash())
    }

    /// The verdict as its ledger spelling.
    pub fn verdict_str(&self) -> &'static str {
        if self.deadlock_free {
            "deadlock-free"
        } else {
            "deadlocking"
        }
    }

    /// Serializes the record as one line of fixed-key-order JSON (no
    /// trailing newline). Byte-deterministic: golden tests pin this.
    pub fn to_json(&self) -> String {
        let str_arr = |items: &mut dyn Iterator<Item = String>| {
            let body: Vec<String> = items.map(|s| json::escape(&s)).collect();
            format!("[{}]", body.join(","))
        };
        let hops = |h: &Option<Vec<Hop>>| match h {
            None => "null".to_string(),
            Some(hops) => {
                let body: Vec<String> = hops.iter().map(|h| h.to_json()).collect();
                format!("[{}]", body.join(","))
            }
        };
        let universe = str_arr(&mut self.universe.iter().map(|c| c.to_string()));
        let turns = str_arr(&mut self.turns.iter().map(|t| format!("{}>{}", t.from, t.to)));
        let ebda = match &self.ebda {
            EbdaEvidence::Certificate { partitions } => {
                let parts: Vec<String> = partitions
                    .iter()
                    .map(|p| str_arr(&mut p.iter().map(|c| c.to_string())))
                    .collect();
                format!("{{\"certificate\":[{}]}}", parts.join(","))
            }
            EbdaEvidence::Refusal { kind, detail } => format!(
                "{{\"refusal\":{{\"kind\":{},\"detail\":{}}}}}",
                json::escape(kind),
                json::escape(detail)
            ),
        };
        let unreachable = match self.duato.unreachable {
            None => "null".to_string(),
            Some((a, b)) => format!("[{a},{b}]"),
        };
        format!(
            "{{\"format\":{PROVENANCE_FORMAT},\"hash\":{},\"verdict\":{},\"radix\":[{}],\"wrap\":[{}],\"vcs\":[{}],\"universe\":{universe},\"turns\":{turns},\"ebda\":{ebda},\"ordering\":{},\"dally\":{{\"channels\":{},\"dependencies\":{},\"cycle\":{}}},\"duato\":{{\"escape_acyclic\":{},\"escape_cycle\":{},\"escape_connected\":{},\"unreachable\":{unreachable}}},\"brute\":{{\"channels\":{},\"pairs\":{},\"surviving\":{},\"sweeps\":{},\"witness\":{}}}}}",
            json::escape(&self.hash_hex()),
            json::escape(self.verdict_str()),
            self.radix.iter().map(|r| r.to_string()).collect::<Vec<_>>().join(","),
            self.wrap.iter().map(|w| w.to_string()).collect::<Vec<_>>().join(","),
            self.vcs.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(","),
            hops(&self.ordering),
            self.dally.channels,
            self.dally.dependencies,
            hops(&self.dally.cycle),
            self.duato.escape_acyclic,
            hops(&self.duato.escape_cycle),
            self.duato.escape_connected,
            self.brute.channels,
            self.brute.pairs,
            self.brute.surviving,
            self.brute.sweeps,
            hops(&self.brute.witness),
        )
    }

    /// Parses a provenance document, re-deriving the content hash and
    /// rejecting a mismatch with the declared one.
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed field, an unsupported
    /// format version, or the hash mismatch.
    pub fn from_json(text: &str) -> Result<Provenance, String> {
        let v = Value::parse(text)?;
        let format = v
            .get("format")
            .and_then(Value::as_u64)
            .ok_or("missing format")?;
        if format != PROVENANCE_FORMAT {
            return Err(format!(
                "unsupported provenance format {format} (this build reads {PROVENANCE_FORMAT})"
            ));
        }
        let str_field = |key: &str| {
            v.get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field {key}"))
        };
        let arr_field = |obj: &Value, key: &str| -> Result<Vec<Value>, String> {
            obj.get(key)
                .and_then(Value::as_arr)
                .map(<[Value]>::to_vec)
                .ok_or_else(|| format!("missing array field {key}"))
        };
        let u64s = |obj: &Value, key: &str| -> Result<Vec<u64>, String> {
            arr_field(obj, key)?
                .iter()
                .map(|x| x.as_u64().ok_or_else(|| format!("{key} entry not a u64")))
                .collect()
        };
        let bools = |obj: &Value, key: &str| -> Result<Vec<bool>, String> {
            arr_field(obj, key)?
                .iter()
                .map(|x| match x {
                    Value::Bool(b) => Ok(*b),
                    _ => Err(format!("{key} entry not a bool")),
                })
                .collect()
        };
        let bool_field = |obj: &Value, key: &str| -> Result<bool, String> {
            match obj.get(key) {
                Some(Value::Bool(b)) => Ok(*b),
                _ => Err(format!("missing bool field {key}")),
            }
        };
        let usize_field = |obj: &Value, key: &str| -> Result<usize, String> {
            obj.get(key)
                .and_then(Value::as_u64)
                .map(|x| x as usize)
                .ok_or_else(|| format!("missing u64 field {key}"))
        };
        let hops_field = |obj: &Value, key: &str| -> Result<Option<Vec<Hop>>, String> {
            match obj.get(key) {
                Some(Value::Null) => Ok(None),
                Some(Value::Arr(items)) => items
                    .iter()
                    .map(Hop::from_value)
                    .collect::<Result<_, _>>()
                    .map(Some),
                _ => Err(format!("field {key} must be null or an array of hops")),
            }
        };
        let channels = |items: &[Value]| -> Result<Vec<Channel>, String> {
            items
                .iter()
                .map(|x| {
                    let s = x.as_str().ok_or("channel entry not a string")?;
                    Channel::parse(s).map_err(|e| format!("channel {s}: {e}"))
                })
                .collect()
        };

        let radix: Vec<usize> = u64s(&v, "radix")?.into_iter().map(|x| x as usize).collect();
        let wrap = bools(&v, "wrap")?;
        let vcs: Vec<u8> = u64s(&v, "vcs")?.into_iter().map(|x| x as u8).collect();
        let universe = channels(&arr_field(&v, "universe")?)?;
        let mut turns = TurnSet::new();
        for t in arr_field(&v, "turns")? {
            let s = t.as_str().ok_or("turn entry not a string")?;
            let (from, to) = s
                .split_once('>')
                .ok_or_else(|| format!("turn {s}: no '>'"))?;
            turns.insert(Turn::new(
                Channel::parse(from).map_err(|e| format!("turn {s}: {e}"))?,
                Channel::parse(to).map_err(|e| format!("turn {s}: {e}"))?,
            ));
        }

        let ebda_obj = v.get("ebda").ok_or("missing ebda")?;
        let ebda = if let Some(parts) = ebda_obj.get("certificate") {
            let parts = parts.as_arr().ok_or("certificate must be an array")?;
            let partitions = parts
                .iter()
                .map(|p| channels(p.as_arr().ok_or("partition must be an array")?))
                .collect::<Result<_, _>>()?;
            EbdaEvidence::Certificate { partitions }
        } else if let Some(refusal) = ebda_obj.get("refusal") {
            EbdaEvidence::Refusal {
                kind: refusal
                    .get("kind")
                    .and_then(Value::as_str)
                    .ok_or("missing refusal kind")?
                    .to_string(),
                detail: refusal
                    .get("detail")
                    .and_then(Value::as_str)
                    .ok_or("missing refusal detail")?
                    .to_string(),
            }
        } else {
            return Err("ebda must carry a certificate or a refusal".to_string());
        };

        let dally_obj = v.get("dally").ok_or("missing dally")?;
        let duato_obj = v.get("duato").ok_or("missing duato")?;
        let brute_obj = v.get("brute").ok_or("missing brute")?;
        let unreachable = match duato_obj.get("unreachable") {
            Some(Value::Null) => None,
            Some(Value::Arr(pair)) if pair.len() == 2 => {
                let a = pair[0].as_u64().ok_or("unreachable entry not a u64")?;
                let b = pair[1].as_u64().ok_or("unreachable entry not a u64")?;
                Some((a as usize, b as usize))
            }
            _ => return Err("unreachable must be null or a [from,to] pair".to_string()),
        };

        let verdict = str_field("verdict")?;
        let deadlock_free = match verdict.as_str() {
            "deadlock-free" => true,
            "deadlocking" => false,
            other => return Err(format!("unknown verdict {other:?}")),
        };

        let prov = Provenance {
            radix,
            wrap,
            vcs,
            universe,
            turns,
            deadlock_free,
            ebda,
            ordering: hops_field(&v, "ordering")?,
            dally: DallyEvidence {
                channels: usize_field(dally_obj, "channels")?,
                dependencies: usize_field(dally_obj, "dependencies")?,
                cycle: hops_field(dally_obj, "cycle")?,
            },
            duato: DuatoEvidence {
                escape_acyclic: bool_field(duato_obj, "escape_acyclic")?,
                escape_cycle: hops_field(duato_obj, "escape_cycle")?,
                escape_connected: bool_field(duato_obj, "escape_connected")?,
                unreachable,
            },
            brute: BruteEvidence {
                channels: usize_field(brute_obj, "channels")?,
                pairs: usize_field(brute_obj, "pairs")?,
                surviving: usize_field(brute_obj, "surviving")?,
                sweeps: usize_field(brute_obj, "sweeps")?,
                witness: hops_field(brute_obj, "witness")?,
            },
        };
        let declared = str_field("hash")?;
        let actual = prov.hash_hex();
        if declared != actual {
            return Err(format!(
                "declared hash {declared} but content hashes to {actual}"
            ));
        }
        Ok(prov)
    }

    /// Independently re-validates the record's certificate or witness —
    /// no prover is re-run (see the module docs for what each walk
    /// does).
    ///
    /// # Errors
    ///
    /// Returns the first failed obligation, or "no checkable evidence"
    /// when a record carries nothing that proves its verdict.
    pub fn check(&self) -> Result<CheckReport, String> {
        let dims = self.radix.len();
        if self.wrap.len() != dims || self.vcs.len() != dims || dims == 0 {
            return Err(format!(
                "inconsistent shape: {} radices, {} wrap flags, {} vc budgets",
                dims,
                self.wrap.len(),
                self.vcs.len()
            ));
        }
        let topo = Topology::mesh(&self.radix).with_wrap(&self.wrap);
        let mut obligations = 0usize;
        let mut methods = Vec::new();

        // Verdict self-consistency before walking any evidence.
        if self.deadlock_free != self.brute.witness.is_none()
            || self.deadlock_free != (self.brute.surviving == 0)
        {
            return Err("verdict disagrees with the brute summary it embeds".to_string());
        }
        obligations += 1;

        if self.deadlock_free {
            if let Some(ordering) = &self.ordering {
                obligations += self.check_ordering(&topo, ordering)?;
                methods.push("channel-ordering");
            }
            if let EbdaEvidence::Certificate { partitions } = &self.ebda {
                obligations += self.check_ebda_certificate(partitions)?;
                // The theorems' sufficiency argument assumes monotone
                // progress within a class — void on wrap-around rings,
                // so a certificate only *proves* the verdict on meshes.
                if !self.wrap.iter().any(|&w| w) {
                    methods.push("ebda-certificate");
                }
            }
            if methods.is_empty() {
                return Err(
                    "positive verdict carries no independently checkable evidence \
                     (no channel ordering, and no mesh-scope EbDa certificate)"
                        .to_string(),
                );
            }
        } else {
            let witness = self
                .brute
                .witness
                .as_ref()
                .or(self.dally.cycle.as_ref())
                .ok_or("negative verdict carries no witness cycle")?;
            obligations += self.check_cycle(&topo, witness)?;
            methods.push("witness-cycle");
        }
        Ok(CheckReport {
            deadlock_free: self.deadlock_free,
            methods,
            obligations,
        })
    }

    /// The universe classes matching a hop at its source node.
    fn matching_classes(&self, topo: &Topology, hop: Hop) -> Vec<Channel> {
        let coords = topo.coords(hop.from);
        self.universe
            .iter()
            .copied()
            .filter(|cl| {
                cl.dim.index() == hop.dim as usize
                    && cl.dir == hop.dir
                    && cl.vc == hop.vc
                    && cl.class.contains(&coords)
            })
            .collect()
    }

    /// Is the hold→want step `a` → `b` admissible? Adjacent on the
    /// topology, and some pair of matching classes allows the turn.
    fn step_allowed(&self, topo: &Topology, a: Hop, b: Hop) -> bool {
        a.to == b.from
            && self.matching_classes(topo, a).iter().any(|&ca| {
                self.matching_classes(topo, b)
                    .iter()
                    .any(|&cb| self.turns.allows(ca, cb))
            })
    }

    /// Confirms a hop is a real link of the topology with a live VC and
    /// at least one matching universe class.
    fn check_hop(&self, topo: &Topology, hop: Hop) -> Result<(), String> {
        if hop.dim as usize >= self.radix.len() {
            return Err(format!(
                "hop {hop} names dimension {} of {}",
                hop.dim,
                self.radix.len()
            ));
        }
        if hop.vc == 0 || hop.vc > self.vcs[hop.dim as usize] {
            return Err(format!(
                "hop {hop} uses vc {} of a {}-vc dimension",
                hop.vc, self.vcs[hop.dim as usize]
            ));
        }
        match topo.neighbor(hop.from, Dimension::new(hop.dim), hop.dir) {
            Some(to) if to == hop.to => {}
            _ => return Err(format!("hop {hop} is not a link of the topology")),
        }
        if self.matching_classes(topo, hop).is_empty() {
            return Err(format!(
                "hop {hop} matches no channel class of the universe"
            ));
        }
        Ok(())
    }

    /// Walks a witness cycle: every hop real, every consecutive
    /// hold→want step allowed, the chain closed.
    fn check_cycle(&self, topo: &Topology, cycle: &[Hop]) -> Result<usize, String> {
        if cycle.len() < 2 {
            return Err(format!(
                "witness cycle of length {} cannot close",
                cycle.len()
            ));
        }
        let mut obligations = 0usize;
        for &hop in cycle {
            self.check_hop(topo, hop)?;
            obligations += 1;
        }
        for i in 0..cycle.len() {
            let (a, b) = (cycle[i], cycle[(i + 1) % cycle.len()]);
            if !self.step_allowed(topo, a, b) {
                return Err(format!(
                    "witness step {a} → {b} is not an admissible hold/want pair"
                ));
            }
            obligations += 1;
        }
        Ok(obligations)
    }

    /// Validates a channel ordering: it must cover every concrete
    /// channel exactly once, and every independently enumerated
    /// admissible hold/want pair must ascend in it.
    fn check_ordering(&self, topo: &Topology, ordering: &[Hop]) -> Result<usize, String> {
        let mut obligations = 0usize;
        // Independent enumeration: every VC of every directed link.
        let mut expected = Vec::new();
        for node in 0..topo.node_count() {
            for d in 0..self.radix.len() {
                for dir in [Direction::Plus, Direction::Minus] {
                    if let Some(to) = topo.neighbor(node, Dimension::new(d as u8), dir) {
                        for vc in 1..=self.vcs[d] {
                            expected.push(Hop {
                                from: node,
                                to,
                                dim: d as u8,
                                dir,
                                vc,
                            });
                        }
                    }
                }
            }
        }
        let key = |h: Hop| (h.from, h.to, h.dim, h.dir == Direction::Plus, h.vc);
        let mut rank = std::collections::BTreeMap::new();
        for (i, &h) in ordering.iter().enumerate() {
            if rank.insert(key(h), i).is_some() {
                return Err(format!("ordering lists {h} twice"));
            }
        }
        if ordering.len() != expected.len() {
            return Err(format!(
                "ordering covers {} channels, topology has {}",
                ordering.len(),
                expected.len()
            ));
        }
        for &h in &expected {
            obligations += 1;
            if !rank.contains_key(&key(h)) {
                return Err(format!("ordering misses concrete channel {h}"));
            }
        }
        // Group by source node for the pair sweep.
        let mut by_from: Vec<Vec<Hop>> = vec![Vec::new(); topo.node_count()];
        for &h in &expected {
            by_from[h.from].push(h);
        }
        for &a in &expected {
            for &b in &by_from[a.to] {
                if self.step_allowed(topo, a, b) {
                    obligations += 1;
                    if rank[&key(a)] >= rank[&key(b)] {
                        return Err(format!(
                            "dependency {a} → {b} descends in the channel ordering"
                        ));
                    }
                }
            }
        }
        Ok(obligations)
    }

    /// Rebuilds the partition sequence and walks the Theorem 1–3
    /// obligations via [`ebda_core::certify::check_certificate`].
    fn check_ebda_certificate(&self, partitions: &[Vec<Channel>]) -> Result<usize, String> {
        let parts = partitions
            .iter()
            .map(|p| Partition::from_channels(p.iter().copied()).map_err(|e| e.to_string()))
            .collect::<Result<Vec<_>, _>>()?;
        let seq = PartitionSeq::from_partitions(parts);
        check_certificate(&seq, &self.universe, &self.turns)
    }

    /// The human-readable proof narrative `ebda explain` renders.
    /// Deterministic; a golden test pins one.
    pub fn narrative(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let shape: Vec<String> = self.radix.iter().map(|r| r.to_string()).collect();
        let kind = if !self.wrap.iter().any(|&w| w) {
            "mesh".to_string()
        } else if self.wrap.iter().all(|&w| w) {
            "torus".to_string()
        } else {
            let dims: Vec<String> = self
                .wrap
                .iter()
                .enumerate()
                .filter(|(_, &w)| w)
                .map(|(i, _)| Dimension::new(i as u8).to_string())
                .collect();
            format!("partial torus (wrap {})", dims.join(","))
        };
        let _ = writeln!(
            out,
            "problem {}: {} {kind}, vcs {:?}, {} classes, {} turns",
            self.hash_hex(),
            shape.join("x"),
            self.vcs,
            self.universe.len(),
            self.turns.len()
        );
        let _ = writeln!(out, "verdict: {}", self.verdict_str());
        out.push('\n');

        match &self.ebda {
            EbdaEvidence::Certificate { partitions } => {
                let _ = writeln!(
                    out,
                    "EbDa: certificate with {} partitions:",
                    partitions.len()
                );
                for (i, p) in partitions.iter().enumerate() {
                    let part = Partition::from_channels(p.iter().copied());
                    let (rendered, pairs) = match part {
                        Ok(part) => {
                            let dims = part.complete_pair_dims();
                            let pairs = if dims.is_empty() {
                                "no complete pair".to_string()
                            } else {
                                format!(
                                    "complete pair: {}",
                                    dims.iter()
                                        .map(ToString::to_string)
                                        .collect::<Vec<_>>()
                                        .join(",")
                                )
                            };
                            (part.to_string(), pairs)
                        }
                        Err(e) => (format!("{p:?}"), format!("invalid: {e}")),
                    };
                    let _ = writeln!(out, "  {}. {rendered}  ({pairs})", i + 1);
                }
                if self.wrap.iter().any(|&w| w) {
                    let _ = writeln!(
                        out,
                        "  (wrap links void the mesh-scope guarantee: the certificate \
                         does not decide this verdict)"
                    );
                }
            }
            EbdaEvidence::Refusal { detail, .. } => {
                let _ = writeln!(out, "EbDa: not certifiable — {detail}");
                let _ = writeln!(
                    out,
                    "  (certificates are sufficient, not necessary; the verdict rests \
                     on the exact checks below)"
                );
            }
        }

        match &self.dally.cycle {
            None => {
                let _ = writeln!(
                    out,
                    "Dally: {} concrete channels, {} dependencies, acyclic CDG{}",
                    self.dally.channels,
                    self.dally.dependencies,
                    match &self.ordering {
                        Some(o) => format!("; channel ordering over {} channels attached", o.len()),
                        None => String::new(),
                    }
                );
            }
            Some(cycle) => {
                let _ = writeln!(
                    out,
                    "Dally: {} concrete channels, {} dependencies, dependency cycle of length {}",
                    self.dally.channels,
                    self.dally.dependencies,
                    cycle.len()
                );
            }
        }

        let drain = match (self.duato.escape_acyclic, self.duato.escape_connected) {
            (true, true) => {
                "escape subnetwork acyclic and connected — every packet can drain".to_string()
            }
            (false, _) => format!(
                "escape subnetwork cyclic{}",
                match &self.duato.escape_cycle {
                    Some(c) => format!(" (cycle of length {})", c.len()),
                    None => String::new(),
                }
            ),
            (true, false) => format!(
                "escape subnetwork acyclic but disconnected{}",
                match self.duato.unreachable {
                    Some((a, b)) => format!(" (node {a} cannot reach {b})"),
                    None => String::new(),
                }
            ),
        };
        let _ = writeln!(out, "Duato: {drain}");

        match &self.brute.witness {
            None => {
                let _ = writeln!(
                    out,
                    "brute force: {} hold/want pairs pruned to 0 in {} sweeps — the greatest \
                     fixed point is empty",
                    self.brute.pairs, self.brute.sweeps
                );
            }
            Some(witness) => {
                let _ = writeln!(
                    out,
                    "brute force: {} of {} hold/want pairs survive {} sweeps; witness circular \
                     wait of length {}:",
                    self.brute.surviving,
                    self.brute.pairs,
                    self.brute.sweeps,
                    witness.len()
                );
                for i in 0..witness.len() {
                    let (a, b) = (witness[i], witness[(i + 1) % witness.len()]);
                    let _ = writeln!(out, "  {a} holds, head wants {b}");
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::{Artifact, ArtifactKind};
    use crate::verdict::{evaluate, Mutation};
    use ebda_core::{catalog, extract_turns};

    fn design_artifact(id: u64, radix: Vec<usize>, seq: PartitionSeq) -> Artifact {
        let universe = seq.channels();
        let turns = extract_turns(&seq).unwrap().into_turn_set();
        let dims = radix.len();
        let vcs = ebda_cdg::dally::infer_vcs(&universe, dims);
        Artifact {
            id,
            kind: ArtifactKind::Partitioning,
            wrap: vec![false; dims],
            radix,
            vcs,
            universe,
            turns,
            design: Some(seq),
        }
    }

    fn ring_artifact() -> Artifact {
        // A 4-node wrap ring using only X+: the classic circular wait.
        let universe = ebda_core::parse_channels("X+").unwrap();
        Artifact {
            id: 99,
            kind: ArtifactKind::RandomTurns,
            radix: vec![4],
            wrap: vec![true],
            vcs: vec![1],
            universe,
            turns: TurnSet::new(),
            design: None,
        }
    }

    #[test]
    fn positive_provenance_round_trips_and_checks() {
        let artifact = design_artifact(0, vec![3, 3], catalog::p1_xy());
        let verdicts = evaluate(&artifact, Mutation::None);
        let prov = Provenance::from_artifact(&artifact, &verdicts);
        assert!(prov.deadlock_free);
        assert!(
            prov.ordering.is_some(),
            "positive records carry an ordering"
        );
        assert!(matches!(prov.ebda, EbdaEvidence::Certificate { .. }));

        let json = prov.to_json();
        assert!(!json.contains('\n'), "provenance must be single-line");
        let back = Provenance::from_json(&json).unwrap();
        assert_eq!(back, prov);
        assert_eq!(back.to_json(), json, "round-trip is byte-exact");

        let report = prov.check().expect("evidence validates");
        assert!(report.deadlock_free);
        assert!(report.methods.contains(&"channel-ordering"));
        assert!(report.methods.contains(&"ebda-certificate"));
        assert!(report.obligations > 0);
    }

    #[test]
    fn negative_provenance_checks_its_witness() {
        let artifact = ring_artifact();
        let verdicts = evaluate(&artifact, Mutation::None);
        let prov = Provenance::from_artifact(&artifact, &verdicts);
        assert!(!prov.deadlock_free);
        let witness = prov.brute.witness.as_ref().expect("ring deadlocks");
        assert_eq!(witness.len(), 4);

        let back = Provenance::from_json(&prov.to_json()).unwrap();
        let report = back.check().expect("witness validates");
        assert!(!report.deadlock_free);
        assert_eq!(report.methods, vec!["witness-cycle"]);
    }

    #[test]
    fn checker_rejects_tampered_evidence() {
        let artifact = design_artifact(1, vec![3, 3], catalog::p3_west_first());
        let verdicts = evaluate(&artifact, Mutation::None);
        let prov = Provenance::from_artifact(&artifact, &verdicts);

        // Tampering with the serialized bytes trips the hash guard.
        let json = prov.to_json();
        let tampered = json.replace(
            "\"verdict\":\"deadlock-free\"",
            "\"verdict\":\"deadlocking\"",
        );
        assert!(
            Provenance::from_json(&tampered).is_err() || {
                // Same hash (the verdict is not hashed) — then check() must
                // reject the inconsistent record instead.
                Provenance::from_json(&tampered).unwrap().check().is_err()
            }
        );

        // Swapping two ordering entries breaks rank monotonicity.
        let mut swapped = prov.clone();
        let ordering = swapped.ordering.as_mut().unwrap();
        let last = ordering.len() - 1;
        ordering.swap(0, last);
        let err = swapped.check().unwrap_err();
        assert!(err.contains("descends"), "{err}");

        // A witness that is not a real cycle is rejected.
        let artifact = ring_artifact();
        let verdicts = evaluate(&artifact, Mutation::None);
        let mut neg = Provenance::from_artifact(&artifact, &verdicts);
        neg.brute.witness.as_mut().unwrap()[0].from = 2; // breaks adjacency
        assert!(neg.check().is_err());
    }

    #[test]
    fn wrapped_certificates_do_not_prove() {
        // The removed-dateline trap: EbDa certifies the classes, but the
        // wrap link voids the guarantee — on tori only the ordering (or
        // a witness) decides. Build a torus artifact whose turn set is
        // certifiable yet deadlocking.
        let artifact = ring_artifact();
        let verdicts = evaluate(&artifact, Mutation::None);
        let prov = Provenance::from_artifact(&artifact, &verdicts);
        // The single class X+ with no turns certifies trivially...
        assert!(matches!(prov.ebda, EbdaEvidence::Certificate { .. }));
        // ...but the record is negative and validated by its witness,
        // not the certificate.
        let report = prov.check().unwrap();
        assert_eq!(report.methods, vec!["witness-cycle"]);
    }

    #[test]
    fn narrative_mentions_every_path() {
        let artifact = design_artifact(2, vec![3, 3], catalog::p1_xy());
        let verdicts = evaluate(&artifact, Mutation::None);
        let text = Provenance::from_artifact(&artifact, &verdicts).narrative();
        for needle in [
            "problem ",
            "verdict: deadlock-free",
            "EbDa:",
            "Dally:",
            "Duato:",
            "brute force:",
        ] {
            assert!(
                text.contains(needle),
                "narrative missing {needle:?}:\n{text}"
            );
        }
    }
}
