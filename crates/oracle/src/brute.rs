//! An exhaustive bounded deadlock searcher, independent of the CDG code.
//!
//! The searcher decides deadlock-freedom by reachability over *channel-wait
//! configurations* of a wormhole network: a configuration is a set of
//! blocked packets, each modelled as a `(hold, want)` pair of concrete
//! channels — the packet's wormhole occupies `hold` and its head has
//! requested `want`. A configuration is *self-supporting* when every wanted
//! channel is held by another blocked packet of the same configuration,
//! which is exactly the circular-wait condition of a wormhole deadlock.
//!
//! Starting from the set of **all** admissible pairs (every hop the routing
//! relation allows), [`search`] computes the greatest fixed point of the
//! blocking operator: it repeatedly discards pairs whose wanted channel is
//! not held by any surviving pair. The fixed point is the union of all
//! self-supporting configurations; it is nonempty iff some reachable
//! configuration deadlocks, and a witness circular wait can be read off by
//! following `want → hold` links until a channel repeats.
//!
//! The implementation deliberately shares **nothing** with `ebda-cdg`: it
//! enumerates concrete channels its own way (per node, not per link list),
//! represents waits as pairs (not adjacency lists) and converges by fixed
//! point (not by three-colour DFS). Agreement between the two is therefore
//! meaningful evidence, which is the whole point of a differential oracle.

use ebda_cdg::topology::{NodeId, Topology};
use ebda_core::{Channel, Dimension, Direction, TurnSet};
use std::fmt;

/// A concrete channel as the brute searcher sees it: one virtual channel of
/// one directed link. Intentionally a distinct type from
/// `ebda_cdg::ConcreteChannel` so the oracle never leans on CDG code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BruteChannel {
    /// Source node of the link.
    pub from: NodeId,
    /// Destination node of the link.
    pub to: NodeId,
    /// Dimension the link runs along.
    pub dim: Dimension,
    /// Direction of travel.
    pub dir: Direction,
    /// Virtual channel (1-based).
    pub vc: u8,
}

impl fmt::Display for BruteChannel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{} ({}→{})",
            self.dim, self.vc, self.dir, self.from, self.to
        )
    }
}

/// The outcome of a brute-force deadlock search.
#[derive(Debug, Clone)]
pub struct BruteReport {
    /// Number of concrete channels enumerated.
    pub channels: usize,
    /// Number of admissible `(hold, want)` pairs before pruning.
    pub pairs: usize,
    /// Pairs surviving in the greatest fixed point (0 = deadlock-free).
    pub surviving: usize,
    /// Pruning sweeps needed to converge.
    pub sweeps: usize,
    /// The distinct class-level `(hold, want)` combinations realized by
    /// at least one admissible concrete pair, as sorted index pairs
    /// into the search's universe — what campaigns feed the `gfp_pair`
    /// coverage family.
    pub pair_classes: Vec<(u16, u16)>,
    /// A circular wait read off the fixed point, or `None` when empty.
    pub witness: Option<Vec<BruteChannel>>,
}

impl BruteReport {
    /// Returns `true` when no self-supporting blocked configuration exists.
    pub fn is_deadlock_free(&self) -> bool {
        self.witness.is_none()
    }
}

impl fmt::Display for BruteReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.witness {
            None => write!(
                f,
                "brute: deadlock-free ({} channels, {} wait pairs pruned in {} sweeps)",
                self.channels, self.pairs, self.sweeps
            ),
            Some(w) => {
                write!(f, "brute: DEADLOCK, circular wait of {}: ", w.len())?;
                for (i, c) in w.iter().enumerate() {
                    if i > 0 {
                        write!(f, " -> ")?;
                    }
                    write!(f, "{c}")?;
                }
                Ok(())
            }
        }
    }
}

/// Enumerates the concrete channels of `topo` under the per-dimension VC
/// budget — walking nodes and ports directly rather than using the
/// topology's link list, so the enumeration is independent of `ebda-cdg`.
fn enumerate_channels(topo: &Topology, vcs: &[u8]) -> Vec<BruteChannel> {
    assert_eq!(vcs.len(), topo.dims(), "one VC count per dimension");
    let mut out = Vec::new();
    for node in 0..topo.node_count() {
        for (d, &dim_vcs) in vcs.iter().enumerate() {
            let dim = Dimension::new(d as u8);
            for dir in [Direction::Plus, Direction::Minus] {
                if let Some(to) = topo.neighbor(node, dim, dir) {
                    for vc in 1..=dim_vcs {
                        out.push(BruteChannel {
                            from: node,
                            to,
                            dim,
                            dir,
                            vc,
                        });
                    }
                }
            }
        }
    }
    out
}

/// Decides deadlock-freedom of a class-level turn set on a concrete
/// topology by greatest-fixed-point search over channel-wait
/// configurations (see the module docs for the model).
///
/// The admissibility of a `(hold, want)` pair mirrors the routing
/// semantics exactly: the links must be adjacent (`hold.to == want.from`),
/// each concrete channel must match some class of `universe` (dimension,
/// direction and VC equal; parity/coordinate restriction evaluated at the
/// link's **source** node), and `turns` must allow some matched class of
/// `hold` to continue on some matched class of `want` (going straight on
/// the same class is always allowed).
///
/// # Panics
///
/// Panics if `vcs.len()` differs from the topology's dimension count.
pub fn search(topo: &Topology, vcs: &[u8], universe: &[Channel], turns: &TurnSet) -> BruteReport {
    let channels = enumerate_channels(topo, vcs);
    let n = channels.len();
    let nu = universe.len();
    let uw = nu.div_ceil(64); // words per class bitmask

    // Class matches per concrete channel, evaluated at the source node —
    // one bitmask over the universe per channel, so the admissibility test
    // below is word-wise AND instead of nested set membership.
    let mut match_mask = vec![0u64; n * uw];
    for (i, c) in channels.iter().enumerate() {
        let coords = topo.coords(c.from);
        for (k, cl) in universe.iter().enumerate() {
            if cl.dim == c.dim && cl.dir == c.dir && cl.vc == c.vc && cl.class.contains(&coords) {
                match_mask[i * uw + k / 64] |= 1 << (k % 64);
            }
        }
    }

    // The turn relation flattened to a class × class bit matrix: row `a`
    // is the set of classes `a` may continue on (straight included). The
    // O(nu²) tree lookups happen once here, not once per channel pair.
    let mut allow = vec![0u64; nu * uw];
    for a in 0..nu {
        for b in 0..nu {
            if turns.allows(universe[a], universe[b]) {
                allow[a * uw + b / 64] |= 1 << (b % 64);
            }
        }
    }

    // Channels grouped by source node, to find the wants of each hold.
    let mut by_source: Vec<Vec<usize>> = vec![Vec::new(); topo.node_count()];
    for (i, c) in channels.iter().enumerate() {
        by_source[c.from].push(i);
    }

    // All admissible (hold, want) pairs, in hold-major order: some matched
    // class of `hold` must be allowed to continue on some matched class of
    // `want`, i.e. some hold-class row of `allow` intersects `want`'s mask.
    let mut pair_hold: Vec<u32> = Vec::new();
    let mut pair_want: Vec<u32> = Vec::new();
    let mut class_pairs: std::collections::BTreeSet<(u16, u16)> = std::collections::BTreeSet::new();
    for hold in 0..n {
        let hm = &match_mask[hold * uw..(hold + 1) * uw];
        for &want in &by_source[channels[hold].to] {
            let wm = &match_mask[want * uw..(want + 1) * uw];
            let admissible = hm.iter().enumerate().any(|(wi, &hword)| {
                let mut bits = hword;
                while bits != 0 {
                    let ca = wi * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let row = &allow[ca * uw..(ca + 1) * uw];
                    if row.iter().zip(wm).any(|(&r, &w)| r & w != 0) {
                        return true;
                    }
                }
                false
            });
            if admissible {
                pair_hold.push(hold as u32);
                pair_want.push(want as u32);
                // Record every class-level (hold, want) combination this
                // concrete pair realizes — the gfp_pair coverage family.
                // The class sets are tiny, so this second walk stays off
                // the admissibility fast path above.
                for (wi, &hword) in hm.iter().enumerate() {
                    let mut bits = hword;
                    while bits != 0 {
                        let ca = wi * 64 + bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        let row = &allow[ca * uw..(ca + 1) * uw];
                        for (wj, (&r, &w)) in row.iter().zip(wm).enumerate() {
                            let mut both = r & w;
                            while both != 0 {
                                let cb = wj * 64 + both.trailing_zeros() as usize;
                                both &= both - 1;
                                class_pairs.insert((ca as u16, cb as u16));
                            }
                        }
                    }
                }
            }
        }
    }
    let pair_count = pair_hold.len();

    // Greatest fixed point: discard pairs whose wanted channel is not held
    // by any surviving pair, until a sweep removes nothing. Liveness is a
    // bitset over pairs; sweeps walk set bits in index order, so removals
    // cascade within a sweep exactly like the element-wise loop did.
    let pw = pair_count.div_ceil(64);
    let mut alive = vec![u64::MAX; pw];
    if !pair_count.is_multiple_of(64) {
        alive[pw - 1] = (1u64 << (pair_count % 64)) - 1;
    }
    let mut holds = vec![0u32; n]; // surviving pairs holding each channel
    for &h in &pair_hold {
        holds[h as usize] += 1;
    }
    let mut sweeps = 0usize;
    loop {
        sweeps += 1;
        ebda_obs::metrics::counter_add("ebda_oracle_brute_sweeps_total", &[], 1);
        let mut removed = false;
        for (w, word) in alive.iter_mut().enumerate() {
            let mut bits = *word;
            while bits != 0 {
                let b = bits.trailing_zeros();
                bits &= bits - 1;
                let i = w * 64 + b as usize;
                if holds[pair_want[i] as usize] == 0 {
                    *word &= !(1u64 << b);
                    holds[pair_hold[i] as usize] -= 1;
                    removed = true;
                }
            }
        }
        if !removed {
            break;
        }
    }
    let surviving: usize = alive.iter().map(|w| w.count_ones() as usize).sum();

    // Read a circular wait off the fixed point: follow want → hold links
    // (each wanted channel is held by a surviving pair, by construction)
    // until a channel repeats.
    let first_alive =
        (0..pw).find_map(|w| (alive[w] != 0).then(|| w * 64 + alive[w].trailing_zeros() as usize));
    let witness = first_alive.map(|p0| {
        // Pairs are hold-major, so each hold's pairs form one contiguous
        // run; CSR offsets replace the full-array scan per witness hop.
        let mut hold_start = vec![0u32; n + 1];
        for &h in &pair_hold {
            hold_start[h as usize + 1] += 1;
        }
        for i in 0..n {
            hold_start[i + 1] += hold_start[i];
        }
        let alive_bit = |i: usize| alive[i / 64] >> (i % 64) & 1 == 1;
        let next_of = |ch: usize| -> usize {
            (hold_start[ch] as usize..hold_start[ch + 1] as usize)
                .find(|&i| alive_bit(i))
                .map(|i| pair_want[i] as usize)
                .expect("fixed point: every surviving channel has a request")
        };
        let start = pair_hold[p0] as usize;
        let mut seen: Vec<usize> = vec![start];
        let mut cur = start;
        loop {
            cur = next_of(cur);
            if let Some(pos) = seen.iter().position(|&c| c == cur) {
                return seen[pos..].iter().map(|&i| channels[i]).collect();
            }
            seen.push(cur);
        }
    });

    BruteReport {
        channels: n,
        pairs: pair_count,
        surviving,
        sweeps,
        pair_classes: class_pairs.into_iter().collect(),
        witness,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebda_cdg::dally::{design_universe, infer_vcs, verify_turn_set};
    use ebda_core::{catalog, extract_turns, parse_channels, Turn};

    #[test]
    fn channel_enumeration_matches_link_math() {
        let topo = Topology::mesh(&[3, 3]);
        assert_eq!(enumerate_channels(&topo, &[1, 1]).len(), 24);
        assert_eq!(enumerate_channels(&topo, &[2, 1]).len(), 36);
        let torus = Topology::torus(&[4, 4]);
        assert_eq!(enumerate_channels(&torus, &[1, 1]).len(), 64);
    }

    #[test]
    fn all_turns_allowed_deadlocks_on_meshes() {
        let universe = parse_channels("X+ X- Y+ Y-").unwrap();
        let mut turns = TurnSet::new();
        for &a in &universe {
            for &b in &universe {
                if a != b {
                    turns.insert(Turn::new(a, b));
                }
            }
        }
        let report = search(&Topology::mesh(&[3, 3]), &[1, 1], &universe, &turns);
        assert!(!report.is_deadlock_free());
        let witness = report.witness.unwrap();
        assert!(witness.len() >= 2);
        // The witness is a genuine closed chain of adjacent links.
        for i in 0..witness.len() {
            assert_eq!(witness[i].to, witness[(i + 1) % witness.len()].from);
        }
    }

    #[test]
    fn straight_rings_deadlock_on_torus_but_not_mesh() {
        let universe = parse_channels("X+ X- Y+ Y-").unwrap();
        let turns = TurnSet::new(); // straight-through only
        let mesh = search(&Topology::mesh(&[4, 4]), &[1, 1], &universe, &turns);
        assert!(mesh.is_deadlock_free());
        assert_eq!(mesh.surviving, 0);
        let torus = search(&Topology::torus(&[4, 4]), &[1, 1], &universe, &turns);
        assert!(!torus.is_deadlock_free());
    }

    #[test]
    fn agrees_with_dally_on_every_catalog_design() {
        for (name, seq) in catalog::all_designs() {
            let universe = design_universe(&seq);
            let dims = universe.iter().map(|c| c.dim.index() + 1).max().unwrap();
            let vcs = infer_vcs(&universe, dims);
            let turns = extract_turns(&seq).unwrap().into_turn_set();
            let topo = Topology::mesh(&vec![3; dims]);
            let dally = verify_turn_set(&topo, &vcs, &universe, &turns);
            let brute = search(&topo, &vcs, &universe, &turns);
            assert_eq!(
                dally.is_deadlock_free(),
                brute.is_deadlock_free(),
                "{name}: dally and brute must agree ({dally} vs {brute})"
            );
            assert!(brute.is_deadlock_free(), "{name} must be free on a mesh");
        }
    }

    #[test]
    fn dateline_classes_break_the_torus_ring() {
        // The coordinate-restricted dateline design is free on tori; the
        // class-unrestricted dimension-order design is not. The brute
        // searcher must see both, like the CDG does.
        let radix = vec![4usize, 4];
        let torus = Topology::torus(&radix);
        let seq = catalog::torus_dateline(&radix);
        let universe = design_universe(&seq);
        let vcs = infer_vcs(&universe, 2);
        let turns = extract_turns(&seq).unwrap().into_turn_set();
        assert!(search(&torus, &vcs, &universe, &turns).is_deadlock_free());

        let plain = ebda_core::PartitionSeq::parse("X+ X- | Y+ Y-").unwrap();
        let u2 = design_universe(&plain);
        let t2 = extract_turns(&plain).unwrap().into_turn_set();
        assert!(!search(&torus, &[1, 1], &u2, &t2).is_deadlock_free());
    }

    #[test]
    fn report_internals_match_the_reference_implementation() {
        // Pinned against the original Vec/BTreeSet implementation: the
        // bitset rewrite must reproduce pair counts, fixed-point sizes and
        // sweep counts exactly, not just the free/deadlocked verdict.
        let u = parse_channels("X+ X- Y+ Y-").unwrap();
        let mut all = TurnSet::new();
        for &a in &u {
            for &b in &u {
                if a != b {
                    all.insert(Turn::new(a, b));
                }
            }
        }
        let r = search(&Topology::mesh(&[3, 3]), &[1, 1], &u, &all);
        assert_eq!(
            (r.channels, r.pairs, r.surviving, r.sweeps),
            (24, 68, 68, 1)
        );
        assert_eq!(r.witness.unwrap().len(), 2);

        let r = search(&Topology::torus(&[4, 4]), &[1, 1], &u, &TurnSet::new());
        assert_eq!(
            (r.channels, r.pairs, r.surviving, r.sweeps),
            (64, 64, 64, 1)
        );
        assert_eq!(r.witness.unwrap().len(), 4);

        let radix = vec![4usize, 4];
        let seq = catalog::torus_dateline(&radix);
        let universe = design_universe(&seq);
        let vcs = infer_vcs(&universe, 2);
        let turns = extract_turns(&seq).unwrap().into_turn_set();
        let r = search(&Topology::torus(&radix), &vcs, &universe, &turns);
        assert_eq!(
            (r.channels, r.pairs, r.surviving, r.sweeps),
            (128, 428, 0, 14)
        );
        assert!(r.is_deadlock_free());
    }

    #[test]
    fn pair_classes_enumerate_realized_class_combinations() {
        // All-turns-allowed on a mesh: every (a, b) class pair with an
        // adjacent concrete realization appears; straight-through (a, a)
        // included. Sorted and deduplicated by construction.
        let u = parse_channels("X+ X- Y+ Y-").unwrap();
        let mut all = TurnSet::new();
        for &a in &u {
            for &b in &u {
                if a != b {
                    all.insert(Turn::new(a, b));
                }
            }
        }
        let r = search(&Topology::mesh(&[3, 3]), &[1, 1], &u, &all);
        assert!(r.pair_classes.contains(&(0, 0)), "straight-through X+");
        assert!(
            r.pair_classes.windows(2).all(|w| w[0] < w[1]),
            "sorted and deduplicated: {:?}",
            r.pair_classes
        );
        // A hairpin X+ -> X- is adjacent on a mesh and allowed here.
        assert!(r.pair_classes.contains(&(0, 1)), "{:?}", r.pair_classes);

        // Straight-through only: exactly the diagonal pairs survive the
        // admissibility filter.
        let straight = search(&Topology::torus(&[4, 4]), &[1, 1], &u, &TurnSet::new());
        assert_eq!(straight.pair_classes, vec![(0, 0), (1, 1), (2, 2), (3, 3)]);
    }

    #[test]
    fn report_display_covers_both_outcomes() {
        let universe = parse_channels("X+ X-").unwrap();
        let turns = TurnSet::new();
        let free = search(&Topology::mesh(&[3, 1]), &[1, 1], &universe, &turns);
        assert!(free.to_string().contains("deadlock-free"));
        let stuck = search(
            &Topology::mesh(&[3, 1]).with_wrap(&[true, false]),
            &[1, 1],
            &universe,
            &turns,
        );
        assert!(stuck.to_string().contains("DEADLOCK"));
    }
}
