//! Greedy counterexample minimization: make a disagreeing artifact as
//! small as possible while the disagreement persists.
//!
//! The shrinker proposes structural reductions in decreasing order of
//! impact — unwrap a torus dimension, shave a radix, drop a VC level, drop
//! a channel class (with its incident turns), drop a single turn — and
//! greedily keeps any reduction under which the caller's predicate still
//! holds, restarting from the smaller artifact until a full pass makes no
//! progress (ddmin-style to a 1-minimal artifact). The predicate is
//! re-evaluated from scratch each time, so the result is always a genuine,
//! self-contained counterexample.

use crate::artifact::Artifact;
use ebda_core::{Channel, Partition, PartitionSeq, Turn, TurnSet};

/// How many predicate evaluations a shrink run may spend before settling
/// for the best artifact found so far.
pub const DEFAULT_SHRINK_BUDGET: usize = 400;

/// The one-step delta a shrink candidate applies to its parent.
///
/// Exposed to predicates via [`shrink_with_context`] so an incremental
/// verifier session built on the parent can answer turn/channel drops by
/// rechecking only the dirty strongly-connected region, instead of
/// rebuilding the candidate's CDG from scratch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShrinkDelta {
    /// A structural change (unwrap a dimension, shave a radix, drop a VC
    /// level) that renumbers concrete channels — incremental sessions
    /// fall back to a full evaluation for these.
    Structural,
    /// One turn dropped from the relation.
    DropTurn(Turn),
    /// One channel class dropped, with every turn touching it.
    DropChannel(Channel),
}

/// Shrinks `artifact` while `still_failing` holds, spending at most
/// `budget` predicate evaluations. Returns the smallest artifact reached —
/// `artifact` itself if nothing smaller kept the property.
///
/// Candidates are evaluated in parallel waves on the [`ebda_par`] pool
/// (see [`shrink_with_threads`]); the result is identical to the serial
/// greedy loop at every budget and thread count.
pub fn shrink<F>(artifact: &Artifact, still_failing: F, budget: usize) -> Artifact
where
    F: Fn(&Artifact) -> bool + Sync,
{
    shrink_with_threads(artifact, still_failing, budget, ebda_par::threads())
}

/// [`shrink`] with an explicit worker count (1 = strictly serial).
///
/// Parallelism is speculative but the *outcome* is not: each pass
/// evaluates candidates in fixed-size waves and accepts the
/// lowest-indexed candidate that still fails — exactly the one the
/// serial loop would have accepted — charging the budget only for the
/// evaluations that loop would have spent (`j + 1` for a hit at index
/// `j`). Extra speculative evaluations in the winning wave are free, so
/// the accepted chain, the final artifact, and the budget cutoff are
/// byte-identical at any thread count.
pub fn shrink_with_threads<F>(
    artifact: &Artifact,
    still_failing: F,
    budget: usize,
    threads: usize,
) -> Artifact
where
    F: Fn(&Artifact) -> bool + Sync,
{
    shrink_with_context(
        artifact,
        budget,
        threads,
        |_| (),
        |(), c, _| still_failing(c),
    )
}

/// The general greedy loop behind [`shrink_with_threads`]: the caller
/// builds a *context* from each accepted artifact (once per outer pass)
/// and the predicate sees the candidate together with its
/// [`ShrinkDelta`].
///
/// This is the incremental-verification hook: an
/// [`crate::incr::IncrementalSession`] built on the current artifact
/// answers `DropTurn`/`DropChannel` candidates via dirty-SCC queries
/// against the shared base CDG, falling back to a full evaluation only
/// for `Structural` candidates. Budget accounting and the accepted
/// chain are the same as [`shrink_with_threads`] — byte-identical at
/// any thread count.
pub fn shrink_with_context<C, B, F>(
    artifact: &Artifact,
    budget: usize,
    threads: usize,
    build_context: B,
    still_failing: F,
) -> Artifact
where
    C: Sync,
    B: Fn(&Artifact) -> C,
    F: Fn(&C, &Artifact, &ShrinkDelta) -> bool + Sync,
{
    let mut current = artifact.clone();
    let mut evals = 0usize;
    loop {
        if evals >= budget {
            return current;
        }
        let context = build_context(&current);
        let mut cands = candidates(&current);
        // The serial loop would evaluate at most this many candidates
        // before the budget check stopped it.
        let scan = cands.len().min(budget - evals);
        let wave = if threads <= 1 { 1 } else { threads * 2 };
        let mut hit = None;
        let mut offset = 0;
        while offset < scan && hit.is_none() {
            let end = (offset + wave).min(scan);
            let fails = ebda_par::parallel_map(threads, &cands[offset..end], |_, (c, d)| {
                still_failing(&context, c, d)
            });
            hit = fails.iter().position(|&f| f).map(|j| offset + j);
            offset = end;
        }
        match hit {
            Some(j) => {
                // Charge what the serial loop would have: candidates
                // 0..=j. The counter tracks chargeable evaluations, so it
                // too is thread-count invariant.
                evals += j + 1;
                ebda_obs::metrics::counter_add("ebda_oracle_shrink_evals_total", &[], j as u64 + 1);
                ebda_obs::prof::work("oracle/shrink", "shrink_evals", j as u64 + 1);
                current = cands.swap_remove(j).0; // restart from the smaller artifact
            }
            None => {
                ebda_obs::metrics::counter_add("ebda_oracle_shrink_evals_total", &[], scan as u64);
                ebda_obs::prof::work("oracle/shrink", "shrink_evals", scan as u64);
                // Full pass without improvement (1-minimal) or budget
                // exhausted mid-pass: either way, this is the answer.
                return current;
            }
        }
    }
}

/// Proposes one-step reductions of an artifact, biggest first, each
/// tagged with the delta it applies.
fn candidates(a: &Artifact) -> Vec<(Artifact, ShrinkDelta)> {
    let mut out = Vec::new();
    // 1. Unwrap a torus dimension.
    for d in 0..a.wrap.len() {
        if a.wrap[d] {
            let mut c = a.clone();
            c.wrap[d] = false;
            out.push((c, ShrinkDelta::Structural));
        }
    }
    // 2. Shave one off a radix (wrapped dimensions stay >= 3, unwrapped >= 2).
    for d in 0..a.radix.len() {
        let floor = if a.wrap[d] { 3 } else { 2 };
        if a.radix[d] > floor {
            let mut c = a.clone();
            c.radix[d] -= 1;
            out.push((c, ShrinkDelta::Structural));
        }
    }
    // 3. Drop the top VC level of a dimension.
    for d in 0..a.vcs.len() {
        if a.vcs[d] > 1 {
            let top = a.vcs[d];
            let dim = ebda_core::Dimension::new(d as u8);
            let mut c = keep_channels(a, |ch| ch.dim != dim || ch.vc < top);
            c.vcs[d] = top - 1;
            if !c.universe.is_empty() {
                out.push((c, ShrinkDelta::Structural));
            }
        }
    }
    // 4. Drop one channel class (and every turn touching it).
    if a.universe.len() > 1 {
        for i in 0..a.universe.len() {
            let victim = a.universe[i];
            out.push((
                keep_channels(a, |ch| *ch != victim),
                ShrinkDelta::DropChannel(victim),
            ));
        }
    }
    // 5. Drop one turn.
    for t in a.turns.iter() {
        let mut c = a.clone();
        let mut turns = TurnSet::new();
        for keep in a.turns.iter().filter(|&k| k != t) {
            turns.insert(keep);
        }
        c.turns = turns;
        out.push((c, ShrinkDelta::DropTurn(t)));
    }
    out
}

/// Rebuilds an artifact keeping only the channels `keep` accepts: the
/// universe is filtered, turns with a dropped endpoint are removed, and
/// the design (if any) has the channels filtered out of its partitions —
/// empty partitions vanish, and a design reduced to nothing becomes
/// `None`.
fn keep_channels(a: &Artifact, keep: impl Fn(&Channel) -> bool) -> Artifact {
    let mut c = a.clone();
    c.universe.retain(|ch| keep(ch));
    let mut turns = TurnSet::new();
    for t in a.turns.iter() {
        if keep(&t.from) && keep(&t.to) {
            turns.insert(t);
        }
    }
    c.turns = turns;
    c.design = a.design.as_ref().and_then(|seq| {
        let partitions: Vec<Partition> = seq
            .partitions()
            .iter()
            .filter_map(|p| {
                let kept: Vec<Channel> = p.iter().filter(|ch| keep(ch)).copied().collect();
                if kept.is_empty() {
                    None
                } else {
                    Some(Partition::from_channels(kept).expect("subset of a valid partition"))
                }
            })
            .collect();
        if partitions.is_empty() {
            None
        } else {
            Some(PartitionSeq::from_partitions(partitions))
        }
    });
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::ArtifactKind;
    use crate::brute;
    use ebda_core::parse_channels;

    /// A 4x4 torus with straight-through-only routing on one VC: the wrap
    /// rings deadlock. The minimal artifact keeping "brute finds a
    /// deadlock" is a single ring.
    fn torus_rings() -> Artifact {
        Artifact {
            id: 0,
            kind: ArtifactKind::ChannelOrdering,
            radix: vec![4, 4],
            wrap: vec![true, true],
            vcs: vec![1, 1],
            universe: parse_channels("X+ X- Y+ Y-").unwrap(),
            turns: TurnSet::new(),
            design: None,
        }
    }

    fn brute_deadlocks(a: &Artifact) -> bool {
        !brute::search(&a.topology(), &a.vcs, &a.universe, &a.turns).is_deadlock_free()
    }

    #[test]
    fn shrinks_torus_rings_to_one_minimal_ring() {
        let start = torus_rings();
        assert!(brute_deadlocks(&start));
        let small = shrink(&start, brute_deadlocks, DEFAULT_SHRINK_BUDGET);
        assert!(brute_deadlocks(&small), "shrunk artifact must still fail");
        // One wrapped dimension at the radix floor, a single channel
        // class, no turns.
        assert_eq!(small.universe.len(), 1);
        assert_eq!(small.turns.len(), 0);
        assert_eq!(small.wrap.iter().filter(|&&w| w).count(), 1);
        assert!(small.node_count() < start.node_count());
        let wrapped = small.wrap.iter().position(|&w| w).unwrap();
        assert_eq!(small.radix[wrapped], 3);
    }

    #[test]
    fn returns_input_when_nothing_smaller_fails() {
        let start = torus_rings();
        // Predicate nothing satisfies: shrinker must hand back the input.
        let same = shrink(&start, |_| false, DEFAULT_SHRINK_BUDGET);
        assert_eq!(same, start);
    }

    #[test]
    fn respects_the_evaluation_budget() {
        let start = torus_rings();
        // Budget 0: no candidate may even be evaluated.
        let same = shrink(&start, brute_deadlocks, 0);
        assert_eq!(same, start);
    }

    #[test]
    fn parallel_shrink_matches_serial_at_every_budget() {
        let start = torus_rings();
        // The accepted chain and the budget cutoff must be identical at
        // any thread count, including budgets that expire mid-pass.
        for budget in [0, 1, 2, 3, 7, 25, DEFAULT_SHRINK_BUDGET] {
            let serial = shrink_with_threads(&start, brute_deadlocks, budget, 1);
            for threads in [2, 4, 8] {
                let par = shrink_with_threads(&start, brute_deadlocks, budget, threads);
                assert_eq!(par, serial, "budget {budget}, threads {threads}");
            }
        }
    }

    #[test]
    fn context_shrink_matches_plain_shrink() {
        // The unit-context wrapper and an explicit context run must
        // walk the identical accepted chain.
        let start = torus_rings();
        for budget in [3, 25, DEFAULT_SHRINK_BUDGET] {
            let plain = shrink_with_threads(&start, brute_deadlocks, budget, 2);
            let ctx = shrink_with_context(
                &start,
                budget,
                2,
                |parent| parent.clone(),
                |parent, c, delta| {
                    // Deltas must be consistent with the candidate.
                    match delta {
                        ShrinkDelta::DropTurn(t) => {
                            assert!(parent.turns.contains(*t));
                            assert!(!c.turns.contains(*t));
                        }
                        ShrinkDelta::DropChannel(ch) => {
                            assert!(parent.universe.contains(ch));
                            assert!(!c.universe.contains(ch));
                        }
                        ShrinkDelta::Structural => {}
                    }
                    brute_deadlocks(c)
                },
            );
            assert_eq!(plain, ctx, "budget {budget}");
        }
    }

    #[test]
    fn keep_channels_filters_design_and_turns() {
        let seq = PartitionSeq::parse("X- | X+ Y+ Y-").unwrap();
        let universe = seq.channels();
        let turns = ebda_core::extract_turns(&seq).unwrap().into_turn_set();
        let a = Artifact {
            id: 0,
            kind: ArtifactKind::Partitioning,
            radix: vec![3, 3],
            wrap: vec![false, false],
            vcs: vec![1, 1],
            universe,
            turns,
            design: Some(seq),
        };
        let y_minus = "Y-".parse::<Channel>().unwrap();
        let c = keep_channels(&a, |ch| *ch != y_minus);
        assert!(!c.universe.contains(&y_minus));
        assert!(c.turns.iter().all(|t| t.from != y_minus && t.to != y_minus));
        let design = c.design.unwrap();
        assert!(design.channels().iter().all(|&ch| ch != y_minus));
        assert_eq!(design.len(), 2); // no partition emptied out
    }
}
