//! Random verification artifacts and their deterministic generator.
//!
//! An [`Artifact`] is one self-contained verification problem: a concrete
//! topology (2D/3D mesh or torus), a per-dimension VC budget, a channel
//! universe, a turn set, and — for partitioning artifacts — the EbDa
//! partition sequence the turn set came from. The [`Generator`] derives an
//! endless, seed-reproducible stream of them from an [`ebda_obs::Rng64`],
//! cycling through three families so every verdict path gets exercised:
//!
//! * **partitionings** — random channel partitions (frequently violating
//!   Theorem 1, the negative cases) mixed with Algorithm 1 outputs and
//!   their permutations (the positive cases);
//! * **channel orderings** — a random total order on the universe, turns
//!   allowed only in ascending order (Dally's classic numbering);
//! * **random turn relations** — each ordered class pair allowed with a
//!   sampled probability, from sparse to near-complete.

use ebda_cdg::Topology;
use ebda_core::{
    algorithm1, extract_turns, Channel, ChannelClass, Dimension, Direction, Parity, Partition,
    PartitionSeq, Turn, TurnSet,
};
use ebda_obs::Rng64;
use std::fmt;

/// Which family an artifact belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactKind {
    /// A (possibly invalid) EbDa partition sequence with extracted or
    /// naively-derived turns.
    Partitioning,
    /// A random total order on the channel classes; turns strictly ascend.
    ChannelOrdering,
    /// A random subset of all class-to-class turns.
    RandomTurns,
}

impl fmt::Display for ArtifactKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactKind::Partitioning => write!(f, "partitioning"),
            ArtifactKind::ChannelOrdering => write!(f, "channel-ordering"),
            ArtifactKind::RandomTurns => write!(f, "random-turns"),
        }
    }
}

/// One generated verification problem (see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct Artifact {
    /// Sequence number within the generator's stream.
    pub id: u64,
    /// The family it was drawn from.
    pub kind: ArtifactKind,
    /// Per-dimension radices of the topology.
    pub radix: Vec<usize>,
    /// Per-dimension wrap flags (`true` = torus dimension).
    pub wrap: Vec<bool>,
    /// Per-dimension virtual-channel budget.
    pub vcs: Vec<u8>,
    /// The channel-class universe.
    pub universe: Vec<Channel>,
    /// The allowed turns over `universe`.
    pub turns: TurnSet,
    /// The partition sequence, for [`ArtifactKind::Partitioning`] only.
    pub design: Option<PartitionSeq>,
}

impl Artifact {
    /// Builds the concrete topology instance.
    pub fn topology(&self) -> Topology {
        Topology::mesh(&self.radix).with_wrap(&self.wrap)
    }

    /// Returns `true` when any dimension wraps (the EbDa mesh-only
    /// guarantee does not apply).
    pub fn wraps(&self) -> bool {
        self.wrap.iter().any(|&w| w)
    }

    /// Total node count of the topology.
    pub fn node_count(&self) -> usize {
        self.radix.iter().product()
    }

    /// A compact one-line description for logs and disagreement reports.
    pub fn summary(&self) -> String {
        let shape: Vec<String> = self
            .radix
            .iter()
            .zip(&self.wrap)
            .map(|(r, w)| format!("{r}{}", if *w { "t" } else { "" }))
            .collect();
        let design = match &self.design {
            Some(seq) => format!(", design {seq}"),
            None => String::new(),
        };
        format!(
            "#{} {} on {} (vcs {:?}, {} classes, {} turns{design})",
            self.id,
            self.kind,
            shape.join("x"),
            self.vcs,
            self.universe.len(),
            self.turns.len(),
        )
    }
}

impl fmt::Display for Artifact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.summary())
    }
}

/// The naive turn relation of a partition sequence, used when the sequence
/// fails validation (so EbDa refuses to extract): all intra-partition
/// transitions plus all forward inter-partition transitions. For *valid*
/// sequences this over-approximates Theorem 2 (which restricts U-/I-turns
/// to ascending VC order); for invalid ones it models the router a
/// designer would naively build from the broken partitioning.
pub fn naive_turns(seq: &PartitionSeq) -> TurnSet {
    let mut turns = TurnSet::new();
    let parts = seq.partitions();
    for (i, p) in parts.iter().enumerate() {
        for &a in p.iter() {
            for &b in p.iter() {
                if a != b {
                    turns.insert(Turn::new(a, b));
                }
            }
            for q in parts.iter().skip(i + 1) {
                for &b in q.iter() {
                    if a != b {
                        turns.insert(Turn::new(a, b));
                    }
                }
            }
        }
    }
    turns
}

/// A deterministic stream of verification artifacts.
#[derive(Debug)]
pub struct Generator {
    rng: Rng64,
    next_id: u64,
    max_nodes: usize,
}

impl Generator {
    /// A generator with the default size ceiling (36 nodes).
    pub fn new(seed: u64) -> Generator {
        Generator::with_max_nodes(seed, 36)
    }

    /// A generator whose topologies stay at or below `max_nodes` nodes —
    /// small ceilings keep debug-build campaigns fast.
    ///
    /// # Panics
    ///
    /// Panics if `max_nodes < 4` (no 2D topology fits).
    pub fn with_max_nodes(seed: u64, max_nodes: usize) -> Generator {
        assert!(max_nodes >= 4, "need room for at least a 2x2 mesh");
        Generator {
            rng: Rng64::new(seed),
            next_id: 0,
            max_nodes,
        }
    }

    /// Draws the next artifact. The stream is fully determined by the seed.
    pub fn next_artifact(&mut self) -> Artifact {
        let id = self.next_id;
        self.next_id += 1;
        let kind = match id % 3 {
            0 => ArtifactKind::Partitioning,
            1 => ArtifactKind::ChannelOrdering,
            _ => ArtifactKind::RandomTurns,
        };

        let (radix, wrap, vcs) = self.sample_shape();
        let dims = radix.len();

        let mut artifact = match kind {
            ArtifactKind::Partitioning => self.partitioning(dims, &vcs),
            ArtifactKind::ChannelOrdering => self.channel_ordering(dims, &vcs),
            ArtifactKind::RandomTurns => self.random_turns(dims, &vcs),
        };
        artifact.id = id;
        artifact.kind = kind;
        artifact.radix = radix;
        artifact.wrap = wrap;
        artifact
    }

    /// Samples a topology shape and VC budget within the node ceiling.
    fn sample_shape(&mut self) -> (Vec<usize>, Vec<bool>, Vec<u8>) {
        loop {
            let dims = if self.rng.gen_bool(0.75) { 2 } else { 3 };
            let radix: Vec<usize> = (0..dims)
                .map(|_| {
                    if dims == 2 {
                        3 + self.rng.gen_index(3) // 3..=5
                    } else {
                        2 + self.rng.gen_index(2) // 2..=3
                    }
                })
                .collect();
            if radix.iter().product::<usize>() > self.max_nodes {
                continue;
            }
            let wrap: Vec<bool> = radix
                .iter()
                .map(|&r| r >= 3 && self.rng.gen_bool(0.3))
                .collect();
            let vc_cap = if dims == 2 { 4 } else { 2 };
            let vcs: Vec<u8> = (0..dims)
                .map(|_| {
                    let mut vc = 1u8;
                    while vc < vc_cap && self.rng.gen_bool(0.35) {
                        vc += 1;
                    }
                    vc
                })
                .collect();
            return (radix, wrap, vcs);
        }
    }

    /// The full channel pool for a VC budget: every (dim, dir, vc) class.
    fn pool(&self, dims: usize, vcs: &[u8]) -> Vec<Channel> {
        let mut pool = Vec::new();
        for (d, &vc_count) in vcs.iter().enumerate().take(dims) {
            for dir in [Direction::Plus, Direction::Minus] {
                for vc in 1..=vc_count {
                    pool.push(Channel::with_vc(Dimension::new(d as u8), dir, vc));
                }
            }
        }
        pool
    }

    /// With some probability, splits one unrestricted class into an
    /// even/odd parity pair — stressing the class-matching logic of every
    /// verdict path.
    fn maybe_add_parity(&mut self, dims: usize, universe: &mut Vec<Channel>) {
        if !self.rng.gen_bool(0.25) {
            return;
        }
        let i = self.rng.gen_index(universe.len());
        if universe[i].class != ChannelClass::All {
            return;
        }
        let axis = Dimension::new(self.rng.gen_index(dims) as u8);
        let base = universe.remove(i);
        for parity in [Parity::Even, Parity::Odd] {
            universe.push(Channel {
                class: ChannelClass::AtParity { axis, parity },
                ..base
            });
        }
    }

    fn partitioning(&mut self, dims: usize, vcs: &[u8]) -> Artifact {
        // Algorithm 1 output: valid by construction — then sometimes
        // permuted (permutation only reorders partitions, so Theorem 1
        // still holds, but the extraction changes shape).
        let algo1 = if self.rng.gen_bool(0.4) {
            algorithm1::partition_network(vcs).ok()
        } else {
            None
        };
        let seq = if let Some(seq) = algo1 {
            if self.rng.gen_bool(0.5) && seq.len() > 1 {
                let mut order: Vec<usize> = (0..seq.len()).collect();
                self.rng.shuffle(&mut order);
                seq.permuted(&order)
            } else {
                seq
            }
        } else {
            // A uniformly random partitioning of the full pool — the
            // negative-case stream (most draws violate Theorem 1).
            let mut pool = self.pool(dims, vcs);
            self.rng.shuffle(&mut pool);
            let k = 1 + self.rng.gen_index(pool.len().min(4));
            let mut partitions: Vec<Partition> = Vec::new();
            let chunk = pool.len().div_ceil(k);
            for channels in pool.chunks(chunk) {
                partitions.push(
                    Partition::from_channels(channels.iter().copied())
                        .expect("pool channels are distinct"),
                );
            }
            PartitionSeq::from_partitions(partitions)
        };
        let universe = seq.channels();
        let turns = match extract_turns(&seq) {
            Ok(extraction) => extraction.into_turn_set(),
            Err(_) => naive_turns(&seq),
        };
        Artifact {
            id: 0,
            kind: ArtifactKind::Partitioning,
            radix: Vec::new(),
            wrap: Vec::new(),
            vcs: vcs.to_vec(),
            universe,
            turns,
            design: Some(seq),
        }
    }

    fn channel_ordering(&mut self, dims: usize, vcs: &[u8]) -> Artifact {
        let mut universe = self.pool(dims, vcs);
        self.maybe_add_parity(dims, &mut universe);
        self.rng.shuffle(&mut universe);
        let mut turns = TurnSet::new();
        for i in 0..universe.len() {
            for j in (i + 1)..universe.len() {
                turns.insert(Turn::new(universe[i], universe[j]));
            }
        }
        Artifact {
            id: 0,
            kind: ArtifactKind::ChannelOrdering,
            radix: Vec::new(),
            wrap: Vec::new(),
            vcs: vcs.to_vec(),
            universe,
            turns,
            design: None,
        }
    }

    fn random_turns(&mut self, dims: usize, vcs: &[u8]) -> Artifact {
        let mut universe = self.pool(dims, vcs);
        self.maybe_add_parity(dims, &mut universe);
        let p = [0.15, 0.4, 0.7][self.rng.gen_index(3)];
        let mut turns = TurnSet::new();
        for &a in &universe {
            for &b in &universe {
                if a != b && self.rng.gen_bool(p) {
                    turns.insert(Turn::new(a, b));
                }
            }
        }
        Artifact {
            id: 0,
            kind: ArtifactKind::RandomTurns,
            radix: Vec::new(),
            wrap: Vec::new(),
            vcs: vcs.to_vec(),
            universe,
            turns,
            design: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_seed_reproducible() {
        let mut a = Generator::new(42);
        let mut b = Generator::new(42);
        for _ in 0..30 {
            assert_eq!(a.next_artifact(), b.next_artifact());
        }
        let mut c = Generator::new(43);
        let differs = (0..30).any(|_| a.next_artifact() != c.next_artifact());
        assert!(differs, "different seeds should diverge");
    }

    #[test]
    fn kinds_cycle_and_shapes_respect_the_ceiling() {
        let mut g = Generator::with_max_nodes(7, 20);
        for i in 0..60u64 {
            let a = g.next_artifact();
            assert_eq!(a.id, i);
            assert!(a.node_count() <= 20, "{}", a.summary());
            assert!(!a.universe.is_empty());
            assert_eq!(a.vcs.len(), a.radix.len());
            let expected = match i % 3 {
                0 => ArtifactKind::Partitioning,
                1 => ArtifactKind::ChannelOrdering,
                _ => ArtifactKind::RandomTurns,
            };
            assert_eq!(a.kind, expected);
            if a.kind == ArtifactKind::Partitioning {
                assert!(a.design.is_some());
            }
            // Wrapped dimensions always have radix >= 3.
            for (r, w) in a.radix.iter().zip(&a.wrap) {
                assert!(!w || *r >= 3);
            }
            // The topology builds without panicking.
            assert_eq!(a.topology().node_count(), a.node_count());
        }
    }

    #[test]
    fn valid_partitionings_get_extracted_turns() {
        // A valid design's artifact turns must match the Theorem 1–3
        // extraction, not the naive over-approximation.
        let mut g = Generator::new(5);
        let mut checked = 0;
        for _ in 0..120 {
            let a = g.next_artifact();
            if let Some(seq) = &a.design {
                if let Ok(extraction) = extract_turns(seq) {
                    assert_eq!(&a.turns, extraction.turn_set());
                    checked += 1;
                }
            }
        }
        assert!(checked > 0, "stream produced no valid designs");
    }

    #[test]
    fn naive_turns_of_an_invalid_sequence_are_cyclic_material() {
        // One partition holding both complete pairs: the naive router
        // allows every turn.
        let seq = PartitionSeq::parse("X+ X- Y+ Y-").unwrap();
        assert!(seq.validate().is_err());
        let turns = naive_turns(&seq);
        assert_eq!(turns.len(), 12); // all ordered pairs of 4 classes
    }
}
