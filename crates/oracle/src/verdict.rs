//! The four verdict paths and the cross-checking rules between them.
//!
//! Every artifact is pushed through:
//!
//! 1. **EbDa theorems** (`ebda-core`): [`ebda_core::design_verdict`] on the
//!    partition sequence — partitioning artifacts only.
//! 2. **Dally** (`ebda-cdg`): CDG construction + cycle search via
//!    [`ebda_cdg::verify_turn_set`].
//! 3. **Duato** (`ebda-cdg`): escape-subnetwork acyclicity + connectivity
//!    via [`ebda_cdg::duato::verify_escape`], treating the whole relation
//!    as its own escape network.
//! 4. **Brute force** ([`crate::brute`]): greatest-fixed-point search over
//!    channel-wait configurations, sharing no code with the CDG.
//!
//! [`cross_check`] then applies the soundness relations the theory
//! promises; any violation is a [`Disagreement`] and means one of the four
//! implementations is wrong. [`Mutation`] deliberately breaks one path so
//! the campaign can prove it would notice.

use crate::artifact::Artifact;
use crate::brute::{self, BruteReport};
use ebda_cdg::duato::{verify_escape, verify_escape_given, DuatoReport};
use ebda_cdg::{verify_turn_set, Topology, VerificationReport};
use ebda_core::{design_verdict, DesignVerdict};
use std::fmt;

/// A deliberately-broken checker, for proving the oracle catches bugs.
/// `None` is the production configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mutation {
    /// All four paths run unmodified.
    #[default]
    None,
    /// The Dally path verifies on the unwrapped mesh even when the
    /// artifact's topology is a torus — the classic "forgot the wrap
    /// links" verifier bug.
    DallyIgnoresWrap,
    /// The EbDa path reports every design as valid, skipping the Theorem 1
    /// check — an unsound constructive verifier.
    EbdaSkipsTheorem1,
}

impl Mutation {
    /// Parses a CLI name (`none`, `dally-ignores-wrap`,
    /// `ebda-skips-theorem1`).
    pub fn parse(s: &str) -> Option<Mutation> {
        match s {
            "none" => Some(Mutation::None),
            "dally-ignores-wrap" => Some(Mutation::DallyIgnoresWrap),
            "ebda-skips-theorem1" => Some(Mutation::EbdaSkipsTheorem1),
            _ => None,
        }
    }
}

impl fmt::Display for Mutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mutation::None => write!(f, "none"),
            Mutation::DallyIgnoresWrap => write!(f, "dally-ignores-wrap"),
            Mutation::EbdaSkipsTheorem1 => write!(f, "ebda-skips-theorem1"),
        }
    }
}

/// The four verdicts on one artifact.
#[derive(Debug, Clone)]
pub struct Verdicts {
    /// EbDa's constructive verdict — `None` for artifacts without a design.
    pub ebda: Option<DesignVerdict>,
    /// Dally's CDG verdict.
    pub dally: VerificationReport,
    /// Duato's escape conditions on the full relation.
    pub duato: DuatoReport,
    /// The brute-force search verdict.
    pub brute: BruteReport,
}

/// A violated cross-checking rule: the loud failure the oracle exists for.
#[derive(Debug, Clone)]
pub struct Disagreement {
    /// Which rule was violated.
    pub rule: &'static str,
    /// Human-readable evidence: artifact summary plus both verdicts.
    pub detail: String,
}

impl fmt::Display for Disagreement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.rule, self.detail)
    }
}

/// Runs all four verdict paths on an artifact, with `mutation` optionally
/// sabotaging one of them.
pub fn evaluate(artifact: &Artifact, mutation: Mutation) -> Verdicts {
    use ebda_obs::prof;
    let _p = prof::phase("oracle/evaluate");
    prof::work("oracle/evaluate", "artifacts", 1);
    let topo = artifact.topology();
    let ebda = {
        let _p = prof::phase("oracle/evaluate/ebda");
        artifact.design.as_ref().map(|seq| match mutation {
            Mutation::EbdaSkipsTheorem1 => DesignVerdict::DeadlockFree {
                partitions: seq.len(),
                channels: seq.channel_count(),
                turns: artifact.turns.counts(),
            },
            _ => design_verdict(seq),
        })
    };
    let dally_topo = match mutation {
        Mutation::DallyIgnoresWrap => Topology::mesh(&artifact.radix),
        _ => topo.clone(),
    };
    let dally = {
        let _p = prof::phase("oracle/evaluate/dally");
        verify_turn_set(
            &dally_topo,
            &artifact.vcs,
            &artifact.universe,
            &artifact.turns,
        )
    };
    let duato = {
        let _p = prof::phase("oracle/evaluate/duato");
        if dally_topo == topo {
            // The acyclicity half of Duato's check is Dally's check on
            // the same inputs — share the report instead of rebuilding
            // the identical CDG. Under a mutation that diverts the
            // Dally topology, the paths must stay independent.
            verify_escape_given(&dally, &topo, &artifact.universe, &artifact.turns)
        } else {
            verify_escape(&topo, &artifact.vcs, &artifact.universe, &artifact.turns)
        }
    };
    let brute = {
        let _p = prof::phase("oracle/evaluate/brute");
        brute::search(&topo, &artifact.vcs, &artifact.universe, &artifact.turns)
    };
    // The brute report carries the deterministic work behind its verdict.
    prof::work("oracle/evaluate/brute", "gfp_sweeps", brute.sweeps as u64);
    prof::work("oracle/evaluate/brute", "wait_pairs", brute.pairs as u64);
    Verdicts {
        ebda,
        dally,
        duato,
        brute,
    }
}

/// Applies the cross-checking rules. Returns the first violated rule, or
/// `None` when all paths agree.
///
/// The rules are exactly the soundness relations the theory gives us:
///
/// * `dally-vs-brute` — Dally's criterion (acyclic CDG) and the
///   brute-force configuration search decide the *same* property, so they
///   must always agree.
/// * `duato-vs-dally` — Duato's escape-acyclicity condition on the full
///   relation is Dally's check by another route; it must match.
/// * `ebda-vs-brute` — a design EbDa accepts is deadlock-free by
///   construction on **meshes** (wrap links void the guarantee without
///   dateline classes), so on unwrapped topologies the brute searcher must
///   find it free.
pub fn cross_check(artifact: &Artifact, verdicts: &Verdicts) -> Option<Disagreement> {
    let rule = disagreement_rule(
        artifact,
        verdicts.ebda.as_ref().map(DesignVerdict::is_deadlock_free),
        verdicts.dally.is_deadlock_free(),
        verdicts.duato.escape_acyclic,
        verdicts.brute.is_deadlock_free(),
    )?;
    let detail = match rule {
        "dally-vs-brute" => format!(
            "{}: dally says {} but brute says {}",
            artifact.summary(),
            verdicts.dally,
            verdicts.brute
        ),
        "duato-vs-dally" => format!(
            "{}: duato escape-acyclic={} but dally says {}",
            artifact.summary(),
            verdicts.duato.escape_acyclic,
            verdicts.dally
        ),
        _ => format!(
            "{}: EbDa accepts ({}) on a mesh but brute says {}",
            artifact.summary(),
            verdicts
                .ebda
                .as_ref()
                .expect("ebda-vs-brute fires only with an EbDa verdict"),
            verdicts.brute
        ),
    };
    Some(Disagreement { rule, detail })
}

/// The boolean core of [`cross_check`]: which rule (if any) the four
/// per-path verdicts violate. Shared with the incremental shrink paths
/// ([`crate::incr`]), which compute the same booleans without full
/// reports — keeping the disagreement predicate identical by
/// construction between full and incremental modes.
pub fn disagreement_rule(
    artifact: &Artifact,
    ebda_free: Option<bool>,
    dally_free: bool,
    duato_escape_acyclic: bool,
    brute_free: bool,
) -> Option<&'static str> {
    if dally_free != brute_free {
        return Some("dally-vs-brute");
    }
    if duato_escape_acyclic != dally_free {
        return Some("duato-vs-dally");
    }
    if ebda_free == Some(true) && !artifact.wraps() && !brute_free {
        return Some("ebda-vs-brute");
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::{ArtifactKind, Generator};
    use ebda_core::{catalog, extract_turns};

    fn design_artifact(
        seq: ebda_core::PartitionSeq,
        radix: Vec<usize>,
        wrap: Vec<bool>,
    ) -> Artifact {
        let universe = seq.channels();
        let vcs = ebda_cdg::dally::infer_vcs(&universe, radix.len());
        let turns = extract_turns(&seq).unwrap().into_turn_set();
        Artifact {
            id: 0,
            kind: ArtifactKind::Partitioning,
            radix,
            wrap,
            vcs,
            universe,
            turns,
            design: Some(seq),
        }
    }

    #[test]
    fn clean_design_passes_all_rules() {
        let a = design_artifact(catalog::fig7b_dyxy(), vec![4, 4], vec![false, false]);
        let v = evaluate(&a, Mutation::None);
        assert!(v.ebda.as_ref().unwrap().is_deadlock_free());
        assert!(v.dally.is_deadlock_free());
        assert!(v.brute.is_deadlock_free());
        assert!(cross_check(&a, &v).is_none());
    }

    #[test]
    fn dally_wrap_mutation_is_caught_on_a_torus_ring() {
        // Dimension-order on a torus: cyclic only through the wrap links,
        // so a verifier that drops them wrongly accepts.
        let a = design_artifact(
            ebda_core::PartitionSeq::parse("X+ X- | Y+ Y-").unwrap(),
            vec![4, 4],
            vec![true, true],
        );
        let honest = evaluate(&a, Mutation::None);
        assert!(cross_check(&a, &honest).is_none(), "honest paths agree");
        assert!(!honest.brute.is_deadlock_free());

        let mutated = evaluate(&a, Mutation::DallyIgnoresWrap);
        let d = cross_check(&a, &mutated).expect("mutation must be caught");
        assert_eq!(d.rule, "dally-vs-brute");
        assert!(d.to_string().contains("dally-vs-brute"));
    }

    #[test]
    fn ebda_theorem1_mutation_is_caught_on_a_mesh() {
        // An invalid partitioning whose naive router allows every turn:
        // EbDa honestly rejects it; the mutated EbDa accepts and collides
        // with the brute verdict on the mesh.
        let seq = ebda_core::PartitionSeq::parse("X+ X- Y+ Y-").unwrap();
        let universe = seq.channels();
        let turns = crate::artifact::naive_turns(&seq);
        let a = Artifact {
            id: 0,
            kind: ArtifactKind::Partitioning,
            radix: vec![4, 4],
            wrap: vec![false, false],
            vcs: vec![1, 1],
            universe,
            turns,
            design: Some(seq),
        };
        let honest = evaluate(&a, Mutation::None);
        assert!(cross_check(&a, &honest).is_none());
        assert!(!honest.ebda.as_ref().unwrap().is_deadlock_free());

        let mutated = evaluate(&a, Mutation::EbdaSkipsTheorem1);
        let d = cross_check(&a, &mutated).expect("mutation must be caught");
        assert_eq!(d.rule, "ebda-vs-brute");
    }

    #[test]
    fn generated_stream_is_disagreement_free() {
        // A quick inline sweep; the full campaign lives in the
        // differential module and the integration tests.
        let mut g = Generator::with_max_nodes(7, 16);
        for _ in 0..24 {
            let a = g.next_artifact();
            let v = evaluate(&a, Mutation::None);
            assert!(
                cross_check(&a, &v).is_none(),
                "unexpected disagreement on {}",
                a.summary()
            );
        }
    }

    #[test]
    fn duato_stays_independent_under_dally_mutation() {
        // With DallyIgnoresWrap the Dally path sees the unwrapped mesh,
        // so the shared-CDG fast path must NOT be taken: Duato has to
        // keep verifying the real torus and still see the wrap cycle.
        let a = design_artifact(
            ebda_core::PartitionSeq::parse("X+ X- | Y+ Y-").unwrap(),
            vec![4, 4],
            vec![true, true],
        );
        let mutated = evaluate(&a, Mutation::DallyIgnoresWrap);
        assert!(mutated.dally.is_deadlock_free(), "mutated dally is blind");
        assert!(!mutated.duato.escape_acyclic, "duato sees the real torus");
    }

    #[test]
    fn disagreement_rule_matches_cross_check() {
        let a = design_artifact(catalog::fig7b_dyxy(), vec![4, 4], vec![false, false]);
        let v = evaluate(&a, Mutation::None);
        let booleans = disagreement_rule(
            &a,
            v.ebda.as_ref().map(DesignVerdict::is_deadlock_free),
            v.dally.is_deadlock_free(),
            v.duato.escape_acyclic,
            v.brute.is_deadlock_free(),
        );
        assert_eq!(booleans, cross_check(&a, &v).map(|d| d.rule));
        // And a violated case: a free dally against a deadlocked brute.
        assert_eq!(
            disagreement_rule(&a, None, true, true, false),
            Some("dally-vs-brute")
        );
        assert_eq!(
            disagreement_rule(&a, None, true, false, true),
            Some("duato-vs-dally")
        );
        assert_eq!(
            disagreement_rule(&a, Some(true), false, false, false),
            Some("ebda-vs-brute"),
            "EbDa accepting a brute-deadlocked mesh design is the EbDa rule"
        );
        assert_eq!(
            disagreement_rule(&a, Some(false), false, false, false),
            None,
            "all paths agreeing on deadlock is consistent"
        );
    }

    #[test]
    fn mutation_names_round_trip() {
        for m in [
            Mutation::None,
            Mutation::DallyIgnoresWrap,
            Mutation::EbdaSkipsTheorem1,
        ] {
            assert_eq!(Mutation::parse(&m.to_string()), Some(m));
        }
        assert_eq!(Mutation::parse("bogus"), None);
    }
}
