//! # ebda-oracle — differential verification for the EbDa reproduction
//!
//! The paper's central claim is that EbDa's algebraic checks agree with —
//! and scale far beyond — brute-force deadlock search. This crate turns
//! that claim into an executable, self-checking artifact: four independent
//! verdict paths, a deterministic random-artifact generator that feeds
//! them all, and a minimizer + simulator replay for the day they ever
//! disagree.
//!
//! * [`brute`] — an exhaustive bounded deadlock searcher over channel-wait
//!   configurations, sharing no code with the CDG machinery.
//! * [`artifact`] — random partitionings, channel orderings and routing
//!   relations, reproducible from a seed.
//! * [`verdict`] — the four verdict paths (EbDa, Dally, Duato, brute) and
//!   the cross-checking rules, plus mutation hooks that deliberately break
//!   a checker to prove the oracle notices.
//! * [`shrink`] — greedy 1-minimal counterexample reduction.
//! * [`incr`] — incremental re-verification sessions: turn/channel-drop
//!   shrink candidates answered by dirty-SCC queries on a shared CSR CDG
//!   instead of full rebuilds, with a byte-identical full-mode fallback
//!   (`EBDA_INCREMENTAL=0`).
//! * [`provenance`] — the full proof evidence behind one verdict
//!   (certificates, orderings, witnesses) in canonical JSON, plus the
//!   independent checker `ebda check-cert` runs.
//! * [`differential`] — the campaign entry point shared by the `oracle`
//!   binary, the integration tests and CI.
//! * [`coverage`] — per-artifact coverage extraction feeding the
//!   design-space coverage maps of [`ebda_obs::coverage`], plus the
//!   design-space bin labels coverage-guided generation steers by.
//!
//! ```
//! use ebda_oracle::differential::{run_campaign, CampaignConfig};
//! use std::time::Duration;
//!
//! let report = run_campaign(&CampaignConfig {
//!     budget: Duration::ZERO,
//!     min_configs: 6,
//!     max_nodes: 12,
//!     ..CampaignConfig::default()
//! });
//! assert!(report.is_clean());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod brute;
pub mod coverage;
pub mod differential;
pub mod incr;
pub mod provenance;
pub mod shrink;
pub mod verdict;

pub use artifact::{Artifact, ArtifactKind, Generator};
pub use brute::{search as brute_search, BruteReport};
pub use coverage::{artifact_coverage, design_bin, shape_bin};
pub use differential::{run_campaign, CampaignConfig, CampaignReport};
pub use incr::{IncrementalSession, PathVerdicts};
pub use provenance::{CheckReport, Provenance};
pub use shrink::shrink;
pub use verdict::{cross_check, evaluate, Disagreement, Mutation, Verdicts};
