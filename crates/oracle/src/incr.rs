//! Incremental re-verification sessions for the shrinker, mutation
//! neighborhoods, corpus re-checks and fault-churn replays.
//!
//! A shrink pass proposes hundreds of one-step reductions of the same
//! parent artifact; evaluating each candidate from scratch rebuilds the
//! identical CDG over and over. An [`IncrementalSession`] builds the
//! parent's CDG once (as the shared CSR of
//! [`ebda_cdg::IncrementalVerifier`]) and answers turn- and
//! channel-drop candidates with dirty-SCC queries, falling back to a
//! full [`evaluate`] only for structural candidates (unwrap, radix
//! shave, VC drop) that renumber concrete channels.
//!
//! **Why this is verdict-preserving.** The shrink predicates consult
//! exactly four booleans: Dally's verdict, Duato's `escape_acyclic`
//! (which *is* Dally's check on the same inputs — see
//! [`ebda_cdg::duato::verify_escape_given`]), the brute-force verdict,
//! and EbDa's constructive verdict. The session computes the same
//! booleans — Dally/Duato incrementally, brute and EbDa exactly as the
//! full path does — and feeds them to the same
//! [`crate::verdict::disagreement_rule`], so the accepted shrink chain,
//! the final artifact, and every downstream byte (ledger, coverage,
//! witnesses) are identical between modes. Duato's connectivity BFS is
//! skipped: neither [`crate::verdict::cross_check`] nor the corpus
//! mismatch predicate ever reads `escape_connected`.
//!
//! Mode selection: incremental is on by default; `EBDA_INCREMENTAL=0`
//! (or `off`/`false`) or [`set_enabled`]`(false)` forces the
//! full-rebuild path everywhere, which CI diffs against the incremental
//! mode byte-for-byte.

use crate::artifact::Artifact;
use crate::brute;
use crate::shrink::{shrink_with_context, ShrinkDelta};
use crate::verdict::{cross_check, disagreement_rule, evaluate, Mutation};
use ebda_cdg::{verify_turn_set, IncrementalVerifier, NodeId, Topology};
use ebda_core::{design_verdict, Dimension, Direction};
use std::sync::atomic::{AtomicU8, Ordering};

/// 0 = follow the `EBDA_INCREMENTAL` environment variable (default on),
/// 1 = forced on, 2 = forced off.
static MODE: AtomicU8 = AtomicU8::new(0);

/// Overrides the incremental mode for this process (e.g. the
/// `--incremental on|off` CLI flag). Takes precedence over the
/// environment variable.
pub fn set_enabled(on: bool) {
    MODE.store(if on { 1 } else { 2 }, Ordering::SeqCst);
}

/// Whether incremental re-verification is active: on by default,
/// disabled by `EBDA_INCREMENTAL=0|off|false`, overridden either way by
/// [`set_enabled`].
pub fn enabled() -> bool {
    match MODE.load(Ordering::SeqCst) {
        1 => true,
        2 => false,
        _ => !matches!(
            std::env::var("EBDA_INCREMENTAL").as_deref(),
            Ok("0") | Ok("off") | Ok("false")
        ),
    }
}

/// The four per-path booleans a shrink predicate needs — the compact
/// form of [`crate::verdict::Verdicts`] that incremental queries can
/// produce without building full reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathVerdicts {
    /// EbDa's constructive verdict (`None` without a design).
    pub ebda_free: Option<bool>,
    /// Dally's CDG verdict (on the mutation's Dally topology).
    pub dally_free: bool,
    /// Duato's escape-acyclicity (on the real topology).
    pub duato_acyclic: bool,
    /// The brute-force verdict.
    pub brute_free: bool,
}

/// One incremental shrink session: the parent artifact's CDG(s) built
/// once, queried per candidate. Queries take `&self` and are issued
/// from parallel shrink waves.
pub struct IncrementalSession {
    mutation: Mutation,
    /// Verifier on the Dally topology (diverted under
    /// [`Mutation::DallyIgnoresWrap`]); `None` when incremental mode is
    /// disabled.
    dally: Option<IncrementalVerifier>,
    /// Separate verifier on the real topology, only when the mutation
    /// makes it differ from the Dally one — mutations are handled
    /// incrementally *and* exactly.
    duato: Option<IncrementalVerifier>,
}

impl IncrementalSession {
    /// Builds the session for one parent artifact under `mutation`.
    pub fn new(parent: &Artifact, mutation: Mutation) -> IncrementalSession {
        if !enabled() {
            return IncrementalSession {
                mutation,
                dally: None,
                duato: None,
            };
        }
        let topo = parent.topology();
        let dally_topo = match mutation {
            Mutation::DallyIgnoresWrap => Topology::mesh(&parent.radix),
            _ => topo.clone(),
        };
        let duato = (dally_topo != topo).then(|| {
            IncrementalVerifier::new(
                topo,
                parent.vcs.clone(),
                parent.universe.clone(),
                parent.turns.clone(),
            )
        });
        let dally = IncrementalVerifier::new(
            dally_topo,
            parent.vcs.clone(),
            parent.universe.clone(),
            parent.turns.clone(),
        );
        IncrementalSession {
            mutation,
            dally: Some(dally),
            duato,
        }
    }

    /// The mutation this session evaluates under.
    pub fn mutation(&self) -> Mutation {
        self.mutation
    }

    /// The per-path booleans for `candidate = parent + delta`, or
    /// `None` when the delta is structural (or incremental mode is off)
    /// and the caller must fall back to a full [`evaluate`].
    pub fn path_verdicts(&self, candidate: &Artifact, delta: &ShrinkDelta) -> Option<PathVerdicts> {
        let dally = self.dally.as_ref()?;
        let query = |v: &IncrementalVerifier| -> Option<bool> {
            match delta {
                ShrinkDelta::DropTurn(t) => Some(v.query_remove_turn(*t)),
                ShrinkDelta::DropChannel(c) => Some(v.query_remove_channel(*c)),
                ShrinkDelta::Structural => None,
            }
        };
        let dally_free = query(dally)?;
        let duato_acyclic = match &self.duato {
            Some(v) => query(v)?,
            None => dally_free,
        };
        let brute = brute::search(
            &candidate.topology(),
            &candidate.vcs,
            &candidate.universe,
            &candidate.turns,
        );
        let ebda_free = match self.mutation {
            Mutation::EbdaSkipsTheorem1 => candidate.design.as_ref().map(|_| true),
            _ => candidate
                .design
                .as_ref()
                .map(|seq| design_verdict(seq).is_deadlock_free()),
        };
        Some(PathVerdicts {
            ebda_free,
            dally_free,
            duato_acyclic,
            brute_free: brute.is_deadlock_free(),
        })
    }

    /// The cross-check predicate for one shrink candidate: incremental
    /// when the delta allows, byte-equivalent full evaluation otherwise.
    pub fn still_disagrees(&self, candidate: &Artifact, delta: &ShrinkDelta) -> bool {
        match self.path_verdicts(candidate, delta) {
            Some(p) => disagreement_rule(
                candidate,
                p.ebda_free,
                p.dally_free,
                p.duato_acyclic,
                p.brute_free,
            )
            .is_some(),
            None => cross_check(candidate, &evaluate(candidate, self.mutation)).is_some(),
        }
    }
}

/// Shrinks a disagreeing artifact with per-pass incremental sessions:
/// the drop-in replacement for the old `shrink_with_threads` +
/// full-`evaluate` closure in `investigate`, with the identical
/// accepted chain (and therefore identical shrunk artifact) in both
/// modes at any thread count.
pub fn shrink_disagreement(
    artifact: &Artifact,
    mutation: Mutation,
    budget: usize,
    threads: usize,
) -> Artifact {
    shrink_with_context(
        artifact,
        budget,
        threads,
        |parent| IncrementalSession::new(parent, mutation),
        |session, candidate, delta| session.still_disagrees(candidate, delta),
    )
}

/// Shrinks an artifact while its Dally CDG stays cyclic — the
/// CDG-bound shrink workload `bench_report` measures (`shrink/
/// turn-ring-cdg`): in full mode every candidate rebuilds the CDG; in
/// incremental mode turn/channel drops are dirty-SCC queries.
pub fn shrink_while_cyclic(artifact: &Artifact, budget: usize, threads: usize) -> Artifact {
    shrink_with_context(
        artifact,
        budget,
        threads,
        |parent| {
            enabled().then(|| {
                IncrementalVerifier::new(
                    parent.topology(),
                    parent.vcs.clone(),
                    parent.universe.clone(),
                    parent.turns.clone(),
                )
            })
        },
        |verifier, candidate, delta| {
            let free = match (verifier, delta) {
                (Some(v), ShrinkDelta::DropTurn(t)) => v.query_remove_turn(*t),
                (Some(v), ShrinkDelta::DropChannel(c)) => v.query_remove_channel(*c),
                _ => verify_turn_set(
                    &candidate.topology(),
                    &candidate.vcs,
                    &candidate.universe,
                    &candidate.turns,
                )
                .is_deadlock_free(),
            };
            !free
        },
    )
}

/// Re-verifies Dally's criterion after each fault of a link-failure
/// schedule (the fault-churn replay pattern): one incremental session
/// whose `query_fail_link` masks the dead channels' edges and rechecks
/// only the touched SCCs, then commits via the full-rebuild fallback.
/// Returns the per-fault verdicts (acyclic after the fault?), identical
/// to rebuilding the CDG per fault in full mode.
pub fn verify_fault_schedule(
    artifact: &Artifact,
    faults: &[(NodeId, Dimension, Direction)],
) -> Vec<bool> {
    if enabled() {
        let mut v = IncrementalVerifier::new(
            artifact.topology(),
            artifact.vcs.clone(),
            artifact.universe.clone(),
            artifact.turns.clone(),
        );
        faults
            .iter()
            .map(|&(node, dim, dir)| {
                let verdict = v.query_fail_link(node, dim, dir);
                v.apply_fail_link(node, dim, dir);
                verdict
            })
            .collect()
    } else {
        let mut topo = artifact.topology();
        faults
            .iter()
            .map(|&(node, dim, dir)| {
                topo = topo.clone().with_failed_link(node, dim, dir);
                verify_turn_set(&topo, &artifact.vcs, &artifact.universe, &artifact.turns)
                    .is_deadlock_free()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::ArtifactKind;
    use crate::shrink::{shrink_with_threads, DEFAULT_SHRINK_BUDGET};
    use ebda_core::{parse_channels, PartitionSeq, TurnSet};

    fn torus_dimension_order() -> Artifact {
        let seq = PartitionSeq::parse("X+ X- | Y+ Y-").unwrap();
        let universe = seq.channels();
        let turns = ebda_core::extract_turns(&seq).unwrap().into_turn_set();
        Artifact {
            id: 0,
            kind: ArtifactKind::Partitioning,
            radix: vec![4, 4],
            wrap: vec![true, true],
            vcs: vec![1, 1],
            universe,
            turns,
            design: Some(seq),
        }
    }

    fn all_turns_mesh() -> Artifact {
        let universe = parse_channels("X+ X- Y+ Y-").unwrap();
        let mut turns = TurnSet::new();
        for &a in &universe {
            for &b in &universe {
                if a != b {
                    turns.insert(ebda_core::Turn::new(a, b));
                }
            }
        }
        Artifact {
            id: 0,
            kind: ArtifactKind::RandomTurns,
            radix: vec![4, 4],
            wrap: vec![false, false],
            vcs: vec![1, 1],
            universe,
            turns,
            design: None,
        }
    }

    #[test]
    fn incremental_shrink_matches_full_evaluate_shrink() {
        // The DallyIgnoresWrap mutation disagrees on a torus; the
        // incremental session (two verifiers, since the Dally topology
        // diverges) must walk the identical accepted chain as the
        // full-evaluate predicate, at serial and parallel thread counts.
        let mutation = Mutation::DallyIgnoresWrap;
        let a = torus_dimension_order();
        assert!(cross_check(&a, &evaluate(&a, mutation)).is_some());
        let full = shrink_with_threads(
            &a,
            |c| cross_check(c, &evaluate(c, mutation)).is_some(),
            DEFAULT_SHRINK_BUDGET,
            1,
        );
        for threads in [1, 8] {
            let incr = shrink_disagreement(&a, mutation, DEFAULT_SHRINK_BUDGET, threads);
            assert_eq!(incr, full, "threads {threads}");
        }
        // The shrunk artifact must still disagree under a fresh full
        // evaluation — the session never keeps a stale acceptance.
        assert!(cross_check(&full, &evaluate(&full, mutation)).is_some());
    }

    #[test]
    fn cyclic_shrink_matches_full_mode_and_witnesses_agree() {
        // The bench workload predicate ("Dally still cyclic") must walk
        // the identical accepted chain with and without the incremental
        // session, and the shrunk artifact's witness cycle must match.
        let a = all_turns_mesh();
        let full = shrink_with_threads(
            &a,
            |c| !verify_turn_set(&c.topology(), &c.vcs, &c.universe, &c.turns).is_deadlock_free(),
            DEFAULT_SHRINK_BUDGET,
            1,
        );
        assert_ne!(full, a, "the all-turns artifact must shrink");
        for threads in [1, 8] {
            let incr = shrink_while_cyclic(&a, DEFAULT_SHRINK_BUDGET, threads);
            assert_eq!(incr, full, "threads {threads}");
        }
        let wf = verify_turn_set(&full.topology(), &full.vcs, &full.universe, &full.turns);
        let incr = shrink_while_cyclic(&a, DEFAULT_SHRINK_BUDGET, 8);
        let wi = verify_turn_set(&incr.topology(), &incr.vcs, &incr.universe, &incr.turns);
        assert_eq!(
            wf.cycle.as_ref().map(|c| format!("{c:?}")),
            wi.cycle.as_ref().map(|c| format!("{c:?}")),
            "witness cycles must be byte-identical"
        );
        assert!(wf.cycle.is_some(), "shrunk artifact stays cyclic");
    }

    #[test]
    fn fault_schedule_matches_full_rebuild_chain() {
        let a = Artifact {
            design: None,
            kind: ArtifactKind::ChannelOrdering,
            turns: TurnSet::new(),
            ..torus_dimension_order()
        };
        let faults = [
            (5usize, Dimension::X, Direction::Plus),
            (10, Dimension::Y, Direction::Minus),
            (0, Dimension::X, Direction::Minus),
        ];
        let incr = verify_fault_schedule(&a, &faults);
        // Full-rebuild chain, computed inline (mode-independent).
        let mut topo = a.topology();
        let full: Vec<bool> = faults
            .iter()
            .map(|&(node, dim, dir)| {
                topo = topo.clone().with_failed_link(node, dim, dir);
                verify_turn_set(&topo, &a.vcs, &a.universe, &a.turns).is_deadlock_free()
            })
            .collect();
        assert_eq!(incr, full);
    }

    #[test]
    fn default_mode_is_enabled() {
        // No override set in tests; the env default is on unless the
        // harness exported EBDA_INCREMENTAL=0 explicitly.
        if std::env::var("EBDA_INCREMENTAL").is_err() {
            assert!(enabled());
        }
    }
}
