//! Measurement results of a simulation run.

use std::fmt;

/// Why a simulation run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The configured horizon was reached (warm-up + measurement + drain).
    Completed,
    /// No flit moved for the configured threshold while traffic was in
    /// flight: a deadlock (or a routing fault masquerading as one).
    Deadlocked {
        /// Cycle at which the watchdog fired.
        at_cycle: u64,
        /// Packets stuck inside the network when it fired.
        blocked_packets: usize,
        /// A wait-for cycle among blocked packets, each entry a
        /// human-readable description of one packet's wait — the proof
        /// that this is a genuine circular wait, not a stall.
        wait_cycle: Vec<String>,
    },
}

impl Outcome {
    /// Returns `true` for a deadlock-free run.
    pub fn is_deadlock_free(&self) -> bool {
        matches!(self, Outcome::Completed)
    }
}

/// A physical channel coordinate: output VC `(dim, dir, vc)` at `node`,
/// with `vc` 0-based. The structured form of the channel names that
/// appear inside wait-cycle labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChannelCoord {
    /// Node owning the output channel.
    pub node: usize,
    /// Dimension index.
    pub dim: u8,
    /// Direction, `+` or `-`.
    pub dir: char,
    /// Virtual-channel index, 0-based.
    pub vc: u8,
}

impl fmt::Display for ChannelCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{} d{}{} vc{}", self.node, self.dim, self.dir, self.vc)
    }
}

/// One structured edge of a (suspected or confirmed) circular wait:
/// packet `waiter` cannot advance until `waits_on` does. `held`/`wanted`
/// carry the channel coordinates behind the textual `label` when the
/// wait is channel-shaped (credit starvation, VC ownership); both are
/// `None` for queued-behind edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuspectedEdge {
    /// The blocked packet.
    pub waiter: u64,
    /// The packet it waits on.
    pub waits_on: u64,
    /// Human-readable wait description (matches the recorder's
    /// `WaitFor` labels and `Outcome::Deadlocked::wait_cycle`).
    pub label: String,
    /// The channel `waiter` holds while waiting, when known.
    pub held: Option<ChannelCoord>,
    /// The channel `waiter` needs, when known.
    pub wanted: Option<ChannelCoord>,
}

impl SuspectedEdge {
    /// The channel coordinates this edge mentions, held first.
    pub fn channels(&self) -> impl Iterator<Item = ChannelCoord> + '_ {
        self.held.into_iter().chain(self.wanted)
    }
}

/// Aggregated results of one simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Why the run ended.
    pub outcome: Outcome,
    /// Cycles simulated.
    pub cycles: u64,
    /// Packets injected into source queues during the whole run.
    pub injected_packets: u64,
    /// Packets fully delivered during the whole run.
    pub delivered_packets: u64,
    /// Packets injected in the measurement window.
    pub measured_injected: u64,
    /// Measurement-window packets fully delivered by the end of the run.
    pub measured_delivered: u64,
    /// Mean packet latency (injection to tail ejection) over measured,
    /// delivered packets, in cycles.
    pub avg_latency: f64,
    /// Maximum packet latency over measured, delivered packets.
    pub max_latency: u64,
    /// Sorted latencies of measured, delivered packets (for exact
    /// percentiles). Empty when [`crate::SimConfig::collect_latencies`]
    /// is off — quantiles then come from `latency_hist`.
    pub latencies: Vec<u64>,
    /// Log-bucketed latency histogram over the same packets — always
    /// collected, feeds the live metrics registry and the quantile
    /// fallback when the raw vector is disabled (≤6.25% relative error).
    pub latency_hist: ebda_obs::Histogram,
    /// Mean network hops per measured, delivered packet.
    pub avg_hops: f64,
    /// Flits ejected during the measurement window, per node per cycle —
    /// the accepted throughput.
    pub throughput: f64,
    /// Absolute flit-ejection count in the measurement window.
    pub window_ejected: u64,
    /// Per-channel flit counts over the measurement window, for channel
    /// load-balance analysis (indexed by internal channel slot).
    pub channel_flits: Vec<u64>,
    /// Routing faults (relation returned no candidates) — must be zero for
    /// correct relations.
    pub routing_faults: u64,
    /// Packets delivered out of injection order relative to an earlier
    /// packet of the same (source, destination) pair — the reordering that
    /// adaptive routing buys its performance with (deterministic
    /// single-path relations always report 0).
    pub reordered_packets: u64,
    /// Packets torn down because a scheduled link failure severed their
    /// wormhole mid-flight.
    pub dropped_packets: u64,
    /// Online stall-watchdog firings during the run (0 unless
    /// [`crate::SimConfig::watchdog_window`] is set).
    pub watchdog_trips: u64,
    /// The wait cycle diagnosed by the *last* online watchdog trip that
    /// found one — the live suspicion, captured while the run was still
    /// going. Empty when the watchdog never tripped on a cycle.
    pub suspected_cycle: Vec<SuspectedEdge>,
    /// Cycle of the trip that produced [`SimResult::suspected_cycle`].
    pub suspected_at_cycle: u64,
    /// Structured form of `Outcome::Deadlocked::wait_cycle`: the edges of
    /// the post-mortem diagnosis with their channel coordinates. Empty
    /// for completed runs.
    pub final_wait_edges: Vec<SuspectedEdge>,
}

/// A simple Orion-style additive energy model (the paper's reference 45):
/// each flit pays a router traversal cost (buffering + arbitration +
/// crossbar) and a link traversal cost. Values are in arbitrary energy
/// units; the defaults reflect the usual ~2:1 router:link ratio of
/// published NoC power breakdowns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Energy per flit per router traversal.
    pub router_flit: f64,
    /// Energy per flit per link traversal.
    pub link_flit: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            router_flit: 2.0,
            link_flit: 1.0,
        }
    }
}

impl SimResult {
    /// Estimated dynamic energy spent in the measurement window under the
    /// given model: every recorded channel traversal pays one router + one
    /// link cost, every ejected flit one final router cost.
    pub fn energy_estimate(&self, model: &EnergyModel) -> f64 {
        let link_traversals: u64 = self.channel_flits.iter().sum();
        link_traversals as f64 * (model.router_flit + model.link_flit)
            + self.window_ejected as f64 * model.router_flit
    }

    /// Latency at the given percentile (0–100) over measured, delivered
    /// packets, using nearest-rank; `None` when nothing was delivered.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `0.0..=100.0`.
    pub fn latency_percentile(&self, p: f64) -> Option<u64> {
        assert!((0.0..=100.0).contains(&p), "percentile out of range");
        if self.latencies.is_empty() {
            // Raw vector disabled (or nothing delivered): fall back to the
            // histogram, which is empty exactly when no packet was measured.
            return self.latency_hist.quantile(p / 100.0);
        }
        let n = self.latencies.len();
        let rank = ((p / 100.0 * n as f64).ceil() as usize).clamp(1, n);
        Some(self.latencies[rank - 1])
    }

    /// Coefficient of variation (stddev / mean) of per-channel flit counts
    /// over **all** channel slots of the configuration, idle ones included
    /// — the paper's "better distribution of packets among channels" claim
    /// made measurable. Counting idle slots is deliberate: a design that
    /// funnels traffic through few channels while leaving the rest unused
    /// should score as imbalanced. Lower is more balanced. Returns `None`
    /// when there are no channel slots or no flits moved.
    pub fn channel_balance_cv(&self) -> Option<f64> {
        let used: Vec<f64> = self.channel_flits.iter().map(|&c| c as f64).collect();
        let n = used.len() as f64;
        if n == 0.0 {
            return None;
        }
        let mean = used.iter().sum::<f64>() / n;
        if mean == 0.0 {
            return None;
        }
        let var = used.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        Some(var.sqrt() / mean)
    }
}

impl fmt::Display for SimResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.outcome {
            Outcome::Completed => {
                write!(
                    f,
                    "completed: {} cycles, {}/{} measured packets delivered, \
                     avg latency {:.1}",
                    self.cycles, self.measured_delivered, self.measured_injected, self.avg_latency,
                )?;
                if let Some(p99) = self.latency_percentile(99.0) {
                    write!(f, " (p99 {p99})")?;
                }
                write!(f, ", throughput {:.4} flits/node/cycle", self.throughput)
            }
            Outcome::Deadlocked {
                at_cycle,
                blocked_packets,
                wait_cycle,
            } => {
                write!(
                    f,
                    "DEADLOCK at cycle {at_cycle}: {blocked_packets} packets blocked"
                )?;
                if !wait_cycle.is_empty() {
                    write!(f, "; circular wait: ")?;
                    for (i, w) in wait_cycle.iter().enumerate() {
                        if i > 0 {
                            write!(f, " -> ")?;
                        }
                        write!(f, "{w}")?;
                    }
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> SimResult {
        let latencies = vec![8, 10, 12, 14, 16];
        let mut latency_hist = ebda_obs::Histogram::new();
        for &l in &latencies {
            latency_hist.observe(l);
        }
        SimResult {
            outcome: Outcome::Completed,
            cycles: 100,
            injected_packets: 10,
            delivered_packets: 10,
            measured_injected: 5,
            measured_delivered: 5,
            avg_latency: 12.0,
            max_latency: 20,
            latencies,
            latency_hist,
            avg_hops: 3.0,
            throughput: 0.1,
            window_ejected: 40,
            channel_flits: vec![10, 10, 10, 10],
            routing_faults: 0,
            reordered_packets: 0,
            dropped_packets: 0,
            watchdog_trips: 0,
            suspected_cycle: Vec::new(),
            suspected_at_cycle: 0,
            final_wait_edges: Vec::new(),
        }
    }

    #[test]
    fn energy_model_is_additive() {
        let r = base();
        // 40 link traversals * (2 + 1) + 40 ejections * 2 = 200.
        assert_eq!(r.energy_estimate(&EnergyModel::default()), 200.0);
        let free_links = EnergyModel {
            router_flit: 2.0,
            link_flit: 0.0,
        };
        assert_eq!(r.energy_estimate(&free_links), 160.0);
    }

    #[test]
    fn balance_cv_zero_for_uniform_loads() {
        assert!(base().channel_balance_cv().unwrap() < 1e-9);
    }

    #[test]
    fn balance_cv_grows_with_imbalance() {
        let mut r = base();
        r.channel_flits = vec![40, 0, 0, 0];
        assert!(r.channel_balance_cv().unwrap() > 1.0);
    }

    #[test]
    fn balance_cv_none_when_idle() {
        let mut r = base();
        r.channel_flits = vec![0, 0];
        assert_eq!(r.channel_balance_cv(), None);
        r.channel_flits = vec![];
        assert_eq!(r.channel_balance_cv(), None);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let r = base();
        assert_eq!(r.latency_percentile(0.0), Some(8));
        assert_eq!(r.latency_percentile(50.0), Some(12));
        assert_eq!(r.latency_percentile(90.0), Some(16));
        assert_eq!(r.latency_percentile(100.0), Some(16));
        let mut empty = base();
        empty.latencies.clear();
        empty.latency_hist = ebda_obs::Histogram::new();
        assert_eq!(empty.latency_percentile(50.0), None);
    }

    #[test]
    fn percentiles_fall_back_to_the_histogram() {
        // collect_latencies = false leaves the raw vector empty; quantiles
        // must still come out of the histogram (exact below 16).
        let mut r = base();
        r.latencies.clear();
        assert_eq!(r.latency_percentile(50.0), Some(12));
        assert_eq!(r.latency_percentile(100.0), Some(16));
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn percentile_range_checked() {
        let _ = base().latency_percentile(101.0);
    }

    #[test]
    fn outcome_display() {
        let text = base().to_string();
        assert!(text.contains("completed"));
        assert!(text.contains("(p99 16)"), "missing p99 in: {text}");
        // No delivered packets => no p99 clause, but still well-formed.
        let mut idle = base();
        idle.latencies.clear();
        idle.latency_hist = ebda_obs::Histogram::new();
        assert!(!idle.to_string().contains("p99"));
        let d = SimResult {
            outcome: Outcome::Deadlocked {
                at_cycle: 55,
                blocked_packets: 3,
                wait_cycle: vec![
                    "p1 waits on X1+@n3 held by p2".into(),
                    "p2 waits on Y1-@n4 held by p1".into(),
                ],
            },
            ..base()
        };
        let text = d.to_string();
        assert!(text.contains("DEADLOCK at cycle 55"));
        assert!(text.contains("circular wait"));
        assert!(!d.outcome.is_deadlock_free());
    }
}
