//! # noc-sim — a cycle-driven wormhole NoC simulator
//!
//! The empirical substrate of the EbDa reproduction: a deterministic,
//! credit-based, virtual-channel wormhole simulator that runs any
//! [`ebda_routing::RoutingRelation`] on any [`Topology`] and reports
//! latency, throughput, per-channel load and — crucially — deadlocks, via a
//! progress watchdog.
//!
//! Two details tie the simulator to the paper:
//!
//! * [`BufferPolicy`] switches between EbDa's unrestricted wormhole
//!   buffers (multiple packets per input VC) and Duato's Assumption-3
//!   single-packet buffers, the restriction Section 2 of the paper
//!   criticises.
//! * The watchdog turns "deadlock freedom" from a structural claim (the
//!   acyclic CDG checked in `ebda-cdg`) into an observable: EbDa-derived
//!   designs must never trip it, and a deliberately cyclic turn set must
//!   (the positive control in this crate's tests).
//!
//! ```
//! use noc_sim::{simulate, SimConfig};
//! use ebda_routing::{classic::DimensionOrder, Topology};
//!
//! let topo = Topology::mesh(&[4, 4]);
//! let cfg = SimConfig { injection_rate: 0.02, ..SimConfig::default() };
//! let result = simulate(&topo, &DimensionOrder::xy(), &cfg);
//! assert!(result.outcome.is_deadlock_free());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod engine;
pub mod metrics;
pub mod replay;
pub mod sweep;
pub mod traffic;

pub use config::{BufferPolicy, ConfigError, Selection, SimConfig, Switching};
pub use ebda_routing::Topology;
pub use engine::{channel_heatmap_csv, simulate, simulate_traced};
pub use metrics::{ChannelCoord, EnergyModel, Outcome, SimResult, SuspectedEdge};
pub use replay::{replay_coverage, replay_traced, replay_with_recorder, wait_edge_count};
pub use sweep::{latency_curve, saturation_rate, SweepPoint};
pub use traffic::TrafficPattern;
