//! Witness replay: run a simulation with a flight recorder attached and
//! hand both back — the hook the differential oracle uses to turn a shrunk
//! structural counterexample into a concrete, recorded wait cycle.
//!
//! [`crate::simulate_traced`] already accepts an optional recorder; this
//! module packages the "always record, return the recorder" calling
//! convention so oracle-style callers do not have to thread recorder
//! lifetimes through their own plumbing.

use crate::config::SimConfig;
use crate::metrics::SimResult;
use ebda_obs::{EventKind, JourneyConfig, Recorder, RecorderConfig};
use ebda_routing::{RoutingRelation, Topology};

/// Runs one simulation with a fresh flight recorder attached and returns
/// the result together with the recorder, whose event log contains the
/// full inject/stall/watchdog history — including the [`EventKind::WaitFor`]
/// edges that spell out the circular wait when the run deadlocks.
///
/// # Panics
///
/// Panics on invalid configuration (see [`SimConfig::validate`]).
pub fn replay_with_recorder(
    topo: &Topology,
    relation: &dyn RoutingRelation,
    cfg: &SimConfig,
) -> (SimResult, Recorder) {
    replay_traced(topo, relation, cfg, None)
}

/// Like [`replay_with_recorder`], but optionally attaching a journey
/// tracer to the recorder, so the replay also yields per-packet span
/// trees (exportable with [`ebda_obs::TraceBuilder`]).
///
/// # Panics
///
/// Panics on invalid configuration (see [`SimConfig::validate`]).
pub fn replay_traced(
    topo: &Topology,
    relation: &dyn RoutingRelation,
    cfg: &SimConfig,
    journeys: Option<JourneyConfig>,
) -> (SimResult, Recorder) {
    let mut rec = Recorder::new(RecorderConfig::default());
    if let Some(jcfg) = journeys {
        rec.enable_journeys(jcfg);
    }
    let result = crate::engine::simulate_traced(topo, relation, cfg, Some(&mut rec));
    (result, rec)
}

/// Counts the wait-for edges of the recorder's *final* diagnosis — the
/// edges recorded after the last watchdog event. An online stall
/// watchdog (see [`SimConfig::watchdog_window`]) may record earlier
/// suspicion batches; only the last batch describes the post-mortem
/// wait cycle the run ended with.
pub fn wait_edge_count(rec: &Recorder) -> usize {
    let mut count = 0usize;
    for e in rec.events() {
        match e.kind() {
            EventKind::Watchdog => count = 0,
            EventKind::WaitFor => count += 1,
            _ => {}
        }
    }
    count
}

/// The coverage contribution of one recorded replay, under the
/// `sim_event` family: per-kind event totals plus the run's outcome
/// (`outcome/completed` or `outcome/deadlocked`). Campaigns merge this
/// into their design-space coverage map when a counterexample replay
/// runs, so the map also records which simulator behaviors the witness
/// actually exercised.
pub fn replay_coverage(result: &SimResult, rec: &Recorder) -> ebda_obs::CoverageMap {
    let mut map = ebda_obs::CoverageMap::new("");
    for kind in EventKind::ALL {
        map.record_n("sim_event", kind.name(), rec.total(kind));
    }
    map.record(
        "sim_event",
        if result.outcome.is_deadlock_free() {
            "outcome/completed"
        } else {
            "outcome/deadlocked"
        },
    );
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BufferPolicy, Selection, Switching};
    use crate::metrics::Outcome;
    use crate::traffic::TrafficPattern;
    use ebda_core::{parse_channels, Turn, TurnSet};
    use ebda_routing::TurnRouting;

    fn cyclic_relation() -> TurnRouting {
        // All turns allowed on one VC: cyclic by construction.
        let universe = parse_channels("X+ X- Y+ Y-").unwrap();
        let mut turns = TurnSet::new();
        for &a in &universe {
            for &b in &universe {
                if a != b {
                    turns.insert(Turn::new(a, b));
                }
            }
        }
        TurnRouting::new("all-turns", universe, turns)
    }

    fn pressure() -> SimConfig {
        SimConfig {
            injection_rate: 0.5,
            packet_length: 8,
            buffer_depth: 2,
            warmup: 0,
            measurement: 4_000,
            drain: 0,
            deadlock_threshold: 300,
            buffer_policy: BufferPolicy::MultiPacket,
            switching: Switching::Wormhole,
            selection: Selection::RotatingFirstFit,
            traffic: TrafficPattern::Uniform,
            ..SimConfig::default()
        }
    }

    #[test]
    fn replay_returns_result_and_recorder_with_wait_edges() {
        let topo = Topology::mesh(&[4, 4]);
        let (result, rec) = replay_with_recorder(&topo, &cyclic_relation(), &pressure());
        match &result.outcome {
            Outcome::Deadlocked { wait_cycle, .. } => {
                assert!(wait_cycle.len() >= 2);
                assert_eq!(wait_edge_count(&rec), wait_cycle.len());
            }
            other => panic!("positive control must deadlock, got {other:?}"),
        }
        assert!(rec.total_events() > 0);
    }

    #[test]
    fn traced_replay_counts_only_the_final_diagnosis_batch() {
        // With the online watchdog on, earlier suspicion batches are
        // recorded before the hard deadlock; wait_edge_count must still
        // equal the final wait cycle's length.
        let topo = Topology::mesh(&[4, 4]);
        let cfg = SimConfig {
            watchdog_window: 100,
            ..pressure()
        };
        let (result, rec) = replay_traced(
            &topo,
            &cyclic_relation(),
            &cfg,
            Some(JourneyConfig::default()),
        );
        match &result.outcome {
            Outcome::Deadlocked { wait_cycle, .. } => {
                assert!(result.watchdog_trips >= 1, "online watchdog must trip");
                assert_eq!(wait_edge_count(&rec), wait_cycle.len());
            }
            other => panic!("positive control must deadlock, got {other:?}"),
        }
        let tracer = rec.journeys().expect("journeys attached");
        assert!(!tracer.journeys().is_empty());
        assert!(
            !tracer.wait_notes().is_empty(),
            "watchdog edges must reach the journey tracer"
        );
    }

    #[test]
    fn replay_coverage_reports_event_kinds_and_outcome() {
        let topo = Topology::mesh(&[4, 4]);
        let (result, rec) = replay_with_recorder(&topo, &cyclic_relation(), &pressure());
        let map = replay_coverage(&result, &rec);
        assert!(map.hits("sim_event", "inject") > 0);
        assert_eq!(map.hits("sim_event", "outcome/deadlocked"), 1);
        assert_eq!(map.hits("sim_event", "outcome/completed"), 0);
        assert_eq!(
            map.hits("sim_event", "wait_for"),
            rec.total(EventKind::WaitFor)
        );
    }

    #[test]
    fn clean_runs_record_no_wait_edges() {
        let topo = Topology::mesh(&[4, 4]);
        let relation = TurnRouting::from_design("xy", &ebda_core::catalog::p1_xy()).unwrap();
        let cfg = SimConfig {
            injection_rate: 0.05,
            warmup: 0,
            measurement: 500,
            drain: 500,
            ..SimConfig::default()
        };
        let (result, rec) = replay_with_recorder(&topo, &relation, &cfg);
        assert!(result.outcome.is_deadlock_free());
        assert_eq!(wait_edge_count(&rec), 0);
    }
}
