//! Witness replay: run a simulation with a flight recorder attached and
//! hand both back — the hook the differential oracle uses to turn a shrunk
//! structural counterexample into a concrete, recorded wait cycle.
//!
//! [`crate::simulate_traced`] already accepts an optional recorder; this
//! module packages the "always record, return the recorder" calling
//! convention so oracle-style callers do not have to thread recorder
//! lifetimes through their own plumbing.

use crate::config::SimConfig;
use crate::metrics::SimResult;
use ebda_obs::{EventKind, Recorder, RecorderConfig};
use ebda_routing::{RoutingRelation, Topology};

/// Runs one simulation with a fresh flight recorder attached and returns
/// the result together with the recorder, whose event log contains the
/// full inject/stall/watchdog history — including the [`EventKind::WaitFor`]
/// edges that spell out the circular wait when the run deadlocks.
///
/// # Panics
///
/// Panics on invalid configuration (see [`SimConfig::validate`]).
pub fn replay_with_recorder(
    topo: &Topology,
    relation: &dyn RoutingRelation,
    cfg: &SimConfig,
) -> (SimResult, Recorder) {
    let mut rec = Recorder::new(RecorderConfig::default());
    let result = crate::engine::simulate_traced(topo, relation, cfg, Some(&mut rec));
    (result, rec)
}

/// Counts the wait-for edges a recorder captured — nonzero exactly when
/// the watchdog fired and diagnosed a circular wait.
pub fn wait_edge_count(rec: &Recorder) -> usize {
    rec.events()
        .filter(|e| e.kind() == EventKind::WaitFor)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BufferPolicy, Selection, Switching};
    use crate::metrics::Outcome;
    use crate::traffic::TrafficPattern;
    use ebda_core::{parse_channels, Turn, TurnSet};
    use ebda_routing::TurnRouting;

    fn cyclic_relation() -> TurnRouting {
        // All turns allowed on one VC: cyclic by construction.
        let universe = parse_channels("X+ X- Y+ Y-").unwrap();
        let mut turns = TurnSet::new();
        for &a in &universe {
            for &b in &universe {
                if a != b {
                    turns.insert(Turn::new(a, b));
                }
            }
        }
        TurnRouting::new("all-turns", universe, turns)
    }

    fn pressure() -> SimConfig {
        SimConfig {
            injection_rate: 0.5,
            packet_length: 8,
            buffer_depth: 2,
            warmup: 0,
            measurement: 4_000,
            drain: 0,
            deadlock_threshold: 300,
            buffer_policy: BufferPolicy::MultiPacket,
            switching: Switching::Wormhole,
            selection: Selection::RotatingFirstFit,
            traffic: TrafficPattern::Uniform,
            ..SimConfig::default()
        }
    }

    #[test]
    fn replay_returns_result_and_recorder_with_wait_edges() {
        let topo = Topology::mesh(&[4, 4]);
        let (result, rec) = replay_with_recorder(&topo, &cyclic_relation(), &pressure());
        match &result.outcome {
            Outcome::Deadlocked { wait_cycle, .. } => {
                assert!(wait_cycle.len() >= 2);
                assert_eq!(wait_edge_count(&rec), wait_cycle.len());
            }
            other => panic!("positive control must deadlock, got {other:?}"),
        }
        assert!(rec.total_events() > 0);
    }

    #[test]
    fn clean_runs_record_no_wait_edges() {
        let topo = Topology::mesh(&[4, 4]);
        let relation = TurnRouting::from_design("xy", &ebda_core::catalog::p1_xy()).unwrap();
        let cfg = SimConfig {
            injection_rate: 0.05,
            warmup: 0,
            measurement: 500,
            drain: 500,
            ..SimConfig::default()
        };
        let (result, rec) = replay_with_recorder(&topo, &relation, &cfg);
        assert!(result.outcome.is_deadlock_free());
        assert_eq!(wait_edge_count(&rec), 0);
    }
}
