//! Load-sweep utilities: latency/throughput curves and saturation-point
//! estimation — the standard NoC evaluation loop, packaged.

use crate::config::SimConfig;
use crate::engine::simulate;
use crate::metrics::{Outcome, SimResult};
use ebda_routing::{RoutingRelation, Topology};

/// One point of a load sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Offered injection rate (packets/node/cycle).
    pub rate: f64,
    /// Mean latency of measured, delivered packets.
    pub avg_latency: f64,
    /// Median latency, when available.
    pub p50_latency: Option<u64>,
    /// 99th-percentile latency, when available.
    pub p99_latency: Option<u64>,
    /// 99.9th-percentile latency, when available.
    pub p999_latency: Option<u64>,
    /// Accepted throughput (flits/node/cycle).
    pub throughput: f64,
    /// Channel load-balance CV ([`SimResult::channel_balance_cv`]), when
    /// any flits moved.
    pub channel_balance_cv: Option<f64>,
    /// Whether every measured packet drained before the horizon.
    pub drained: bool,
    /// Whether the watchdog fired.
    pub deadlocked: bool,
}

impl SweepPoint {
    fn from_result(rate: f64, r: &SimResult) -> SweepPoint {
        // Quantiles come from the log-bucketed histogram, not the raw
        // vector — sweeps run with `collect_latencies: false` and skip the
        // per-point O(n log n) sort entirely.
        ebda_obs::metrics::counter_add("ebda_sweep_points_total", &[], 1);
        SweepPoint {
            rate,
            avg_latency: r.avg_latency,
            p50_latency: r.latency_hist.quantile(0.50),
            p99_latency: r.latency_hist.quantile(0.99),
            p999_latency: r.latency_hist.quantile(0.999),
            throughput: r.throughput,
            channel_balance_cv: r.channel_balance_cv(),
            drained: r.measured_delivered == r.measured_injected,
            deadlocked: !matches!(r.outcome, Outcome::Completed),
        }
    }
}

/// Runs the relation at each rate and collects the curve. The `base`
/// configuration supplies everything except the injection rate.
///
/// Points run in parallel on the [`ebda_par`] pool (thread count from
/// `--threads` / `EBDA_THREADS` / hardware) and merge in rate order, so
/// the curve is identical at any thread count. Use
/// [`latency_curve_with_threads`] to pin the count explicitly.
pub fn latency_curve(
    topo: &Topology,
    relation: &dyn RoutingRelation,
    base: &SimConfig,
    rates: &[f64],
) -> Vec<SweepPoint> {
    latency_curve_with_threads(topo, relation, base, rates, ebda_par::threads())
}

/// [`latency_curve`] with an explicit worker count (1 = strictly serial).
pub fn latency_curve_with_threads(
    topo: &Topology,
    relation: &dyn RoutingRelation,
    base: &SimConfig,
    rates: &[f64],
    threads: usize,
) -> Vec<SweepPoint> {
    // Each point depends only on its own rate and the shared base config,
    // so parallel_map's index-order merge reproduces the serial curve.
    ebda_par::parallel_map(threads, rates, |_, &rate| {
        let cfg = SimConfig {
            injection_rate: rate,
            // Histogram quantiles suffice: skip raw-latency storage.
            collect_latencies: false,
            ..base.clone()
        };
        SweepPoint::from_result(rate, &simulate(topo, relation, &cfg))
    })
}

/// Estimates the saturation rate by bisection: the highest rate (within
/// `tolerance`) at which every measured packet still drains. Returns
/// `None` if the relation saturates below `lo` or deadlocks anywhere.
pub fn saturation_rate(
    topo: &Topology,
    relation: &dyn RoutingRelation,
    base: &SimConfig,
    mut lo: f64,
    mut hi: f64,
    tolerance: f64,
) -> Option<f64> {
    assert!(lo < hi && tolerance > 0.0, "bad bisection bounds");
    let drained_at = |rate: f64| -> Option<bool> {
        let cfg = SimConfig {
            injection_rate: rate,
            ..base.clone()
        };
        let r = simulate(topo, relation, &cfg);
        match r.outcome {
            Outcome::Completed => Some(r.measured_delivered == r.measured_injected),
            Outcome::Deadlocked { .. } => None,
        }
    };
    if !drained_at(lo)? {
        return None;
    }
    while hi - lo > tolerance {
        let mid = (lo + hi) / 2.0;
        match drained_at(mid) {
            Some(true) => lo = mid,
            Some(false) => hi = mid,
            None => return None,
        }
    }
    Some(lo)
}

/// Mean and sample standard deviation over replicated runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanStd {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (0 for a single replicate).
    pub std: f64,
}

/// Replicated measurements of one configuration across `seeds` RNG seeds —
/// the confidence-interval hygiene single-seed runs lack.
#[derive(Debug, Clone)]
pub struct Replication {
    /// Latency statistics over replicates.
    pub latency: MeanStd,
    /// Throughput statistics over replicates.
    pub throughput: MeanStd,
    /// Number of replicates that completed without deadlock.
    pub clean_runs: usize,
    /// Number of replicates.
    pub replicates: usize,
}

/// The seed replicate `i` of a base-seed run simulates under.
///
/// Pure function of `(base_seed, i)` — the `i`-th value of the splitmix64
/// stream seeded with `base_seed` ([`ebda_obs::Rng64::nth`]) — so a
/// replicate's result does not depend on which other replicates ran, in
/// what order, or on which worker thread. Replicate 0 is **not** the base
/// seed itself: derived seeds must be well-mixed even when callers pass
/// small sequential base seeds.
pub fn replicate_seed(base_seed: u64, i: usize) -> u64 {
    ebda_obs::Rng64::nth(base_seed, i as u64)
}

/// Runs `cfg` under `replicates` different seeds (derived from `cfg.seed`
/// via [`replicate_seed`]) and aggregates latency and throughput.
/// Replicates run on the [`ebda_par`] pool and aggregate in index order;
/// [`replicate_with_threads`] pins the worker count.
///
/// # Panics
///
/// Panics if `replicates == 0`.
pub fn replicate(
    topo: &Topology,
    relation: &dyn RoutingRelation,
    cfg: &SimConfig,
    replicates: usize,
) -> Replication {
    replicate_with_threads(topo, relation, cfg, replicates, ebda_par::threads())
}

/// [`replicate`] with an explicit worker count (1 = strictly serial).
pub fn replicate_with_threads(
    topo: &Topology,
    relation: &dyn RoutingRelation,
    cfg: &SimConfig,
    replicates: usize,
    threads: usize,
) -> Replication {
    assert!(replicates >= 1, "at least one replicate");
    let indexes: Vec<usize> = (0..replicates).collect();
    let results = ebda_par::parallel_map(threads, &indexes, |_, &i| {
        let run_cfg = SimConfig {
            seed: replicate_seed(cfg.seed, i),
            ..cfg.clone()
        };
        let r = simulate(topo, relation, &run_cfg);
        let clean = matches!(r.outcome, Outcome::Completed);
        (r.avg_latency, r.throughput, clean)
    });
    let latencies: Vec<f64> = results.iter().map(|r| r.0).collect();
    let throughputs: Vec<f64> = results.iter().map(|r| r.1).collect();
    Replication {
        latency: mean_std(&latencies),
        throughput: mean_std(&throughputs),
        clean_runs: results.iter().filter(|r| r.2).count(),
        replicates,
    }
}

fn mean_std(xs: &[f64]) -> MeanStd {
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let std = if xs.len() < 2 {
        0.0
    } else {
        (xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0)).sqrt()
    };
    MeanStd { mean, std }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebda_routing::classic::DimensionOrder;
    use ebda_routing::TurnRouting;

    fn base() -> SimConfig {
        SimConfig {
            warmup: 200,
            measurement: 800,
            drain: 1_200,
            deadlock_threshold: 800,
            ..SimConfig::default()
        }
    }

    #[test]
    fn curve_is_monotone_at_the_low_end() {
        let topo = Topology::mesh(&[4, 4]);
        let xy = DimensionOrder::xy();
        let curve = latency_curve(&topo, &xy, &base(), &[0.01, 0.05, 0.12]);
        assert_eq!(curve.len(), 3);
        assert!(curve[0].drained && curve[1].drained);
        assert!(!curve[0].deadlocked);
        assert!(
            curve[2].avg_latency >= curve[0].avg_latency,
            "latency should not drop with load"
        );
        assert!(curve[2].throughput >= curve[0].throughput * 2.0);
        for p in &curve {
            assert!(p.p99_latency.unwrap_or(0) as f64 >= p.avg_latency * 0.8);
            assert!(p.p50_latency.unwrap() <= p.p99_latency.unwrap());
            assert!(p.p99_latency.unwrap() <= p.p999_latency.unwrap());
            assert!(p.channel_balance_cv.unwrap() >= 0.0);
        }
    }

    #[test]
    fn saturation_estimate_is_reasonable() {
        let topo = Topology::mesh(&[4, 4]);
        let xy = DimensionOrder::xy();
        let sat = saturation_rate(&topo, &xy, &base(), 0.01, 0.6, 0.05).unwrap();
        // XY on uniform 4x4 saturates somewhere past 0.1 packets/node/cycle
        // (5-flit packets; bisection-level accuracy only).
        assert!(sat > 0.05, "saturation estimate {sat} too low");
        assert!(sat < 0.6, "saturation estimate {sat} did not bound");
    }

    #[test]
    fn saturation_none_below_lower_bound() {
        // A tiny drain window makes even the low bound fail to drain.
        let topo = Topology::mesh(&[4, 4]);
        let xy = DimensionOrder::xy();
        let cfg = SimConfig { drain: 1, ..base() };
        assert_eq!(saturation_rate(&topo, &xy, &cfg, 0.2, 0.5, 0.1), None);
    }

    #[test]
    fn replication_aggregates_across_seeds() {
        let topo = Topology::mesh(&[4, 4]);
        let xy = DimensionOrder::xy();
        let cfg = SimConfig {
            injection_rate: 0.03,
            ..base()
        };
        let rep = replicate(&topo, &xy, &cfg, 5);
        assert_eq!(rep.replicates, 5);
        assert_eq!(rep.clean_runs, 5);
        assert!(rep.latency.mean > 5.0);
        // Different seeds produce (slightly) different loads.
        assert!(rep.latency.std >= 0.0);
        assert!(rep.throughput.mean > 0.0);
        // Single replicate has zero std by definition.
        let one = replicate(&topo, &xy, &cfg, 1);
        assert_eq!(one.latency.std, 0.0);
    }

    #[test]
    fn replicate_seed_is_pinned_and_order_free() {
        // The derivation is (base, i) -> Rng64::nth(base, i): pure in the
        // pair, so replicate i's world is fixed no matter what ran before
        // it. These exact values are part of the determinism contract.
        assert_eq!(replicate_seed(0, 0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(replicate_seed(0, 1), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(
            replicate_seed(0xEBDA, 0),
            ebda_obs::Rng64::new(0xEBDA).next_u64()
        );
        // Distinct replicates get distinct, well-mixed seeds even from a
        // base seed of 0.
        let seeds: Vec<u64> = (0..8).map(|i| replicate_seed(0, i)).collect();
        let mut uniq = seeds.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), seeds.len());
    }

    #[test]
    fn sweep_results_are_thread_count_invariant() {
        let topo = Topology::mesh(&[4, 4]);
        let xy = DimensionOrder::xy();
        let cfg = SimConfig {
            injection_rate: 0.04,
            ..base()
        };
        let rates = [0.01, 0.03, 0.05, 0.08];
        let serial = latency_curve_with_threads(&topo, &xy, &base(), &rates, 1);
        let parallel = latency_curve_with_threads(&topo, &xy, &base(), &rates, 8);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.rate, b.rate);
            assert_eq!(a.avg_latency, b.avg_latency);
            assert_eq!(a.throughput, b.throughput);
            assert_eq!(a.p99_latency, b.p99_latency);
        }
        let r1 = replicate_with_threads(&topo, &xy, &cfg, 4, 1);
        let r8 = replicate_with_threads(&topo, &xy, &cfg, 4, 8);
        assert_eq!(r1.latency, r8.latency);
        assert_eq!(r1.throughput, r8.throughput);
        assert_eq!(r1.clean_runs, r8.clean_runs);
    }

    #[test]
    fn adaptive_curve_runs_clean() {
        let topo = Topology::mesh(&[4, 4]);
        let fa = TurnRouting::from_design("dyxy", &ebda_core::catalog::fig7b_dyxy()).unwrap();
        let curve = latency_curve(&topo, &fa, &base(), &[0.02, 0.08]);
        assert!(curve.iter().all(|p| !p.deadlocked));
    }
}
