//! Simulation configuration.

use crate::traffic::TrafficPattern;

/// How many packets an input virtual-channel buffer may hold.
///
/// The distinction is the crux of the paper's comparison with Duato's
/// theory: Duato's Assumption 3 requires a queue to hold flits of only one
/// packet (the header always at the head), which restricts wormhole
/// switching; EbDa designs need no such restriction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BufferPolicy {
    /// Unrestricted wormhole: a buffer may hold flits of several packets
    /// back to back (EbDa's assumption).
    #[default]
    MultiPacket,
    /// Duato's Assumption 3: a new packet's head may enter an input VC only
    /// when the buffer is completely empty.
    SinglePacket,
}

/// The packet-switching technique (paper Section 1): EbDa's theorems are
/// stated for wormhole switching, with store-and-forward and virtual
/// cut-through as special cases — a claim the simulator can test directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Switching {
    /// Wormhole: flits proceed in a pipeline; no per-packet buffer
    /// requirements.
    #[default]
    Wormhole,
    /// Virtual cut-through: a packet advances only into a buffer with room
    /// for the whole packet (needs `buffer_depth >= packet_length`).
    VirtualCutThrough,
    /// Store-and-forward: in addition to the VCT space condition, a packet
    /// is forwarded only after it is fully buffered at the node.
    StoreAndForward,
}

/// How the VC allocator picks among a head flit's routing candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Selection {
    /// Rotating first-fit: round-robin over candidates by cycle/node, so
    /// adaptive relations spread load deterministically.
    #[default]
    RotatingFirstFit,
    /// Congestion-aware: pick the candidate whose downstream buffer has
    /// the most free credits (the DyXY selection policy), ties broken by
    /// candidate order.
    MostCredits,
}

/// Full configuration of one simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Flit slots per input virtual-channel buffer.
    pub buffer_depth: usize,
    /// Cycles a flit spends crossing a link (1 = arrive next cycle).
    pub link_latency: u64,
    /// Flits per packet (head and tail included).
    pub packet_length: usize,
    /// Packet injection probability per node per cycle.
    pub injection_rate: f64,
    /// Traffic pattern mapping sources to destinations.
    pub traffic: TrafficPattern,
    /// Buffer occupancy policy (EbDa vs Duato assumptions).
    pub buffer_policy: BufferPolicy,
    /// Packet-switching technique (wormhole / VCT / SAF).
    pub switching: Switching,
    /// Candidate-selection policy of the VC allocator.
    pub selection: Selection,
    /// Warm-up cycles excluded from measurement.
    pub warmup: u64,
    /// Measurement window in cycles.
    pub measurement: u64,
    /// Extra cycles allowed for in-flight packets to drain.
    pub drain: u64,
    /// Cycles without any flit movement (while flits are in flight) after
    /// which the run is declared deadlocked.
    pub deadlock_threshold: u64,
    /// Online stall-watchdog window `W` in cycles; 0 (the default)
    /// disables it. When armed, the watchdog fires as soon as either no
    /// flit has moved for `W` cycles or a credit-stall streak (every
    /// non-ejecting cycle stalling on zero credits while traffic is in
    /// flight) reaches `W`. A firing is *diagnostic only*: it walks the
    /// live hold/want graph, records a suspected wait cycle and
    /// `ebda_watchdog_*` metrics, and lets the run continue — the run is
    /// aborted only by the separate `deadlock_threshold`. The watchdog
    /// re-arms after the next flit ejection. Useful values sit well
    /// below `deadlock_threshold` so the suspicion precedes the verdict.
    pub watchdog_window: u64,
    /// RNG seed for reproducibility.
    pub seed: u64,
    /// Whether to keep the raw per-packet latency vector in
    /// [`crate::SimResult::latencies`]. The log-bucketed
    /// [`crate::SimResult::latency_hist`] is always collected; sweeps
    /// that only need quantiles turn this off and skip both the
    /// per-packet storage and the final O(n log n) sort.
    pub collect_latencies: bool,
    /// Links that fail mid-run: `(cycle, node, dimension, direction)`,
    /// cut in both traversal directions when the cycle starts. Packets
    /// whose wormhole is severed by a failure are torn down (counted in
    /// [`crate::SimResult::dropped_packets`]); heads that had merely
    /// reserved the link re-route.
    pub fault_schedule: Vec<(u64, usize, ebda_core::Dimension, ebda_core::Direction)>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            buffer_depth: 4,
            link_latency: 1,
            packet_length: 5,
            injection_rate: 0.05,
            traffic: TrafficPattern::Uniform,
            buffer_policy: BufferPolicy::MultiPacket,
            switching: Switching::Wormhole,
            selection: Selection::RotatingFirstFit,
            warmup: 1_000,
            measurement: 4_000,
            drain: 3_000,
            deadlock_threshold: 1_000,
            watchdog_window: 0,
            seed: 0xEBDA,
            collect_latencies: true,
            fault_schedule: Vec::new(),
        }
    }
}

/// A rejected [`SimConfig`]. The [`std::fmt::Display`] text doubles as
/// the panic message of [`SimConfig::validate`], so callers matching on
/// either form see the same words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// `buffer_depth` is zero.
    ZeroBuffers,
    /// `packet_length` is zero.
    ZeroPacketLength,
    /// `injection_rate` is outside `[0, 1]`.
    BadInjectionRate,
    /// `deadlock_threshold` is zero.
    ZeroDeadlockThreshold,
    /// `link_latency` is zero.
    ZeroLinkLatency,
    /// VCT/SAF switching with `buffer_depth < packet_length`.
    ShallowBuffers,
    /// A hotspot pattern with an empty `nodes` list — it could never pick
    /// a destination and used to panic mid-run instead of at setup.
    EmptyHotspot,
    /// A hotspot `fraction` outside `[0, 1]`.
    BadHotspotFraction,
    /// A bursty `p_on`/`p_off` outside `[0, 1]`.
    BadBurstProbability,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            ConfigError::ZeroBuffers => "buffers need at least one slot",
            ConfigError::ZeroPacketLength => "packets need at least one flit",
            ConfigError::BadInjectionRate => "injection rate must be a probability",
            ConfigError::ZeroDeadlockThreshold => "deadlock threshold too small",
            ConfigError::ZeroLinkLatency => "links need at least one cycle",
            ConfigError::ShallowBuffers => "VCT and SAF need buffers that hold a whole packet",
            ConfigError::EmptyHotspot => "hotspot pattern needs target nodes",
            ConfigError::BadHotspotFraction => "hotspot fraction must be a probability",
            ConfigError::BadBurstProbability => "bursty p_on and p_off must be probabilities",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for ConfigError {}

impl SimConfig {
    /// Checks parameter sanity, returning the first violation.
    pub fn check(&self) -> Result<(), ConfigError> {
        if self.buffer_depth < 1 {
            return Err(ConfigError::ZeroBuffers);
        }
        if self.packet_length < 1 {
            return Err(ConfigError::ZeroPacketLength);
        }
        if !(0.0..=1.0).contains(&self.injection_rate) {
            return Err(ConfigError::BadInjectionRate);
        }
        if self.deadlock_threshold < 1 {
            return Err(ConfigError::ZeroDeadlockThreshold);
        }
        if self.link_latency < 1 {
            return Err(ConfigError::ZeroLinkLatency);
        }
        if self.switching != Switching::Wormhole && self.buffer_depth < self.packet_length {
            return Err(ConfigError::ShallowBuffers);
        }
        match &self.traffic {
            TrafficPattern::Hotspot { nodes, fraction } => {
                if nodes.is_empty() {
                    return Err(ConfigError::EmptyHotspot);
                }
                if !(0.0..=1.0).contains(fraction) {
                    return Err(ConfigError::BadHotspotFraction);
                }
            }
            TrafficPattern::Bursty { p_on, p_off, .. }
                if !(0.0..=1.0).contains(p_on) || !(0.0..=1.0).contains(p_off) =>
            {
                return Err(ConfigError::BadBurstProbability);
            }
            _ => {}
        }
        Ok(())
    }

    /// Validates parameter sanity.
    ///
    /// # Panics
    ///
    /// Panics with the [`ConfigError`] message on any violation — zero
    /// buffers/packets, an injection rate outside `[0, 1]`, shallow VCT/SAF
    /// buffers, or an unsatisfiable traffic pattern.
    pub fn validate(&self) {
        if let Err(e) = self.check() {
            panic!("{e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        SimConfig::default().validate();
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_bad_rate() {
        let cfg = SimConfig {
            injection_rate: 1.5,
            ..SimConfig::default()
        };
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "one slot")]
    fn rejects_zero_buffers() {
        let cfg = SimConfig {
            buffer_depth: 0,
            ..SimConfig::default()
        };
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "whole packet")]
    fn vct_needs_deep_buffers() {
        let cfg = SimConfig {
            switching: Switching::VirtualCutThrough,
            buffer_depth: 2,
            packet_length: 5,
            ..SimConfig::default()
        };
        cfg.validate();
    }

    #[test]
    fn saf_with_deep_buffers_is_valid() {
        let cfg = SimConfig {
            switching: Switching::StoreAndForward,
            buffer_depth: 8,
            packet_length: 5,
            ..SimConfig::default()
        };
        cfg.validate();
    }

    #[test]
    fn empty_hotspot_is_a_config_error_not_a_mid_run_panic() {
        // Regression: this used to pass validation and then panic inside
        // TrafficPattern::destination on the first injection attempt.
        let cfg = SimConfig {
            traffic: TrafficPattern::Hotspot {
                nodes: vec![],
                fraction: 0.5,
            },
            ..SimConfig::default()
        };
        assert_eq!(cfg.check(), Err(ConfigError::EmptyHotspot));
        assert_eq!(
            ConfigError::EmptyHotspot.to_string(),
            "hotspot pattern needs target nodes"
        );
    }

    #[test]
    fn bad_traffic_probabilities_are_config_errors() {
        let hotspot = SimConfig {
            traffic: TrafficPattern::Hotspot {
                nodes: vec![3],
                fraction: 1.5,
            },
            ..SimConfig::default()
        };
        assert_eq!(hotspot.check(), Err(ConfigError::BadHotspotFraction));
        let bursty = SimConfig {
            traffic: TrafficPattern::Bursty {
                p_on: -0.1,
                p_off: 0.5,
                burst_scale: 2.0,
            },
            ..SimConfig::default()
        };
        assert_eq!(bursty.check(), Err(ConfigError::BadBurstProbability));
    }

    #[test]
    fn check_and_validate_agree_on_messages() {
        let cfg = SimConfig {
            injection_rate: 2.0,
            ..SimConfig::default()
        };
        let err = cfg.check().unwrap_err();
        assert_eq!(err.to_string(), "injection rate must be a probability");
        let panic = std::panic::catch_unwind(|| cfg.validate()).unwrap_err();
        let msg = panic.downcast_ref::<String>().unwrap();
        assert_eq!(msg, &err.to_string());
    }
}
