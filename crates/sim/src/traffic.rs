//! Synthetic traffic patterns.

use ebda_obs::Rng64;
use ebda_routing::{NodeId, Topology};

/// Destination selection per injected packet.
#[derive(Debug, Clone, PartialEq)]
pub enum TrafficPattern {
    /// Uniform random over all other nodes.
    Uniform,
    /// Matrix transpose: `(x, y, …) → (y, x, …)` (first two coordinates
    /// swapped). Self-addressed packets are skipped.
    Transpose,
    /// Bit complement per coordinate: `c → radix-1-c` in every dimension.
    BitComplement,
    /// Bit reversal of the node index (requires a power-of-two node count).
    BitReverse,
    /// A fraction of traffic targets the given hotspot nodes (uniformly
    /// chosen among them); the rest is uniform random.
    Hotspot {
        /// The hotspot destinations.
        nodes: Vec<NodeId>,
        /// Probability that a packet targets a hotspot.
        fraction: f64,
    },
    /// Deterministic replay of an explicit event list
    /// `(injection cycle, source, destination)`, sorted by cycle — the
    /// stand-in for application traces. The configured injection rate is
    /// ignored; events past the measurement horizon are dropped.
    Trace {
        /// The events, sorted by injection cycle.
        events: Vec<(u64, NodeId, NodeId)>,
    },
    /// Bursty uniform traffic: sources alternate between an ON state
    /// (injecting at the configured rate scaled by `burst_scale`) and an
    /// OFF state (silent), switching with the given per-cycle
    /// probabilities — a two-state Markov-modulated process approximating
    /// application burstiness.
    Bursty {
        /// Probability an OFF source turns ON each cycle.
        p_on: f64,
        /// Probability an ON source turns OFF each cycle.
        p_off: f64,
        /// Multiplier applied to the injection rate while ON (so the
        /// long-run average stays comparable, pick
        /// `burst_scale ≈ (p_on + p_off) / p_on`).
        burst_scale: f64,
    },
}

impl TrafficPattern {
    /// Builds a trace pattern, sorting the events by cycle.
    ///
    /// # Panics
    ///
    /// Panics if any event is self-addressed.
    pub fn trace<I: IntoIterator<Item = (u64, NodeId, NodeId)>>(events: I) -> TrafficPattern {
        let mut events: Vec<_> = events.into_iter().collect();
        assert!(
            events.iter().all(|&(_, s, d)| s != d),
            "trace events must not be self-addressed"
        );
        events.sort_by_key(|&(c, s, d)| (c, s, d));
        TrafficPattern::Trace { events }
    }
}

impl TrafficPattern {
    /// Picks a destination for a packet injected at `src`, or `None` when
    /// the pattern maps the source to itself (no packet is injected).
    pub fn destination(&self, topo: &Topology, src: NodeId, rng: &mut Rng64) -> Option<NodeId> {
        let n = topo.node_count();
        match self {
            TrafficPattern::Uniform => {
                if n < 2 {
                    return None;
                }
                let mut dst = rng.gen_index(n - 1);
                if dst >= src {
                    dst += 1;
                }
                Some(dst)
            }
            TrafficPattern::Transpose => {
                let mut c = topo.coords(src);
                if c.len() < 2 {
                    return None;
                }
                c.swap(0, 1);
                // The transposed coordinate must exist (non-square meshes
                // drop out-of-range sources).
                let radix = topo.radix();
                if c[0] as usize >= radix[0] || c[1] as usize >= radix[1] {
                    return None;
                }
                let dst = topo.node_at(&c);
                (dst != src).then_some(dst)
            }
            TrafficPattern::BitComplement => {
                let c = topo.coords(src);
                let radix = topo.radix();
                let d: Vec<i64> = c
                    .iter()
                    .zip(radix.iter())
                    .map(|(&v, &r)| r as i64 - 1 - v)
                    .collect();
                let dst = topo.node_at(&d);
                (dst != src).then_some(dst)
            }
            TrafficPattern::BitReverse => {
                let bits = n.trailing_zeros();
                assert!(n.is_power_of_two(), "bit-reverse needs 2^k nodes");
                let dst = (src.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
                (dst != src).then_some(dst)
            }
            TrafficPattern::Hotspot { nodes, fraction } => {
                assert!(!nodes.is_empty(), "hotspot pattern needs target nodes");
                if rng.gen_bool(*fraction) {
                    let dst = nodes[rng.gen_index(nodes.len())];
                    (dst != src).then_some(dst)
                } else {
                    TrafficPattern::Uniform.destination(topo, src, rng)
                }
            }
            TrafficPattern::Trace { .. } => {
                unreachable!("trace injection is event-driven, not per-source")
            }
            // Bursty destinations are uniform; the burst gating happens in
            // the engine's injection stage.
            TrafficPattern::Bursty { .. } => TrafficPattern::Uniform.destination(topo, src, rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_never_self_addresses() {
        let topo = Topology::mesh(&[4, 4]);
        let mut rng = Rng64::new(1);
        for src in topo.nodes() {
            for _ in 0..50 {
                let dst = TrafficPattern::Uniform
                    .destination(&topo, src, &mut rng)
                    .unwrap();
                assert_ne!(dst, src);
                assert!(dst < topo.node_count());
            }
        }
    }

    #[test]
    fn transpose_swaps_coordinates() {
        let topo = Topology::mesh(&[4, 4]);
        let mut rng = Rng64::new(1);
        let src = topo.node_at(&[1, 3]);
        let dst = TrafficPattern::Transpose
            .destination(&topo, src, &mut rng)
            .unwrap();
        assert_eq!(topo.coords(dst), vec![3, 1]);
        // Diagonal nodes send nothing.
        let diag = topo.node_at(&[2, 2]);
        assert_eq!(
            TrafficPattern::Transpose.destination(&topo, diag, &mut rng),
            None
        );
    }

    #[test]
    fn bit_complement_mirrors() {
        let topo = Topology::mesh(&[4, 4]);
        let mut rng = Rng64::new(1);
        let src = topo.node_at(&[0, 1]);
        let dst = TrafficPattern::BitComplement
            .destination(&topo, src, &mut rng)
            .unwrap();
        assert_eq!(topo.coords(dst), vec![3, 2]);
    }

    #[test]
    fn bit_reverse_is_involutive() {
        let topo = Topology::mesh(&[4, 4]);
        let mut rng = Rng64::new(1);
        for src in topo.nodes() {
            if let Some(dst) = TrafficPattern::BitReverse.destination(&topo, src, &mut rng) {
                let back = TrafficPattern::BitReverse
                    .destination(&topo, dst, &mut rng)
                    .unwrap();
                assert_eq!(back, src);
            }
        }
    }

    #[test]
    fn bursty_destinations_are_uniform() {
        let topo = Topology::mesh(&[4, 4]);
        let mut rng = Rng64::new(3);
        let pattern = TrafficPattern::Bursty {
            p_on: 0.1,
            p_off: 0.3,
            burst_scale: 4.0,
        };
        for _ in 0..100 {
            let dst = pattern.destination(&topo, 5, &mut rng).unwrap();
            assert_ne!(dst, 5);
            assert!(dst < 16);
        }
    }

    #[test]
    fn hotspot_biases_targets() {
        let topo = Topology::mesh(&[4, 4]);
        let mut rng = Rng64::new(7);
        let pattern = TrafficPattern::Hotspot {
            nodes: vec![5],
            fraction: 0.9,
        };
        let mut hits = 0;
        let trials = 500;
        for _ in 0..trials {
            if pattern.destination(&topo, 0, &mut rng) == Some(5) {
                hits += 1;
            }
        }
        assert!(hits > trials / 2, "hotspot received only {hits}/{trials}");
    }
}
