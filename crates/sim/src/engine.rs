//! The cycle-driven wormhole simulation engine.
//!
//! Router model (one cycle per phase-pipeline step, one flit per link per
//! cycle):
//!
//! * **Input buffering** — one FIFO per (input port, virtual channel);
//!   flits of several packets may queue back to back under
//!   [`BufferPolicy::MultiPacket`], while [`BufferPolicy::SinglePacket`]
//!   enforces Duato's one-packet-per-buffer assumption at VC allocation.
//! * **VC allocation** — a head flit at the front of its buffer asks the
//!   routing relation for candidates and claims a free output VC (rotating
//!   first-fit, so adaptive relations actually spread load).
//! * **Switch allocation** — one flit per output port per cycle, one flit
//!   per input port per cycle, credit-based backpressure.
//! * **Wormhole** — an output VC is owned by one packet from head to tail;
//!   body flits follow the head's path, and a buffer may contain flits of
//!   multiple packets without interleaving.

use crate::config::{BufferPolicy, Selection, SimConfig, Switching};
use crate::metrics::{ChannelCoord, Outcome, SimResult, SuspectedEdge};

use ebda_obs::{Event, Recorder, Rng64, Sample};
use ebda_routing::{NodeId, RouteState, RoutingRelation, Topology, INJECT};
use std::collections::VecDeque;
use std::time::Instant;

type Pid = u32;

#[derive(Debug, Clone, Copy)]
struct FlitTag {
    pid: Pid,
    idx: u32,
}

#[derive(Debug)]
struct Packet {
    src: NodeId,
    dst: NodeId,
    len: u32,
    route_state: RouteState,
    inject_cycle: u64,
    measured: bool,
    delivered: Option<u64>,
    hops: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Alloc {
    None,
    Out(usize),
    Eject,
}

/// Local self-profiler accumulator for one run's cycle-loop phases.
/// Filled only when `prof_on`; flushed once to `ebda_obs::prof` in
/// `finish()` so the hot loop never takes the registry lock. The
/// operation counts are deterministic (pure functions of the seeded
/// run); only the `_ns` sums are wall-clock.
#[derive(Debug, Default)]
struct ProfAcc {
    /// Wall ns inside `relation.route_into` and number of route queries.
    route_ns: u64,
    routes: u64,
    /// Wall ns of whole `allocate()` calls; VC allocation time is this
    /// minus `route_ns`.
    alloc_ns: u64,
    /// Output-VC grants (plus ejection-port claims).
    vc_allocs: u64,
    /// Wall ns of whole `arbitrate_and_move()` calls; switch-traversal
    /// time is this minus credit-return and ejection time.
    arb_ns: u64,
    /// Wall ns inside `return_credit` and number of credits returned.
    credit_ns: u64,
    credits: u64,
    /// Wall ns spent in the ejection branch and flits ejected there.
    eject_ns: u64,
    eject_flits: u64,
    /// Flits that crossed a link (the switch-traversal work unit).
    link_flits: u64,
}

#[derive(Debug)]
struct InVc {
    buf: VecDeque<FlitTag>,
    alloc: Alloc,
}

#[derive(Debug)]
struct OutVc {
    owner: Option<Pid>,
    src_in: usize,
    credits: usize,
}

/// Index arithmetic for the flattened per-node port/VC arrays.
#[derive(Debug)]
struct Layout {
    dims: usize,
    vcs: Vec<u8>,
    /// First in-slot of each network port within a node, plus the
    /// injection slot at the end.
    in_base: Vec<usize>,
    in_per_node: usize,
    out_base: Vec<usize>,
    out_per_node: usize,
}

impl Layout {
    fn new(topo: &Topology, vcs: &[u8]) -> Layout {
        let dims = topo.dims();
        let ports = 2 * dims;
        let mut in_base = Vec::with_capacity(ports + 1);
        let mut acc = 0usize;
        for p in 0..ports {
            in_base.push(acc);
            acc += vcs[p / 2] as usize;
        }
        in_base.push(acc); // injection slot
        let in_per_node = acc + 1;
        let out_base = in_base[..ports].to_vec();
        Layout {
            dims,
            vcs: vcs.to_vec(),
            in_base,
            in_per_node,
            out_base,
            out_per_node: acc,
        }
    }

    fn port(dim: usize, dir: ebda_core::Direction) -> usize {
        2 * dim + usize::from(dir == ebda_core::Direction::Minus)
    }

    fn port_dim(p: usize) -> usize {
        p / 2
    }

    fn port_dir(p: usize) -> ebda_core::Direction {
        if p.is_multiple_of(2) {
            ebda_core::Direction::Plus
        } else {
            ebda_core::Direction::Minus
        }
    }

    fn in_slot(&self, node: NodeId, port: usize, vc0: usize) -> usize {
        node * self.in_per_node + self.in_base[port] + vc0
    }

    fn injection_slot(&self, node: NodeId) -> usize {
        node * self.in_per_node + self.in_per_node - 1
    }

    fn out_slot(&self, node: NodeId, port: usize, vc0: usize) -> usize {
        node * self.out_per_node + self.out_base[port] + vc0
    }

    /// Decomposes a global out-slot into (node, local port, vc0).
    fn out_slot_parts(&self, slot: usize) -> (NodeId, usize, usize) {
        let node = slot / self.out_per_node;
        let local = slot % self.out_per_node;
        let mut port = 0;
        while port + 1 < self.out_base.len() && self.out_base[port + 1] <= local {
            port += 1;
        }
        (node, port, local - self.out_base[port])
    }

    /// Decomposes a global in-slot into (node, local port, vc0); the local
    /// port equals `2 * dims` for injection slots.
    fn in_slot_parts(&self, slot: usize) -> (NodeId, usize, usize) {
        let node = slot / self.in_per_node;
        let local = slot % self.in_per_node;
        if local == self.in_per_node - 1 {
            return (node, 2 * self.dims, 0);
        }
        let mut port = 0;
        while port + 1 < self.in_base.len() && self.in_base[port + 1] <= local {
            port += 1;
        }
        (node, port, local - self.in_base[port])
    }
}

/// Runs one simulation and returns the aggregated result.
///
/// # Panics
///
/// Panics on invalid configuration (see [`SimConfig::validate`]) or when
/// the relation requests more VCs than its universe declares.
pub fn simulate(topo: &Topology, relation: &dyn RoutingRelation, cfg: &SimConfig) -> SimResult {
    simulate_traced(topo, relation, cfg, None)
}

/// Runs one simulation with an optional flight recorder attached.
///
/// With `rec = None` this is exactly [`simulate`]: every emission site
/// guards on the option, so the disabled path costs one branch per site.
/// With a recorder, the engine logs inject / VC-alloc / switch-stall /
/// link-traversal / eject / drop events into the recorder's ring buffer,
/// takes periodic [`Sample`]s at the recorder's cadence, and — when the
/// watchdog fires — emits the structured wait-for edges whose labels
/// match [`Outcome::Deadlocked`]'s `wait_cycle` strings one-for-one.
///
/// # Panics
///
/// Panics on invalid configuration (see [`SimConfig::validate`]) or when
/// the relation requests more VCs than its universe declares.
pub fn simulate_traced(
    topo: &Topology,
    relation: &dyn RoutingRelation,
    cfg: &SimConfig,
    rec: Option<&mut Recorder>,
) -> SimResult {
    cfg.validate();
    let _span = ebda_obs::span("sim.engine.run");
    Simulator::new(topo, relation, cfg, rec).run()
}

/// Renders the per-channel flit counts of a finished run as a CSV heatmap
/// with one row per output virtual channel:
///
/// ```text
/// node,coords,dim,dir,vc,flits,utilization
/// 5,"1 1",0,+,0,312,0.0780
/// ```
///
/// `coords` are the node's per-dimension coordinates (space-separated),
/// `dim`/`dir`/`vc` name the channel, and `utilization` is flits per
/// measurement cycle. The relation must be the one the run used — it
/// supplies the VC count per dimension that fixes the slot layout.
pub fn channel_heatmap_csv(
    topo: &Topology,
    relation: &dyn RoutingRelation,
    cfg: &SimConfig,
    result: &SimResult,
) -> String {
    let vcs = relation.vcs(topo);
    let layout = Layout::new(topo, &vcs);
    assert_eq!(
        result.channel_flits.len(),
        topo.node_count() * layout.out_per_node,
        "result does not match this topology/relation layout"
    );
    let window = cfg.measurement.max(1) as f64;
    let mut out = String::from("node,coords,dim,dir,vc,flits,utilization\n");
    for (oslot, &flits) in result.channel_flits.iter().enumerate() {
        let (node, port, vc0) = layout.out_slot_parts(oslot);
        let coords = topo
            .coords(node)
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(" ");
        out.push_str(&format!(
            "{node},\"{coords}\",{},{},{vc0},{flits},{:.4}\n",
            Layout::port_dim(port),
            dir_char(Layout::port_dir(port)),
            flits as f64 / window,
        ));
    }
    out
}

/// One edge of a diagnosed circular wait: `waiter` cannot advance until
/// `waits_on` does, for the reason in `label`. `held`/`wanted` are the
/// channel coordinates behind channel-shaped waits (credit starvation,
/// VC ownership); queued-behind edges carry neither.
#[derive(Debug, Clone)]
struct WaitEdge {
    waiter: Pid,
    waits_on: Pid,
    label: String,
    held: Option<ChannelCoord>,
    wanted: Option<ChannelCoord>,
}

impl WaitEdge {
    fn to_suspected(&self) -> SuspectedEdge {
        SuspectedEdge {
            waiter: u64::from(self.waiter),
            waits_on: u64::from(self.waits_on),
            label: self.label.clone(),
            held: self.held,
            wanted: self.wanted,
        }
    }
}

/// Reorder detector: the highest injection cycle delivered so far per
/// (src, dst) pair. Dense `n*n` table for the meshes we simulate (zero-
/// initialised, matching a map's `or_insert(0)`); falls back to hashing
/// above [`DeliveredLog::DENSE_LIMIT`] pairs so giant topologies don't
/// pay O(n²) memory.
enum DeliveredLog {
    Dense { n: usize, last: Vec<u64> },
    Sparse(std::collections::HashMap<(NodeId, NodeId), u64>),
}

impl DeliveredLog {
    /// Pair count above which the dense table (8 bytes/pair) is not worth
    /// its memory. 1<<22 pairs = 32 MiB, i.e. meshes past ~2048 nodes.
    const DENSE_LIMIT: usize = 1 << 22;

    fn new(n: usize) -> Self {
        if n.saturating_mul(n) <= Self::DENSE_LIMIT {
            DeliveredLog::Dense {
                n,
                last: vec![0; n * n],
            }
        } else {
            DeliveredLog::Sparse(std::collections::HashMap::new())
        }
    }

    /// Records a delivery; returns `true` when it arrived out of order
    /// (injected earlier than an already-delivered packet of the pair).
    fn note(&mut self, src: NodeId, dst: NodeId, injected: u64) -> bool {
        let last = match self {
            DeliveredLog::Dense { n, last } => &mut last[src * *n + dst],
            DeliveredLog::Sparse(map) => map.entry((src, dst)).or_insert(0),
        };
        if injected < *last {
            true
        } else {
            *last = injected;
            false
        }
    }
}

struct Simulator<'a> {
    topo: Topology,
    relation: &'a dyn RoutingRelation,
    cfg: &'a SimConfig,
    /// Optional flight recorder; `None` keeps every emission site on a
    /// single-branch fast path.
    rec: Option<&'a mut Recorder>,
    layout: Layout,
    in_vcs: Vec<InVc>,
    out_vcs: Vec<OutVc>,
    eject_owner: Vec<Option<(Pid, usize)>>,
    packets: Vec<Packet>,
    /// Flits in flight on links: (arrival cycle, destination in-slot, flit).
    in_transit: VecDeque<(u64, usize, FlitTag)>,
    /// Next unconsumed event index for trace-driven traffic.
    trace_cursor: usize,
    rng: Rng64,
    // statistics
    injected: u64,
    delivered: u64,
    measured_injected: u64,
    measured_delivered: u64,
    latency_sum: u64,
    latency_max: u64,
    latencies: Vec<u64>,
    /// Log-bucketed latency histogram (always on; feeds `SimResult` and,
    /// when live metrics are enabled, the global registry).
    latency_hist: ebda_obs::Histogram,
    /// Whether the live metrics registry was enabled when the run started
    /// — snapshotted once so a mid-run toggle cannot skew a run.
    metrics_on: bool,
    /// Whether the self-profiler was enabled at run start (same
    /// snapshot-once rule as `metrics_on`); `false` keeps every timing
    /// site a single branch with no clock reads and no allocations.
    prof_on: bool,
    /// Per-phase accumulator, flushed once in `finish()`.
    prof: ProfAcc,
    /// Run start time, set at the top of `run()` when `prof_on`.
    prof_run_t0: Option<Instant>,
    /// Head-of-packet injection-queue residency, live-metrics only.
    inject_queue_hist: ebda_obs::Histogram,
    /// Per-channel buffer occupancy sampled every 64 cycles, live-metrics
    /// only.
    occupancy_hist: ebda_obs::Histogram,
    /// Switch-allocation attempts lost to exhausted credits.
    credit_stalls: u64,
    /// Flits ejected over the whole run (not just the measurement
    /// window) — the watchdog's notion of end-to-end progress.
    flits_ejected_total: u64,
    /// Online watchdog state: trips so far this run.
    watchdog_trips: u64,
    /// The wait cycle found by the last trip that found one.
    watchdog_suspected: Vec<WaitEdge>,
    watchdog_suspected_at: u64,
    /// Consecutive non-ejecting cycles with a credit stall while traffic
    /// was in flight.
    stall_streak: u64,
    /// A trip disarms the watchdog until the next ejection, so one
    /// freeze episode produces one trip instead of one per cycle.
    watchdog_armed: bool,
    /// Structured edges of the hard-deadlock post-mortem, set just
    /// before the run aborts.
    final_wait_edges: Vec<SuspectedEdge>,
    hop_sum: u64,
    window_flits_ejected: u64,
    channel_flits: Vec<u64>,
    routing_faults: u64,
    /// Highest injection cycle delivered so far per (src, dst) pair.
    last_delivered: DeliveredLog,
    reordered: u64,
    /// Total flits currently sitting in input buffers, maintained
    /// incrementally so the per-cycle in-flight check is O(1) instead of
    /// a scan over every VC buffer.
    buffered_flits: usize,
    /// Scratch reused across cycles by `arbitrate_and_move` and
    /// `allocate` — the per-cycle hot path allocates nothing.
    moves_buf: Vec<(usize, Option<usize>)>,
    arrivals_buf: Vec<(usize, FlitTag)>,
    used_inputs: Vec<u64>,
    route_buf: Vec<ebda_routing::RouteChoice>,
    /// Per-node ON/OFF state for bursty traffic (empty otherwise).
    burst_on: Vec<bool>,
    /// Next unapplied fault-schedule index (the schedule is sorted once).
    fault_cursor: usize,
    faults_sorted: Vec<(u64, usize, ebda_core::Dimension, ebda_core::Direction)>,
    dropped: u64,
}

impl<'a> Simulator<'a> {
    fn new(
        topo: &'a Topology,
        relation: &'a dyn RoutingRelation,
        cfg: &'a SimConfig,
        rec: Option<&'a mut Recorder>,
    ) -> Self {
        let vcs = relation.vcs(topo);
        let layout = Layout::new(topo, &vcs);
        let n = topo.node_count();
        let in_vcs = (0..n * layout.in_per_node)
            .map(|_| InVc {
                buf: VecDeque::new(),
                alloc: Alloc::None,
            })
            .collect();
        let out_vcs = (0..n * layout.out_per_node)
            .map(|_| OutVc {
                owner: None,
                src_in: usize::MAX,
                credits: cfg.buffer_depth,
            })
            .collect();
        let channel_flits = vec![0u64; n * layout.out_per_node];
        let mut faults_sorted = cfg.fault_schedule.clone();
        faults_sorted.sort_by_key(|&(c, ..)| c);
        Simulator {
            topo: topo.clone(),
            relation,
            cfg,
            rec,
            layout,
            in_vcs,
            out_vcs,
            eject_owner: vec![None; n],
            packets: Vec::new(),
            in_transit: VecDeque::new(),
            trace_cursor: 0,
            rng: Rng64::new(cfg.seed),
            injected: 0,
            delivered: 0,
            measured_injected: 0,
            measured_delivered: 0,
            latency_sum: 0,
            latency_max: 0,
            latencies: Vec::new(),
            latency_hist: ebda_obs::Histogram::new(),
            metrics_on: ebda_obs::metrics::enabled(),
            prof_on: ebda_obs::prof::enabled(),
            prof: ProfAcc::default(),
            prof_run_t0: None,
            inject_queue_hist: ebda_obs::Histogram::new(),
            occupancy_hist: ebda_obs::Histogram::new(),
            credit_stalls: 0,
            flits_ejected_total: 0,
            watchdog_trips: 0,
            watchdog_suspected: Vec::new(),
            watchdog_suspected_at: 0,
            stall_streak: 0,
            watchdog_armed: true,
            final_wait_edges: Vec::new(),
            hop_sum: 0,
            window_flits_ejected: 0,
            channel_flits,
            routing_faults: 0,
            last_delivered: DeliveredLog::new(n),
            reordered: 0,
            buffered_flits: 0,
            moves_buf: Vec::new(),
            arrivals_buf: Vec::new(),
            used_inputs: Vec::new(),
            route_buf: Vec::new(),
            burst_on: vec![false; n],
            fault_cursor: 0,
            faults_sorted,
            dropped: 0,
        }
    }

    fn run(mut self) -> SimResult {
        if self.prof_on {
            self.prof_run_t0 = Some(Instant::now());
        }
        let horizon = self.cfg.warmup + self.cfg.measurement + self.cfg.drain;
        let mut last_progress = 0u64;
        let mut cycle = 0u64;
        while cycle < horizon {
            self.take_sample(cycle);
            if self.metrics_on && cycle.is_multiple_of(64) {
                self.sample_occupancy();
            }
            self.apply_due_faults(cycle);
            // Link traversal completes: deliver due flits.
            while self
                .in_transit
                .front()
                .is_some_and(|&(due, _, _)| due <= cycle)
            {
                let (_, slot, flit) = self.in_transit.pop_front().expect("checked front");
                self.in_vcs[slot].buf.push_back(flit);
                self.buffered_flits += 1;
            }
            if cycle < self.cfg.warmup + self.cfg.measurement {
                self.inject(cycle);
            }
            let stalls_before = self.credit_stalls;
            let ejected_before = self.flits_ejected_total;
            let moved = if self.prof_on {
                let t0 = Instant::now();
                self.allocate(cycle);
                let t1 = Instant::now();
                self.prof.alloc_ns += t1.duration_since(t0).as_nanos() as u64;
                let moved = self.arbitrate_and_move(cycle);
                self.prof.arb_ns += t1.elapsed().as_nanos() as u64;
                moved
            } else {
                self.allocate(cycle);
                self.arbitrate_and_move(cycle)
            };
            if moved {
                last_progress = cycle;
            }
            debug_assert_eq!(
                self.buffered_flits > 0,
                self.in_vcs.iter().any(|v| !v.buf.is_empty()),
                "buffered-flit counter drifted from actual occupancy"
            );
            let in_flight = !self.in_transit.is_empty() || self.buffered_flits > 0;
            if self.cfg.watchdog_window > 0 {
                self.watchdog_tick(
                    cycle,
                    last_progress,
                    in_flight,
                    self.credit_stalls > stalls_before,
                    self.flits_ejected_total > ejected_before,
                );
            }
            if in_flight && cycle - last_progress > self.cfg.deadlock_threshold {
                let blocked = self.blocked_packet_count();
                let wait_edges = self.diagnose_deadlock();
                if let Some(rec) = self.rec.as_deref_mut() {
                    rec.record(Event::Watchdog { cycle, blocked });
                    for e in &wait_edges {
                        rec.record(Event::WaitFor {
                            cycle,
                            waiter: u64::from(e.waiter),
                            waits_on: u64::from(e.waits_on),
                            label: e.label.clone(),
                        });
                    }
                }
                let final_edges = wait_edges.iter().map(WaitEdge::to_suspected).collect();
                let wait_cycle = wait_edges.into_iter().map(|e| e.label).collect();
                return self.finish_deadlocked(
                    Outcome::Deadlocked {
                        at_cycle: cycle,
                        blocked_packets: blocked,
                        wait_cycle,
                    },
                    cycle,
                    final_edges,
                );
            }
            if !in_flight && cycle >= self.cfg.warmup + self.cfg.measurement {
                cycle += 1;
                break; // fully drained
            }
            cycle += 1;
        }
        self.assert_conservation_if_drained();
        self.finish(Outcome::Completed, cycle)
    }

    /// After a fully drained run, every resource must be back in its
    /// initial state — catches credit leaks and stuck allocations that
    /// would otherwise only show up as throughput drift.
    fn assert_conservation_if_drained(&self) {
        let drained = self.in_transit.is_empty() && self.in_vcs.iter().all(|v| v.buf.is_empty());
        if !drained {
            return; // horizon hit with traffic still in flight: fine
        }
        assert_eq!(self.buffered_flits, 0, "buffered-flit counter leaked");
        for (i, vc) in self.in_vcs.iter().enumerate() {
            assert_eq!(vc.alloc, Alloc::None, "in-slot {i} kept an allocation");
        }
        for (i, out) in self.out_vcs.iter().enumerate() {
            assert_eq!(out.owner, None, "out-slot {i} kept an owner");
            assert_eq!(
                out.credits, self.cfg.buffer_depth,
                "out-slot {i} leaked credits"
            );
        }
        assert!(
            self.eject_owner.iter().all(Option::is_none),
            "an ejection port kept an owner"
        );
        assert_eq!(
            self.delivered + self.dropped,
            self.packets.len() as u64,
            "drained run must have delivered or dropped every packet"
        );
    }

    /// Takes one periodic telemetry sample if a recorder is attached and
    /// its cadence says a sample is due this cycle.
    fn take_sample(&mut self, cycle: u64) {
        let Some(rec) = self.rec.as_deref_mut() else {
            return;
        };
        if !rec.sample_due(cycle) {
            return;
        }
        let depth = self.cfg.buffer_depth;
        let occupancy: Vec<u32> = self
            .out_vcs
            .iter()
            .map(|o| (depth - o.credits.min(depth)) as u32)
            .collect();
        let credit_stalls = self
            .out_vcs
            .iter()
            .filter(|o| o.owner.is_some() && o.credits == 0)
            .count() as u64;
        let buffered_flits = self.in_vcs.iter().map(|v| v.buf.len() as u64).sum::<u64>()
            + self.in_transit.len() as u64;
        rec.push_sample(Sample {
            cycle,
            in_flight: self.injected - self.delivered - self.dropped,
            buffered_flits,
            credit_stalls,
            occupancy,
        });
    }

    /// Samples every output VC's current buffer occupancy into the
    /// live-metrics occupancy histogram (a distribution over channels and
    /// time, the raw material of congestion heatmaps).
    fn sample_occupancy(&mut self) {
        let depth = self.cfg.buffer_depth;
        for o in &self.out_vcs {
            self.occupancy_hist
                .observe((depth - o.credits.min(depth)) as u64);
        }
    }

    /// Flushes the run's aggregates into the global metrics registry —
    /// one lock acquisition per family, after the hot loop is done.
    fn flush_metrics(&self, outcome: &Outcome, cycles: u64) {
        use ebda_obs::metrics as m;
        m::counter_add("ebda_sim_runs_total", &[], 1);
        m::counter_add("ebda_sim_cycles_total", &[], cycles);
        m::counter_add("ebda_sim_packets_injected_total", &[], self.injected);
        m::counter_add("ebda_sim_packets_delivered_total", &[], self.delivered);
        m::counter_add("ebda_sim_packets_dropped_total", &[], self.dropped);
        m::counter_add("ebda_sim_packets_reordered_total", &[], self.reordered);
        m::counter_add("ebda_sim_routing_faults_total", &[], self.routing_faults);
        m::counter_add("ebda_sim_credit_stalls_total", &[], self.credit_stalls);
        if !matches!(outcome, Outcome::Completed) {
            m::counter_add("ebda_sim_deadlocks_total", &[], 1);
        }
        m::merge_histogram("ebda_sim_packet_latency_cycles", &[], &self.latency_hist);
        m::merge_histogram(
            "ebda_sim_injection_queue_cycles",
            &[],
            &self.inject_queue_hist,
        );
        m::merge_histogram(
            "ebda_sim_channel_occupancy_flits",
            &[],
            &self.occupancy_hist,
        );
        // Per-channel load: a flit counter (accumulates across runs) and a
        // utilization gauge (flits per measurement cycle, last run wins).
        let window = self.cfg.measurement.max(1) as f64;
        for (oslot, &flits) in self.channel_flits.iter().enumerate() {
            let (node, port, vc0) = self.layout.out_slot_parts(oslot);
            let labels = [
                ("node", node.to_string()),
                ("dim", Layout::port_dim(port).to_string()),
                ("dir", dir_char(Layout::port_dir(port)).to_string()),
                ("vc", vc0.to_string()),
            ];
            m::counter_add("ebda_sim_channel_flits_total", &labels, flits);
            m::gauge_set(
                "ebda_sim_channel_utilization",
                &labels,
                flits as f64 / window,
            );
        }
    }

    /// Flushes the run's phase accumulator into the global self-profiler
    /// after the hot loop is done. The `calls` and work units of every
    /// phase are deterministic functions of the seeded run; only the
    /// wall-ns totals vary between hosts. Phase wall times are
    /// accounted so the five cycle-loop phases are disjoint children of
    /// `sim/run`: VC allocation is `allocate()` minus routing, switch
    /// traversal is `arbitrate_and_move()` minus credit return and
    /// ejection.
    fn flush_prof(&self, cycles: u64) {
        use ebda_obs::prof;
        let p = &self.prof;
        let run_ns = self
            .prof_run_t0
            .map_or(0, |t| t.elapsed().as_nanos() as u64);
        prof::record("sim/run", 1, run_ns);
        prof::work("sim/run", "cycles", cycles);
        prof::record("sim/run/route", p.routes, p.route_ns);
        prof::work("sim/run/route", "route_queries", p.routes);
        prof::record(
            "sim/run/vc_alloc",
            p.vc_allocs,
            p.alloc_ns.saturating_sub(p.route_ns),
        );
        prof::work("sim/run/vc_alloc", "vc_grants", p.vc_allocs);
        prof::record(
            "sim/run/switch",
            p.link_flits,
            p.arb_ns.saturating_sub(p.credit_ns + p.eject_ns),
        );
        prof::work("sim/run/switch", "link_flits", p.link_flits);
        prof::record("sim/run/credit", p.credits, p.credit_ns);
        prof::work("sim/run/credit", "credits_returned", p.credits);
        prof::record("sim/run/eject", p.eject_flits, p.eject_ns);
        prof::work("sim/run/eject", "flits_ejected", p.eject_flits);
    }

    /// One step of the online stall watchdog (called only when
    /// `cfg.watchdog_window > 0`). Two independent triggers, both scaled
    /// by the window `W`: a movement freeze (`cycle - last_progress >=
    /// W` with traffic in flight) and a credit-stall streak (`W`
    /// consecutive cycles that stalled on zero credits without ejecting
    /// a single flit). Ejection is the progress signal that clears the
    /// streak and re-arms a tripped watchdog: internal shuffling can
    /// keep `moved` true forever in a half-wedged network, but flits
    /// leaving the network cannot.
    fn watchdog_tick(
        &mut self,
        cycle: u64,
        last_progress: u64,
        in_flight: bool,
        stalled: bool,
        ejected: bool,
    ) {
        if ejected {
            self.stall_streak = 0;
            self.watchdog_armed = true;
            return;
        }
        if in_flight && stalled {
            self.stall_streak += 1;
        } else if !in_flight {
            self.stall_streak = 0;
        }
        if !self.watchdog_armed {
            return;
        }
        let w = self.cfg.watchdog_window;
        let frozen = in_flight && cycle.saturating_sub(last_progress) >= w;
        if frozen || self.stall_streak >= w {
            self.trip_watchdog(cycle);
        }
    }

    /// The watchdog fired: walk the live hold/want graph, record the
    /// suspected wait cycle through the recorder (so journeys pick it
    /// up), and emit the `ebda_watchdog_*` metrics family. Diagnostic
    /// only — the run continues, and the watchdog disarms until the
    /// next ejection proves the suspicion wrong (or the hard
    /// `deadlock_threshold` proves it right).
    fn trip_watchdog(&mut self, cycle: u64) {
        self.watchdog_armed = false;
        self.watchdog_trips += 1;
        let blocked = self.blocked_packet_count();
        let edges = self.diagnose_deadlock();
        if self.metrics_on {
            use ebda_obs::metrics as m;
            m::counter_add("ebda_watchdog_trips_total", &[], 1);
            m::observe("ebda_watchdog_stall_streak_cycles", &[], self.stall_streak);
            if !edges.is_empty() {
                m::counter_add("ebda_watchdog_suspected_cycles_total", &[], 1);
                m::gauge_set("ebda_watchdog_suspected_cycle_len", &[], edges.len() as f64);
            }
        }
        if let Some(rec) = self.rec.as_deref_mut() {
            rec.record(Event::Watchdog { cycle, blocked });
            for e in &edges {
                rec.record(Event::WaitFor {
                    cycle,
                    waiter: u64::from(e.waiter),
                    waits_on: u64::from(e.waits_on),
                    label: e.label.clone(),
                });
            }
        }
        if !edges.is_empty() {
            self.watchdog_suspected = edges;
            self.watchdog_suspected_at = cycle;
        }
    }

    fn finish_deadlocked(
        mut self,
        outcome: Outcome,
        cycles: u64,
        final_edges: Vec<SuspectedEdge>,
    ) -> SimResult {
        self.final_wait_edges = final_edges;
        self.finish(outcome, cycles)
    }

    fn finish(mut self, outcome: Outcome, cycles: u64) -> SimResult {
        ebda_obs::counter_add("sim.engine.runs", 1);
        ebda_obs::counter_add("sim.engine.cycles", cycles);
        ebda_obs::counter_add("sim.engine.packets_injected", self.injected);
        ebda_obs::counter_add("sim.engine.packets_delivered", self.delivered);
        ebda_obs::counter_add("sim.engine.routing_faults", self.routing_faults);
        if self.metrics_on {
            self.flush_metrics(&outcome, cycles);
        }
        if self.prof_on {
            self.flush_prof(cycles);
        }
        let delivered = self.measured_delivered.max(1);
        self.latencies.sort_unstable();
        SimResult {
            outcome,
            cycles,
            injected_packets: self.injected,
            delivered_packets: self.delivered,
            measured_injected: self.measured_injected,
            measured_delivered: self.measured_delivered,
            avg_latency: self.latency_sum as f64 / delivered as f64,
            avg_hops: self.hop_sum as f64 / delivered as f64,
            max_latency: self.latency_max,
            latencies: self.latencies,
            latency_hist: self.latency_hist,
            throughput: self.window_flits_ejected as f64
                / self.topo.node_count() as f64
                / self.cfg.measurement as f64,
            window_ejected: self.window_flits_ejected,
            channel_flits: self.channel_flits,
            routing_faults: self.routing_faults,
            reordered_packets: self.reordered,
            dropped_packets: self.dropped,
            watchdog_trips: self.watchdog_trips,
            suspected_cycle: self
                .watchdog_suspected
                .iter()
                .map(WaitEdge::to_suspected)
                .collect(),
            suspected_at_cycle: self.watchdog_suspected_at,
            final_wait_edges: self.final_wait_edges,
        }
    }

    /// Builds the wait-for graph among blocked packets and extracts one
    /// circular wait as structured edges (waiter, waited-on, reason),
    /// described hop by hop. Empty when no cycle is found (e.g. a stall
    /// caused by a routing fault rather than a deadlock).
    fn diagnose_deadlock(&self) -> Vec<WaitEdge> {
        // Wait edges with a description of the waiting side. Pids are
        // sequential, so interning uses a direct-indexed table (sentinel
        // `u32::MAX` = not yet seen) rather than a hash map.
        let mut pids: Vec<Pid> = Vec::new();
        let mut index: Vec<u32> = vec![u32::MAX; self.packets.len()];
        let intern = |pids: &mut Vec<Pid>, index: &mut Vec<u32>, p: Pid| {
            let e = &mut index[p as usize];
            if *e == u32::MAX {
                pids.push(p);
                *e = (pids.len() - 1) as u32;
            }
            *e as usize
        };
        // Per-waiter annotation: the label plus the (held, wanted)
        // channel coordinates it describes, first reason wins.
        type Reason = (String, Option<ChannelCoord>, Option<ChannelCoord>);
        let mut edges: Vec<Vec<u32>> = Vec::new();
        let mut labels: Vec<Reason> = Vec::new();
        let add_edge = |edges: &mut Vec<Vec<u32>>,
                        labels: &mut Vec<Reason>,
                        a: usize,
                        b: usize,
                        why: Reason| {
            while edges.len() <= a.max(b) {
                edges.push(Vec::new());
                labels.push((String::new(), None, None));
            }
            if !edges[a].contains(&(b as u32)) {
                edges[a].push(b as u32);
            }
            if labels[a].0.is_empty() {
                labels[a] = why;
            }
        };

        for (slot, vc) in self.in_vcs.iter().enumerate() {
            let Some(&front) = vc.buf.front() else {
                continue;
            };
            let (node, port, _) = self.layout.in_slot_parts(slot);
            let fi = intern(&mut pids, &mut index, front.pid);
            // Packets queued behind the front wait on it.
            for f in vc.buf.iter().skip(1) {
                if f.pid != front.pid {
                    let qi = intern(&mut pids, &mut index, f.pid);
                    add_edge(
                        &mut edges,
                        &mut labels,
                        qi,
                        fi,
                        (
                            format!("p{} queued behind p{} at node {node}", f.pid, front.pid),
                            None,
                            None,
                        ),
                    );
                }
            }
            match vc.alloc {
                Alloc::Out(oslot) if self.out_vcs[oslot].credits == 0 => {
                    // Waiting on space freed by packets downstream.
                    let (onode, oport, ovc) = self.out_slot_parts(oslot);
                    let dim = ebda_core::Dimension::new(Layout::port_dim(oport) as u8);
                    let dir = Layout::port_dir(oport);
                    if let Some(nbr) = self.topo.neighbor(onode, dim, dir) {
                        let held = ChannelCoord {
                            node: onode,
                            dim: dim.index() as u8,
                            dir: dir_char(dir),
                            vc: ovc as u8,
                        };
                        let wanted = ChannelCoord { node: nbr, ..held };
                        let dslot = self.layout.in_slot(nbr, oport, ovc);
                        for f in self.in_vcs[dslot].buf.iter() {
                            if f.pid != front.pid {
                                let qi = intern(&mut pids, &mut index, f.pid);
                                add_edge(
                                        &mut edges,
                                        &mut labels,
                                        fi,
                                        qi,
                                        (
                                            format!(
                                                "p{} holds {dim}{}{dir} at node {node}, needs buffer space at node {nbr}",
                                                front.pid, ovc + 1
                                            ),
                                            Some(held),
                                            Some(wanted),
                                        ),
                                    );
                            }
                        }
                    }
                }
                Alloc::None if front.idx == 0 => {
                    // A head that could not allocate: waits on the owners
                    // of every candidate output VC.
                    let p = &self.packets[front.pid as usize];
                    if p.dst != node {
                        for ch in self
                            .relation
                            .route(&self.topo, node, p.route_state, p.src, p.dst)
                        {
                            let oport = Layout::port(ch.port.dim.index(), ch.port.dir);
                            let oslot = self.layout.out_slot(node, oport, ch.port.vc as usize - 1);
                            if let Some(owner) = self.out_vcs[oslot].owner {
                                if owner != front.pid {
                                    let qi = intern(&mut pids, &mut index, owner);
                                    add_edge(
                                        &mut edges,
                                        &mut labels,
                                        fi,
                                        qi,
                                        (
                                            format!(
                                                "p{} at node {node} wants {} held by p{owner}",
                                                front.pid, ch.port
                                            ),
                                            None,
                                            Some(ChannelCoord {
                                                node,
                                                dim: ch.port.dim.index() as u8,
                                                dir: dir_char(ch.port.dir),
                                                vc: ch.port.vc - 1,
                                            }),
                                        ),
                                    );
                                }
                            }
                        }
                    }
                    let _ = port;
                }
                _ => {}
            }
        }
        match find_cycle_indices(&edges) {
            Some(cycle) => (0..cycle.len())
                .map(|k| {
                    let i = cycle[k] as usize;
                    let j = cycle[(k + 1) % cycle.len()] as usize;
                    let (label, held, wanted) = labels[i].clone();
                    WaitEdge {
                        waiter: pids[i],
                        waits_on: pids[j],
                        label,
                        held,
                        wanted,
                    }
                })
                .collect(),
            None => Vec::new(),
        }
    }

    /// Applies fault-schedule entries due at `cycle`: cut the links, tear
    /// down severed wormholes, release reservations over dead links.
    fn apply_due_faults(&mut self, cycle: u64) {
        let mut applied = false;
        while let Some(&(due, node, dim, dir)) = self.faults_sorted.get(self.fault_cursor) {
            if due > cycle {
                break;
            }
            self.fault_cursor += 1;
            self.topo = self.topo.clone().with_failed_link(node, dim, dir);
            applied = true;
        }
        if !applied {
            return;
        }
        // Release or tear down traffic over links that no longer exist.
        let out_slots = self.out_vcs.len();
        for oslot in 0..out_slots {
            let Some(pid) = self.out_vcs[oslot].owner else {
                continue;
            };
            let (node, port, _) = self.out_slot_parts(oslot);
            let dim = ebda_core::Dimension::new(Layout::port_dim(port) as u8);
            let dir = Layout::port_dir(port);
            if self.topo.neighbor(node, dim, dir).is_some() {
                continue; // link survived
            }
            let islot = self.out_vcs[oslot].src_in;
            let head_still_here = self.in_vcs[islot]
                .buf
                .front()
                .is_some_and(|f| f.pid == pid && f.idx == 0);
            if head_still_here {
                // Only a reservation: release it; the head re-routes.
                self.out_vcs[oslot].owner = None;
                self.out_vcs[oslot].src_in = usize::MAX;
                self.in_vcs[islot].alloc = Alloc::None;
            } else {
                // The wormhole is severed mid-packet: tear the packet down.
                self.teardown_packet(pid, cycle);
            }
        }
        // Flits in transit toward now-dead links cannot exist (they were
        // sent while the link was alive and arrive at the buffer), but a
        // packet already dropped may still have flits in transit: purge.
        let dropped: std::collections::HashSet<Pid> = self
            .packets
            .iter()
            .enumerate()
            .filter(|(_, p)| p.delivered == Some(u64::MAX))
            .map(|(i, _)| i as Pid)
            .collect();
        if !dropped.is_empty() {
            self.in_transit
                .retain(|&(_, _, f)| !dropped.contains(&f.pid));
        }
        self.recompute_credits();
    }

    /// Removes every trace of a packet from the network and counts it as
    /// dropped. The sentinel `delivered == Some(u64::MAX)` marks drops.
    fn teardown_packet(&mut self, pid: Pid, cycle: u64) {
        if self.packets[pid as usize].delivered.is_some() {
            return;
        }
        self.packets[pid as usize].delivered = Some(u64::MAX);
        self.dropped += 1;
        if let Some(rec) = self.rec.as_deref_mut() {
            rec.record(Event::Drop {
                cycle,
                pid: u64::from(pid),
            });
        }
        for slot in 0..self.in_vcs.len() {
            let had_front = self.in_vcs[slot].buf.front().is_some_and(|f| f.pid == pid);
            let before = self.in_vcs[slot].buf.len();
            self.in_vcs[slot].buf.retain(|f| f.pid != pid);
            self.buffered_flits -= before - self.in_vcs[slot].buf.len();
            if had_front {
                self.in_vcs[slot].alloc = Alloc::None;
            }
        }
        for oslot in 0..self.out_vcs.len() {
            if self.out_vcs[oslot].owner == Some(pid) {
                // Release the input-side allocation too: the packet may
                // have drained this buffer (tail still upstream) leaving
                // the alloc dangling.
                let src_in = self.out_vcs[oslot].src_in;
                if src_in != usize::MAX && self.in_vcs[src_in].alloc == Alloc::Out(oslot) {
                    self.in_vcs[src_in].alloc = Alloc::None;
                }
                self.out_vcs[oslot].owner = None;
                self.out_vcs[oslot].src_in = usize::MAX;
            }
        }
        for i in 0..self.eject_owner.len() {
            if let Some((p, slot)) = self.eject_owner[i] {
                if p == pid {
                    if self.in_vcs[slot].alloc == Alloc::Eject {
                        self.in_vcs[slot].alloc = Alloc::None;
                    }
                    self.eject_owner[i] = None;
                }
            }
        }
    }

    /// Rebuilds every credit counter from actual buffer occupancy — used
    /// after teardown, where piecewise accounting is error-prone.
    fn recompute_credits(&mut self) {
        for oslot in 0..self.out_vcs.len() {
            let (node, port, vc0) = self.out_slot_parts(oslot);
            let dim = ebda_core::Dimension::new(Layout::port_dim(port) as u8);
            let dir = Layout::port_dir(port);
            let Some(nbr) = self.topo.neighbor(node, dim, dir) else {
                self.out_vcs[oslot].credits = self.cfg.buffer_depth;
                continue;
            };
            let dslot = self.layout.in_slot(nbr, port, vc0);
            let occupied = self.in_vcs[dslot].buf.len()
                + self
                    .in_transit
                    .iter()
                    .filter(|&&(_, s, _)| s == dslot)
                    .count();
            self.out_vcs[oslot].credits = self.cfg.buffer_depth.saturating_sub(occupied);
        }
    }

    fn blocked_packet_count(&self) -> usize {
        let mut pids: Vec<Pid> = self
            .in_vcs
            .iter()
            .flat_map(|v| v.buf.iter().map(|f| f.pid))
            .collect();
        pids.sort_unstable();
        pids.dedup();
        pids.len()
    }

    fn inject(&mut self, cycle: u64) {
        let cfg = self.cfg;
        if let crate::traffic::TrafficPattern::Trace { events } = &cfg.traffic {
            while let Some(&(c, src, dst)) = events.get(self.trace_cursor) {
                if c > cycle {
                    break;
                }
                self.trace_cursor += 1;
                self.spawn_packet(cycle, src, dst);
            }
            return;
        }
        let burst = match cfg.traffic {
            crate::traffic::TrafficPattern::Bursty {
                p_on,
                p_off,
                burst_scale,
            } => Some((p_on, p_off, burst_scale)),
            _ => None,
        };
        for node in self.topo.nodes() {
            let rate = match burst {
                Some((p_on, p_off, scale)) => {
                    // Advance the two-state Markov chain, then gate.
                    let on = self.burst_on[node];
                    let flip = self.rng.gen_bool(if on { p_off } else { p_on });
                    let on = on != flip;
                    self.burst_on[node] = on;
                    if on {
                        (self.cfg.injection_rate * scale).min(1.0)
                    } else {
                        0.0
                    }
                }
                None => self.cfg.injection_rate,
            };
            if rate == 0.0 || !self.rng.gen_bool(rate) {
                continue;
            }
            let Some(dst) = self
                .cfg
                .traffic
                .destination(&self.topo, node, &mut self.rng)
            else {
                continue;
            };
            self.spawn_packet(cycle, node, dst);
        }
    }

    fn spawn_packet(&mut self, cycle: u64, node: NodeId, dst: NodeId) {
        {
            let pid = self.packets.len() as Pid;
            let measured =
                cycle >= self.cfg.warmup && cycle < self.cfg.warmup + self.cfg.measurement;
            self.packets.push(Packet {
                src: node,
                dst,
                len: self.cfg.packet_length as u32,
                route_state: INJECT,
                inject_cycle: cycle,
                measured,
                delivered: None,
                hops: 0,
            });
            self.injected += 1;
            if measured {
                self.measured_injected += 1;
            }
            let slot = self.layout.injection_slot(node);
            for idx in 0..self.cfg.packet_length as u32 {
                self.in_vcs[slot].buf.push_back(FlitTag { pid, idx });
            }
            self.buffered_flits += self.cfg.packet_length;
            if let Some(rec) = self.rec.as_deref_mut() {
                rec.record(Event::Inject {
                    cycle,
                    pid: u64::from(pid),
                    src: node,
                    dst,
                    len: self.cfg.packet_length,
                });
            }
        }
    }

    /// VC allocation: heads at buffer fronts claim output VCs or the
    /// ejection port.
    fn allocate(&mut self, cycle: u64) {
        for node in self.topo.nodes() {
            for local in 0..self.layout.in_per_node {
                let slot = node * self.layout.in_per_node + local;
                if self.in_vcs[slot].alloc != Alloc::None {
                    continue;
                }
                let Some(&front) = self.in_vcs[slot].buf.front() else {
                    continue;
                };
                debug_assert_eq!(front.idx, 0, "unallocated buffer front must be a head");
                let pid = front.pid;
                let (src, dst, state) = {
                    let p = &self.packets[pid as usize];
                    (p.src, p.dst, p.route_state)
                };
                if dst == node {
                    if self.eject_owner[node].is_none() {
                        self.eject_owner[node] = Some((pid, slot));
                        self.in_vcs[slot].alloc = Alloc::Eject;
                        if self.prof_on {
                            self.prof.vc_allocs += 1;
                        }
                    }
                    continue;
                }
                // Store-and-forward: the whole packet must be buffered at
                // this node before its head may be routed onward.
                if self.cfg.switching == Switching::StoreAndForward {
                    let len = self.packets[pid as usize].len as usize;
                    let buffered = self.in_vcs[slot]
                        .buf
                        .iter()
                        .take_while(|f| f.pid == pid)
                        .count();
                    if buffered < len {
                        continue;
                    }
                }
                let mut cands = std::mem::take(&mut self.route_buf);
                if self.prof_on {
                    let t0 = Instant::now();
                    self.relation
                        .route_into(&self.topo, node, state, src, dst, &mut cands);
                    self.prof.route_ns += t0.elapsed().as_nanos() as u64;
                    self.prof.routes += 1;
                } else {
                    self.relation
                        .route_into(&self.topo, node, state, src, dst, &mut cands);
                }
                if cands.is_empty() {
                    self.routing_faults += 1;
                    self.route_buf = cands;
                    continue;
                }
                let feasible = |sim: &Simulator<'_>, oslot: usize| {
                    if sim.out_vcs[oslot].owner.is_some() {
                        return false;
                    }
                    if sim.cfg.buffer_policy == BufferPolicy::SinglePacket
                        && sim.out_vcs[oslot].credits < sim.cfg.buffer_depth
                    {
                        return false; // downstream buffer not empty: Duato mode
                    }
                    if sim.cfg.switching != Switching::Wormhole
                        && sim.out_vcs[oslot].credits < sim.cfg.packet_length
                    {
                        return false; // VCT/SAF: room for the whole packet
                    }
                    true
                };
                let oslot_of = |sim: &Simulator<'_>, k: usize| {
                    let ch = cands[k];
                    let vc0 = ch.port.vc as usize - 1;
                    debug_assert!(
                        vc0 < sim.layout.vcs[ch.port.dim.index()] as usize,
                        "relation requested VC beyond its declared budget"
                    );
                    let port = Layout::port(ch.port.dim.index(), ch.port.dir);
                    sim.layout.out_slot(node, port, vc0)
                };
                let chosen = match self.cfg.selection {
                    Selection::RotatingFirstFit => {
                        let start = (cycle as usize + node) % cands.len();
                        (0..cands.len())
                            .map(|k| (start + k) % cands.len())
                            .find(|&k| feasible(self, oslot_of(self, k)))
                    }
                    Selection::MostCredits => (0..cands.len())
                        .filter(|&k| feasible(self, oslot_of(self, k)))
                        .max_by_key(|&k| {
                            (self.out_vcs[oslot_of(self, k)].credits, cands.len() - k)
                        }),
                };
                if let Some(k) = chosen {
                    let oslot = oslot_of(self, k);
                    self.out_vcs[oslot].owner = Some(pid);
                    self.out_vcs[oslot].src_in = slot;
                    self.in_vcs[slot].alloc = Alloc::Out(oslot);
                    self.packets[pid as usize].route_state = cands[k].state;
                    if self.prof_on {
                        self.prof.vc_allocs += 1;
                    }
                    if self.rec.is_some() {
                        let ch = cands[k];
                        let ev = Event::VcAlloc {
                            cycle,
                            pid: u64::from(pid),
                            node,
                            dim: ch.port.dim.index() as u8,
                            dir: dir_char(ch.port.dir),
                            vc: ch.port.vc - 1,
                        };
                        self.rec.as_deref_mut().expect("checked").record(ev);
                    }
                }
                self.route_buf = cands;
            }
        }
    }

    /// Switch allocation + traversal. Returns `true` if any flit moved.
    fn arbitrate_and_move(&mut self, cycle: u64) -> bool {
        let in_window = cycle >= self.cfg.warmup && cycle < self.cfg.warmup + self.cfg.measurement;
        // (from in-slot, Option<out-slot>): None = ejection. All three
        // scratch vectors live on the Simulator and are reused every
        // cycle — this loop runs once per cycle and must not allocate.
        let mut moves = std::mem::take(&mut self.moves_buf);
        moves.clear();
        let ports = 2 * self.layout.dims;
        let mut used_inputs = std::mem::take(&mut self.used_inputs);
        used_inputs.clear();
        used_inputs.resize(self.topo.node_count(), 0);
        let input_bit = |local_port: usize| 1u64 << local_port;

        for node in self.topo.nodes() {
            // Ejection first: it frees buffers and models the sink.
            if let Some((pid, slot)) = self.eject_owner[node] {
                if let Some(&front) = self.in_vcs[slot].buf.front() {
                    if front.pid == pid {
                        let (_, port, _) = self.layout.in_slot_parts(slot);
                        if used_inputs[node] & input_bit(port) == 0 {
                            used_inputs[node] |= input_bit(port);
                            moves.push((slot, None));
                        }
                    }
                }
            }
            // One winner per output physical port.
            for port in 0..ports {
                let nvc = self.layout.vcs[Layout::port_dim(port)] as usize;
                let start = (cycle as usize + node + port) % nvc;
                for k in 0..nvc {
                    let vc0 = (start + k) % nvc;
                    let oslot = self.layout.out_slot(node, port, vc0);
                    let Some(pid) = self.out_vcs[oslot].owner else {
                        continue;
                    };
                    if self.out_vcs[oslot].credits == 0 {
                        self.credit_stalls += 1;
                        if let Some(rec) = self.rec.as_deref_mut() {
                            rec.record(Event::SwitchStall {
                                cycle,
                                pid: u64::from(pid),
                                node,
                                dim: Layout::port_dim(port) as u8,
                                dir: dir_char(Layout::port_dir(port)),
                                vc: vc0 as u8,
                            });
                        }
                        continue;
                    }
                    let islot = self.out_vcs[oslot].src_in;
                    let Some(&front) = self.in_vcs[islot].buf.front() else {
                        continue;
                    };
                    if front.pid != pid {
                        continue;
                    }
                    let (inode, iport, _) = self.layout.in_slot_parts(islot);
                    debug_assert_eq!(inode, node);
                    if used_inputs[node] & input_bit(iport) != 0 {
                        continue;
                    }
                    used_inputs[node] |= input_bit(iport);
                    moves.push((islot, Some(oslot)));
                    break;
                }
            }
        }

        let moved = !moves.is_empty();
        let mut arrivals = std::mem::take(&mut self.arrivals_buf);
        arrivals.clear();
        for &(islot, target) in &moves {
            let flit = self.in_vcs[islot]
                .buf
                .pop_front()
                .expect("scheduled move from empty buffer");
            self.buffered_flits -= 1;
            if self.prof_on {
                let t0 = Instant::now();
                self.return_credit(islot);
                self.prof.credit_ns += t0.elapsed().as_nanos() as u64;
                self.prof.credits += 1;
            } else {
                self.return_credit(islot);
            }
            let last = flit.idx + 1 == self.packets[flit.pid as usize].len;
            match target {
                Some(oslot) => {
                    self.out_vcs[oslot].credits -= 1;
                    if flit.idx == 0 {
                        self.packets[flit.pid as usize].hops += 1;
                        // Head leaving its source-side injection queue:
                        // record the queueing delay before network entry.
                        if self.metrics_on
                            && islot % self.layout.in_per_node == self.layout.in_per_node - 1
                        {
                            let waited = cycle - self.packets[flit.pid as usize].inject_cycle;
                            self.inject_queue_hist.observe(waited);
                        }
                    }
                    if in_window {
                        self.channel_flits[oslot] += 1;
                    }
                    if last {
                        self.out_vcs[oslot].owner = None;
                        self.in_vcs[islot].alloc = Alloc::None;
                    }
                    let (node, port, vc0) = self.out_slot_parts(oslot);
                    let dim = ebda_core::Dimension::new(Layout::port_dim(port) as u8);
                    let dir = Layout::port_dir(port);
                    let nbr = self
                        .topo
                        .neighbor(node, dim, dir)
                        .expect("allocated output must have a link");
                    if let Some(rec) = self.rec.as_deref_mut() {
                        rec.record(Event::LinkTraverse {
                            cycle,
                            pid: u64::from(flit.pid),
                            flit: flit.idx as usize,
                            from: node,
                            to: nbr,
                            dim: dim.index() as u8,
                            dir: dir_char(dir),
                            vc: vc0 as u8,
                        });
                    }
                    arrivals.push((self.layout.in_slot(nbr, port, vc0), flit));
                    if self.prof_on {
                        self.prof.link_flits += 1;
                    }
                }
                None => {
                    let t0 = self.prof_on.then(Instant::now);
                    self.flits_ejected_total += 1;
                    if in_window {
                        self.window_flits_ejected += 1;
                    }
                    if last {
                        let (node, _, _) = self.layout.in_slot_parts(islot);
                        self.eject_owner[node] = None;
                        self.in_vcs[islot].alloc = Alloc::None;
                        self.complete_packet(flit.pid, cycle, node);
                    }
                    if let Some(t0) = t0 {
                        self.prof.eject_ns += t0.elapsed().as_nanos() as u64;
                        self.prof.eject_flits += 1;
                    }
                }
            }
        }
        for &(slot, flit) in &arrivals {
            // Arrival after the link latency (1 = next cycle, since the
            // in-transit queue drains at the start of each cycle).
            self.in_transit
                .push_back((cycle + self.cfg.link_latency, slot, flit));
        }
        self.moves_buf = moves;
        self.arrivals_buf = arrivals;
        self.used_inputs = used_inputs;
        moved
    }

    fn out_slot_parts(&self, slot: usize) -> (NodeId, usize, usize) {
        self.layout.out_slot_parts(slot)
    }

    /// Returns a credit to the upstream output VC feeding `islot` (network
    /// ports only; injection queues are source-side and creditless).
    fn return_credit(&mut self, islot: usize) {
        let (node, port, vc0) = self.layout.in_slot_parts(islot);
        if port >= 2 * self.layout.dims {
            return; // injection slot
        }
        let dim = ebda_core::Dimension::new(Layout::port_dim(port) as u8);
        let dir = Layout::port_dir(port);
        // The upstream link may have failed after this flit arrived; its
        // out-slot credits were already reset by the fault handler.
        let Some(upstream) = self.topo.neighbor(node, dim, dir.opposite()) else {
            return;
        };
        let oslot = self.layout.out_slot(upstream, port, vc0);
        self.out_vcs[oslot].credits += 1;
        debug_assert!(self.out_vcs[oslot].credits <= self.cfg.buffer_depth);
    }

    fn complete_packet(&mut self, pid: Pid, cycle: u64, node: NodeId) {
        let latency;
        let (src, dst, injected);
        {
            let p = &mut self.packets[pid as usize];
            debug_assert!(p.delivered.is_none());
            p.delivered = Some(cycle);
            latency = cycle + 1 - p.inject_cycle;
            (src, dst, injected) = (p.src, p.dst, p.inject_cycle);
        }
        if let Some(rec) = self.rec.as_deref_mut() {
            rec.record(Event::Eject {
                cycle,
                pid: u64::from(pid),
                node,
                latency,
            });
        }
        if self.last_delivered.note(src, dst, injected) {
            self.reordered += 1;
        }
        self.delivered += 1;
        if self.packets[pid as usize].measured {
            self.measured_delivered += 1;
            self.latency_sum += latency;
            self.latency_max = self.latency_max.max(latency);
            self.latency_hist.observe(latency);
            if self.cfg.collect_latencies {
                self.latencies.push(latency);
            }
            self.hop_sum += u64::from(self.packets[pid as usize].hops);
        }
    }
}

/// Renders a direction as the `+`/`-` character used in trace events.
fn dir_char(dir: ebda_core::Direction) -> char {
    match dir {
        ebda_core::Direction::Plus => '+',
        ebda_core::Direction::Minus => '-',
    }
}

/// Minimal iterative three-colour DFS cycle finder for the wait-for graph
/// (kept local so the simulator does not depend on the CDG crate).
fn find_cycle_indices(edges: &[Vec<u32>]) -> Option<Vec<u32>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let n = edges.len();
    let mut color = vec![Color::White; n];
    let mut parent = vec![u32::MAX; n];
    let mut stack: Vec<(u32, usize)> = Vec::new();
    for start in 0..n as u32 {
        if color[start as usize] != Color::White {
            continue;
        }
        color[start as usize] = Color::Gray;
        stack.push((start, 0));
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            let succs = &edges[node as usize];
            if *next < succs.len() {
                let s = succs[*next];
                *next += 1;
                match color[s as usize] {
                    Color::White => {
                        parent[s as usize] = node;
                        color[s as usize] = Color::Gray;
                        stack.push((s, 0));
                    }
                    Color::Gray => {
                        let mut cycle = vec![node];
                        let mut cur = node;
                        while cur != s {
                            cur = parent[cur as usize];
                            cycle.push(cur);
                        }
                        cycle.reverse();
                        return Some(cycle);
                    }
                    Color::Black => {}
                }
            } else {
                color[node as usize] = Color::Black;
                stack.pop();
            }
        }
    }
    None
}

#[cfg(test)]
mod layout_tests {
    use super::*;

    #[test]
    fn slot_arithmetic_roundtrips() {
        let topo = Topology::mesh(&[3, 4, 2]);
        let vcs = [2u8, 1, 3];
        let layout = Layout::new(&topo, &vcs);
        // in-slots: every (node, port, vc) decodes back to itself.
        for node in topo.nodes() {
            for port in 0..(2 * layout.dims) {
                for vc0 in 0..vcs[Layout::port_dim(port)] as usize {
                    let slot = layout.in_slot(node, port, vc0);
                    assert_eq!(layout.in_slot_parts(slot), (node, port, vc0));
                }
            }
            let inj = layout.injection_slot(node);
            let (n, p, v) = layout.in_slot_parts(inj);
            assert_eq!((n, p, v), (node, 2 * layout.dims, 0));
        }
    }

    #[test]
    fn slots_are_dense_and_disjoint() {
        let topo = Topology::mesh(&[3, 3]);
        let vcs = [2u8, 2];
        let layout = Layout::new(&topo, &vcs);
        let mut seen = std::collections::HashSet::new();
        for node in topo.nodes() {
            for port in 0..4 {
                for vc0 in 0..2 {
                    assert!(seen.insert(layout.in_slot(node, port, vc0)));
                }
            }
            assert!(seen.insert(layout.injection_slot(node)));
        }
        assert_eq!(seen.len(), topo.node_count() * layout.in_per_node);
    }

    #[test]
    fn port_encoding_is_involutive() {
        use ebda_core::Direction;
        for d in 0..4usize {
            for dir in [Direction::Plus, Direction::Minus] {
                let p = Layout::port(d, dir);
                assert_eq!(Layout::port_dim(p), d);
                assert_eq!(Layout::port_dir(p), dir);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use ebda_core::catalog;
    use ebda_routing::classic::DimensionOrder;
    use ebda_routing::TurnRouting;

    fn quick_cfg(rate: f64) -> SimConfig {
        SimConfig {
            injection_rate: rate,
            warmup: 200,
            measurement: 800,
            drain: 2_000,
            deadlock_threshold: 500,
            ..SimConfig::default()
        }
    }

    #[test]
    fn xy_low_load_delivers_everything() {
        let topo = Topology::mesh(&[4, 4]);
        let xy = DimensionOrder::xy();
        let result = simulate(&topo, &xy, &quick_cfg(0.02));
        assert!(result.outcome.is_deadlock_free(), "{result}");
        assert_eq!(result.routing_faults, 0);
        assert!(result.measured_injected > 0);
        assert_eq!(result.measured_delivered, result.measured_injected);
        // Latency at low load should be near the zero-load bound
        // (~2 cycles/hop * avg 2.67 hops + serialization).
        assert!(result.avg_latency < 40.0, "latency {}", result.avg_latency);
    }

    #[test]
    fn adaptive_relation_delivers_under_load() {
        let topo = Topology::mesh(&[4, 4]);
        let r = TurnRouting::from_design("dyxy", &catalog::fig7b_dyxy()).unwrap();
        let result = simulate(&topo, &r, &quick_cfg(0.10));
        assert!(result.outcome.is_deadlock_free(), "{result}");
        assert_eq!(result.routing_faults, 0);
        assert!(result.measured_delivered > 0);
    }

    #[test]
    fn cyclic_turnset_deadlocks_the_watchdog_positive_control() {
        // All turns allowed (no EbDa structure): wormhole deadlock under
        // pressure, which the watchdog must catch.
        let universe = ebda_core::parse_channels("X+ X- Y+ Y-").unwrap();
        let mut turns = ebda_core::TurnSet::new();
        for &a in &universe {
            for &b in &universe {
                if a != b && a.dim != b.dim {
                    turns.insert(ebda_core::Turn::new(a, b));
                }
            }
        }
        let r = TurnRouting::new("all-turns", universe, turns);
        let topo = Topology::mesh(&[4, 4]);
        let cfg = SimConfig {
            injection_rate: 0.5,
            packet_length: 8,
            buffer_depth: 2,
            warmup: 0,
            measurement: 4_000,
            drain: 0,
            deadlock_threshold: 300,
            ..SimConfig::default()
        };
        let result = simulate(&topo, &r, &cfg);
        assert!(
            !result.outcome.is_deadlock_free(),
            "expected a deadlock, got {result}"
        );
        // The diagnosis must produce a genuine circular wait.
        if let Outcome::Deadlocked { wait_cycle, .. } = &result.outcome {
            assert!(
                wait_cycle.len() >= 2,
                "expected a wait-for cycle, got {wait_cycle:?}"
            );
            for step in wait_cycle {
                assert!(!step.is_empty());
            }
        }
    }

    #[test]
    fn find_cycle_indices_helper() {
        assert!(find_cycle_indices(&[vec![1], vec![2], vec![]]).is_none());
        let c = find_cycle_indices(&[vec![1], vec![2], vec![0]]).unwrap();
        assert_eq!(c.len(), 3);
        assert!(find_cycle_indices(&[]).is_none());
    }

    #[test]
    fn deterministic_across_runs() {
        let topo = Topology::mesh(&[4, 4]);
        let xy = DimensionOrder::xy();
        let a = simulate(&topo, &xy, &quick_cfg(0.05));
        let b = simulate(&topo, &xy, &quick_cfg(0.05));
        assert_eq!(a.injected_packets, b.injected_packets);
        assert_eq!(a.avg_latency, b.avg_latency);
        assert_eq!(a.channel_flits, b.channel_flits);
    }

    #[test]
    fn single_packet_policy_is_more_restrictive() {
        let topo = Topology::mesh(&[4, 4]);
        let r = TurnRouting::from_design("wf", &catalog::p3_west_first()).unwrap();
        let multi = simulate(&topo, &r, &quick_cfg(0.08));
        let single = simulate(
            &topo,
            &r,
            &SimConfig {
                buffer_policy: BufferPolicy::SinglePacket,
                ..quick_cfg(0.08)
            },
        );
        assert!(multi.outcome.is_deadlock_free());
        assert!(single.outcome.is_deadlock_free());
        // Duato-mode buffers serialize packets: latency can only suffer.
        assert!(
            single.avg_latency >= multi.avg_latency * 0.9,
            "single {} vs multi {}",
            single.avg_latency,
            multi.avg_latency
        );
    }

    #[test]
    fn vct_and_saf_modes_deliver_and_stay_deadlock_free() {
        // Paper Assumption 1: the theorems hold for VCT and SAF too.
        let topo = Topology::mesh(&[4, 4]);
        let r = TurnRouting::from_design("wf", &catalog::p3_west_first()).unwrap();
        let mut latencies = Vec::new();
        for switching in [
            Switching::Wormhole,
            Switching::VirtualCutThrough,
            Switching::StoreAndForward,
        ] {
            let cfg = SimConfig {
                switching,
                buffer_depth: 8,
                packet_length: 5,
                ..quick_cfg(0.04)
            };
            let result = simulate(&topo, &r, &cfg);
            assert!(result.outcome.is_deadlock_free(), "{switching:?}: {result}");
            assert_eq!(result.measured_delivered, result.measured_injected);
            latencies.push(result.avg_latency);
        }
        // SAF serializes per hop: strictly slower than wormhole.
        assert!(
            latencies[2] > latencies[0],
            "SAF {} must exceed wormhole {}",
            latencies[2],
            latencies[0]
        );
    }

    #[test]
    fn bursty_traffic_widens_the_latency_tail() {
        // Same long-run load, bursty arrival process: mean latency may
        // move a little, but the p99 tail should stretch relative to
        // smooth Bernoulli arrivals.
        let topo = Topology::mesh(&[4, 4]);
        let xy = DimensionOrder::xy();
        let smooth = simulate(&topo, &xy, &quick_cfg(0.05));
        let bursty_cfg = SimConfig {
            traffic: crate::traffic::TrafficPattern::Bursty {
                p_on: 0.02,
                p_off: 0.08,
                burst_scale: 5.0,
            },
            ..quick_cfg(0.05)
        };
        let bursty = simulate(&topo, &xy, &bursty_cfg);
        assert!(bursty.outcome.is_deadlock_free(), "{bursty}");
        assert!(bursty.measured_injected > 0);
        let p99_smooth = smooth.latency_percentile(99.0).unwrap();
        let p99_bursty = bursty.latency_percentile(99.0).unwrap();
        assert!(
            p99_bursty > p99_smooth,
            "bursts should stretch the tail: {p99_bursty} vs {p99_smooth}"
        );
    }

    #[test]
    fn mid_run_link_failure_reroutes_and_tears_down_cleanly() {
        // North-last detours around a cut top-row link (its turn set
        // allows the descend-east-climb detour), so after the failure the
        // network keeps delivering; at most the packets whose wormholes
        // straddled the link at the failure instant are dropped.
        let base = Topology::mesh(&[5, 5]);
        let r = TurnRouting::from_design("north-last", &catalog::north_last()).unwrap();
        let cfg = SimConfig {
            injection_rate: 0.04,
            warmup: 200,
            measurement: 1_000,
            drain: 3_000,
            deadlock_threshold: 1_200,
            fault_schedule: vec![(
                600,
                base.node_at(&[1, 4]),
                ebda_core::Dimension::X,
                ebda_core::Direction::Plus,
            )],
            ..SimConfig::default()
        };
        let result = simulate(&base, &r, &cfg);
        assert!(result.outcome.is_deadlock_free(), "{result}");
        assert_eq!(result.routing_faults, 0, "north-last must keep routing");
        assert_eq!(
            result.delivered_packets + result.dropped_packets,
            result.injected_packets,
            "every packet must be delivered or accounted as dropped"
        );
        // The drop count is bounded by the wormholes a single link can
        // carry at one instant.
        assert!(
            result.dropped_packets <= 4,
            "{} drops",
            result.dropped_packets
        );
        // Sanity: the run without the fault delivers everything.
        let clean = simulate(
            &base,
            &r,
            &SimConfig {
                fault_schedule: Vec::new(),
                ..cfg.clone()
            },
        );
        assert_eq!(clean.dropped_packets, 0);
        assert_eq!(clean.delivered_packets, clean.injected_packets);
    }

    #[test]
    fn deterministic_relations_never_reorder() {
        // Single-path routing over a single VC delivers every (src, dst)
        // stream in order; the reordering counter must stay at zero.
        let topo = Topology::mesh(&[4, 4]);
        let xy = DimensionOrder::xy();
        for rate in [0.03, 0.10] {
            let r = simulate(&topo, &xy, &quick_cfg(rate));
            assert_eq!(r.reordered_packets, 0, "XY reordered at rate {rate}");
        }
        // The adaptive design may reorder (multiple paths and VCs); just
        // confirm the counter is wired and the run is clean.
        let fa = TurnRouting::from_design("dyxy", &catalog::fig7b_dyxy()).unwrap();
        let r = simulate(&topo, &fa, &quick_cfg(0.10));
        assert!(r.outcome.is_deadlock_free());
        assert!(r.reordered_packets <= r.delivered_packets);
    }

    #[test]
    fn hop_counts_match_uniform_expectation() {
        // Uniform traffic on a k x k mesh: mean per-dimension distance is
        // (k^2-1)/(3k) = 1.25 for k = 4; conditioning on src != dst gives
        // 2 * 1.25 / (15/16) = 2.67 hops.
        let topo = Topology::mesh(&[4, 4]);
        let xy = DimensionOrder::xy();
        let result = simulate(&topo, &xy, &quick_cfg(0.02));
        assert!(
            (result.avg_hops - 2.67).abs() < 0.4,
            "avg hops {} far from the uniform expectation 2.67",
            result.avg_hops
        );
        // Zero-load latency sanity: ~2 cycles per hop (route+link) plus
        // serialization of the remaining 4 flits and ejection.
        let zero_load = 2.0 * result.avg_hops + 5.0;
        assert!(
            (result.avg_latency - zero_load).abs() < 6.0,
            "latency {} far from the zero-load model {}",
            result.avg_latency,
            zero_load
        );
    }

    #[test]
    fn trace_driven_injection_replays_exact_events() {
        let topo = Topology::mesh(&[4, 4]);
        let xy = DimensionOrder::xy();
        let events = vec![
            (0u64, 0usize, 15usize),
            (0, 15, 0),
            (5, 3, 12),
            (10, 12, 3),
            (10, 5, 10),
        ];
        let cfg = SimConfig {
            traffic: crate::traffic::TrafficPattern::trace(events.clone()),
            warmup: 0,
            measurement: 100,
            drain: 500,
            ..SimConfig::default()
        };
        let result = simulate(&topo, &xy, &cfg);
        assert!(result.outcome.is_deadlock_free());
        assert_eq!(result.injected_packets, events.len() as u64);
        assert_eq!(result.delivered_packets, events.len() as u64);
        assert_eq!(result.measured_delivered, events.len() as u64);
        // Replays are bit-identical regardless of the RNG seed.
        let other = simulate(
            &topo,
            &xy,
            &SimConfig {
                seed: 999,
                ..cfg.clone()
            },
        );
        assert_eq!(other.latencies, result.latencies);
    }

    #[test]
    fn link_latency_scales_transit_time() {
        let topo = Topology::mesh(&[4, 4]);
        let xy = DimensionOrder::xy();
        let fast = simulate(&topo, &xy, &quick_cfg(0.01));
        let slow_cfg = SimConfig {
            link_latency: 3,
            ..quick_cfg(0.01)
        };
        let slow = simulate(&topo, &xy, &slow_cfg);
        assert!(slow.outcome.is_deadlock_free(), "{slow}");
        assert_eq!(slow.measured_delivered, slow.measured_injected);
        // Each hop pays 2 extra cycles; with ~2.7 avg hops + serialization
        // the mean should rise clearly but sublinearly.
        assert!(
            slow.avg_latency > fast.avg_latency + 4.0,
            "latency-3 links must slow packets: {} vs {}",
            slow.avg_latency,
            fast.avg_latency
        );
    }

    #[test]
    fn congestion_aware_selection_works() {
        let topo = Topology::mesh(&[4, 4]);
        let r = TurnRouting::from_design("dyxy", &catalog::fig7b_dyxy()).unwrap();
        let cfg = SimConfig {
            selection: Selection::MostCredits,
            ..quick_cfg(0.10)
        };
        let result = simulate(&topo, &r, &cfg);
        assert!(result.outcome.is_deadlock_free(), "{result}");
        assert_eq!(result.routing_faults, 0);
        assert!(result.measured_delivered > 0);
    }

    #[test]
    fn naive_torus_deadlocks_and_dateline_does_not() {
        // The watchdog agrees with the exact-CDG verdicts: the single-VC
        // shortest-way torus routing deadlocks under pressure, the
        // dateline variant never does.
        use ebda_routing::classic::TorusDateline;
        let topo = Topology::torus(&[4, 4]);
        let cfg = SimConfig {
            injection_rate: 0.35,
            packet_length: 8,
            buffer_depth: 2,
            warmup: 0,
            measurement: 5_000,
            drain: 1_000,
            deadlock_threshold: 400,
            ..SimConfig::default()
        };
        let naive = simulate(&topo, &TorusDateline::without_dateline(2), &cfg);
        assert!(
            !naive.outcome.is_deadlock_free(),
            "expected the ring deadlock, got {naive}"
        );
        let safe = simulate(&topo, &TorusDateline::new(2), &cfg);
        assert!(safe.outcome.is_deadlock_free(), "{safe}");
    }

    #[test]
    fn zero_rate_runs_idle() {
        let topo = Topology::mesh(&[3, 3]);
        let xy = DimensionOrder::xy();
        let result = simulate(&topo, &xy, &quick_cfg(0.0));
        assert!(result.outcome.is_deadlock_free());
        assert_eq!(result.injected_packets, 0);
        assert_eq!(result.measured_delivered, 0);
    }
}
