//! Property tests for every [`TrafficPattern`] variant under pinned
//! [`Rng64`] seeds: destinations are always valid nodes, the structured
//! patterns compute the coordinates they advertise (including on
//! non-square meshes), a saturated hotspot only ever targets hotspot
//! nodes, and a trace pattern replays its event list verbatim.

use ebda_obs::{Event, Recorder, Rng64};
use ebda_routing::classic::DimensionOrder;
use ebda_routing::Topology;
use noc_sim::{simulate_traced, SimConfig, TrafficPattern};

const SEEDS: [u64; 3] = [1, 0xEBDA, 0xDEAD_BEEF];

/// Every pattern, on every topology it supports: a picked destination is
/// a real node and never the source.
#[test]
fn destinations_are_always_valid_nodes() {
    let topologies = [
        Topology::mesh(&[4, 4]),
        Topology::mesh(&[5, 3]),
        Topology::mesh(&[3, 3, 3]),
        Topology::torus(&[4, 4]),
    ];
    for topo in &topologies {
        let n = topo.node_count();
        let patterns = [
            TrafficPattern::Uniform,
            TrafficPattern::Transpose,
            TrafficPattern::BitComplement,
            TrafficPattern::Hotspot {
                nodes: vec![0, n / 2, n - 1],
                fraction: 0.5,
            },
            TrafficPattern::Bursty {
                p_on: 0.1,
                p_off: 0.3,
                burst_scale: 4.0,
            },
        ];
        for pattern in &patterns {
            for seed in SEEDS {
                let mut rng = Rng64::new(seed);
                for src in topo.nodes() {
                    for _ in 0..20 {
                        if let Some(dst) = pattern.destination(topo, src, &mut rng) {
                            assert!(dst < n, "{pattern:?} picked node {dst} of {n}");
                            assert_ne!(dst, src, "{pattern:?} self-addressed {src}");
                        }
                    }
                }
            }
        }
    }
}

/// Bit reversal only claims power-of-two node counts; there it is a
/// valid, self-inverse permutation.
#[test]
fn bit_reverse_is_a_valid_involution_on_power_of_two_meshes() {
    for topo in [Topology::mesh(&[4, 4]), Topology::mesh(&[8, 4])] {
        let mut rng = Rng64::new(7);
        for src in topo.nodes() {
            if let Some(dst) = TrafficPattern::BitReverse.destination(&topo, src, &mut rng) {
                assert!(dst < topo.node_count());
                assert_ne!(dst, src);
                let back = TrafficPattern::BitReverse
                    .destination(&topo, dst, &mut rng)
                    .expect("reversal of a non-fixed point is not a fixed point");
                assert_eq!(back, src);
            }
        }
    }
}

/// Transpose on a non-square mesh: sources whose first coordinate fits
/// the second dimension map to the swapped coordinates; the rest send
/// nothing rather than inventing an out-of-range node.
#[test]
fn transpose_is_exact_on_non_square_meshes() {
    let topo = Topology::mesh(&[5, 3]);
    let mut rng = Rng64::new(11);
    for src in topo.nodes() {
        let c = topo.coords(src);
        let got = TrafficPattern::Transpose.destination(&topo, src, &mut rng);
        if c[0] >= 3 {
            // (3, y) and (4, y) have no transposed partner in a 5x3 mesh.
            assert_eq!(got, None, "source {c:?} should be silent");
        } else if c[0] == c[1] {
            assert_eq!(got, None, "diagonal {c:?} should be silent");
        } else {
            let dst = got.expect("in-range off-diagonal source must send");
            assert_eq!(topo.coords(dst), vec![c[1], c[0]]);
        }
    }
}

/// `Hotspot { fraction: 1.0 }` never picks a non-hotspot destination.
#[test]
fn saturated_hotspot_only_targets_hotspots() {
    let topo = Topology::mesh(&[4, 4]);
    let hotspots = vec![2, 7, 11];
    let pattern = TrafficPattern::Hotspot {
        nodes: hotspots.clone(),
        fraction: 1.0,
    };
    for seed in SEEDS {
        let mut rng = Rng64::new(seed);
        for src in topo.nodes() {
            for _ in 0..50 {
                if let Some(dst) = pattern.destination(&topo, src, &mut rng) {
                    assert!(hotspots.contains(&dst), "{dst} is not a hotspot");
                }
            }
        }
    }
}

/// A pattern is a pure function of the RNG stream: the same pinned seed
/// replays the same destination sequence.
#[test]
fn destinations_are_deterministic_per_seed() {
    let topo = Topology::mesh(&[4, 4]);
    let pattern = TrafficPattern::Hotspot {
        nodes: vec![5, 9],
        fraction: 0.3,
    };
    let draw = |seed: u64| -> Vec<Option<usize>> {
        let mut rng = Rng64::new(seed);
        topo.nodes()
            .flat_map(|src| {
                (0..10)
                    .map(|_| pattern.destination(&topo, src, &mut rng))
                    .collect::<Vec<_>>()
            })
            .collect()
    };
    assert_eq!(draw(42), draw(42));
    assert_ne!(draw(42), draw(43), "different seeds should diverge");
}

/// A trace pattern injects exactly its event list — same cycles, sources
/// and destinations, nothing more — as observed by the flight recorder.
#[test]
fn trace_replays_events_verbatim() {
    let topo = Topology::mesh(&[4, 4]);
    let events = vec![
        (0, 0, 15),
        (2, 5, 10),
        (2, 3, 12),
        (7, 15, 0),
        (11, 8, 1),
        (40, 6, 9),
    ];
    let cfg = SimConfig {
        traffic: TrafficPattern::trace(events.clone()),
        warmup: 0,
        measurement: 100,
        drain: 500,
        ..SimConfig::default()
    };
    let mut rec = Recorder::with_defaults();
    let result = simulate_traced(&topo, &DimensionOrder::xy(), &cfg, Some(&mut rec));
    let mut injected: Vec<(u64, usize, usize)> = rec
        .events()
        .filter_map(|e| match *e {
            Event::Inject {
                cycle, src, dst, ..
            } => Some((cycle, src, dst)),
            _ => None,
        })
        .collect();
    injected.sort();
    let mut expected = events;
    expected.sort();
    assert_eq!(injected, expected, "trace must replay verbatim");
    assert_eq!(result.injected_packets as usize, injected.len());
    assert_eq!(result.delivered_packets, result.injected_packets);
}

/// The trace constructor sorts by cycle and refuses self-addressed events.
#[test]
fn trace_constructor_sorts_and_rejects_self_addressing() {
    let pattern = TrafficPattern::trace(vec![(9, 1, 2), (3, 4, 5), (3, 0, 7)]);
    match pattern {
        TrafficPattern::Trace { events } => {
            assert_eq!(events, vec![(3, 0, 7), (3, 4, 5), (9, 1, 2)]);
        }
        other => panic!("expected a trace, got {other:?}"),
    }
    let self_addressed = std::panic::catch_unwind(|| TrafficPattern::trace(vec![(1, 3, 3)]));
    assert!(self_addressed.is_err());
}
