//! Integration tests of the flight recorder against the simulator: the
//! disabled path changes nothing, identical seeds give identical event
//! streams, exports round-trip through the zero-dependency parsers, and a
//! genuine torus deadlock leaves a post-mortem whose final events
//! reconstruct the circular wait.

use ebda_obs::json::Value;
use ebda_obs::{Event, EventKind, Recorder, RecorderConfig};
use ebda_routing::classic::{DimensionOrder, TorusDateline};
use ebda_routing::Topology;
use noc_sim::{simulate, simulate_traced, Outcome, SimConfig};

fn small_cfg() -> SimConfig {
    SimConfig {
        injection_rate: 0.05,
        warmup: 100,
        measurement: 400,
        drain: 800,
        deadlock_threshold: 500,
        ..SimConfig::default()
    }
}

/// The textbook torus deadlock config (mirrors the engine's watchdog
/// unit test): single-VC shortest-way routing without a dateline.
fn deadlock_cfg() -> SimConfig {
    SimConfig {
        injection_rate: 0.35,
        packet_length: 8,
        buffer_depth: 2,
        warmup: 0,
        measurement: 5_000,
        drain: 1_000,
        deadlock_threshold: 400,
        ..SimConfig::default()
    }
}

/// With no recorder attached, the traced entry point is bit-identical to
/// the plain one — the disabled path must not perturb the simulation.
#[test]
fn disabled_recorder_changes_nothing() {
    let topo = Topology::mesh(&[4, 4]);
    let cfg = small_cfg();
    let plain = simulate(&topo, &DimensionOrder::xy(), &cfg);
    let traced = simulate_traced(&topo, &DimensionOrder::xy(), &cfg, None);
    assert_eq!(plain.injected_packets, traced.injected_packets);
    assert_eq!(plain.delivered_packets, traced.delivered_packets);
    assert_eq!(plain.latencies, traced.latencies);
    assert_eq!(plain.channel_flits, traced.channel_flits);
}

/// Attaching a recorder must not change the measured results either —
/// recording observes the simulation, never steers it.
#[test]
fn recording_is_transparent_to_results() {
    let topo = Topology::mesh(&[4, 4]);
    let cfg = small_cfg();
    let plain = simulate(&topo, &DimensionOrder::xy(), &cfg);
    let mut rec = Recorder::with_defaults();
    let traced = simulate_traced(&topo, &DimensionOrder::xy(), &cfg, Some(&mut rec));
    assert_eq!(plain.latencies, traced.latencies);
    assert_eq!(plain.channel_flits, traced.channel_flits);
    // And the stream is consistent with the results.
    assert_eq!(rec.total(EventKind::Inject), traced.injected_packets);
    assert_eq!(rec.total(EventKind::Eject), traced.delivered_packets);
    assert!(rec.samples().len() as u64 >= traced.cycles / rec.sample_every());
}

/// Identical configurations produce identical event streams.
#[test]
fn identical_seeds_give_identical_event_streams() {
    let topo = Topology::mesh(&[4, 4]);
    let cfg = small_cfg();
    let mut a = Recorder::with_defaults();
    let mut b = Recorder::with_defaults();
    simulate_traced(&topo, &DimensionOrder::xy(), &cfg, Some(&mut a));
    simulate_traced(&topo, &DimensionOrder::xy(), &cfg, Some(&mut b));
    let ea: Vec<&Event> = a.events().collect();
    let eb: Vec<&Event> = b.events().collect();
    assert_eq!(ea, eb);
    assert_eq!(a.samples(), b.samples());
    // A different seed produces a different stream (sanity check that the
    // equality above is not vacuous).
    let mut c = Recorder::with_defaults();
    let other = SimConfig {
        seed: cfg.seed + 1,
        ..cfg
    };
    simulate_traced(&topo, &DimensionOrder::xy(), &other, Some(&mut c));
    let ec: Vec<&Event> = c.events().collect();
    assert_ne!(ea, ec);
}

/// A tiny ring capacity wraps around: retained stays bounded, evictions
/// are counted, and per-kind totals stay exact.
#[test]
fn ring_wraparound_keeps_totals_exact() {
    let topo = Topology::mesh(&[4, 4]);
    let cfg = small_cfg();
    let mut full = Recorder::with_defaults();
    simulate_traced(&topo, &DimensionOrder::xy(), &cfg, Some(&mut full));
    let mut tiny = Recorder::new(RecorderConfig {
        capacity: 64,
        sample_every: 100,
    });
    simulate_traced(&topo, &DimensionOrder::xy(), &cfg, Some(&mut tiny));
    assert_eq!(tiny.retained(), 64);
    assert!(tiny.evicted() > 0);
    assert_eq!(tiny.total_events(), full.total_events());
    for kind in EventKind::ALL {
        assert_eq!(tiny.total(kind), full.total(kind), "{}", kind.name());
    }
    // The ring keeps the most recent events: its stream is the tail of
    // the full stream.
    let full_tail: Vec<&Event> = full.events().collect::<Vec<_>>()[full.retained() - 64..].to_vec();
    let tiny_all: Vec<&Event> = tiny.events().collect();
    assert_eq!(tiny_all, full_tail);
}

/// JSON and CSV exports of a real run parse back with the obs parsers.
#[test]
fn exports_roundtrip_through_own_parsers() {
    let topo = Topology::mesh(&[4, 4]);
    let cfg = small_cfg();
    let mut rec = Recorder::with_defaults();
    simulate_traced(&topo, &DimensionOrder::xy(), &cfg, Some(&mut rec));

    let doc = Value::parse(&rec.write_json()).expect("trace JSON parses");
    let events = doc.get("events").unwrap().as_arr().unwrap();
    assert_eq!(events.len(), rec.retained());
    assert_eq!(
        doc.get("totals")
            .unwrap()
            .get("inject")
            .unwrap()
            .as_u64()
            .unwrap(),
        rec.total(EventKind::Inject)
    );
    // Every exported event carries a kind and a cycle.
    for e in events {
        assert!(e.get("kind").unwrap().as_str().is_some());
        assert!(e.get("cycle").unwrap().as_u64().is_some());
    }

    let csv = rec.events_csv();
    let mut lines = csv.lines();
    let header = lines.next().unwrap();
    let cols = header.split(',').count();
    let mut rows = 0;
    for line in lines {
        let fields = ebda_obs::csv::parse_line(line).expect("CSV row parses");
        assert_eq!(fields.len(), cols);
        rows += 1;
    }
    assert_eq!(rows, rec.retained());

    let samples_csv = rec.samples_csv();
    assert_eq!(samples_csv.lines().count(), rec.samples().len() + 1);
}

/// The acceptance scenario: an uncertified relation on a torus deadlocks,
/// and the recorder's final events reconstruct the circular wait reported
/// in `Outcome::Deadlocked`.
#[test]
fn deadlock_post_mortem_reconstructs_the_circular_wait() {
    let topo = Topology::torus(&[4, 4]);
    let cfg = deadlock_cfg();
    let mut rec = Recorder::with_defaults();
    let result = simulate_traced(
        &topo,
        &TorusDateline::without_dateline(2),
        &cfg,
        Some(&mut rec),
    );
    let Outcome::Deadlocked {
        at_cycle,
        wait_cycle,
        ..
    } = &result.outcome
    else {
        panic!("expected the ring deadlock, got {result}");
    };
    assert!(wait_cycle.len() >= 2, "wait cycle too short: {result}");

    // Exactly one watchdog event, stamped at the deadlock cycle.
    assert_eq!(rec.total(EventKind::Watchdog), 1);
    let watchdog = rec
        .events()
        .find(|e| e.kind() == EventKind::Watchdog)
        .expect("watchdog event retained");
    assert_eq!(watchdog.cycle(), *at_cycle);

    // The trailing WaitFor events mirror the human-readable wait cycle
    // exactly, in order...
    let waits: Vec<&Event> = rec
        .events()
        .filter(|e| e.kind() == EventKind::WaitFor)
        .collect();
    assert_eq!(waits.len(), wait_cycle.len());
    for (event, label) in waits.iter().zip(wait_cycle) {
        let Event::WaitFor {
            cycle,
            label: event_label,
            ..
        } = event
        else {
            unreachable!("filtered on kind");
        };
        assert_eq!(cycle, at_cycle);
        assert_eq!(event_label, label);
    }
    // ...and their waiter/waits_on pids close a genuine cycle.
    for (i, event) in waits.iter().enumerate() {
        let Event::WaitFor {
            waiter, waits_on, ..
        } = event
        else {
            unreachable!("filtered on kind");
        };
        let Event::WaitFor { waiter: next, .. } = waits[(i + 1) % waits.len()] else {
            unreachable!("filtered on kind");
        };
        assert_eq!(
            waits_on, next,
            "wait-for edge {i} does not chain into the next"
        );
        assert_ne!(waiter, waits_on, "a packet cannot wait on itself");
    }
}

/// Sampling cadence: one sample per `sample_every` cycles, starting at 0.
#[test]
fn samples_follow_the_configured_cadence() {
    let topo = Topology::mesh(&[4, 4]);
    let cfg = small_cfg();
    let mut rec = Recorder::new(RecorderConfig {
        capacity: 1024,
        sample_every: 250,
    });
    let result = simulate_traced(&topo, &DimensionOrder::xy(), &cfg, Some(&mut rec));
    assert!(!rec.samples().is_empty());
    for (i, s) in rec.samples().iter().enumerate() {
        assert_eq!(s.cycle, i as u64 * 250);
        assert!(s.cycle <= result.cycles);
        assert!(!s.occupancy.is_empty());
    }
}
