//! Acceptance tests for packet-journey tracing and the online stall
//! watchdog: the live suspicion must agree with the post-mortem, the
//! Chrome-trace export must round-trip through the validator, and the
//! whole feature must be invisible when disabled.

use ebda_core::{parse_channels, Turn, TurnSet};
use ebda_obs::{chrome, JourneyConfig, JourneyEnd};
use ebda_routing::{Topology, TurnRouting};
use noc_sim::{
    replay_traced, simulate, wait_edge_count, ChannelCoord, Outcome, SimConfig, SuspectedEdge,
    TrafficPattern,
};
use std::collections::BTreeSet;

/// All turns allowed on one VC: cyclic by construction, the standard
/// positive control.
fn cyclic_relation() -> TurnRouting {
    let universe = parse_channels("X+ X- Y+ Y-").unwrap();
    let mut turns = TurnSet::new();
    for &a in &universe {
        for &b in &universe {
            if a != b {
                turns.insert(Turn::new(a, b));
            }
        }
    }
    TurnRouting::new("all-turns", universe, turns)
}

/// Seed-pinned pressure config that deadlocks the positive control fast.
fn pressure() -> SimConfig {
    SimConfig {
        injection_rate: 0.5,
        packet_length: 8,
        buffer_depth: 2,
        warmup: 0,
        measurement: 4_000,
        drain: 0,
        deadlock_threshold: 300,
        traffic: TrafficPattern::Uniform,
        ..SimConfig::default()
    }
}

fn channel_set(edges: &[SuspectedEdge]) -> BTreeSet<ChannelCoord> {
    edges.iter().flat_map(|e| e.channels()).collect()
}

#[test]
fn online_suspicion_matches_the_post_mortem_wait_cycle() {
    let topo = Topology::mesh(&[4, 4]);
    let cfg = SimConfig {
        watchdog_window: 100,
        ..pressure()
    };
    let (result, rec) = replay_traced(
        &topo,
        &cyclic_relation(),
        &cfg,
        Some(JourneyConfig::default()),
    );
    let Outcome::Deadlocked { wait_cycle, .. } = &result.outcome else {
        panic!("positive control must deadlock, got {:?}", result.outcome);
    };

    // The online watchdog tripped before the hard threshold aborted the
    // run, and its suspicion was captured while the run was still going.
    assert!(result.watchdog_trips >= 1);
    assert!(!result.suspected_cycle.is_empty(), "trip must find a cycle");
    assert!(result.suspected_at_cycle < result.cycles);

    // Structured post-mortem edges mirror the textual wait cycle 1:1.
    assert_eq!(result.final_wait_edges.len(), wait_cycle.len());
    for (edge, label) in result.final_wait_edges.iter().zip(wait_cycle) {
        assert_eq!(&edge.label, label);
    }
    assert_eq!(wait_edge_count(&rec), wait_cycle.len());

    // The acceptance criterion: the suspected wait cycle names the same
    // channel set as the flight-recorder post-mortem. The network froze
    // before the trip and nothing moved afterwards, so the live and
    // final hold/want graphs describe the same circular wait.
    let suspected = channel_set(&result.suspected_cycle);
    let confirmed = channel_set(&result.final_wait_edges);
    assert!(!suspected.is_empty());
    assert_eq!(
        suspected, confirmed,
        "live suspicion and post-mortem must name the same channels"
    );
}

#[test]
fn journeys_of_a_deadlocked_run_export_and_round_trip() {
    let topo = Topology::mesh(&[4, 4]);
    let cfg = SimConfig {
        watchdog_window: 100,
        ..pressure()
    };
    let (result, rec) = replay_traced(
        &topo,
        &cyclic_relation(),
        &cfg,
        Some(JourneyConfig::default()),
    );
    assert!(!result.outcome.is_deadlock_free());
    let tracer = rec.journeys().expect("journeys attached");
    assert!(!tracer.journeys().is_empty());
    assert!(
        tracer.journeys().iter().any(|j| j.suspect),
        "a diagnosed wait edge must mark its packets suspect"
    );
    assert!(
        tracer
            .journeys()
            .iter()
            .any(|j| j.end == JourneyEnd::InFlight && !j.hops.is_empty()),
        "a deadlock leaves traced packets holding channels"
    );

    let mut builder = ebda_obs::TraceBuilder::new();
    builder.add_run("deadlock replay", tracer);
    let text = builder.finish();
    let summary = chrome::validate(&text).expect("export must be valid Trace Event Format");
    assert!(summary.complete > 0, "hold spans expected");
    assert!(summary.flows > 0, "flow events linking hops expected");
    assert!(summary.tracks > 1, "more than one router track expected");
    assert!(
        summary.instants > 0,
        "watchdog trip / wait notes render as instants"
    );
}

#[test]
fn sampling_prunes_journeys_deterministically() {
    let topo = Topology::mesh(&[4, 4]);
    let cfg = pressure();
    let sampled = JourneyConfig {
        sample_rate: 0.25,
        ..JourneyConfig::default()
    };
    let (_, rec_all) = replay_traced(
        &topo,
        &cyclic_relation(),
        &cfg,
        Some(JourneyConfig::default()),
    );
    let (_, rec_some) = replay_traced(&topo, &cyclic_relation(), &cfg, Some(sampled.clone()));
    let (_, rec_same) = replay_traced(&topo, &cyclic_relation(), &cfg, Some(sampled));
    let all = rec_all.journeys().unwrap().journeys().len();
    let some = rec_some.journeys().unwrap().journeys().len();
    assert!(
        some < all,
        "sampling must trace fewer packets ({some}/{all})"
    );
    assert!(some > 0, "rate 0.25 must still trace something");
    let pids = |r: &ebda_obs::Recorder| -> Vec<u64> {
        r.journeys()
            .unwrap()
            .journeys()
            .iter()
            .map(|j| j.pid)
            .collect()
    };
    assert_eq!(
        pids(&rec_some),
        pids(&rec_same),
        "sampling is deterministic"
    );
}

#[test]
fn disabled_journeys_leave_results_byte_identical() {
    // The zero-overhead guarantee: a run without journeys produces
    // byte-identical sweep output to one where the feature was never
    // touched — here pinned by formatting the sweep CSV columns from
    // both results and comparing the bytes.
    let topo = Topology::mesh(&[4, 4]);
    let relation = cyclic_relation();
    let mut cfg = pressure();
    cfg.injection_rate = 0.05; // completes: exercises the full pipeline
    cfg.drain = 2_000;

    let sweep_row = |r: &noc_sim::SimResult| -> String {
        let p50 = r.latency_percentile(50.0).unwrap_or(0);
        let p99 = r.latency_percentile(99.0).unwrap_or(0);
        format!(
            "{:.2},{},{},{},{:.4},{:.3},{}",
            cfg.injection_rate,
            r.measured_injected,
            r.measured_delivered,
            p50,
            r.throughput,
            r.avg_latency,
            if r.outcome.is_deadlock_free() {
                "ok".to_string()
            } else {
                format!("deadlock-p99-{p99}")
            }
        )
    };

    let plain = simulate(&topo, &relation, &cfg);
    let (with_journeys, rec) =
        replay_traced(&topo, &relation, &cfg, Some(JourneyConfig::default()));
    let (without, _) = replay_traced(&topo, &relation, &cfg, None);
    assert!(rec.journeys().is_some());
    assert_eq!(sweep_row(&plain), sweep_row(&with_journeys));
    assert_eq!(sweep_row(&plain), sweep_row(&without));
    assert_eq!(plain.latencies, with_journeys.latencies);
    assert_eq!(plain.channel_flits, with_journeys.channel_flits);
    assert_eq!(plain.cycles, with_journeys.cycles);
    assert_eq!(plain.watchdog_trips, 0);
    assert_eq!(with_journeys.watchdog_trips, 0);
}
