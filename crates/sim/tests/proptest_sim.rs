//! Randomized tests of the simulator: conservation, determinism and
//! deadlock freedom across random configurations.
//!
//! Driven by a seeded [`Rng64`] instead of a property-testing framework
//! so the suite is fully deterministic and dependency-free; every assert
//! message carries the case index and seed for replay.

use ebda_obs::Rng64;
use ebda_routing::classic::DimensionOrder;
use ebda_routing::{Topology, TurnRouting};
use noc_sim::{simulate, BufferPolicy, Outcome, Selection, SimConfig, Switching, TrafficPattern};

/// Draws one random configuration in the same ranges the old proptest
/// strategy used.
fn random_cfg(rng: &mut Rng64) -> SimConfig {
    let traffic = match rng.gen_index(3) {
        0 => TrafficPattern::Uniform,
        1 => TrafficPattern::Transpose,
        _ => TrafficPattern::BitComplement,
    };
    SimConfig {
        buffer_depth: 1 + rng.gen_index(3),
        packet_length: 1 + rng.gen_index(5),
        injection_rate: rng.gen_f64() * 0.15,
        seed: rng.next_u64(),
        traffic,
        buffer_policy: if rng.gen_bool(0.5) {
            BufferPolicy::MultiPacket
        } else {
            BufferPolicy::SinglePacket
        },
        selection: if rng.gen_bool(0.5) {
            Selection::RotatingFirstFit
        } else {
            Selection::MostCredits
        },
        warmup: 100,
        measurement: 400,
        drain: 2_000,
        deadlock_threshold: 600,
        ..SimConfig::default()
    }
}

/// XY on a 4x4 mesh never deadlocks, never faults, and conserves
/// packets under any random configuration.
#[test]
fn xy_never_deadlocks_under_random_configs() {
    let mut rng = Rng64::new(0x51A1);
    for case in 0..48 {
        let cfg = random_cfg(&mut rng);
        let topo = Topology::mesh(&[4, 4]);
        let result = simulate(&topo, &DimensionOrder::xy(), &cfg);
        assert!(
            result.outcome.is_deadlock_free(),
            "case {case} seed {}: {result}",
            cfg.seed
        );
        assert_eq!(result.routing_faults, 0, "case {case}");
        assert!(result.delivered_packets <= result.injected_packets);
        assert!(result.measured_delivered <= result.measured_injected);
        // When the run completed, the drain was long enough for this
        // size: every measured packet must have made it out.
        if matches!(result.outcome, Outcome::Completed) && cfg.injection_rate < 0.1 {
            assert_eq!(
                result.measured_delivered, result.measured_injected,
                "case {case} seed {}",
                cfg.seed
            );
        }
        // Latency sanity: sorted and consistent with the reported extrema.
        if let Some(&last) = result.latencies.last() {
            assert_eq!(last, result.max_latency, "case {case}");
            assert!(result.latencies.windows(2).all(|w| w[0] <= w[1]));
        }
    }
}

/// The adaptive EbDa design is deadlock-free under the same sweep.
#[test]
fn dyxy_never_deadlocks_under_random_configs() {
    let mut rng = Rng64::new(0x51A2);
    let r = TurnRouting::from_design("dyxy", &ebda_core::catalog::fig7b_dyxy()).unwrap();
    for case in 0..48 {
        let cfg = random_cfg(&mut rng);
        let topo = Topology::mesh(&[4, 4]);
        let result = simulate(&topo, &r, &cfg);
        assert!(
            result.outcome.is_deadlock_free(),
            "case {case} seed {}: {result}",
            cfg.seed
        );
        assert_eq!(result.routing_faults, 0, "case {case}");
    }
}

/// Identical configurations give identical results (determinism).
#[test]
fn simulation_is_deterministic() {
    let mut rng = Rng64::new(0x51A3);
    for case in 0..24 {
        let cfg = random_cfg(&mut rng);
        let topo = Topology::mesh(&[3, 3]);
        let a = simulate(&topo, &DimensionOrder::xy(), &cfg);
        let b = simulate(&topo, &DimensionOrder::xy(), &cfg);
        assert_eq!(a.injected_packets, b.injected_packets, "case {case}");
        assert_eq!(a.delivered_packets, b.delivered_packets, "case {case}");
        assert_eq!(a.latencies, b.latencies, "case {case}");
        assert_eq!(a.channel_flits, b.channel_flits, "case {case}");
    }
}

/// A random single mid-run link failure never breaks conservation:
/// every packet is delivered or accounted as dropped, and the run
/// stays deadlock-free (north-last can detour any single fault whose
/// removal keeps all destinations turn-reachable; unreachable cases
/// surface as routing faults, which we tolerate but bound).
#[test]
fn single_fault_conserves_packets() {
    let mut rng = Rng64::new(0x51A4);
    let topo = Topology::mesh(&[4, 4]);
    let r = TurnRouting::from_design("nl", &ebda_core::catalog::north_last()).unwrap();
    let mut tried = 0;
    while tried < 32 {
        let node = rng.gen_index(16);
        let dim = ebda_core::Dimension::new(rng.gen_index(2) as u8);
        let dir = if rng.gen_bool(0.5) {
            ebda_core::Direction::Plus
        } else {
            ebda_core::Direction::Minus
        };
        let fault_cycle = 100 + rng.gen_range(300);
        let seed = rng.next_u64();
        // Skip mesh-edge "faults" that remove nothing.
        if topo.neighbor(node, dim, dir).is_none() {
            continue;
        }
        tried += 1;
        let cfg = SimConfig {
            injection_rate: 0.03,
            seed,
            warmup: 100,
            measurement: 400,
            drain: 2_500,
            deadlock_threshold: 800,
            fault_schedule: vec![(fault_cycle, node, dim, dir)],
            ..SimConfig::default()
        };
        let result = simulate(&topo, &r, &cfg);
        assert!(
            result.delivered_packets + result.dropped_packets <= result.injected_packets,
            "node {node} seed {seed}"
        );
        if result.outcome.is_deadlock_free() && result.routing_faults == 0 {
            assert_eq!(
                result.delivered_packets + result.dropped_packets,
                result.injected_packets,
                "clean faulted run must account for every packet (node {node} seed {seed})"
            );
        }
    }
}

/// VCT and SAF (with adequate buffers) also conserve and complete.
#[test]
fn switching_modes_conserve() {
    let mut rng = Rng64::new(0x51A5);
    for case in 0..32 {
        let mut cfg = random_cfg(&mut rng);
        cfg.switching = if rng.gen_bool(0.5) {
            Switching::VirtualCutThrough
        } else {
            Switching::StoreAndForward
        };
        cfg.buffer_depth = cfg.buffer_depth.max(cfg.packet_length);
        cfg.injection_rate = cfg.injection_rate.min(0.05);
        let topo = Topology::mesh(&[3, 3]);
        let result = simulate(&topo, &DimensionOrder::xy(), &cfg);
        assert!(
            result.outcome.is_deadlock_free(),
            "case {case} seed {}: {result}",
            cfg.seed
        );
        assert_eq!(result.routing_faults, 0, "case {case}");
    }
}
