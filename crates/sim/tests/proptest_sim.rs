//! Property-based tests of the simulator: conservation, determinism and
//! deadlock freedom across random configurations.

use ebda_routing::classic::DimensionOrder;
use ebda_routing::{Topology, TurnRouting};
use noc_sim::{simulate, BufferPolicy, Outcome, Selection, SimConfig, Switching, TrafficPattern};
use proptest::prelude::*;

fn arb_cfg() -> impl Strategy<Value = SimConfig> {
    (
        1usize..4,    // buffer depth
        1usize..6,    // packet length
        0.0f64..0.15, // injection rate
        any::<u64>(), // seed
        prop_oneof![
            Just(TrafficPattern::Uniform),
            Just(TrafficPattern::Transpose),
            Just(TrafficPattern::BitComplement),
        ],
        prop_oneof![
            Just(BufferPolicy::MultiPacket),
            Just(BufferPolicy::SinglePacket)
        ],
        prop_oneof![
            Just(Selection::RotatingFirstFit),
            Just(Selection::MostCredits)
        ],
    )
        .prop_map(
            |(depth, len, rate, seed, traffic, policy, selection)| SimConfig {
                buffer_depth: depth,
                packet_length: len,
                injection_rate: rate,
                seed,
                traffic,
                buffer_policy: policy,
                selection,
                warmup: 100,
                measurement: 400,
                drain: 2_000,
                deadlock_threshold: 600,
                ..SimConfig::default()
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// XY on a 4x4 mesh never deadlocks, never faults, and conserves
    /// packets under any random configuration.
    #[test]
    fn xy_never_deadlocks_under_random_configs(cfg in arb_cfg()) {
        let topo = Topology::mesh(&[4, 4]);
        let result = simulate(&topo, &DimensionOrder::xy(), &cfg);
        prop_assert!(result.outcome.is_deadlock_free(), "{}", result);
        prop_assert_eq!(result.routing_faults, 0);
        prop_assert!(result.delivered_packets <= result.injected_packets);
        prop_assert!(result.measured_delivered <= result.measured_injected);
        // When the run completed, the drain was long enough for this size:
        // every measured packet must have made it out.
        if matches!(result.outcome, Outcome::Completed) && cfg.injection_rate < 0.1 {
            prop_assert_eq!(result.measured_delivered, result.measured_injected);
        }
        // Latency sanity: sorted and consistent with the reported extrema.
        if let Some(&last) = result.latencies.last() {
            prop_assert_eq!(last, result.max_latency);
            prop_assert!(result.latencies.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    /// The adaptive EbDa design is deadlock-free under the same sweep.
    #[test]
    fn dyxy_never_deadlocks_under_random_configs(cfg in arb_cfg()) {
        let topo = Topology::mesh(&[4, 4]);
        let r = TurnRouting::from_design("dyxy", &ebda_core::catalog::fig7b_dyxy()).unwrap();
        let result = simulate(&topo, &r, &cfg);
        prop_assert!(result.outcome.is_deadlock_free(), "{}", result);
        prop_assert_eq!(result.routing_faults, 0);
    }

    /// Identical configurations give identical results (determinism).
    #[test]
    fn simulation_is_deterministic(cfg in arb_cfg()) {
        let topo = Topology::mesh(&[3, 3]);
        let a = simulate(&topo, &DimensionOrder::xy(), &cfg);
        let b = simulate(&topo, &DimensionOrder::xy(), &cfg);
        prop_assert_eq!(a.injected_packets, b.injected_packets);
        prop_assert_eq!(a.delivered_packets, b.delivered_packets);
        prop_assert_eq!(a.latencies, b.latencies);
        prop_assert_eq!(a.channel_flits, b.channel_flits);
    }

    /// A random single mid-run link failure never breaks conservation:
    /// every packet is delivered or accounted as dropped, and the run
    /// stays deadlock-free (north-last can detour any single fault whose
    /// removal keeps all destinations turn-reachable; unreachable cases
    /// surface as routing faults, which we tolerate but bound).
    #[test]
    fn single_fault_conserves_packets(
        node in 0usize..16,
        dim_pick in 0u8..2,
        dir_pick in 0u8..2,
        fault_cycle in 100u64..400,
        seed in any::<u64>(),
    ) {
        use ebda_routing::TurnRouting;
        let topo = Topology::mesh(&[4, 4]);
        let dim = ebda_core::Dimension::new(dim_pick);
        let dir = if dir_pick == 0 {
            ebda_core::Direction::Plus
        } else {
            ebda_core::Direction::Minus
        };
        // Skip mesh-edge "faults" that remove nothing.
        prop_assume!(topo.neighbor(node, dim, dir).is_some());
        let r = TurnRouting::from_design("nl", &ebda_core::catalog::north_last()).unwrap();
        let cfg = SimConfig {
            injection_rate: 0.03,
            seed,
            warmup: 100,
            measurement: 400,
            drain: 2_500,
            deadlock_threshold: 800,
            fault_schedule: vec![(fault_cycle, node, dim, dir)],
            ..SimConfig::default()
        };
        let result = simulate(&topo, &r, &cfg);
        prop_assert!(
            result.delivered_packets + result.dropped_packets <= result.injected_packets
        );
        if result.outcome.is_deadlock_free() && result.routing_faults == 0 {
            prop_assert_eq!(
                result.delivered_packets + result.dropped_packets,
                result.injected_packets,
                "clean faulted run must account for every packet"
            );
        }
    }

    /// VCT and SAF (with adequate buffers) also conserve and complete.
    #[test]
    fn switching_modes_conserve(mut cfg in arb_cfg(), mode in 0u8..2) {
        cfg.switching = if mode == 0 {
            Switching::VirtualCutThrough
        } else {
            Switching::StoreAndForward
        };
        cfg.buffer_depth = cfg.buffer_depth.max(cfg.packet_length);
        cfg.injection_rate = cfg.injection_rate.min(0.05);
        let topo = Topology::mesh(&[3, 3]);
        let result = simulate(&topo, &DimensionOrder::xy(), &cfg);
        prop_assert!(result.outcome.is_deadlock_free(), "{}", result);
        prop_assert_eq!(result.routing_faults, 0);
    }
}
