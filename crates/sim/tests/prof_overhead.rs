//! The disabled self-profiler must be free: a counting allocator proves
//! the `prof` fast path performs **zero** allocations, and that the
//! steady-state simulation loop allocates exactly the same with the
//! profiler compiled in (but off) run after run.
//!
//! Everything lives in one `#[test]` so no sibling test thread can
//! pollute the counts; the counter itself is thread-local, so the
//! harness's own threads never show up in it either.

use ebda_routing::classic::DimensionOrder;
use ebda_routing::Topology;
use noc_sim::{simulate, SimConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

/// Counts this thread's allocations, delegating to the system allocator.
struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

// SAFETY: delegates verbatim to `System`; the only addition is a
// const-initialized thread-local counter bump, which cannot allocate.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// This thread's allocations during `f`.
fn allocs_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.with(Cell::get);
    f();
    ALLOCS.with(Cell::get) - before
}

#[test]
fn disabled_profiler_adds_zero_allocations() {
    assert!(
        !ebda_obs::prof::enabled(),
        "this test needs the profiler off"
    );

    // The disabled fast path: guards and work charges in a tight loop
    // must never touch the allocator (or the clock, but the allocator is
    // what we can observe deterministically).
    let n = allocs_during(|| {
        for i in 0..10_000u64 {
            let _g = ebda_obs::prof::phase("overhead/test");
            ebda_obs::prof::work("overhead/test", "units", i);
        }
    });
    assert_eq!(n, 0, "disabled prof::phase/work allocated {n} times");

    // Steady state: after a warmup run (lazy statics, interned names),
    // identical simulations allocate identically — so the profiler's
    // disabled branches in the cycle loop cost nothing that grows.
    let topo = Topology::mesh(&[4, 4]);
    let xy = DimensionOrder::xy();
    let cfg = SimConfig {
        injection_rate: 0.03,
        warmup: 100,
        measurement: 300,
        drain: 400,
        deadlock_threshold: 300,
        collect_latencies: false,
        ..SimConfig::default()
    };
    simulate(&topo, &xy, &cfg); // warmup: one-time lazy init
    let a = allocs_during(|| {
        simulate(&topo, &xy, &cfg);
    });
    let b = allocs_during(|| {
        simulate(&topo, &xy, &cfg);
    });
    assert_eq!(a, b, "steady-state runs must allocate identically");
    assert!(a > 0, "sanity: the counter is live");
}
