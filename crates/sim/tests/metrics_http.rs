//! Loopback integration test: run real simulations with live metrics
//! enabled, assert the deterministic render is byte-identical across
//! identical-seed runs, then scrape `/metrics` over HTTP and validate the
//! exposition end to end.
//!
//! Everything lives in ONE test function: the metrics registry is
//! process-global, and the default parallel test runner would otherwise
//! interleave flushes from concurrent tests.

use ebda_obs::metrics::{self, parse_exposition, quantile_from_buckets, RenderOptions, Sample};
use ebda_obs::{http_get, MetricsServer};
use ebda_routing::classic::DimensionOrder;
use ebda_routing::Topology;
use noc_sim::{simulate, SimConfig};

fn small_cfg() -> SimConfig {
    SimConfig {
        injection_rate: 0.05,
        warmup: 100,
        measurement: 400,
        drain: 800,
        deadlock_threshold: 500,
        ..SimConfig::default()
    }
}

fn value(samples: &[Sample], name: &str) -> Option<f64> {
    samples.iter().find(|s| s.name == name).map(|s| s.value)
}

#[test]
fn live_sim_metrics_scrape_end_to_end() {
    metrics::set_enabled(true);
    ebda_obs::telemetry::set_enabled(true);
    let topo = Topology::mesh(&[4, 4]);
    let cfg = small_cfg();
    let det = RenderOptions {
        deterministic: true,
    };

    // Identical-seed runs against a clean registry render byte-identically
    // (wall-clock `_ns` families excluded, everything else included).
    metrics::global().reset();
    let r1 = simulate(&topo, &DimensionOrder::xy(), &cfg);
    let first = metrics::global().render(det);
    metrics::global().reset();
    let r2 = simulate(&topo, &DimensionOrder::xy(), &cfg);
    let second = metrics::global().render(det);
    assert_eq!(first, second, "identical-seed expositions diverged");
    assert_eq!(r1.delivered_packets, r2.delivered_packets);
    assert!(!first.is_empty());

    // Scrape the live endpoint over loopback HTTP.
    let server = MetricsServer::serve("127.0.0.1:0").expect("bind loopback");
    let addr = server.local_addr().to_string();
    assert!(http_get(&addr, "/healthz")
        .unwrap()
        .starts_with("ok uptime_seconds="));
    let body = http_get(&addr, "/metrics").unwrap();
    server.shutdown();
    metrics::set_enabled(false);
    ebda_obs::telemetry::set_enabled(false);

    let samples = parse_exposition(&body).expect("scraped exposition parses");

    // Run counters reflect exactly the one run since the last reset.
    assert_eq!(value(&samples, "ebda_sim_runs_total"), Some(1.0));
    assert_eq!(
        value(&samples, "ebda_sim_packets_delivered_total"),
        Some(r2.delivered_packets as f64)
    );
    assert_eq!(
        value(&samples, "ebda_sim_packets_injected_total"),
        Some(r2.injected_packets as f64)
    );

    // The latency histogram counts every *measured* delivery (mirroring
    // `SimResult::latencies`), and a scraper reconstructing quantiles from
    // the `_bucket` lines lands within the shared 6.25% error bound of the
    // engine's own histogram.
    assert_eq!(
        value(&samples, "ebda_sim_packet_latency_cycles_count"),
        Some(r2.measured_delivered as f64)
    );
    let buckets: Vec<(f64, f64)> = samples
        .iter()
        .filter(|s| s.name == "ebda_sim_packet_latency_cycles_bucket")
        .map(|s| {
            let le = match s.label("le").unwrap() {
                "+Inf" => f64::INFINITY,
                v => v.parse().unwrap(),
            };
            (le, s.value)
        })
        .collect();
    assert!(buckets.iter().any(|&(le, _)| le.is_infinite()));
    for q in [0.50, 0.99] {
        let direct = r2.latency_hist.quantile(q).unwrap() as f64;
        let scraped = quantile_from_buckets(&buckets, q).unwrap();
        assert!(
            (scraped - direct).abs() <= direct * 0.0625 + 1.0,
            "q={q}: scraped {scraped} vs direct {direct}"
        );
    }

    // Per-channel utilization gauges carry the full label vocabulary and
    // sane values; the flit counters match the run's channel loads.
    let utils: Vec<&Sample> = samples
        .iter()
        .filter(|s| s.name == "ebda_sim_channel_utilization")
        .collect();
    assert!(!utils.is_empty(), "no per-channel utilization gauges");
    for s in &utils {
        for key in ["node", "dim", "dir", "vc"] {
            assert!(s.label(key).is_some(), "missing label {key}: {s:?}");
        }
        assert!(
            s.value.is_finite() && s.value >= 0.0,
            "bad utilization {s:?}"
        );
    }
    let total_flits: u64 = r2.channel_flits.iter().sum();
    let scraped_flits: f64 = samples
        .iter()
        .filter(|s| s.name == "ebda_sim_channel_flits_total")
        .map(|s| s.value)
        .sum();
    assert_eq!(scraped_flits, total_flits as f64);

    // Telemetry spans are bridged into the exposition.
    assert!(
        samples.iter().any(|s| {
            s.name == "ebda_span_invocations_total"
                && s.label("span") == Some("sim.engine.run")
                && s.value >= 1.0
        }),
        "sim.engine.run span missing from the exposition"
    );
}
