//! Elevator-First deterministic routing for vertically partially connected
//! 3D NoCs (Dubois et al.), the baseline of Section 6.3.

use super::dir_of;
use crate::relation::{PortVc, RouteChoice, RouteState, RoutingRelation, INJECT};
use ebda_cdg::topology::{NodeId, Topology};
use ebda_core::{parse_channels, Channel, Dimension, Direction, Turn, TurnSet};

/// Phase markers carried in the routing state.
const PRE: RouteState = 0; // XY toward the elevator, VC 1
const VERTICAL: RouteState = 1; // riding the elevator
const POST: RouteState = 2; // XY toward the destination, VC 2

/// Elevator-First: deliver the packet to a vertical connection with XY
/// routing on VC 1, ride the elevator to the destination layer, then XY
/// again on VC 2 — 2, 2 and 1 virtual channels along X, Y and Z, sixteen
/// 90° turns (plus the elevator entry/exit turns), fully deterministic.
///
/// The elevator is chosen per packet: the one nearest the source's (x, y)
/// position (ties broken by coordinate order), so routing is deterministic
/// and in-order per source/destination pair.
#[derive(Debug, Clone)]
pub struct ElevatorFirst {
    universe: Vec<Channel>,
    elevators: Vec<Vec<i64>>,
}

impl ElevatorFirst {
    /// Creates the relation for a 3D network whose vertical links exist
    /// only at the given `(x, y)` bases.
    ///
    /// # Panics
    ///
    /// Panics if `elevators` is empty — at least one vertical connection is
    /// required for full reachability.
    pub fn new<I: IntoIterator<Item = Vec<i64>>>(elevators: I) -> ElevatorFirst {
        let mut elevators: Vec<Vec<i64>> = elevators.into_iter().collect();
        assert!(!elevators.is_empty(), "at least one elevator is required");
        elevators.sort();
        elevators.dedup();
        ElevatorFirst {
            universe: parse_channels("X1+ X1- X2+ X2- Y1+ Y1- Y2+ Y2- Z1+ Z1-")
                .expect("static channel list parses"),
            elevators,
        }
    }

    /// The elevator base assigned to a source at `(x, y)`.
    fn elevator_for(&self, x: i64, y: i64) -> &[i64] {
        self.elevators
            .iter()
            .min_by_key(|e| ((e[0] - x).abs() + (e[1] - y).abs(), e[0], e[1]))
            .expect("constructor guarantees at least one elevator")
    }

    /// The conservative turn set this router can ever exercise, for CDG
    /// verification: the paper's sixteen XY turns plus the elevator
    /// entry/exit transitions. Deadlock freedom follows from the phase
    /// ordering (VC1 XY → Z → VC2 XY).
    pub fn turn_set(&self) -> TurnSet {
        let mut ts = TurnSet::new();
        let ch = |s: &str| Channel::parse(s).expect("static channel token");
        // Phase 0 XY (VC1): X before Y.
        for (a, b) in [
            ("X1+", "Y1+"),
            ("X1+", "Y1-"),
            ("X1-", "Y1+"),
            ("X1-", "Y1-"),
        ] {
            ts.insert(Turn::new(ch(a), ch(b)));
        }
        // Entering the elevator from any VC1 channel.
        for a in ["X1+", "X1-", "Y1+", "Y1-"] {
            for b in ["Z1+", "Z1-"] {
                ts.insert(Turn::new(ch(a), ch(b)));
            }
        }
        // Leaving the elevator onto any VC2 channel.
        for a in ["Z1+", "Z1-"] {
            for b in ["X2+", "X2-", "Y2+", "Y2-"] {
                ts.insert(Turn::new(ch(a), ch(b)));
            }
        }
        // Phase 2 XY (VC2): X before Y.
        for (a, b) in [
            ("X2+", "Y2+"),
            ("X2+", "Y2-"),
            ("X2-", "Y2+"),
            ("X2-", "Y2-"),
        ] {
            ts.insert(Turn::new(ch(a), ch(b)));
        }
        ts
    }
}

impl RoutingRelation for ElevatorFirst {
    fn name(&self) -> &str {
        "elevator-first"
    }

    fn universe(&self) -> &[Channel] {
        &self.universe
    }

    fn route(
        &self,
        topo: &Topology,
        node: NodeId,
        state: RouteState,
        src: NodeId,
        dst: NodeId,
    ) -> Vec<RouteChoice> {
        let c = topo.coords(node);
        let d = topo.coords(dst);
        let same_layer_trip = topo.coords(src)[2] == d[2];
        let phase = if state == INJECT { PRE } else { state };

        // Same-layer packets, and packets that already descended: XY to dst.
        if c[2] == d[2] && (same_layer_trip || phase >= VERTICAL) {
            let vc = if same_layer_trip { 1 } else { 2 };
            let next_state = if same_layer_trip { PRE } else { POST };
            if c[0] != d[0] {
                return vec![choice(Dimension::X, dir_of(d[0] - c[0]), vc, next_state)];
            }
            if c[1] != d[1] {
                return vec![choice(Dimension::Y, dir_of(d[1] - c[1]), vc, next_state)];
            }
            return Vec::new();
        }
        // Need to change layer: head for the elevator, then ride it.
        let s = topo.coords(src);
        let elev = self.elevator_for(s[0], s[1]);
        if c[0] == elev[0] && c[1] == elev[1] {
            return vec![choice(Dimension::Z, dir_of(d[2] - c[2]), 1, VERTICAL)];
        }
        if c[0] != elev[0] {
            return vec![choice(Dimension::X, dir_of(elev[0] - c[0]), 1, PRE)];
        }
        vec![choice(Dimension::Y, dir_of(elev[1] - c[1]), 1, PRE)]
    }
}

fn choice(dim: Dimension, dir: Direction, vc: u8, state: RouteState) -> RouteChoice {
    RouteChoice {
        port: PortVc { dim, dir, vc },
        state,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::{find_delivery_failure, walk_first_choice};

    fn partial_topo() -> Topology {
        Topology::mesh(&[4, 4, 3])
            .with_partial_dim(Dimension::Z, [vec![0, 0], vec![3, 3], vec![1, 2]])
    }

    #[test]
    fn delivers_everywhere_on_partial_3d() {
        let topo = partial_topo();
        let r = ElevatorFirst::new([vec![0, 0], vec![3, 3], vec![1, 2]]);
        assert_eq!(find_delivery_failure(&r, &topo, 64), None);
    }

    #[test]
    fn same_layer_traffic_never_rides_elevators() {
        let topo = partial_topo();
        let r = ElevatorFirst::new([vec![0, 0], vec![3, 3], vec![1, 2]]);
        let src = topo.node_at(&[0, 3, 1]);
        let dst = topo.node_at(&[3, 0, 1]);
        let path = walk_first_choice(&r, &topo, src, dst, 32).unwrap();
        for &n in &path {
            assert_eq!(topo.coords(n)[2], 1, "must stay on the layer");
        }
        assert_eq!(path.len() as u64 - 1, topo.distance(src, dst));
    }

    #[test]
    fn layer_changes_go_via_the_assigned_elevator() {
        let topo = partial_topo();
        let r = ElevatorFirst::new([vec![0, 0], vec![3, 3], vec![1, 2]]);
        let src = topo.node_at(&[2, 2, 0]);
        let dst = topo.node_at(&[2, 2, 2]);
        let path = walk_first_choice(&r, &topo, src, dst, 64).unwrap();
        // Nearest elevator to (2,2) is (1,2) at distance 1.
        assert!(path.contains(&topo.node_at(&[1, 2, 0])));
        assert!(path.contains(&topo.node_at(&[1, 2, 2])));
        assert_eq!(*path.last().unwrap(), dst);
    }

    #[test]
    fn turn_set_is_deadlock_free_on_the_partial_topology() {
        let topo = partial_topo();
        let r = ElevatorFirst::new([vec![0, 0], vec![3, 3], vec![1, 2]]);
        let report = ebda_cdg::verify_turn_set(&topo, &[2, 2, 1], r.universe(), &r.turn_set());
        assert!(report.is_deadlock_free(), "{report}");
    }

    #[test]
    #[should_panic(expected = "at least one elevator")]
    fn rejects_empty_elevator_list() {
        let _ = ElevatorFirst::new(Vec::<Vec<i64>>::new());
    }
}
