//! Duato-style fully adaptive routing with escape channels — the baseline
//! theory EbDa is contrasted with (Section 2 of the paper).

use super::{dir_of, offsets};
use crate::relation::{PortVc, RouteChoice, RouteState, RoutingRelation};
use ebda_cdg::topology::{NodeId, Topology};
use ebda_core::{Channel, Dimension, Direction};

/// Duato's fully adaptive routing: VC 1 of every dimension forms the
/// unrestricted *adaptive* class (any minimal hop, any order), VC 2 forms a
/// dimension-order *escape* subnetwork. A blocked packet can always fall
/// back to the escape channel, which is acyclic and connected — but the
/// guarantee requires an input buffer to hold flits of only one packet
/// (Duato's Assumption 3), the restriction EbDa removes. Run the simulator
/// in `BufferPolicy::SinglePacket` mode for a faithful Duato configuration.
#[derive(Debug, Clone)]
pub struct DuatoFullyAdaptive {
    universe: Vec<Channel>,
    dims: usize,
}

impl DuatoFullyAdaptive {
    /// Creates the relation for an `n`-dimensional mesh: `2n` adaptive
    /// channels (VC 1) + `2n` escape channels (VC 2).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> DuatoFullyAdaptive {
        assert!(n >= 1, "at least one dimension");
        let mut universe = Vec::with_capacity(4 * n);
        for vc in [1u8, 2] {
            for d in 0..n {
                universe.push(Channel::with_vc(
                    Dimension::new(d as u8),
                    Direction::Plus,
                    vc,
                ));
                universe.push(Channel::with_vc(
                    Dimension::new(d as u8),
                    Direction::Minus,
                    vc,
                ));
            }
        }
        DuatoFullyAdaptive { universe, dims: n }
    }

    /// The escape sub-universe (VC 2 channels) for Duato verification.
    pub fn escape_universe(&self) -> Vec<Channel> {
        self.universe
            .iter()
            .copied()
            .filter(|c| c.vc == 2)
            .collect()
    }

    /// The escape turn set: dimension-order (lowest dimension first) over
    /// the VC 2 channels.
    pub fn escape_turns(&self) -> ebda_core::TurnSet {
        let mut ts = ebda_core::TurnSet::new();
        for i in 0..self.dims {
            for j in (i + 1)..self.dims {
                for da in [Direction::Plus, Direction::Minus] {
                    for db in [Direction::Plus, Direction::Minus] {
                        ts.insert(ebda_core::Turn::new(
                            Channel::with_vc(Dimension::new(i as u8), da, 2),
                            Channel::with_vc(Dimension::new(j as u8), db, 2),
                        ));
                    }
                }
            }
        }
        ts
    }
}

impl RoutingRelation for DuatoFullyAdaptive {
    fn name(&self) -> &str {
        "duato-fully-adaptive"
    }

    fn universe(&self) -> &[Channel] {
        &self.universe
    }

    fn route(
        &self,
        topo: &Topology,
        node: NodeId,
        _state: RouteState,
        _src: NodeId,
        dst: NodeId,
    ) -> Vec<RouteChoice> {
        let off = offsets(topo, node, dst);
        let mut out = Vec::new();
        // Adaptive class: every minimal hop on VC 1.
        #[allow(clippy::needless_range_loop)] // the index doubles as the dimension id
        for d in 0..self.dims {
            if off[d] != 0 {
                out.push(RouteChoice {
                    port: PortVc {
                        dim: Dimension::new(d as u8),
                        dir: dir_of(off[d]),
                        vc: 1,
                    },
                    state: 0,
                });
            }
        }
        // Escape: the dimension-order hop on VC 2 (listed last so greedy
        // selections prefer adaptive channels, as Duato intends).
        if let Some(d) = (0..self.dims).find(|&d| off[d] != 0) {
            out.push(RouteChoice {
                port: PortVc {
                    dim: Dimension::new(d as u8),
                    dir: dir_of(off[d]),
                    vc: 2,
                },
                state: 0,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::{find_delivery_failure, INJECT};
    use ebda_cdg::duato::verify_escape;

    #[test]
    fn offers_all_minimal_hops_plus_escape() {
        let topo = Topology::mesh(&[5, 5]);
        let r = DuatoFullyAdaptive::new(2);
        let src = topo.node_at(&[0, 0]);
        let dst = topo.node_at(&[3, 3]);
        let choices = r.route(&topo, src, INJECT, src, dst);
        assert_eq!(choices.len(), 3); // X+ vc1, Y+ vc1, X+ vc2 (escape)
        assert_eq!(choices.last().unwrap().port.vc, 2);
    }

    #[test]
    fn escape_subnetwork_satisfies_duato_conditions() {
        let topo = Topology::mesh(&[4, 4]);
        let r = DuatoFullyAdaptive::new(2);
        let report = verify_escape(&topo, &[2, 2], &r.escape_universe(), &r.escape_turns());
        assert!(report.is_deadlock_free(), "{report}");
    }

    #[test]
    fn full_relation_cdg_is_cyclic_without_escape_reasoning() {
        // The *whole* relation (adaptive channels included) has a cyclic
        // CDG — that is the point of Duato's theory, and why EbDa's
        // acyclic-by-construction approach is a different regime.
        let topo = Topology::mesh(&[4, 4]);
        let r = DuatoFullyAdaptive::new(2);
        let mut all_turns = ebda_core::TurnSet::new();
        for &a in r.universe() {
            for &b in r.universe() {
                if a != b && a.vc == 1 {
                    all_turns.insert(ebda_core::Turn::new(a, b));
                }
            }
        }
        all_turns.merge(r.escape_turns());
        let report = ebda_cdg::verify_turn_set(&topo, &[2, 2], r.universe(), &all_turns);
        assert!(!report.is_deadlock_free());
    }

    #[test]
    fn delivers_everywhere() {
        let topo = Topology::mesh(&[4, 4]);
        assert_eq!(
            find_delivery_failure(&DuatoFullyAdaptive::new(2), &topo, 16),
            None
        );
    }
}
