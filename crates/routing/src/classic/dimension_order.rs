//! Dimension-order (e.g. XY / YX / XYZ) deterministic routing.

use super::{dir_of, offsets, vc1_universe};
use crate::relation::{PortVc, RouteChoice, RouteState, RoutingRelation};
use ebda_cdg::topology::{NodeId, Topology};
use ebda_core::{Channel, Dimension};

/// Deterministic dimension-order routing: resolve offsets one dimension at
/// a time in a fixed order. `XY` routing is `DimensionOrder::xy()`;
/// arbitrary orders (YX, ZYX, …) are supported.
///
/// The paper derives this family from partitionings like Table 3's
/// `X+ → X- → Y+ → Y-`.
#[derive(Debug, Clone)]
pub struct DimensionOrder {
    name: String,
    order: Vec<Dimension>,
    universe: Vec<Channel>,
}

impl DimensionOrder {
    /// Routing that resolves dimensions in the given order.
    ///
    /// # Panics
    ///
    /// Panics if `order` is empty or repeats a dimension.
    pub fn new(name: impl Into<String>, order: Vec<Dimension>) -> DimensionOrder {
        assert!(!order.is_empty(), "dimension order cannot be empty");
        let mut sorted: Vec<_> = order.iter().map(|d| d.index()).collect();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(
            sorted.len(),
            order.len(),
            "dimension order repeats a dimension"
        );
        let n = order.iter().map(|d| d.index() + 1).max().unwrap_or(1);
        DimensionOrder {
            name: name.into(),
            universe: vc1_universe(n),
            order,
        }
    }

    /// Classic `XY` routing in 2D.
    pub fn xy() -> DimensionOrder {
        DimensionOrder::new("xy", vec![Dimension::X, Dimension::Y])
    }

    /// Classic `YX` routing in 2D.
    pub fn yx() -> DimensionOrder {
        DimensionOrder::new("yx", vec![Dimension::Y, Dimension::X])
    }

    /// `XYZ` routing in 3D.
    pub fn xyz() -> DimensionOrder {
        DimensionOrder::new("xyz", vec![Dimension::X, Dimension::Y, Dimension::Z])
    }
}

impl RoutingRelation for DimensionOrder {
    fn name(&self) -> &str {
        &self.name
    }

    fn universe(&self) -> &[Channel] {
        &self.universe
    }

    fn route(
        &self,
        topo: &Topology,
        node: NodeId,
        state: RouteState,
        src: NodeId,
        dst: NodeId,
    ) -> Vec<RouteChoice> {
        let mut out = Vec::new();
        self.route_into(topo, node, state, src, dst, &mut out);
        out
    }

    fn route_into(
        &self,
        topo: &Topology,
        node: NodeId,
        _state: RouteState,
        _src: NodeId,
        dst: NodeId,
        out: &mut Vec<RouteChoice>,
    ) {
        out.clear();
        let off = offsets(topo, node, dst);
        for &dim in &self.order {
            let o = off[dim.index()];
            if o != 0 {
                out.push(RouteChoice {
                    port: PortVc {
                        dim,
                        dir: dir_of(o),
                        vc: 1,
                    },
                    state: 0,
                });
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::{find_delivery_failure, walk_first_choice};

    #[test]
    fn xy_goes_x_then_y() {
        let topo = Topology::mesh(&[4, 4]);
        let xy = DimensionOrder::xy();
        let src = topo.node_at(&[0, 0]);
        let dst = topo.node_at(&[2, 2]);
        let path = walk_first_choice(&xy, &topo, src, dst, 10).unwrap();
        let coords: Vec<Vec<i64>> = path.iter().map(|&n| topo.coords(n)).collect();
        assert_eq!(coords, [[0, 0], [1, 0], [2, 0], [2, 1], [2, 2]]);
    }

    #[test]
    fn yx_goes_y_then_x() {
        let topo = Topology::mesh(&[4, 4]);
        let yx = DimensionOrder::yx();
        let path = walk_first_choice(&yx, &topo, 0, topo.node_at(&[2, 2]), 10).unwrap();
        assert_eq!(topo.coords(path[1]), vec![0, 1]);
    }

    #[test]
    fn delivers_everywhere_in_3d() {
        let topo = Topology::mesh(&[3, 3, 3]);
        assert_eq!(
            find_delivery_failure(&DimensionOrder::xyz(), &topo, 12),
            None
        );
    }

    #[test]
    #[should_panic(expected = "repeats")]
    fn rejects_repeated_dimensions() {
        let _ = DimensionOrder::new("bad", vec![Dimension::X, Dimension::X]);
    }
}
