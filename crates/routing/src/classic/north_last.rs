//! North-last partially adaptive routing (Glass & Ni).

use super::{dir_of, offsets, vc1_universe};
use crate::relation::{PortVc, RouteChoice, RouteState, RoutingRelation};
use ebda_cdg::topology::{NodeId, Topology};
use ebda_core::{Channel, Dimension, Direction};

/// North-last routing: fully adaptive until the only remaining hops are
/// northward, which are then taken deterministically — the turn model that
/// prohibits the NE and NW turns, equal to the paper's Fig. 5 partitioning
/// `{PA[X+ X- Y-] → PB[Y+]}`.
#[derive(Debug, Clone)]
pub struct NorthLast {
    universe: Vec<Channel>,
}

impl NorthLast {
    /// Creates the relation (2D, single VC).
    pub fn new() -> NorthLast {
        NorthLast {
            universe: vc1_universe(2),
        }
    }
}

impl Default for NorthLast {
    fn default() -> Self {
        NorthLast::new()
    }
}

impl RoutingRelation for NorthLast {
    fn name(&self) -> &str {
        "north-last"
    }

    fn universe(&self) -> &[Channel] {
        &self.universe
    }

    fn route(
        &self,
        topo: &Topology,
        node: NodeId,
        _state: RouteState,
        _src: NodeId,
        dst: NodeId,
    ) -> Vec<RouteChoice> {
        let off = offsets(topo, node, dst);
        let (dx, dy) = (off[0], off[1]);
        let mut out = Vec::new();
        if dx != 0 {
            out.push(RouteChoice {
                port: PortVc {
                    dim: Dimension::X,
                    dir: dir_of(dx),
                    vc: 1,
                },
                state: 0,
            });
        }
        if dy < 0 {
            out.push(RouteChoice {
                port: PortVc {
                    dim: Dimension::Y,
                    dir: Direction::Minus,
                    vc: 1,
                },
                state: 0,
            });
        }
        // North only when nothing else remains (north-last).
        if out.is_empty() && dy > 0 {
            out.push(RouteChoice {
                port: PortVc {
                    dim: Dimension::Y,
                    dir: Direction::Plus,
                    vc: 1,
                },
                state: 0,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::{find_delivery_failure, INJECT};

    #[test]
    fn north_deferred_until_last() {
        let topo = Topology::mesh(&[5, 5]);
        let r = NorthLast::new();
        let src = topo.node_at(&[0, 0]);
        let dst = topo.node_at(&[2, 2]);
        let choices = r.route(&topo, src, INJECT, src, dst);
        assert_eq!(choices.len(), 1);
        assert_eq!(choices[0].port.dim, Dimension::X);
        // Once aligned in X, north is finally allowed.
        let aligned = topo.node_at(&[2, 0]);
        let choices = r.route(&topo, aligned, 0, src, dst);
        assert_eq!(choices.len(), 1);
        assert_eq!(choices[0].port.dir, Direction::Plus);
        assert_eq!(choices[0].port.dim, Dimension::Y);
    }

    #[test]
    fn southbound_is_adaptive() {
        let topo = Topology::mesh(&[5, 5]);
        let r = NorthLast::new();
        let src = topo.node_at(&[0, 4]);
        let dst = topo.node_at(&[3, 1]);
        assert_eq!(r.route(&topo, src, INJECT, src, dst).len(), 2);
    }

    #[test]
    fn delivers_everywhere() {
        let topo = Topology::mesh(&[5, 5]);
        assert_eq!(find_delivery_failure(&NorthLast::new(), &topo, 20), None);
    }
}
