//! The Odd-Even turn model (Chiu, 2000) — minimal adaptive routing.

use super::{dir_of, vc1_universe};
use crate::relation::{PortVc, RouteChoice, RouteState, RoutingRelation};
use ebda_cdg::topology::{NodeId, Topology};
use ebda_core::{Channel, Dimension, Direction};

/// Chiu's Odd-Even adaptive routing for 2D meshes, implemented from the
/// published `ROUTE` function:
///
/// * Rule 1: no EN/ES turns at even columns;
/// * Rule 2: no NW/SW turns at odd columns.
///
/// Section 6.2 of the EbDa paper shows the same turn budget falls out of
/// the partitioning `PA = {X- Ye*} → PB = {X+ Yo*}`; the tests cross-check
/// the two.
#[derive(Debug, Clone)]
pub struct OddEven {
    universe: Vec<Channel>,
}

impl OddEven {
    /// Creates the relation (2D, single VC).
    pub fn new() -> OddEven {
        OddEven {
            universe: vc1_universe(2),
        }
    }
}

impl Default for OddEven {
    fn default() -> Self {
        OddEven::new()
    }
}

impl RoutingRelation for OddEven {
    fn name(&self) -> &str {
        "odd-even"
    }

    fn universe(&self) -> &[Channel] {
        &self.universe
    }

    fn route(
        &self,
        topo: &Topology,
        node: NodeId,
        _state: RouteState,
        src: NodeId,
        dst: NodeId,
    ) -> Vec<RouteChoice> {
        let c = topo.coords(node);
        let s = topo.coords(src);
        let d = topo.coords(dst);
        let e0 = d[0] - c[0];
        let e1 = d[1] - c[1];
        let mut out = Vec::new();
        let mut push = |dim: Dimension, dir: Direction| {
            out.push(RouteChoice {
                port: PortVc { dim, dir, vc: 1 },
                state: 0,
            })
        };
        if e0 == 0 {
            if e1 != 0 {
                push(Dimension::Y, dir_of(e1));
            }
        } else if e0 > 0 {
            // Eastbound.
            if e1 == 0 {
                push(Dimension::X, Direction::Plus);
            } else {
                // N/S allowed at odd columns or the source column.
                if c[0] % 2 == 1 || c[0] == s[0] {
                    push(Dimension::Y, dir_of(e1));
                }
                // East allowed unless it would strand the packet: when the
                // destination column is even and exactly one hop east, the
                // turn off the X channel would be an EN/ES turn at an even
                // column, which Rule 1 forbids.
                if d[0] % 2 == 1 || e0 != 1 {
                    push(Dimension::X, Direction::Plus);
                }
            }
        } else {
            // Westbound: west is always allowed…
            push(Dimension::X, Direction::Minus);
            // …and N/S only from even columns (Rule 2 blocks N/S→W at odd
            // columns, so the packet keeps Y moves for even columns).
            if e1 != 0 && c[0] % 2 == 0 {
                push(Dimension::Y, dir_of(e1));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::{find_delivery_failure, INJECT};

    #[test]
    fn rule1_no_en_es_at_even_columns() {
        // A packet whose destination is one hop east into an even column
        // with a Y offset must take Y first (east would strand it).
        let topo = Topology::mesh(&[6, 6]);
        let r = OddEven::new();
        let src = topo.node_at(&[1, 0]);
        let dst = topo.node_at(&[2, 3]);
        let choices = r.route(&topo, src, INJECT, src, dst);
        assert_eq!(choices.len(), 1, "east would violate Rule 1 at arrival");
        assert_eq!(choices[0].port.dim, Dimension::Y);
    }

    #[test]
    fn rule2_no_ns_to_west_at_odd_columns() {
        let topo = Topology::mesh(&[6, 6]);
        let r = OddEven::new();
        // Westbound at an odd column: only west is offered.
        let node = topo.node_at(&[3, 2]);
        let dst = topo.node_at(&[0, 5]);
        let choices = r.route(&topo, node, 0, node, dst);
        assert_eq!(choices.len(), 1);
        assert_eq!(choices[0].port.dir, Direction::Minus);
        assert_eq!(choices[0].port.dim, Dimension::X);
        // At an even column both west and north are offered.
        let node = topo.node_at(&[2, 2]);
        let choices = r.route(&topo, node, 0, node, dst);
        assert_eq!(choices.len(), 2);
    }

    #[test]
    fn delivers_everywhere() {
        for radix in [5usize, 6] {
            let topo = Topology::mesh(&[radix, radix]);
            assert_eq!(
                find_delivery_failure(&OddEven::new(), &topo, 24),
                None,
                "odd-even failed on {radix}x{radix}"
            );
        }
    }

    #[test]
    fn paths_are_minimal() {
        let topo = Topology::mesh(&[6, 6]);
        let r = OddEven::new();
        for (s, d) in [([0, 0], [5, 5]), ([5, 0], [0, 5]), ([2, 4], [4, 0])] {
            let src = topo.node_at(&s);
            let dst = topo.node_at(&d);
            let path = crate::relation::walk_first_choice(&r, &topo, src, dst, 32).unwrap();
            assert_eq!(path.len() as u64 - 1, topo.distance(src, dst));
        }
    }
}
