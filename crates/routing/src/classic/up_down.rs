//! Up*/Down* routing (Autonet) — the algorithm whose ascending-order proof
//! the paper reuses for Theorem 2.
//!
//! A BFS spanning tree orients every link: "up" toward the root (lower BFS
//! level, ties by node id), "down" away from it. Legal paths take zero or
//! more up links followed by zero or more down links; the up→down one-way
//! rule breaks every dependency cycle, on *any* connected topology —
//! including meshes with failed links, which makes it the classic
//! fault-tolerance fallback.

use crate::relation::{PortVc, RouteChoice, RouteState, RoutingRelation, INJECT};
use ebda_cdg::topology::{NodeId, Topology};
use ebda_core::{Channel, Dimension, Direction};
use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;

const UNREACHABLE: u32 = u32::MAX;
/// Routing states: still allowed to go up, or committed to down.
const PHASE_UP: RouteState = 0;
const PHASE_DOWN: RouteState = 1;

/// (topology key, per-destination distance tables).
type DistCache = (Option<Topology>, HashMap<NodeId, std::sync::Arc<Vec<u32>>>);

/// Adaptive Up*/Down* routing over the given topology's BFS spanning tree
/// (rooted at node 0). Offers every next hop on a shortest legal
/// (up*-then-down*) path.
pub struct UpDown {
    universe: Vec<Channel>,
    /// BFS level per node, fixed at construction.
    level: Vec<u32>,
    /// Distance tables keyed to one topology; reset on topology change
    /// (the up/down orientation itself stays fixed to the construction
    /// tree — failed tree links simply become unusable).
    dist_cache: Mutex<DistCache>,
}

impl std::fmt::Debug for UpDown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UpDown")
            .field("nodes", &self.level.len())
            .finish()
    }
}

impl UpDown {
    /// Builds the relation for a topology (BFS tree rooted at node 0).
    ///
    /// # Panics
    ///
    /// Panics if the topology is disconnected — Up*/Down* requires a
    /// spanning tree over all nodes.
    pub fn new(topo: &Topology) -> UpDown {
        UpDown::with_root(topo, 0)
    }

    /// Builds the relation with the BFS spanning tree rooted at `root`.
    /// Root placement changes path lengths and load concentration (links
    /// near the root carry disproportionate traffic — the classic
    /// Up*/Down* weakness), but never deadlock freedom.
    ///
    /// # Panics
    ///
    /// Panics if `root` is out of range or the topology is disconnected.
    pub fn with_root(topo: &Topology, root: NodeId) -> UpDown {
        assert!(root < topo.node_count(), "root out of range");
        let n = topo.node_count();
        let mut level = vec![u32::MAX; n];
        let mut queue = VecDeque::new();
        level[root] = 0;
        queue.push_back(root);
        while let Some(u) = queue.pop_front() {
            for d in 0..topo.dims() {
                for dir in [Direction::Plus, Direction::Minus] {
                    if let Some(v) = topo.neighbor(u, Dimension::new(d as u8), dir) {
                        if level[v] == u32::MAX {
                            level[v] = level[u] + 1;
                            queue.push_back(v);
                        }
                    }
                }
            }
        }
        assert!(
            level.iter().all(|&l| l != u32::MAX),
            "up*/down* needs a connected topology"
        );
        let mut universe = Vec::new();
        for d in 0..topo.dims() {
            universe.push(Channel::new(Dimension::new(d as u8), Direction::Plus));
            universe.push(Channel::new(Dimension::new(d as u8), Direction::Minus));
        }
        UpDown {
            universe,
            level,
            dist_cache: Mutex::new((None, HashMap::new())),
        }
    }

    /// Returns `true` if the directed hop `u → v` is an "up" link.
    fn is_up(&self, u: NodeId, v: NodeId) -> bool {
        (self.level[v], v) < (self.level[u], u)
    }

    fn dist_table(&self, topo: &Topology, dst: NodeId) -> std::sync::Arc<Vec<u32>> {
        {
            let mut guard = self.dist_cache.lock().expect("poisoned");
            let (cached_topo, tables) = &mut *guard;
            if cached_topo.as_ref() != Some(topo) {
                *cached_topo = Some(topo.clone());
                tables.clear();
            } else if let Some(t) = tables.get(&dst) {
                return t.clone();
            }
        }
        let table = std::sync::Arc::new(self.build_dist(topo, dst));
        self.dist_cache
            .lock()
            .expect("poisoned")
            .1
            .insert(dst, table.clone());
        table
    }

    /// Backward BFS over the (node, phase) product graph from `dst`.
    fn build_dist(&self, topo: &Topology, dst: NodeId) -> Vec<u32> {
        let n = topo.node_count();
        let mut dist = vec![UNREACHABLE; 2 * n];
        let mut queue = VecDeque::new();
        dist[2 * dst] = 0;
        dist[2 * dst + 1] = 0;
        queue.push_back((dst, 0u16));
        queue.push_back((dst, 1u16));
        while let Some((v, phase)) = queue.pop_front() {
            let d = dist[2 * v + phase as usize];
            // Predecessors u with a link u -> v compatible with `phase` at v.
            for dd in 0..topo.dims() {
                for dir in [Direction::Plus, Direction::Minus] {
                    // u is v's neighbor; the hop u -> v uses direction
                    // opposite to our scan direction from v.
                    let Some(u) = topo.neighbor(v, Dimension::new(dd as u8), dir) else {
                        continue;
                    };
                    // Link u -> v must exist too (failed links are cut in
                    // both directions, but stay safe).
                    if topo.neighbor(u, Dimension::new(dd as u8), dir.opposite()) != Some(v) {
                        continue;
                    }
                    let up_hop = self.is_up(u, v);
                    // From (u, pu) a hop to v gives phase: up keeps UP
                    // (requires pu == UP); down gives DOWN from any pu.
                    let preds: &[u16] = if up_hop {
                        if phase != 0 {
                            continue; // an up hop cannot land in DOWN state
                        }
                        &[0]
                    } else {
                        if phase != 1 {
                            continue; // a down hop always lands in DOWN
                        }
                        &[0, 1]
                    };
                    for &pu in preds {
                        let idx = 2 * u + pu as usize;
                        if dist[idx] == UNREACHABLE {
                            dist[idx] = d + 1;
                            queue.push_back((u, pu));
                        }
                    }
                }
            }
        }
        dist
    }
}

impl RoutingRelation for UpDown {
    fn name(&self) -> &str {
        "up-down"
    }

    fn universe(&self) -> &[Channel] {
        &self.universe
    }

    fn route(
        &self,
        topo: &Topology,
        node: NodeId,
        state: RouteState,
        _src: NodeId,
        dst: NodeId,
    ) -> Vec<RouteChoice> {
        let dist = self.dist_table(topo, dst);
        let phase = if state == INJECT { PHASE_UP } else { state };
        let here = dist[2 * node + phase as usize];
        if here == UNREACHABLE || here == 0 {
            return Vec::new();
        }
        let mut out = Vec::new();
        for d in 0..topo.dims() {
            for dir in [Direction::Plus, Direction::Minus] {
                let Some(v) = topo.neighbor(node, Dimension::new(d as u8), dir) else {
                    continue;
                };
                let up_hop = self.is_up(node, v);
                if up_hop && phase == PHASE_DOWN {
                    continue; // no down -> up
                }
                let next_phase = if up_hop { PHASE_UP } else { PHASE_DOWN };
                if dist[2 * v + next_phase as usize] == here - 1 {
                    out.push(RouteChoice {
                        port: PortVc {
                            dim: Dimension::new(d as u8),
                            dir,
                            vc: 1,
                        },
                        state: next_phase,
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::find_delivery_failure;
    use crate::verify::verify_relation;

    #[test]
    fn delivers_everywhere_on_meshes() {
        let topo = Topology::mesh(&[4, 4]);
        let r = UpDown::new(&topo);
        assert_eq!(find_delivery_failure(&r, &topo, 24), None);
    }

    #[test]
    fn relation_level_cdg_is_acyclic() {
        for topo in [Topology::mesh(&[4, 4]), Topology::torus(&[3, 3])] {
            let r = UpDown::new(&topo);
            assert!(verify_relation(&topo, &r).is_ok(), "up*/down* cycled");
        }
    }

    #[test]
    fn survives_heavy_faults() {
        // Cut several links; as long as the network stays connected,
        // up*/down* still delivers everywhere — the fault-tolerance story
        // minimal turn models cannot tell.
        let topo = Topology::mesh(&[4, 4])
            .with_failed_link(0, Dimension::X, Direction::Plus)
            .with_failed_link(5, Dimension::Y, Direction::Plus)
            .with_failed_link(10, Dimension::X, Direction::Plus)
            .with_failed_link(2, Dimension::Y, Direction::Plus);
        let r = UpDown::new(&topo);
        assert_eq!(find_delivery_failure(&r, &topo, 40), None);
        assert!(verify_relation(&topo, &r).is_ok());
    }

    #[test]
    fn no_down_to_up_transitions_on_any_branch() {
        let topo = Topology::mesh(&[3, 3]);
        let r = UpDown::new(&topo);
        for src in topo.nodes() {
            for dst in topo.nodes() {
                if src == dst {
                    continue;
                }
                // Walk all branches, assert phase monotonicity.
                let mut stack = vec![(src, INJECT)];
                let mut seen = std::collections::HashSet::new();
                while let Some((node, state)) = stack.pop() {
                    for ch in r.route(&topo, node, state, src, dst) {
                        if state == PHASE_DOWN {
                            assert_eq!(ch.state, PHASE_DOWN, "down -> up taken");
                        }
                        let v = topo.neighbor(node, ch.port.dim, ch.port.dir).unwrap();
                        if seen.insert((v, ch.state)) {
                            stack.push((v, ch.state));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn alternative_roots_work_and_change_paths() {
        let topo = Topology::mesh(&[4, 4]);
        // A central root shortens worst-case up*/down* paths.
        let center = UpDown::with_root(&topo, topo.node_at(&[1, 1]));
        assert_eq!(find_delivery_failure(&center, &topo, 24), None);
        assert!(verify_relation(&topo, &center).is_ok());
        let corner = UpDown::with_root(&topo, 0);
        // Both deliver; the trees differ, so at least one pair routes
        // differently (checked via legal path lengths through the tree).
        let mut differs = false;
        for src in topo.nodes() {
            for dst in topo.nodes() {
                if src == dst {
                    continue;
                }
                let a = crate::relation::walk_first_choice(&center, &topo, src, dst, 40);
                let b = crate::relation::walk_first_choice(&corner, &topo, src, dst, 40);
                if a != b {
                    differs = true;
                }
            }
        }
        assert!(differs, "different roots should yield different paths");
    }

    #[test]
    #[should_panic(expected = "root out of range")]
    fn rejects_bad_root() {
        let topo = Topology::mesh(&[2, 2]);
        let _ = UpDown::with_root(&topo, 99);
    }

    #[test]
    fn works_on_partial_3d() {
        let topo =
            Topology::mesh(&[3, 3, 2]).with_partial_dim(Dimension::Z, [vec![0, 0], vec![2, 2]]);
        let r = UpDown::new(&topo);
        assert_eq!(find_delivery_failure(&r, &topo, 40), None);
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn rejects_disconnected_topologies() {
        // Cutting all links of a corner node disconnects it.
        let topo = Topology::mesh(&[2, 2])
            .with_failed_link(0, Dimension::X, Direction::Plus)
            .with_failed_link(0, Dimension::Y, Direction::Plus);
        let _ = UpDown::new(&topo);
    }
}
