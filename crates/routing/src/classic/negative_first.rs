//! Negative-first partially adaptive routing (Glass & Ni).

use super::{offsets, vc1_universe};
use crate::relation::{PortVc, RouteChoice, RouteState, RoutingRelation};
use ebda_cdg::topology::{NodeId, Topology};
use ebda_core::{Channel, Dimension, Direction};

/// Negative-first routing: all negative-direction hops are taken
/// (adaptively among themselves) before any positive-direction hop — the
/// turn model prohibiting positive-to-negative turns, equal to the paper's
/// `P4 = {PA[X- Y-] → PB[X+ Y+]}`. Works in any number of dimensions.
#[derive(Debug, Clone)]
pub struct NegativeFirst {
    universe: Vec<Channel>,
    dims: usize,
}

impl NegativeFirst {
    /// Creates the relation for an `n`-dimensional mesh, single VC.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> NegativeFirst {
        assert!(n >= 1, "at least one dimension");
        NegativeFirst {
            universe: vc1_universe(n),
            dims: n,
        }
    }
}

impl RoutingRelation for NegativeFirst {
    fn name(&self) -> &str {
        "negative-first"
    }

    fn universe(&self) -> &[Channel] {
        &self.universe
    }

    fn route(
        &self,
        topo: &Topology,
        node: NodeId,
        _state: RouteState,
        _src: NodeId,
        dst: NodeId,
    ) -> Vec<RouteChoice> {
        let off = offsets(topo, node, dst);
        let mut negatives = Vec::new();
        let mut positives = Vec::new();
        #[allow(clippy::needless_range_loop)] // the index doubles as the dimension id
        for d in 0..self.dims {
            let dim = Dimension::new(d as u8);
            if off[d] < 0 {
                negatives.push(RouteChoice {
                    port: PortVc {
                        dim,
                        dir: Direction::Minus,
                        vc: 1,
                    },
                    state: 0,
                });
            } else if off[d] > 0 {
                positives.push(RouteChoice {
                    port: PortVc {
                        dim,
                        dir: Direction::Plus,
                        vc: 1,
                    },
                    state: 0,
                });
            }
        }
        if negatives.is_empty() {
            positives
        } else {
            negatives
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::{find_delivery_failure, INJECT};

    #[test]
    fn negatives_precede_positives() {
        let topo = Topology::mesh(&[5, 5]);
        let r = NegativeFirst::new(2);
        // Northeast of destination in Y, west in X: mixed quadrant.
        let src = topo.node_at(&[0, 4]);
        let dst = topo.node_at(&[3, 0]);
        let choices = r.route(&topo, src, INJECT, src, dst);
        assert_eq!(choices.len(), 1);
        assert_eq!(choices[0].port.dir, Direction::Minus);
    }

    #[test]
    fn pure_quadrants_are_fully_adaptive() {
        let topo = Topology::mesh(&[5, 5]);
        let r = NegativeFirst::new(2);
        let src = topo.node_at(&[0, 0]);
        let dst = topo.node_at(&[3, 3]);
        assert_eq!(r.route(&topo, src, INJECT, src, dst).len(), 2);
        let src = topo.node_at(&[4, 4]);
        let dst = topo.node_at(&[1, 1]);
        assert_eq!(r.route(&topo, src, INJECT, src, dst).len(), 2);
    }

    #[test]
    fn delivers_everywhere_2d_and_3d() {
        let topo = Topology::mesh(&[4, 4]);
        assert_eq!(
            find_delivery_failure(&NegativeFirst::new(2), &topo, 16),
            None
        );
        let topo = Topology::mesh(&[3, 3, 3]);
        assert_eq!(
            find_delivery_failure(&NegativeFirst::new(3), &topo, 16),
            None
        );
    }
}
