//! West-first partially adaptive routing (Glass & Ni).

use super::{dir_of, offsets, vc1_universe};
use crate::relation::{PortVc, RouteChoice, RouteState, RoutingRelation};
use ebda_cdg::topology::{NodeId, Topology};
use ebda_core::{Channel, Dimension, Direction};

/// West-first routing: all westward hops are taken first (deterministically),
/// after which the packet routes fully adaptively among east/north/south —
/// the turn model that prohibits the NW and SW turns, equal to the paper's
/// `P3 = {PA[X-] → PB[X+ Y+ Y-]}`.
#[derive(Debug, Clone)]
pub struct WestFirst {
    universe: Vec<Channel>,
}

impl WestFirst {
    /// Creates the relation (2D, single VC).
    pub fn new() -> WestFirst {
        WestFirst {
            universe: vc1_universe(2),
        }
    }
}

impl Default for WestFirst {
    fn default() -> Self {
        WestFirst::new()
    }
}

impl RoutingRelation for WestFirst {
    fn name(&self) -> &str {
        "west-first"
    }

    fn universe(&self) -> &[Channel] {
        &self.universe
    }

    fn route(
        &self,
        topo: &Topology,
        node: NodeId,
        _state: RouteState,
        _src: NodeId,
        dst: NodeId,
    ) -> Vec<RouteChoice> {
        let off = offsets(topo, node, dst);
        let (dx, dy) = (off[0], off[1]);
        let mut out = Vec::new();
        let push = |out: &mut Vec<RouteChoice>, dim: Dimension, dir: Direction| {
            out.push(RouteChoice {
                port: PortVc { dim, dir, vc: 1 },
                state: 0,
            });
        };
        if dx < 0 {
            // All westward hops first; no other direction is legal yet.
            push(&mut out, Dimension::X, Direction::Minus);
            return out;
        }
        if dx > 0 {
            push(&mut out, Dimension::X, Direction::Plus);
        }
        if dy != 0 {
            push(&mut out, Dimension::Y, dir_of(dy));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::{find_delivery_failure, INJECT};

    #[test]
    fn westbound_is_deterministic() {
        let topo = Topology::mesh(&[5, 5]);
        let r = WestFirst::new();
        let src = topo.node_at(&[4, 0]);
        let dst = topo.node_at(&[0, 3]);
        let choices = r.route(&topo, src, INJECT, src, dst);
        assert_eq!(choices.len(), 1);
        assert_eq!(choices[0].port.dim, Dimension::X);
        assert_eq!(choices[0].port.dir, Direction::Minus);
    }

    #[test]
    fn eastbound_is_adaptive() {
        let topo = Topology::mesh(&[5, 5]);
        let r = WestFirst::new();
        let src = topo.node_at(&[0, 0]);
        let dst = topo.node_at(&[3, 3]);
        let choices = r.route(&topo, src, INJECT, src, dst);
        assert_eq!(choices.len(), 2);
    }

    #[test]
    fn delivers_everywhere() {
        let topo = Topology::mesh(&[5, 5]);
        assert_eq!(find_delivery_failure(&WestFirst::new(), &topo, 20), None);
    }
}
