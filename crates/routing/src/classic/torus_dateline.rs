//! Dateline dimension-order routing for k-ary n-cubes (tori).
//!
//! The paper's Assumption 3 covers k-ary n-cubes, and the note to
//! Theorem 2 observes that "each wraparound channel … can be seen as two
//! unidirectional channels and two U-turns". The standard way to make the
//! wrap rings deadlock-free is the dateline: two VCs per dimension, packets
//! start on VC 1 and switch to VC 2 when (and only when) they cross the
//! wrap link, never returning — an ascending channel-class order in EbDa
//! terms, position-dependent at the dateline.

use super::vc1_universe;
use crate::relation::{PortVc, RouteChoice, RouteState, RoutingRelation, INJECT};
use ebda_cdg::topology::{NodeId, Topology};
use ebda_core::{Channel, Dimension, Direction};

/// Deterministic dimension-order routing on tori with dateline VCs:
/// per dimension, take the shorter way around; use VC 1 until the hop that
/// crosses the wrap link, VC 2 from there on (within that dimension).
///
/// Needs 2 VCs per dimension. The routing state encodes, per dimension,
/// whether the packet has crossed that dimension's dateline (bit `d`).
#[derive(Debug, Clone)]
pub struct TorusDateline {
    universe: Vec<Channel>,
    dims: usize,
    dateline: bool,
}

impl TorusDateline {
    /// Creates the relation for an `n`-dimensional torus.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n > 8` (the state encoding uses one bit per
    /// dimension).
    pub fn new(n: usize) -> TorusDateline {
        assert!((1..=8).contains(&n), "1 to 8 dimensions supported");
        let mut universe = vc1_universe(n);
        for d in 0..n {
            universe.push(Channel::with_vc(
                Dimension::new(d as u8),
                Direction::Plus,
                2,
            ));
            universe.push(Channel::with_vc(
                Dimension::new(d as u8),
                Direction::Minus,
                2,
            ));
        }
        TorusDateline {
            universe,
            dims: n,
            dateline: true,
        }
    }

    /// The broken variant: identical shortest-way dimension-order routing
    /// but with a single VC and no dateline — the textbook torus deadlock,
    /// kept as a negative control for the verifiers and the simulator
    /// watchdog.
    pub fn without_dateline(n: usize) -> TorusDateline {
        assert!((1..=8).contains(&n), "1 to 8 dimensions supported");
        TorusDateline {
            universe: vc1_universe(n),
            dims: n,
            dateline: false,
        }
    }

    fn crossed(state: RouteState, d: usize) -> bool {
        state != INJECT && state & (1 << d) != 0
    }
}

impl RoutingRelation for TorusDateline {
    fn name(&self) -> &str {
        "torus-dateline"
    }

    fn universe(&self) -> &[Channel] {
        &self.universe
    }

    fn route(
        &self,
        topo: &Topology,
        node: NodeId,
        state: RouteState,
        _src: NodeId,
        dst: NodeId,
    ) -> Vec<RouteChoice> {
        let c = topo.coords(node);
        let d_coords = topo.coords(dst);
        let base = if state == INJECT { 0 } else { state };
        for d in 0..self.dims {
            let r = topo.radix()[d] as i64;
            let here = c[d];
            let want = d_coords[d];
            if here == want {
                continue;
            }
            // Shorter way around the ring (ties broken toward Plus).
            let fwd = ((want - here) % r + r) % r;
            let dir = if fwd * 2 <= r {
                Direction::Plus
            } else {
                Direction::Minus
            };
            // Does this hop traverse the wrap link?
            let wraps = match dir {
                Direction::Plus => here == r - 1,
                Direction::Minus => here == 0,
            };
            let crossed = self.dateline && (TorusDateline::crossed(state, d) || wraps);
            let vc = if crossed { 2 } else { 1 };
            let new_state = if crossed { base | (1 << d) } else { base };
            return vec![RouteChoice {
                port: PortVc {
                    dim: Dimension::new(d as u8),
                    dir,
                    vc,
                },
                state: new_state,
            }];
        }
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::{find_delivery_failure, walk_first_choice};

    #[test]
    fn takes_the_shorter_way_around() {
        let topo = Topology::torus(&[6, 6]);
        let r = TorusDateline::new(2);
        let src = topo.node_at(&[0, 0]);
        let dst = topo.node_at(&[5, 0]); // one hop west via the wrap
        let path = walk_first_choice(&r, &topo, src, dst, 8).unwrap();
        assert_eq!(path.len(), 2);
    }

    #[test]
    fn vc_switches_exactly_at_the_dateline() {
        let topo = Topology::torus(&[5, 5]);
        let r = TorusDateline::new(2);
        // From x=3 to x=0: shorter way is +X through the wrap at x=4.
        let src = topo.node_at(&[3, 0]);
        let dst = topo.node_at(&[0, 0]);
        let hop1 = r.route(&topo, src, INJECT, src, dst);
        assert_eq!(hop1[0].port.vc, 1, "pre-dateline hops ride VC 1");
        let at_wrap = topo.node_at(&[4, 0]);
        let hop2 = r.route(&topo, at_wrap, hop1[0].state, src, dst);
        assert_eq!(hop2[0].port.vc, 2, "the wrap hop rides VC 2");
    }

    #[test]
    fn delivers_everywhere_on_tori() {
        for radix in [[4usize, 4], [5, 3]] {
            let topo = Topology::torus(&radix);
            let r = TorusDateline::new(2);
            assert_eq!(
                find_delivery_failure(&r, &topo, 16),
                None,
                "failed on {radix:?} torus"
            );
        }
    }

    #[test]
    fn paths_are_minimal_with_wraparound() {
        let topo = Topology::torus(&[6, 6]);
        let r = TorusDateline::new(2);
        for (s, d) in [([0i64, 0], [5i64, 5]), ([1, 1], [4, 4]), ([5, 0], [0, 5])] {
            let src = topo.node_at(&s);
            let dst = topo.node_at(&d);
            let path = walk_first_choice(&r, &topo, src, dst, 16).unwrap();
            assert_eq!(
                path.len() as u64 - 1,
                topo.distance(src, dst),
                "{s:?} -> {d:?}"
            );
        }
    }
}
