//! Hand-written classic routing algorithms, used as cross-checks for the
//! EbDa-derived relations and as simulator baselines.
//!
//! Each implementation follows the published rules of its algorithm
//! directly (if/else on offsets), independent of the EbDa machinery, so
//! agreement between the two is genuine evidence the partitioning theory
//! reproduces the classics.

mod dimension_order;
mod duato;
mod elevator_first;
mod negative_first;
mod north_last;
mod odd_even;
mod torus_dateline;
mod up_down;
mod west_first;

pub use dimension_order::DimensionOrder;
pub use duato::DuatoFullyAdaptive;
pub use elevator_first::ElevatorFirst;
pub use negative_first::NegativeFirst;
pub use north_last::NorthLast;
pub use odd_even::OddEven;
pub use torus_dateline::TorusDateline;
pub use up_down::UpDown;
pub use west_first::WestFirst;

use ebda_cdg::topology::{NodeId, Topology};
use ebda_core::{Channel, Dimension, Direction};

/// Per-dimension offsets from `node` to `dst` (mesh semantics: plain
/// coordinate differences).
pub(crate) fn offsets(topo: &Topology, node: NodeId, dst: NodeId) -> Vec<i64> {
    let c = topo.coords(node);
    let d = topo.coords(dst);
    c.iter().zip(d.iter()).map(|(a, b)| b - a).collect()
}

/// The unrestricted VC-1 channel universe of an `n`-dimensional network.
pub(crate) fn vc1_universe(n: usize) -> Vec<Channel> {
    let mut v = Vec::with_capacity(2 * n);
    for d in 0..n {
        v.push(Channel::new(Dimension::new(d as u8), Direction::Plus));
        v.push(Channel::new(Dimension::new(d as u8), Direction::Minus));
    }
    v
}

/// Direction needed to reduce a nonzero offset.
pub(crate) fn dir_of(offset: i64) -> Direction {
    if offset > 0 {
        Direction::Plus
    } else {
        Direction::Minus
    }
}
