//! # ebda-routing — routing relations for the EbDa reproduction
//!
//! Two families of [`RoutingRelation`] implementations:
//!
//! * [`TurnRouting`] — the generic bridge from EbDa theory to a router: any
//!   partition sequence (or raw turn set) becomes a deadlock-free,
//!   dead-end-free, maximally adaptive minimal routing via shortest-path
//!   search over (node, channel-class) states. This is "Section 5.4" of the
//!   paper as code.
//! * [`classic`] — hand-written published algorithms (XY/YX/XYZ,
//!   West-First, North-Last, Negative-First, Odd-Even, Elevator-First, a
//!   Duato-style adaptive+escape baseline) used to cross-check the
//!   EbDa-derived relations and as simulator baselines.
//!
//! ```
//! use ebda_routing::{walk_first_choice, TurnRouting, Topology};
//! use ebda_core::catalog;
//!
//! let topo = Topology::mesh(&[4, 4]);
//! let west_first = TurnRouting::from_design("wf", &catalog::p3_west_first())?;
//! let path = walk_first_choice(&west_first, &topo, 0, 15, 10).unwrap();
//! assert_eq!(path.len(), 7); // 6 hops on a minimal path
//! # Ok::<(), ebda_core::EbdaError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod certify_relation;
pub mod classic;
pub mod multicast;
pub mod relation;
pub mod table;
pub mod turn_based;
pub mod verify;

pub use certify_relation::{certify_relation, ClassScheme, RelationCertificate};
pub use ebda_cdg::topology::{NodeId, Topology};
pub use relation::{
    find_delivery_failure, walk_first_choice, PortVc, RouteChoice, RouteState, RoutingRelation,
    INJECT,
};
pub use table::TableRouting;
pub use turn_based::TurnRouting;
pub use verify::{routing_cdg, verify_relation};

#[cfg(test)]
mod tests {
    use super::*;
    use ebda_core::catalog;
    use std::collections::{HashSet, VecDeque};

    /// Every hop-pair a classic relation can produce must be allowed by the
    /// corresponding EbDa-extracted turn set — the Section 6 cross-check.
    fn classic_within_ebda(
        classic: &dyn RoutingRelation,
        seq: &ebda_core::PartitionSeq,
        topo: &Topology,
    ) -> std::result::Result<(), String> {
        let extraction = ebda_core::extract_turns(seq).unwrap();
        let turns = extraction.turn_set();
        let universe = seq.channels();
        for src in topo.nodes() {
            for dst in topo.nodes() {
                if src == dst {
                    continue;
                }
                // BFS over (node, state), remembering the previous hop.
                let mut queue = VecDeque::new();
                let mut seen = HashSet::new();
                queue.push_back((src, INJECT, None::<(PortVc, NodeId)>));
                while let Some((node, state, last)) = queue.pop_front() {
                    for ch in classic.route(topo, node, state, src, dst) {
                        if let Some((prev_port, prev_node)) = last {
                            let pa = class_at(&universe, topo, prev_node, prev_port);
                            let pb = class_at(&universe, topo, node, ch.port);
                            let (Some(a), Some(b)) = (pa, pb) else {
                                return Err("hop outside the design universe".into());
                            };
                            if !turns.allows(a, b) {
                                return Err(format!(
                                    "classic {} takes turn {a} -> {b} not allowed by {seq}",
                                    classic.name()
                                ));
                            }
                        }
                        let next = topo.neighbor(node, ch.port.dim, ch.port.dir).unwrap();
                        if seen.insert((next, ch.state, ch.port)) {
                            queue.push_back((next, ch.state, Some((ch.port, node))));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn class_at(
        universe: &[ebda_core::Channel],
        topo: &Topology,
        node: NodeId,
        port: PortVc,
    ) -> Option<ebda_core::Channel> {
        let coords = topo.coords(node);
        universe.iter().copied().find(|c| {
            c.dim == port.dim && c.dir == port.dir && c.vc == port.vc && c.class.contains(&coords)
        })
    }

    #[test]
    fn classics_stay_within_their_ebda_partitionings() {
        let topo = Topology::mesh(&[4, 4]);
        let cases: Vec<(Box<dyn RoutingRelation>, ebda_core::PartitionSeq)> = vec![
            (
                Box::new(classic::WestFirst::new()),
                catalog::p3_west_first(),
            ),
            (Box::new(classic::NorthLast::new()), catalog::north_last()),
            (
                Box::new(classic::NegativeFirst::new(2)),
                catalog::p4_negative_first(),
            ),
            (Box::new(classic::DimensionOrder::xy()), catalog::p1_xy()),
        ];
        for (relation, seq) in &cases {
            classic_within_ebda(relation.as_ref(), seq, &topo).unwrap();
        }
    }

    #[test]
    fn odd_even_is_within_its_partitioning() {
        let topo = Topology::mesh(&[5, 5]);
        classic_within_ebda(&classic::OddEven::new(), &catalog::odd_even(), &topo).unwrap();
    }

    #[test]
    fn rogue_routing_fails_the_cross_check() {
        // YX order violates west-first's prohibited NW/SW turns, so the
        // checker must reject it — proof the cross-check has teeth.
        let topo = Topology::mesh(&[3, 3]);
        let yx = classic::DimensionOrder::yx();
        let err = classic_within_ebda(&yx, &catalog::p3_west_first(), &topo).unwrap_err();
        assert!(err.contains("not allowed"), "unexpected error: {err}");
    }

    #[test]
    fn ebda_relations_offer_at_least_the_classic_choices() {
        // The EbDa-derived west-first must offer every hop the classic
        // west-first offers at injection.
        let topo = Topology::mesh(&[4, 4]);
        let ebda = TurnRouting::from_design("wf", &catalog::p3_west_first()).unwrap();
        let classic = classic::WestFirst::new();
        for src in topo.nodes() {
            for dst in topo.nodes() {
                if src == dst {
                    continue;
                }
                let c: HashSet<PortVc> = classic
                    .route(&topo, src, INJECT, src, dst)
                    .into_iter()
                    .map(|r| r.port)
                    .collect();
                let e: HashSet<PortVc> = ebda
                    .route(&topo, src, INJECT, src, dst)
                    .into_iter()
                    .map(|r| r.port)
                    .collect();
                assert!(
                    c.is_subset(&e),
                    "classic offers {c:?} but EbDa only {e:?} at {src}->{dst}"
                );
            }
        }
    }

    #[test]
    fn turn_based_trait_object_safety() {
        let r: Box<dyn RoutingRelation> =
            Box::new(TurnRouting::from_design("xy", &catalog::p1_xy()).unwrap());
        assert_eq!(r.name(), "xy");
    }
}
