//! Turn-set-driven routing: the bridge from EbDa's theory to a working
//! router.
//!
//! [`TurnRouting`] takes any extracted turn set (Theorems 1–3) and turns it
//! into a [`RoutingRelation`] by shortest-path search over the *product
//! graph* of (node, channel class) states. A hop is offered iff it lies on
//! some shortest legal path to the destination, which guarantees:
//!
//! * **deadlock freedom** — only turns of the (verified-acyclic) turn set
//!   are ever taken;
//! * **no dead ends** — candidates strictly decrease the legal distance, so
//!   a packet can always continue;
//! * **maximum adaptiveness within the turn set** — every hop on every
//!   shortest legal path is offered;
//! * **irregular-topology support** — on vertically partially connected 3D
//!   meshes the legal shortest path automatically detours via an elevator.

use crate::relation::{PortVc, RouteChoice, RouteState, RoutingRelation, INJECT};
use ebda_cdg::topology::{NodeId, Topology};
use ebda_core::{extract_turns, Channel, PartitionSeq, Result, TurnSet};
use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;

/// Distance value for unreachable states.
const UNREACHABLE: u32 = u32::MAX;

/// (topology key, per-destination distance tables).
type DistCache = (Option<Topology>, HashMap<NodeId, std::sync::Arc<Vec<u32>>>);

/// A routing relation derived from a class-level turn set.
pub struct TurnRouting {
    name: String,
    universe: Vec<Channel>,
    turns: TurnSet,
    /// allow[a][b]: may a packet on class `a` continue on class `b`?
    /// Row `k` (= universe.len()) is the injection state.
    allow: Vec<Vec<bool>>,
    /// Per-destination distance tables, built lazily and keyed to one
    /// topology (the cache resets if the relation is moved to another).
    dist_cache: Mutex<DistCache>,
}

impl std::fmt::Debug for TurnRouting {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TurnRouting")
            .field("name", &self.name)
            .field("universe", &self.universe)
            .field("turns", &self.turns.len())
            .finish()
    }
}

impl TurnRouting {
    /// Builds a relation from an explicit universe and turn set.
    ///
    /// # Panics
    ///
    /// Panics if the universe is empty or exceeds `u16::MAX - 1` classes.
    pub fn new(name: impl Into<String>, universe: Vec<Channel>, turns: TurnSet) -> TurnRouting {
        assert!(!universe.is_empty(), "a routing needs at least one channel");
        assert!(
            universe.len() < usize::from(u16::MAX),
            "too many channel classes"
        );
        let k = universe.len();
        let mut allow = vec![vec![false; k]; k + 1];
        for (a, &ca) in universe.iter().enumerate() {
            for (b, &cb) in universe.iter().enumerate() {
                allow[a][b] = turns.allows(ca, cb);
            }
        }
        #[allow(clippy::needless_range_loop)] // the index doubles as the dimension id
        for b in 0..k {
            allow[k][b] = true; // injection may start on any class
        }
        TurnRouting {
            name: name.into(),
            universe,
            turns,
            allow,
            dist_cache: Mutex::new((None, HashMap::new())),
        }
    }

    /// Builds a relation from an EbDa partition sequence by running the
    /// Theorem 1–3 turn extraction.
    ///
    /// ```
    /// use ebda_routing::{RoutingRelation, TurnRouting};
    /// use ebda_core::catalog;
    /// let r = TurnRouting::from_design("dyxy", &catalog::fig7b_dyxy())?;
    /// assert_eq!(r.universe().len(), 6);
    /// # Ok::<(), ebda_core::EbdaError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Returns the validation error if the design violates Theorem 1 or
    /// partition disjointness.
    pub fn from_design(name: impl Into<String>, seq: &PartitionSeq) -> Result<TurnRouting> {
        let extraction = extract_turns(seq)?;
        let universe = seq.channels();
        Ok(TurnRouting::new(name, universe, extraction.into_turn_set()))
    }

    /// The turn set driving this relation.
    pub fn turns(&self) -> &TurnSet {
        &self.turns
    }

    /// Legal distance (hops) from `node` in `state` to `dst`, or `None`
    /// when unreachable under the turn set.
    pub fn legal_distance(
        &self,
        topo: &Topology,
        node: NodeId,
        state: RouteState,
        dst: NodeId,
    ) -> Option<u32> {
        let dist = self.dist_table(topo, dst);
        let d = dist[self.state_index(node, state)];
        (d != UNREACHABLE).then_some(d)
    }

    fn state_index(&self, node: NodeId, state: RouteState) -> usize {
        let k = self.universe.len();
        let s = if state == INJECT { k } else { state as usize };
        node * (k + 1) + s
    }

    /// Returns (building if needed) the distance-to-`dst` table over
    /// (node, class) states. The cache is keyed to the topology: moving
    /// the relation to a different topology transparently rebuilds.
    fn dist_table(&self, topo: &Topology, dst: NodeId) -> std::sync::Arc<Vec<u32>> {
        {
            let mut guard = self.dist_cache.lock().expect("poisoned");
            let (cached_topo, tables) = &mut *guard;
            if cached_topo.as_ref() != Some(topo) {
                *cached_topo = Some(topo.clone());
                tables.clear();
            } else if let Some(t) = tables.get(&dst) {
                return t.clone();
            }
        }
        let table = std::sync::Arc::new(self.build_dist(topo, dst));
        self.dist_cache
            .lock()
            .expect("poisoned")
            .1
            .insert(dst, table.clone());
        table
    }

    /// Backward BFS from `dst` over reversed product-graph edges.
    fn build_dist(&self, topo: &Topology, dst: NodeId) -> Vec<u32> {
        let k = self.universe.len();
        let n = topo.node_count();
        let mut dist = vec![UNREACHABLE; n * (k + 1)];
        let mut queue = VecDeque::new();
        // Arriving at dst in any state (including injection = src == dst).
        for s in 0..=k {
            dist[dst * (k + 1) + s] = 0;
            queue.push_back((dst, s));
        }
        while let Some((node, s)) = queue.pop_front() {
            let d = dist[node * (k + 1) + s];
            // Predecessor states: (prev, ps) such that moving on class `s`
            // from prev lands on node, and ps allows continuing on s.
            if s == k {
                continue; // nothing precedes the injection state
            }
            let c = self.universe[s];
            let Some(prev) = topo.neighbor(node, c.dim, c.dir.opposite()) else {
                continue;
            };
            // The class must exist at the hop's source node.
            if !c.class.contains(&topo.coords(prev)) {
                continue;
            }
            for ps in 0..=k {
                if !self.allow[ps][s] {
                    continue;
                }
                let idx = prev * (k + 1) + ps;
                if dist[idx] == UNREACHABLE {
                    dist[idx] = d + 1;
                    queue.push_back((prev, ps));
                }
            }
        }
        dist
    }
}

impl RoutingRelation for TurnRouting {
    fn name(&self) -> &str {
        &self.name
    }

    fn universe(&self) -> &[Channel] {
        &self.universe
    }

    fn route(
        &self,
        topo: &Topology,
        node: NodeId,
        state: RouteState,
        src: NodeId,
        dst: NodeId,
    ) -> Vec<RouteChoice> {
        let mut out = Vec::new();
        self.route_into(topo, node, state, src, dst, &mut out);
        out
    }

    fn route_into(
        &self,
        topo: &Topology,
        node: NodeId,
        state: RouteState,
        _src: NodeId,
        dst: NodeId,
        out: &mut Vec<RouteChoice>,
    ) {
        out.clear();
        let dist = self.dist_table(topo, dst);
        let k = self.universe.len();
        let here = dist[self.state_index(node, state)];
        if here == UNREACHABLE || here == 0 {
            return;
        }
        let s = if state == INJECT { k } else { state as usize };
        let coords = topo.coords(node);
        for (ci, &c) in self.universe.iter().enumerate() {
            if !self.allow[s][ci] || !c.class.contains(&coords) {
                continue;
            }
            let Some(next) = topo.neighbor(node, c.dim, c.dir) else {
                continue;
            };
            if dist[next * (k + 1) + ci] == here - 1 {
                out.push(RouteChoice {
                    port: PortVc {
                        dim: c.dim,
                        dir: c.dir,
                        vc: c.vc,
                    },
                    state: ci as RouteState,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::{find_delivery_failure, walk_first_choice};
    use ebda_core::catalog;

    #[test]
    fn all_catalog_2d_designs_deliver_everywhere() {
        let topo = Topology::mesh(&[5, 5]);
        for (name, seq) in [
            ("xy", catalog::p1_xy()),
            ("p2", catalog::p2_partially_adaptive()),
            ("west-first", catalog::p3_west_first()),
            ("negative-first", catalog::p4_negative_first()),
            ("north-last", catalog::north_last()),
            ("dyxy", catalog::fig7b_dyxy()),
            ("fig7c", catalog::fig7c()),
            ("odd-even", catalog::odd_even()),
            ("hamiltonian", catalog::hamiltonian()),
        ] {
            let r = TurnRouting::from_design(name, &seq).unwrap();
            assert_eq!(
                find_delivery_failure(&r, &topo, 30),
                None,
                "{name} failed to deliver"
            );
        }
    }

    #[test]
    fn three_d_designs_deliver() {
        let topo = Topology::mesh(&[3, 3, 3]);
        for (name, seq) in [
            ("fig9b", catalog::fig9b()),
            ("fig9c", catalog::fig9c()),
            ("planar-adaptive", catalog::planar_adaptive(3)),
        ] {
            let r = TurnRouting::from_design(name, &seq).unwrap();
            assert_eq!(
                find_delivery_failure(&r, &topo, 30),
                None,
                "{name} failed to deliver"
            );
        }
    }

    #[test]
    fn routes_are_minimal_on_full_meshes() {
        let topo = Topology::mesh(&[6, 6]);
        let r = TurnRouting::from_design("north-last", &catalog::north_last()).unwrap();
        for (src, dst) in [(0usize, 35usize), (35, 0), (5, 30), (17, 22)] {
            let path = walk_first_choice(&r, &topo, src, dst, 64).unwrap();
            assert_eq!(path.len() as u64 - 1, topo.distance(src, dst));
        }
    }

    #[test]
    fn partial_3d_detours_via_elevator() {
        // Table 5's design on a partially connected 3x3x2 mesh: a packet in
        // a column without an elevator must detour, and the product-graph
        // distance makes the relation do it automatically.
        let topo = Topology::mesh(&[3, 3, 2])
            .with_partial_dim(ebda_core::Dimension::Z, [vec![0, 0], vec![2, 2]]);
        let r = TurnRouting::from_design("table5", &catalog::table5_partial3d()).unwrap();
        let src = topo.node_at(&[1, 1, 0]);
        let dst = topo.node_at(&[1, 1, 1]);
        let path = walk_first_choice(&r, &topo, src, dst, 32).unwrap();
        assert!(path.len() > 2, "must detour via an elevator column");
        assert_eq!(*path.last().unwrap(), dst);
        assert_eq!(find_delivery_failure(&r, &topo, 64), None);
    }

    #[test]
    fn turn_prohibitions_are_respected_on_every_branch() {
        // For north-last, no branch may ever turn out of north.
        let topo = Topology::mesh(&[4, 4]);
        let r = TurnRouting::from_design("north-last", &catalog::north_last()).unwrap();
        let universe = r.universe().to_vec();
        use std::collections::VecDeque;
        for src in topo.nodes() {
            for dst in topo.nodes() {
                if src == dst {
                    continue;
                }
                let mut queue = VecDeque::new();
                queue.push_back((src, INJECT));
                let mut seen = std::collections::HashSet::new();
                while let Some((node, state)) = queue.pop_front() {
                    for ch in r.route(&topo, node, state, src, dst) {
                        if state != INJECT {
                            let prev = universe[state as usize];
                            // Previous north => next must still be north.
                            if prev.dim == ebda_core::Dimension::Y
                                && prev.dir == ebda_core::Direction::Plus
                            {
                                assert_eq!(ch.port.dim, ebda_core::Dimension::Y);
                                assert_eq!(ch.port.dir, ebda_core::Direction::Plus);
                            }
                        }
                        let next = topo.neighbor(node, ch.port.dim, ch.port.dir).unwrap();
                        if seen.insert((next, ch.state)) {
                            queue.push_back((next, ch.state));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn ebda_dateline_design_routes_tori_minimally() {
        // The class-level dateline design drives a torus through the
        // generic turn router: minimal (wrap-aware) paths, full delivery.
        for radix in [[4usize, 4], [5, 3]] {
            let topo = Topology::torus(&radix);
            let seq = catalog::torus_dateline(&radix);
            let r = TurnRouting::from_design("dateline", &seq).unwrap();
            assert_eq!(
                find_delivery_failure(&r, &topo, 24),
                None,
                "failed on {radix:?}"
            );
            for (src, dst) in [(0usize, topo.node_count() - 1), (3, 0)] {
                let path = walk_first_choice(&r, &topo, src, dst, 24).unwrap();
                assert_eq!(
                    path.len() as u64 - 1,
                    topo.distance(src, dst),
                    "non-minimal on {radix:?}"
                );
            }
        }
    }

    #[test]
    fn reroutes_around_failed_links_using_theorem2_uturns() {
        // Theorem 2's note: U-turns matter for fault tolerance. Break the
        // only minimal link of a same-row pair; the design's allowed turns
        // (including the S->N U-turn north-last gets from Theorem 3) let
        // the packet detour instead of dead-ending.
        let base = Topology::mesh(&[4, 4]);
        let a = base.node_at(&[1, 3]);
        let topo = base.with_failed_link(a, ebda_core::Dimension::X, ebda_core::Direction::Plus);
        let r = TurnRouting::from_design("north-last", &catalog::north_last()).unwrap();
        let src = topo.node_at(&[0, 3]);
        let dst = topo.node_at(&[3, 3]);
        // The straight row is cut: a minimal path no longer exists.
        let path = walk_first_choice(&r, &topo, src, dst, 32).unwrap();
        assert!(path.len() - 1 > 3, "must detour: {path:?}");
        assert_eq!(*path.last().unwrap(), dst);
        // The detour requires a descent (Y-) and a climb back (Y+): only
        // legal because the turn set allows ending with north.
        let rows: Vec<i64> = path.iter().map(|&n| topo.coords(n)[1]).collect();
        assert!(rows.iter().any(|&y| y < 3), "detour leaves the row");
    }

    #[test]
    fn fault_detour_falls_back_to_unreachable_when_turns_forbid_it() {
        // XY routing cannot detour around the same fault for this pair:
        // once aligned in Y... actually XY (X+|X-|Y+|Y-) allows X-then-Y
        // only; a same-row pair with its row cut is unreachable.
        let base = Topology::mesh(&[4, 4]);
        let a = base.node_at(&[1, 3]);
        let topo = base.with_failed_link(a, ebda_core::Dimension::X, ebda_core::Direction::Plus);
        let r = TurnRouting::from_design("xy", &catalog::p1_xy()).unwrap();
        let src = topo.node_at(&[0, 3]);
        let dst = topo.node_at(&[3, 3]);
        // XY would need to leave the row southwards and come back north,
        // which its X-before-Y order forbids on the X legs after Y.
        assert!(
            r.route(&topo, src, INJECT, src, dst).is_empty(),
            "XY has no legal detour for a cut row at the top edge"
        );
    }

    #[test]
    fn cache_survives_topology_changes() {
        // The same relation used on two topologies (e.g. before and after
        // a link failure) must not serve stale distances.
        let r = TurnRouting::from_design("north-last", &catalog::north_last()).unwrap();
        let healthy = Topology::mesh(&[4, 4]);
        let src = healthy.node_at(&[0, 3]);
        let dst = healthy.node_at(&[3, 3]);
        assert_eq!(r.legal_distance(&healthy, src, INJECT, dst), Some(3));
        let faulty = healthy.clone().with_failed_link(
            healthy.node_at(&[1, 3]),
            ebda_core::Dimension::X,
            ebda_core::Direction::Plus,
        );
        // The cut row forces a detour: distance grows.
        let detour = r.legal_distance(&faulty, src, INJECT, dst).unwrap();
        assert!(detour > 3, "stale cache served the healthy distance");
        // And back again.
        assert_eq!(r.legal_distance(&healthy, src, INJECT, dst), Some(3));
    }

    #[test]
    fn unreachable_destination_reports_empty() {
        // A Y-only universe cannot move in X.
        let universe = ebda_core::parse_channels("Y+ Y-").unwrap();
        let r = TurnRouting::new("y-only", universe, TurnSet::new());
        let topo = Topology::mesh(&[3, 3]);
        let src = topo.node_at(&[0, 0]);
        let dst = topo.node_at(&[1, 0]);
        assert!(r.route(&topo, src, INJECT, src, dst).is_empty());
        assert_eq!(r.legal_distance(&topo, src, INJECT, dst), None);
    }

    #[test]
    fn distance_equals_manhattan_for_fully_adaptive() {
        let topo = Topology::mesh(&[5, 5]);
        let r = TurnRouting::from_design("dyxy", &catalog::fig7b_dyxy()).unwrap();
        for src in [0usize, 7, 24] {
            for dst in [3usize, 12, 20] {
                if src == dst {
                    continue;
                }
                assert_eq!(
                    r.legal_distance(&topo, src, INJECT, dst),
                    Some(topo.distance(src, dst) as u32)
                );
            }
        }
    }
}
