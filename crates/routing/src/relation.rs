//! The routing-relation interface shared by EbDa-derived and classic
//! algorithms.

use ebda_cdg::topology::{NodeId, Topology};
use ebda_core::{Channel, Dimension, Direction};
use std::fmt;

/// An output selection: move one hop along `dim` in `dir` using virtual
/// channel `vc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortVc {
    /// Dimension of the link to take.
    pub dim: Dimension,
    /// Direction along that dimension.
    pub dir: Direction,
    /// Virtual channel (1-based).
    pub vc: u8,
}

impl fmt::Display for PortVc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}{}", self.dim, self.vc, self.dir)
    }
}

/// Routing state carried in a packet header between hops. The meaning is
/// algorithm-specific (a channel-class index for turn-based routing, a
/// phase for Elevator-First); [`INJECT`] is the fresh-packet state.
pub type RouteState = u16;

/// The state of a packet that has not yet taken its first hop.
pub const INJECT: RouteState = u16::MAX;

/// One admissible next hop: the port/VC to request and the state the packet
/// carries if granted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteChoice {
    /// The output to request.
    pub port: PortVc,
    /// The packet's routing state after taking this hop.
    pub state: RouteState,
}

/// A routing relation: the function a router's routing unit computes.
///
/// Implementations must be deterministic (same inputs ⇒ same candidate
/// list) so simulations are reproducible; the *selection* among candidates
/// is the simulator's (or allocator's) job.
pub trait RoutingRelation: Send + Sync {
    /// Human-readable algorithm name.
    fn name(&self) -> &str;

    /// The channel-class universe of the algorithm — used to instantiate
    /// virtual channels and to verify the relation's channel dependency
    /// graph.
    fn universe(&self) -> &[Channel];

    /// Candidate next hops for a packet at `node` in routing state `state`,
    /// traveling from `src` to `dst`. An empty result at `node != dst`
    /// indicates a routing fault (valid relations never produce one for
    /// reachable destinations).
    fn route(
        &self,
        topo: &Topology,
        node: NodeId,
        state: RouteState,
        src: NodeId,
        dst: NodeId,
    ) -> Vec<RouteChoice>;

    /// Writes the candidates of [`RoutingRelation::route`] into `out`
    /// (cleared first). The default delegates to `route`; hot relations
    /// override it so per-hop routing reuses the caller's buffer instead
    /// of allocating — the simulator's VC-allocation loop depends on this.
    fn route_into(
        &self,
        topo: &Topology,
        node: NodeId,
        state: RouteState,
        src: NodeId,
        dst: NodeId,
        out: &mut Vec<RouteChoice>,
    ) {
        out.clear();
        out.extend(self.route(topo, node, state, src, dst));
    }

    /// Per-dimension virtual-channel budget the algorithm needs on `topo`.
    fn vcs(&self, topo: &Topology) -> Vec<u8> {
        let mut vcs = vec![1u8; topo.dims()];
        for c in self.universe() {
            if c.dim.index() < vcs.len() {
                vcs[c.dim.index()] = vcs[c.dim.index()].max(c.vc);
            }
        }
        vcs
    }
}

/// Walks a packet from `src` to `dst`, always taking the first candidate —
/// a convenience for tests and examples ("does the relation actually
/// deliver?"). Returns the node sequence, or `None` if the relation dead-
/// ends or exceeds `limit` hops.
pub fn walk_first_choice(
    relation: &dyn RoutingRelation,
    topo: &Topology,
    src: NodeId,
    dst: NodeId,
    limit: usize,
) -> Option<Vec<NodeId>> {
    let mut node = src;
    let mut state = INJECT;
    let mut path = vec![src];
    for _ in 0..limit {
        if node == dst {
            return Some(path);
        }
        let choices = relation.route(topo, node, state, src, dst);
        let first = choices.first()?;
        node = topo.neighbor(node, first.port.dim, first.port.dir)?;
        state = first.state;
        path.push(node);
    }
    (node == dst).then_some(path)
}

/// Exhaustively checks that `relation` delivers every source/destination
/// pair of `topo` along every candidate branch within `limit` hops, never
/// dead-ending. Returns the first failing `(src, dst)` pair, if any.
///
/// This is the functional-correctness companion to the structural CDG
/// check: acyclic dependencies *and* guaranteed delivery.
pub fn find_delivery_failure(
    relation: &dyn RoutingRelation,
    topo: &Topology,
    limit: usize,
) -> Option<(NodeId, NodeId)> {
    for src in topo.nodes() {
        for dst in topo.nodes() {
            if src == dst {
                continue;
            }
            if !delivers_all_branches(relation, topo, src, dst, limit) {
                return Some((src, dst));
            }
        }
    }
    None
}

fn delivers_all_branches(
    relation: &dyn RoutingRelation,
    topo: &Topology,
    src: NodeId,
    dst: NodeId,
    limit: usize,
) -> bool {
    // BFS over (node, state) pairs; every expanded state must either be at
    // dst or have at least one candidate, and all candidates stay within
    // the hop limit.
    use std::collections::{HashSet, VecDeque};
    let mut seen: HashSet<(NodeId, RouteState)> = HashSet::new();
    let mut queue: VecDeque<(NodeId, RouteState, usize)> = VecDeque::new();
    queue.push_back((src, INJECT, 0));
    seen.insert((src, INJECT));
    while let Some((node, state, hops)) = queue.pop_front() {
        if node == dst {
            continue;
        }
        if hops >= limit {
            return false;
        }
        let choices = relation.route(topo, node, state, src, dst);
        if choices.is_empty() {
            return false;
        }
        for ch in choices {
            let Some(next) = topo.neighbor(node, ch.port.dim, ch.port.dir) else {
                return false; // relation pointed at a missing link
            };
            if seen.insert((next, ch.state)) {
                queue.push_back((next, ch.state, hops + 1));
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy relation: always go +X on VC 1 (only delivers east-bound
    /// same-row pairs).
    struct EastOnly {
        universe: Vec<Channel>,
    }

    impl EastOnly {
        fn new() -> EastOnly {
            EastOnly {
                universe: vec![Channel::new(Dimension::X, Direction::Plus)],
            }
        }
    }

    impl RoutingRelation for EastOnly {
        fn name(&self) -> &str {
            "east-only"
        }
        fn universe(&self) -> &[Channel] {
            &self.universe
        }
        fn route(
            &self,
            topo: &Topology,
            node: NodeId,
            _state: RouteState,
            _src: NodeId,
            dst: NodeId,
        ) -> Vec<RouteChoice> {
            let c = topo.coords(node);
            let d = topo.coords(dst);
            if d[0] > c[0] {
                vec![RouteChoice {
                    port: PortVc {
                        dim: Dimension::X,
                        dir: Direction::Plus,
                        vc: 1,
                    },
                    state: 0,
                }]
            } else {
                Vec::new()
            }
        }
    }

    #[test]
    fn walk_follows_choices() {
        let topo = Topology::mesh(&[4, 1]);
        let r = EastOnly::new();
        let path = walk_first_choice(&r, &topo, 0, 3, 10).unwrap();
        assert_eq!(path, vec![0, 1, 2, 3]);
    }

    #[test]
    fn walk_detects_dead_ends() {
        let topo = Topology::mesh(&[4, 2]);
        let r = EastOnly::new();
        // Different row: the relation dead-ends immediately.
        let src = topo.node_at(&[0, 0]);
        let dst = topo.node_at(&[0, 1]);
        assert!(walk_first_choice(&r, &topo, src, dst, 10).is_none());
    }

    #[test]
    fn delivery_check_flags_partial_relations() {
        let topo = Topology::mesh(&[3, 3]);
        let r = EastOnly::new();
        assert!(find_delivery_failure(&r, &topo, 10).is_some());
    }

    #[test]
    fn default_vcs_come_from_universe() {
        let topo = Topology::mesh(&[3, 3]);
        let r = EastOnly::new();
        assert_eq!(r.vcs(&topo), vec![1, 1]);
    }
}
