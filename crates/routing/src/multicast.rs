//! Dual-path multicast over the Hamiltonian-path strategy (Lin & Ni, the
//! paper's reference 26) — the original context of Section 6.2's second
//! case study.
//!
//! Nodes of a 2D mesh are labelled along a boustrophedon (snake)
//! Hamiltonian path. The label order splits the channels into the *high*
//! subnetwork `{Xe+, Xo-, Y+}` (every hop increases the label) and the
//! *low* subnetwork `{Xe-, Xo+, Y-}` — exactly the two partitions of
//! [`ebda_core::catalog::hamiltonian`]. A multicast sends one copy up the
//! high subnetwork visiting the higher-labelled destinations in ascending
//! order, and one copy down the low subnetwork in descending order;
//! deadlock freedom follows from each subnetwork being one EbDa partition.

use crate::relation::walk_first_choice;
use crate::turn_based::TurnRouting;
use ebda_cdg::topology::{NodeId, Topology};
use ebda_core::{Channel, Dimension, Direction, Parity, Partition, PartitionSeq};

/// The snake (boustrophedon) Hamiltonian label of a node in a 2D mesh:
/// row-major, with odd rows reversed.
///
/// ```
/// use ebda_routing::multicast::hamiltonian_label;
/// use ebda_routing::Topology;
/// let topo = Topology::mesh(&[3, 3]);
/// assert_eq!(hamiltonian_label(&topo, topo.node_at(&[2, 0])), 2);
/// assert_eq!(hamiltonian_label(&topo, topo.node_at(&[2, 1])), 3); // row 1 reversed
/// assert_eq!(hamiltonian_label(&topo, topo.node_at(&[0, 1])), 5);
/// ```
///
/// # Panics
///
/// Panics if the topology is not two-dimensional.
pub fn hamiltonian_label(topo: &Topology, node: NodeId) -> usize {
    assert_eq!(topo.dims(), 2, "hamiltonian labelling is 2D");
    let c = topo.coords(node);
    let (x, y) = (c[0] as usize, c[1] as usize);
    let w = topo.radix()[0];
    if y % 2 == 0 {
        y * w + x
    } else {
        y * w + (w - 1 - x)
    }
}

/// A planned dual-path multicast: the ordered visit chains and the full
/// hop-by-hop node paths of the two copies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MulticastPlan {
    /// Destinations with labels above the source, in ascending label
    /// order (the high copy's visit order).
    pub high_chain: Vec<NodeId>,
    /// Destinations with labels below the source, in descending label
    /// order (the low copy's visit order).
    pub low_chain: Vec<NodeId>,
    /// Node path of the high copy (starts at the source; empty when no
    /// high destinations exist).
    pub high_path: Vec<NodeId>,
    /// Node path of the low copy.
    pub low_path: Vec<NodeId>,
}

impl MulticastPlan {
    /// Total hops taken by both copies.
    pub fn total_hops(&self) -> usize {
        let hops = |p: &Vec<NodeId>| p.len().saturating_sub(1);
        hops(&self.high_path) + hops(&self.low_path)
    }
}

/// Plans dual-path multicasts on one 2D mesh.
#[derive(Debug)]
pub struct DualPathMulticast {
    high: TurnRouting,
    low: TurnRouting,
}

impl DualPathMulticast {
    /// Builds the two subnetwork routers from the Hamiltonian partitioning.
    pub fn new() -> DualPathMulticast {
        let xe = |dir| Channel::new(Dimension::X, dir).at_parity(Dimension::Y, Parity::Even);
        let xo = |dir| Channel::new(Dimension::X, dir).at_parity(Dimension::Y, Parity::Odd);
        let high = Partition::from_channels([
            xe(Direction::Plus),
            xo(Direction::Minus),
            Channel::new(Dimension::Y, Direction::Plus),
        ])
        .expect("static channels are disjoint");
        let low = Partition::from_channels([
            xe(Direction::Minus),
            xo(Direction::Plus),
            Channel::new(Dimension::Y, Direction::Minus),
        ])
        .expect("static channels are disjoint");
        DualPathMulticast {
            high: TurnRouting::from_design(
                "hamiltonian-high",
                &PartitionSeq::from_partitions(vec![high]),
            )
            .expect("single partition is a valid design"),
            low: TurnRouting::from_design(
                "hamiltonian-low",
                &PartitionSeq::from_partitions(vec![low]),
            )
            .expect("single partition is a valid design"),
        }
    }

    /// Plans the multicast from `src` to `dests` on `topo`.
    ///
    /// Duplicate destinations and the source itself are dropped. Each copy
    /// visits its destinations in Hamiltonian-label order, so every hop
    /// stays inside one subnetwork and the whole multicast is
    /// deadlock-free by Theorem 1.
    ///
    /// # Panics
    ///
    /// Panics if the topology is not 2D, or if a leg cannot be routed
    /// (impossible on a full mesh — the subnetworks connect every
    /// label-ordered pair).
    pub fn plan(&self, topo: &Topology, src: NodeId, dests: &[NodeId]) -> MulticastPlan {
        assert_eq!(topo.dims(), 2, "dual-path multicast is 2D");
        let src_label = hamiltonian_label(topo, src);
        let mut high_chain: Vec<NodeId> = dests
            .iter()
            .copied()
            .filter(|&d| hamiltonian_label(topo, d) > src_label)
            .collect();
        high_chain.sort_by_key(|&d| hamiltonian_label(topo, d));
        high_chain.dedup();
        let mut low_chain: Vec<NodeId> = dests
            .iter()
            .copied()
            .filter(|&d| hamiltonian_label(topo, d) < src_label)
            .collect();
        low_chain.sort_by_key(|&d| std::cmp::Reverse(hamiltonian_label(topo, d)));
        low_chain.dedup();

        let walk_chain = |relation: &TurnRouting, chain: &[NodeId]| -> Vec<NodeId> {
            if chain.is_empty() {
                return Vec::new();
            }
            let mut path = vec![src];
            let mut at = src;
            for &next in chain {
                let leg = walk_first_choice(relation, topo, at, next, 4 * topo.node_count())
                    .expect("subnetwork connects label-ordered pairs");
                path.extend_from_slice(&leg[1..]);
                at = next;
            }
            path
        };
        MulticastPlan {
            high_path: walk_chain(&self.high, &high_chain),
            low_path: walk_chain(&self.low, &low_chain),
            high_chain,
            low_chain,
        }
    }
}

impl Default for DualPathMulticast {
    fn default() -> Self {
        DualPathMulticast::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_form_a_hamiltonian_path() {
        let topo = Topology::mesh(&[4, 4]);
        // Labels are a permutation of 0..16 and consecutive labels are
        // adjacent nodes.
        let mut by_label = [usize::MAX; 16];
        for n in topo.nodes() {
            by_label[hamiltonian_label(&topo, n)] = n;
        }
        assert!(by_label.iter().all(|&n| n != usize::MAX));
        for w in by_label.windows(2) {
            assert_eq!(topo.distance(w[0], w[1]), 1, "labels {w:?} not adjacent");
        }
    }

    #[test]
    fn high_copy_visits_ascending_labels_monotonically() {
        let topo = Topology::mesh(&[5, 5]);
        let mc = DualPathMulticast::new();
        let src = topo.node_at(&[2, 1]);
        let dests = [
            topo.node_at(&[4, 4]),
            topo.node_at(&[0, 3]),
            topo.node_at(&[4, 0]), // below src in label order
            topo.node_at(&[1, 2]),
        ];
        let plan = mc.plan(&topo, src, &dests);
        assert_eq!(plan.high_chain.len() + plan.low_chain.len(), 4);
        // Labels along the high path strictly increase.
        let labels: Vec<usize> = plan
            .high_path
            .iter()
            .map(|&n| hamiltonian_label(&topo, n))
            .collect();
        for w in labels.windows(2) {
            assert!(w[0] < w[1], "high path label regressed: {labels:?}");
        }
        // Labels along the low path strictly decrease.
        let labels: Vec<usize> = plan
            .low_path
            .iter()
            .map(|&n| hamiltonian_label(&topo, n))
            .collect();
        for w in labels.windows(2) {
            assert!(w[0] > w[1], "low path label regressed: {labels:?}");
        }
    }

    #[test]
    fn every_destination_is_visited() {
        let topo = Topology::mesh(&[4, 4]);
        let mc = DualPathMulticast::new();
        for src in topo.nodes() {
            let dests: Vec<NodeId> = topo.nodes().filter(|&d| d != src && d % 3 == 0).collect();
            let plan = mc.plan(&topo, src, &dests);
            for &d in &dests {
                assert!(
                    plan.high_path.contains(&d) || plan.low_path.contains(&d),
                    "destination {d} missed from {src}"
                );
            }
        }
    }

    #[test]
    fn paths_are_contiguous_walks() {
        let topo = Topology::mesh(&[5, 4]);
        let mc = DualPathMulticast::new();
        let src = topo.node_at(&[0, 0]);
        let dests: Vec<NodeId> = vec![topo.node_at(&[4, 3]), topo.node_at(&[2, 2])];
        let plan = mc.plan(&topo, src, &dests);
        for path in [&plan.high_path, &plan.low_path] {
            for w in path.windows(2) {
                assert_eq!(topo.distance(w[0], w[1]), 1);
            }
        }
        assert!(plan.total_hops() > 0);
        assert!(plan.low_path.is_empty(), "src is label 0: no low copy");
    }

    #[test]
    fn duplicates_and_self_are_dropped() {
        let topo = Topology::mesh(&[3, 3]);
        let mc = DualPathMulticast::new();
        let src = topo.node_at(&[1, 1]);
        let d = topo.node_at(&[2, 2]);
        let plan = mc.plan(&topo, src, &[d, d, src]);
        assert_eq!(plan.high_chain, vec![d]);
        assert!(plan.low_chain.is_empty());
    }
}
