//! Routing-relation-level CDG verification.
//!
//! The class-level turn-set check in `ebda-cdg` is a safe over-
//! approximation: it adds a dependency wherever the turn set *could* allow
//! a transition, regardless of destinations. Some correct designs — most
//! importantly dateline virtual channels on tori — are rejected by that
//! check because a class-level cycle exists that no packet can actually
//! traverse. This module builds the *exact* channel dependency graph of a
//! [`RoutingRelation`]: a dependency `a → b` is added only if some
//! (source, destination, routing-state) combination makes the relation
//! continue from concrete channel `a` onto concrete channel `b`.

use crate::relation::{RoutingRelation, INJECT};
use ebda_cdg::graph::{Cdg, ConcreteChannel};
use ebda_cdg::topology::Topology;
use std::collections::{HashMap, HashSet, VecDeque};

/// Builds the exact CDG of a routing relation on a topology by exploring
/// every (source, destination) pair's reachable `(node, state)` space and
/// recording the concrete channel pairs taken consecutively.
///
/// Exhaustive in the topology size — intended for verification-scale
/// networks (hundreds of nodes), like the rest of the CDG machinery.
pub fn routing_cdg(topo: &Topology, relation: &dyn RoutingRelation) -> Cdg {
    let vcs = relation.vcs(topo);
    let mut deps: HashSet<(ConcreteChannel, ConcreteChannel)> = HashSet::new();

    for src in topo.nodes() {
        for dst in topo.nodes() {
            if src == dst {
                continue;
            }
            // BFS over (node, state, incoming concrete channel).
            let mut queue: VecDeque<(usize, u16, Option<ConcreteChannel>)> = VecDeque::new();
            let mut seen: HashSet<(usize, u16, Option<ConcreteChannel>)> = HashSet::new();
            queue.push_back((src, INJECT, None));
            seen.insert((src, INJECT, None));
            while let Some((node, state, via)) = queue.pop_front() {
                if node == dst {
                    continue;
                }
                for ch in relation.route(topo, node, state, src, dst) {
                    let Some(next) = topo.neighbor(node, ch.port.dim, ch.port.dir) else {
                        continue;
                    };
                    let out = ConcreteChannel {
                        from: node,
                        to: next,
                        dim: ch.port.dim,
                        dir: ch.port.dir,
                        vc: ch.port.vc,
                    };
                    if let Some(prev) = via {
                        deps.insert((prev, out));
                    }
                    let key = (next, ch.state, Some(out));
                    if seen.insert(key) {
                        queue.push_back((next, ch.state, Some(out)));
                    }
                }
            }
        }
    }
    // Materialize through the generic rule constructor.
    let mut by_pair: HashMap<(ConcreteChannel, ConcreteChannel), ()> = HashMap::new();
    for d in deps {
        by_pair.insert(d, ());
    }
    Cdg::from_rule(topo, &vcs, move |a, b| by_pair.contains_key(&(a, b)))
}

/// Verifies a routing relation exactly: builds [`routing_cdg`] and checks
/// it for cycles. Returns the witness cycle if one exists.
pub fn verify_relation(
    topo: &Topology,
    relation: &dyn RoutingRelation,
) -> Result<(), Vec<ConcreteChannel>> {
    match routing_cdg(topo, relation).find_cycle() {
        None => Ok(()),
        Some(cycle) => Err(cycle),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classic::{DimensionOrder, ElevatorFirst, OddEven, TorusDateline};
    use crate::turn_based::TurnRouting;
    use ebda_core::catalog;

    #[test]
    fn xy_relation_is_exactly_acyclic() {
        let topo = Topology::mesh(&[4, 4]);
        assert!(verify_relation(&topo, &DimensionOrder::xy()).is_ok());
    }

    #[test]
    fn ebda_relations_acyclic_at_relation_level() {
        let topo = Topology::mesh(&[4, 4]);
        for (name, seq) in [
            ("wf", catalog::p3_west_first()),
            ("dyxy", catalog::fig7b_dyxy()),
            ("oe", catalog::odd_even()),
        ] {
            let r = TurnRouting::from_design(name, &seq).unwrap();
            assert!(verify_relation(&topo, &r).is_ok(), "{name} has a cycle");
        }
    }

    #[test]
    fn odd_even_classic_is_exactly_acyclic() {
        let topo = Topology::mesh(&[5, 5]);
        assert!(verify_relation(&topo, &OddEven::new()).is_ok());
    }

    #[test]
    fn elevator_first_is_exactly_acyclic() {
        let topo = Topology::mesh(&[3, 3, 2])
            .with_partial_dim(ebda_core::Dimension::Z, [vec![0, 0], vec![2, 2]]);
        let r = ElevatorFirst::new([vec![0, 0], vec![2, 2]]);
        assert!(verify_relation(&topo, &r).is_ok());
    }

    #[test]
    fn naive_torus_routing_has_a_real_cycle() {
        // Shortest-way dimension-order routing on a torus without
        // datelines: the wrap rings close dependency cycles even at the
        // exact relation level.
        let topo = Topology::torus(&[4, 4]);
        let err = verify_relation(&topo, &TorusDateline::without_dateline(2)).unwrap_err();
        assert!(err.len() >= 4, "ring cycles span the whole ring");
    }

    #[test]
    fn mesh_restricted_xy_on_torus_is_acyclic() {
        // Classic XY never uses the wrap links (mesh offsets), so the
        // exact CDG on a torus stays acyclic — the wraps sit idle.
        let topo = Topology::torus(&[4, 4]);
        assert!(verify_relation(&topo, &DimensionOrder::xy()).is_ok());
    }

    #[test]
    fn dateline_torus_routing_is_exactly_acyclic() {
        // The class-level check rejects dateline designs (the VC-2 ring is
        // a class-level cycle no packet traverses fully); the exact check
        // accepts them — the reason this module exists.
        let topo = Topology::torus(&[4, 4]);
        let r = TorusDateline::new(2);
        assert!(verify_relation(&topo, &r).is_ok());
    }
}
