//! Certification of *routing functions*: observe every turn a
//! [`RoutingRelation`] can take on a topology, lift the observations to
//! channel classes (refining by node parity when needed), and ask
//! [`ebda_core::certify`] for a partitioning certificate.
//!
//! This is the EbDa verification story applied to running code rather than
//! a paper description: the classic Odd-Even implementation, whose plain
//! turn footprint is *not* certifiable, certifies as soon as the lifting
//! splits channels by column parity — exactly the classes Section 6.2
//! chooses by insight.

use crate::relation::{PortVc, RoutingRelation, INJECT};
use ebda_cdg::topology::{NodeId, Topology};
use ebda_core::certify::certify;
use ebda_core::{Channel, ChannelClass, Dimension, Parity, PartitionSeq, Turn, TurnSet};
use std::collections::HashSet;

/// BFS visit key: (node, routing state, incoming hop).
type VisitKey = (NodeId, u16, Option<(PortVc, NodeId)>);

/// How observed channels are lifted to channel classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClassScheme {
    /// One class per (dimension, direction, VC) — the paper's default.
    Plain,
    /// Additionally split every channel by the parity of the from-node
    /// coordinate along the given axis (Odd-Even's "columns" for axis X).
    ParityOf(Dimension),
    /// Split the channels *along* the given dimension into one class per
    /// from-node coordinate (other dimensions stay plain) — the refinement
    /// that discovers torus dateline structure.
    CoordOf(Dimension),
}

impl std::fmt::Display for ClassScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClassScheme::Plain => write!(f, "plain channel classes"),
            ClassScheme::ParityOf(d) => write!(f, "classes split by {d}-parity"),
            ClassScheme::CoordOf(d) => write!(f, "{d}-channels split per coordinate"),
        }
    }
}

/// A successful relation-level certification.
#[derive(Debug, Clone)]
pub struct RelationCertificate {
    /// The partitioning certificate.
    pub design: PartitionSeq,
    /// The class scheme that made certification possible.
    pub scheme: ClassScheme,
    /// The observed class-level turns the certificate covers.
    pub observed_turns: TurnSet,
}

/// Attempts to certify a routing relation by observing its behaviour on
/// `topo` and trying progressively finer channel-class schemes: plain
/// first, then a parity split along each dimension, then a per-coordinate
/// split.
///
/// Class-level reasoning alone assumes mesh-monotone progress (a wrap ring
/// hides a same-class cycle no turn set records), so the procedure first
/// checks the **exact** relation-level CDG ([`crate::verify_relation`])
/// and refuses outright when it is cyclic — the compound verdict is sound
/// on any topology, wraps included.
///
/// Returns the first scheme that certifies. `None` means the relation is
/// either genuinely cyclic (exact check failed) or beyond this scheme
/// ladder's expressiveness.
pub fn certify_relation(
    topo: &Topology,
    relation: &dyn RoutingRelation,
) -> Option<RelationCertificate> {
    if crate::verify::verify_relation(topo, relation).is_err() {
        return None; // exactly cyclic: nothing to certify
    }
    let mut schemes = vec![ClassScheme::Plain];
    for d in 0..topo.dims() {
        schemes.push(ClassScheme::ParityOf(Dimension::new(d as u8)));
    }
    for d in 0..topo.dims() {
        schemes.push(ClassScheme::CoordOf(Dimension::new(d as u8)));
    }
    for scheme in schemes {
        let (universe, turns) = observe(topo, relation, scheme);
        if let Ok(design) = certify(&universe, &turns) {
            return Some(RelationCertificate {
                design,
                scheme,
                observed_turns: turns,
            });
        }
    }
    None
}

/// Collects every (class-level) turn the relation can take on the topology
/// under the given lifting scheme, plus the class universe it touches.
fn observe(
    topo: &Topology,
    relation: &dyn RoutingRelation,
    scheme: ClassScheme,
) -> (Vec<Channel>, TurnSet) {
    let mut turns = TurnSet::new();
    let mut universe: Vec<Channel> = Vec::new();
    let remember = |c: Channel, universe: &mut Vec<Channel>| {
        if !universe.contains(&c) {
            universe.push(c);
        }
    };
    for src in topo.nodes() {
        for dst in topo.nodes() {
            if src == dst {
                continue;
            }
            let mut queue = vec![(src, INJECT, None::<(PortVc, NodeId)>)];
            let mut seen: HashSet<VisitKey> = HashSet::new();
            while let Some((node, state, last)) = queue.pop() {
                for ch in relation.route(topo, node, state, src, dst) {
                    let Some(next) = topo.neighbor(node, ch.port.dim, ch.port.dir) else {
                        continue;
                    };
                    let to_class = lift(topo, node, ch.port, scheme);
                    remember(to_class, &mut universe);
                    if let Some((prev_port, prev_node)) = last {
                        let from_class = lift(topo, prev_node, prev_port, scheme);
                        if from_class != to_class {
                            turns.insert(Turn::new(from_class, to_class));
                        }
                    }
                    let key = (next, ch.state, Some((ch.port, node)));
                    if seen.insert(key) {
                        queue.push((next, ch.state, Some((ch.port, node))));
                    }
                }
            }
        }
    }
    (universe, turns)
}

/// Lifts a concrete hop (a port taken at a node) to a channel class.
fn lift(topo: &Topology, node: NodeId, port: PortVc, scheme: ClassScheme) -> Channel {
    let base = Channel::with_vc(port.dim, port.dir, port.vc);
    match scheme {
        ClassScheme::Plain => base,
        ClassScheme::ParityOf(axis) => {
            let coords = topo.coords(node);
            let parity = Parity::of(coords[axis.index()]);
            Channel {
                class: ChannelClass::AtParity { axis, parity },
                ..base
            }
        }
        ClassScheme::CoordOf(axis) => {
            if port.dim != axis {
                return base;
            }
            let coords = topo.coords(node);
            Channel {
                class: ebda_core::ChannelClass::AtCoord {
                    axis,
                    value: coords[axis.index()],
                },
                ..base
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classic::{DimensionOrder, NegativeFirst, OddEven, WestFirst};
    use crate::turn_based::TurnRouting;
    use ebda_core::catalog;

    #[test]
    fn xy_certifies_with_plain_classes() {
        let topo = Topology::mesh(&[4, 4]);
        let cert = certify_relation(&topo, &DimensionOrder::xy()).expect("certifiable");
        assert_eq!(cert.scheme, ClassScheme::Plain);
        assert!(cert.design.validate().is_ok());
    }

    #[test]
    fn west_first_and_negative_first_certify_plain() {
        let topo = Topology::mesh(&[5, 5]);
        for relation in [
            Box::new(WestFirst::new()) as Box<dyn RoutingRelation>,
            Box::new(NegativeFirst::new(2)),
        ] {
            let cert = certify_relation(&topo, relation.as_ref()).expect("certifiable");
            assert_eq!(cert.scheme, ClassScheme::Plain, "{}", relation.name());
        }
    }

    #[test]
    fn odd_even_needs_and_gets_the_column_split() {
        // The headline: Chiu's ROUTE function certifies only once channels
        // are split by column (X) parity — the classes the paper picks by
        // hand in Section 6.2, discovered automatically here.
        let topo = Topology::mesh(&[6, 6]);
        let cert = certify_relation(&topo, &OddEven::new()).expect("certifiable");
        assert_eq!(cert.scheme, ClassScheme::ParityOf(Dimension::X));
        assert!(cert.design.validate().is_ok());
        // The certificate's partitions mirror the odd-even structure:
        // Y channels split by column with X- before X+.
        assert!(cert.design.len() >= 2);
    }

    #[test]
    fn torus_dateline_certifies_and_the_broken_variant_does_not() {
        // On tori the exact-CDG pre-check is what separates the two: the
        // dateline relation is exactly acyclic and certifies (its observed
        // turn set is a one-way ladder), while the no-dateline variant's
        // ring cycle lives entirely in same-class straight-throughs that
        // no turn set records — the pre-check catches it.
        let topo = Topology::torus(&[4, 4]);
        let cert = certify_relation(&topo, &crate::classic::TorusDateline::new(2))
            .expect("dateline must certify");
        assert!(cert.design.validate().is_ok());
        assert!(
            certify_relation(&topo, &crate::classic::TorusDateline::without_dateline(2)).is_none()
        );
    }

    #[test]
    fn ebda_derived_relations_certify_plain() {
        let topo = Topology::mesh(&[4, 4]);
        let r = TurnRouting::from_design("dyxy", &catalog::fig7b_dyxy()).unwrap();
        let cert = certify_relation(&topo, &r).expect("certifiable");
        assert_eq!(cert.scheme, ClassScheme::Plain);
    }

    #[test]
    fn broken_relations_are_rejected_by_every_scheme() {
        // YX+XY mixed (all turns, minimal): no scheme can certify it, and
        // indeed its exact CDG is cyclic.
        struct AllMinimal(Vec<Channel>);
        impl RoutingRelation for AllMinimal {
            fn name(&self) -> &str {
                "all-minimal"
            }
            fn universe(&self) -> &[Channel] {
                &self.0
            }
            fn route(
                &self,
                topo: &Topology,
                node: NodeId,
                _state: u16,
                _src: NodeId,
                dst: NodeId,
            ) -> Vec<crate::relation::RouteChoice> {
                let c = topo.coords(node);
                let d = topo.coords(dst);
                let mut out = Vec::new();
                for (dim, delta) in [(Dimension::X, d[0] - c[0]), (Dimension::Y, d[1] - c[1])] {
                    if delta != 0 {
                        out.push(crate::relation::RouteChoice {
                            port: PortVc {
                                dim,
                                dir: if delta > 0 {
                                    ebda_core::Direction::Plus
                                } else {
                                    ebda_core::Direction::Minus
                                },
                                vc: 1,
                            },
                            state: 0,
                        });
                    }
                }
                out
            }
        }
        let topo = Topology::mesh(&[4, 4]);
        let rogue = AllMinimal(ebda_core::parse_channels("X+ X- Y+ Y-").unwrap());
        assert!(certify_relation(&topo, &rogue).is_none());
        assert!(crate::verify::verify_relation(&topo, &rogue).is_err());
    }
}
