//! Compiled routing tables: freeze any [`RoutingRelation`] on a fixed
//! topology into a lookup table — the artifact a table-driven router
//! (LBDR-style) would be programmed with, and an O(1) hot path for large
//! simulations.

use crate::relation::{RouteChoice, RouteState, RoutingRelation, INJECT};
use ebda_cdg::topology::{NodeId, Topology};
use ebda_core::Channel;
use std::collections::HashMap;

/// A routing relation compiled to a dense table over
/// `(node, state, destination)`.
///
/// Compilation explores exactly the `(node, state)` pairs reachable for
/// each destination, so the table is total over everything the original
/// relation can encounter and empty elsewhere. The compiled relation is
/// behaviourally identical to the source (same candidates in the same
/// order); `route` becomes a hash lookup.
pub struct TableRouting {
    name: String,
    universe: Vec<Channel>,
    /// `(node, state, dst) -> candidates`.
    table: HashMap<(NodeId, RouteState, NodeId), Vec<RouteChoice>>,
    /// The topology fingerprint the table was compiled for.
    topo: Topology,
}

impl std::fmt::Debug for TableRouting {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TableRouting")
            .field("name", &self.name)
            .field("entries", &self.table.len())
            .finish()
    }
}

impl TableRouting {
    /// Compiles `relation` on `topo`.
    ///
    /// Source-dependent relations (ones that read the `src` argument, like
    /// Odd-Even) cannot be compiled into a `(node, state, dst)` table;
    /// compilation detects the dependence by probing every source and
    /// returns `None` for such relations.
    pub fn compile(
        name: impl Into<String>,
        topo: &Topology,
        relation: &dyn RoutingRelation,
    ) -> Option<TableRouting> {
        let mut table: HashMap<(NodeId, RouteState, NodeId), Vec<RouteChoice>> = HashMap::new();
        for dst in topo.nodes() {
            for src in topo.nodes() {
                if src == dst {
                    continue;
                }
                // Explore reachable (node, state) pairs from this source.
                let mut stack = vec![(src, INJECT)];
                let mut seen = std::collections::HashSet::new();
                seen.insert((src, INJECT));
                while let Some((node, state)) = stack.pop() {
                    if node == dst {
                        continue;
                    }
                    let candidates = relation.route(topo, node, state, src, dst);
                    match table.entry((node, state, dst)) {
                        std::collections::hash_map::Entry::Occupied(e) => {
                            if e.get() != &candidates {
                                return None; // source-dependent relation
                            }
                        }
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert(candidates.clone());
                        }
                    }
                    for ch in candidates {
                        if let Some(next) = topo.neighbor(node, ch.port.dim, ch.port.dir) {
                            if seen.insert((next, ch.state)) {
                                stack.push((next, ch.state));
                            }
                        }
                    }
                }
            }
        }
        Some(TableRouting {
            name: name.into(),
            universe: relation.universe().to_vec(),
            table,
            topo: topo.clone(),
        })
    }

    /// Number of table entries (reachable `(node, state, dst)` triples).
    pub fn entries(&self) -> usize {
        self.table.len()
    }
}

impl RoutingRelation for TableRouting {
    fn name(&self) -> &str {
        &self.name
    }

    fn universe(&self) -> &[Channel] {
        &self.universe
    }

    fn route(
        &self,
        topo: &Topology,
        node: NodeId,
        state: RouteState,
        _src: NodeId,
        dst: NodeId,
    ) -> Vec<RouteChoice> {
        debug_assert_eq!(topo, &self.topo, "table compiled for another topology");
        self.table
            .get(&(node, state, dst))
            .cloned()
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classic::{DimensionOrder, OddEven, WestFirst};
    use crate::relation::find_delivery_failure;
    use crate::turn_based::TurnRouting;
    use ebda_core::catalog;

    #[test]
    fn compiled_tables_match_the_source_relation() {
        let topo = Topology::mesh(&[4, 4]);
        let src_rel = TurnRouting::from_design("wf", &catalog::p3_west_first()).unwrap();
        let table = TableRouting::compile("wf-table", &topo, &src_rel).expect("compiles");
        for src in topo.nodes() {
            for dst in topo.nodes() {
                if src == dst {
                    continue;
                }
                assert_eq!(
                    table.route(&topo, src, INJECT, src, dst),
                    src_rel.route(&topo, src, INJECT, src, dst),
                    "candidates diverge at injection for {src}->{dst}"
                );
            }
        }
        assert_eq!(find_delivery_failure(&table, &topo, 24), None);
    }

    #[test]
    fn compiled_tables_simulate_identically() {
        let topo = Topology::mesh(&[4, 4]);
        let src_rel = TurnRouting::from_design("dyxy", &catalog::fig7b_dyxy()).unwrap();
        let table = TableRouting::compile("dyxy-table", &topo, &src_rel).expect("compiles");
        // Spot-check behavioural identity over a walk of all states.
        for src in topo.nodes() {
            for dst in topo.nodes() {
                if src == dst {
                    continue;
                }
                let mut stack = vec![(src, INJECT)];
                let mut seen = std::collections::HashSet::new();
                while let Some((node, state)) = stack.pop() {
                    if node == dst {
                        continue;
                    }
                    let a = src_rel.route(&topo, node, state, src, dst);
                    let b = table.route(&topo, node, state, src, dst);
                    assert_eq!(a, b);
                    for ch in a {
                        let next = topo.neighbor(node, ch.port.dim, ch.port.dir).unwrap();
                        if seen.insert((next, ch.state)) {
                            stack.push((next, ch.state));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn table_size_is_bounded_by_states_times_destinations() {
        let topo = Topology::mesh(&[4, 4]);
        let xy = DimensionOrder::xy();
        let table = TableRouting::compile("xy-table", &topo, &xy).expect("compiles");
        // XY uses a single state; entries < nodes * dsts.
        assert!(table.entries() > 0);
        assert!(table.entries() <= 16 * 16 * 2);
    }

    #[test]
    fn source_dependent_relations_are_rejected() {
        // Odd-Even's ROUTE consults the source column: not table-compilable
        // in (node, state, dst) form.
        let topo = Topology::mesh(&[5, 5]);
        assert!(TableRouting::compile("oe", &topo, &OddEven::new()).is_none());
        // West-first is source-independent and compiles fine.
        assert!(TableRouting::compile("wf", &topo, &WestFirst::new()).is_some());
    }
}
