//! Randomized tests of the dual-path Hamiltonian multicast: label
//! monotonicity, full coverage and path validity over random meshes and
//! destination sets.
//!
//! Driven by a seeded [`Rng64`] instead of a property-testing framework
//! so the suite is fully deterministic and dependency-free; every assert
//! message carries the case index for replay.

use ebda_obs::Rng64;
use ebda_routing::multicast::{hamiltonian_label, DualPathMulticast};
use ebda_routing::Topology;

#[test]
fn labels_are_a_hamiltonian_permutation() {
    let mut rng = Rng64::new(0xACA1);
    for case in 0..64 {
        let w = 2 + rng.gen_index(5);
        let h = 2 + rng.gen_index(5);
        let topo = Topology::mesh(&[w, h]);
        let mut by_label = vec![usize::MAX; w * h];
        for node in topo.nodes() {
            let l = hamiltonian_label(&topo, node);
            assert!(l < w * h, "case {case}");
            assert_eq!(
                by_label[l],
                usize::MAX,
                "case {case}: duplicate label {l} on {w}x{h}"
            );
            by_label[l] = node;
        }
        for pair in by_label.windows(2) {
            assert_eq!(topo.distance(pair[0], pair[1]), 1, "case {case}");
        }
    }
}

#[test]
fn multicast_covers_all_destinations_monotonically() {
    let mut rng = Rng64::new(0xACA2);
    for case in 0..64 {
        let w = 2 + rng.gen_index(4);
        let h = 2 + rng.gen_index(4);
        let topo = Topology::mesh(&[w, h]);
        let n = topo.node_count();
        let src = rng.gen_index(n);
        let dest_mask = 1 + (rng.next_u64() as u32 % 0xFFFF_FFFE);
        let dests: Vec<usize> = (0..n)
            .filter(|&d| d != src && dest_mask & (1 << (d % 32)) != 0)
            .collect();
        let mc = DualPathMulticast::new();
        let plan = mc.plan(&topo, src, &dests);
        // Coverage.
        for &d in &dests {
            assert!(
                plan.high_path.contains(&d) || plan.low_path.contains(&d),
                "case {case}: destination {d} missed"
            );
        }
        // Paths are contiguous and label-monotone.
        for (path, increasing) in [(&plan.high_path, true), (&plan.low_path, false)] {
            for pair in path.windows(2) {
                assert_eq!(topo.distance(pair[0], pair[1]), 1, "case {case}");
                let (a, b) = (
                    hamiltonian_label(&topo, pair[0]),
                    hamiltonian_label(&topo, pair[1]),
                );
                if increasing {
                    assert!(a < b, "case {case}: high path label regressed");
                } else {
                    assert!(a > b, "case {case}: low path label regressed");
                }
            }
        }
        // Both chains together hold every destination exactly once.
        let mut all: Vec<usize> = plan
            .high_chain
            .iter()
            .chain(plan.low_chain.iter())
            .copied()
            .collect();
        all.sort_unstable();
        let mut expected = dests.clone();
        expected.sort_unstable();
        assert_eq!(all, expected, "case {case}");
    }
}
