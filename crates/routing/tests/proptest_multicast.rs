//! Property-based tests of the dual-path Hamiltonian multicast: label
//! monotonicity, full coverage and path validity over random meshes and
//! destination sets.

use ebda_routing::multicast::{hamiltonian_label, DualPathMulticast};
use ebda_routing::Topology;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn labels_are_a_hamiltonian_permutation(w in 2usize..7, h in 2usize..7) {
        let topo = Topology::mesh(&[w, h]);
        let mut by_label = vec![usize::MAX; w * h];
        for node in topo.nodes() {
            let l = hamiltonian_label(&topo, node);
            prop_assert!(l < w * h);
            prop_assert_eq!(by_label[l], usize::MAX, "duplicate label {}", l);
            by_label[l] = node;
        }
        for pair in by_label.windows(2) {
            prop_assert_eq!(topo.distance(pair[0], pair[1]), 1);
        }
    }

    #[test]
    fn multicast_covers_all_destinations_monotonically(
        w in 2usize..6,
        h in 2usize..6,
        src_pick in 0usize..1000,
        dest_mask in 1u32..0xFFFF_FFFF,
    ) {
        let topo = Topology::mesh(&[w, h]);
        let n = topo.node_count();
        let src = src_pick % n;
        let dests: Vec<usize> = (0..n)
            .filter(|&d| d != src && dest_mask & (1 << (d % 32)) != 0)
            .collect();
        let mc = DualPathMulticast::new();
        let plan = mc.plan(&topo, src, &dests);
        // Coverage.
        for &d in &dests {
            prop_assert!(
                plan.high_path.contains(&d) || plan.low_path.contains(&d),
                "destination {} missed", d
            );
        }
        // Paths are contiguous and label-monotone.
        for (path, increasing) in [(&plan.high_path, true), (&plan.low_path, false)] {
            for pair in path.windows(2) {
                prop_assert_eq!(topo.distance(pair[0], pair[1]), 1);
                let (a, b) = (
                    hamiltonian_label(&topo, pair[0]),
                    hamiltonian_label(&topo, pair[1]),
                );
                if increasing {
                    prop_assert!(a < b, "high path label regressed");
                } else {
                    prop_assert!(a > b, "low path label regressed");
                }
            }
        }
        // Both chains together hold every destination exactly once.
        let mut all: Vec<usize> = plan
            .high_chain
            .iter()
            .chain(plan.low_chain.iter())
            .copied()
            .collect();
        all.sort_unstable();
        let mut expected = dests.clone();
        expected.sort_unstable();
        prop_assert_eq!(all, expected);
    }
}
