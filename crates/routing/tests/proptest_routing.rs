//! Property-based tests of the turn-based routing bridge: for random valid
//! EbDa designs, the derived relation must deliver, stay minimal on full
//! meshes, and never take a turn outside its turn set.

use ebda_core::{parse_channels, Channel, Partition, PartitionSeq};
use ebda_routing::{
    find_delivery_failure, verify_relation, RoutingRelation, Topology, TurnRouting, INJECT,
};
use proptest::prelude::*;

/// Builds a random two-partition 2D design over the 8-channel universe.
fn build(mask_a: u8, mask_b: u8) -> Option<PartitionSeq> {
    let universe: Vec<Channel> = parse_channels("X1+ X1- X2+ X2- Y1+ Y1- Y2+ Y2-").unwrap();
    let pick = |mask: u8| -> Vec<Channel> {
        universe
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, &c)| c)
            .collect()
    };
    let a = pick(mask_a & !mask_b);
    let b = pick(mask_b & !mask_a);
    if a.is_empty() || b.is_empty() {
        return None;
    }
    let seq = PartitionSeq::from_partitions(vec![
        Partition::from_channels(a).ok()?,
        Partition::from_channels(b).ok()?,
    ]);
    seq.validate().ok()?;
    Some(seq)
}

/// A design can route all pairs only if each direction is present somewhere.
fn covers_all_directions(seq: &PartitionSeq) -> bool {
    use ebda_core::Direction::*;
    let chans: Vec<Channel> = seq
        .partitions()
        .iter()
        .flat_map(|p| p.channels().iter().copied())
        .collect();
    [(0, Plus), (0, Minus), (1, Plus), (1, Minus)]
        .iter()
        .all(|&(d, dir)| chans.iter().any(|c| c.dim.index() == d && c.dir == dir))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every random valid design that covers all four directions delivers
    /// everywhere on a mesh, and its exact relation-level CDG is acyclic.
    #[test]
    fn random_designs_deliver_and_stay_acyclic(mask_a in 1u8..255, mask_b in 1u8..255) {
        let Some(seq) = build(mask_a, mask_b) else { return Ok(()) };
        let relation = TurnRouting::from_design("prop", &seq).unwrap();
        let topo = Topology::mesh(&[4, 4]);
        if covers_all_directions(&seq) {
            prop_assert_eq!(
                find_delivery_failure(&relation, &topo, 32),
                None,
                "design {} failed delivery", seq
            );
        }
        prop_assert!(
            verify_relation(&topo, &relation).is_ok(),
            "design {} produced a cyclic exact CDG", seq
        );
    }

    /// Paths are always minimal on full meshes (the product-graph distance
    /// equals the Manhattan distance whenever the pair is deliverable).
    #[test]
    fn deliverable_pairs_route_minimally(mask_a in 1u8..255, mask_b in 1u8..255, s in 0usize..16, d in 0usize..16) {
        prop_assume!(s != d);
        let Some(seq) = build(mask_a, mask_b) else { return Ok(()) };
        let relation = TurnRouting::from_design("prop", &seq).unwrap();
        let topo = Topology::mesh(&[4, 4]);
        if let Some(dist) = relation.legal_distance(&topo, s, INJECT, d) {
            prop_assert_eq!(u64::from(dist), topo.distance(s, d));
        }
    }

    /// The relation only ever emits ports matching a channel of its own
    /// universe that exists at the current node.
    #[test]
    fn emitted_ports_are_in_universe(mask_a in 1u8..255, mask_b in 1u8..255, s in 0usize..16, d in 0usize..16) {
        prop_assume!(s != d);
        let Some(seq) = build(mask_a, mask_b) else { return Ok(()) };
        let relation = TurnRouting::from_design("prop", &seq).unwrap();
        let topo = Topology::mesh(&[4, 4]);
        let coords = topo.coords(s);
        for ch in relation.route(&topo, s, INJECT, s, d) {
            let matching = relation.universe().iter().any(|c| {
                c.dim == ch.port.dim
                    && c.dir == ch.port.dir
                    && c.vc == ch.port.vc
                    && c.class.contains(&coords)
            });
            prop_assert!(matching, "port {} not in universe at {coords:?}", ch.port);
        }
    }
}
