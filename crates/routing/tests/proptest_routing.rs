//! Randomized tests of the turn-based routing bridge: for random valid
//! EbDa designs, the derived relation must deliver, stay minimal on full
//! meshes, and never take a turn outside its turn set.
//!
//! Driven by a seeded [`Rng64`] instead of a property-testing framework
//! so the suite is fully deterministic and dependency-free; every assert
//! message carries the case index for replay.

use ebda_core::{parse_channels, Channel, Partition, PartitionSeq};
use ebda_obs::Rng64;
use ebda_routing::{
    find_delivery_failure, verify_relation, RoutingRelation, Topology, TurnRouting, INJECT,
};

/// Builds a random two-partition 2D design over the 8-channel universe.
fn build(mask_a: u8, mask_b: u8) -> Option<PartitionSeq> {
    let universe: Vec<Channel> = parse_channels("X1+ X1- X2+ X2- Y1+ Y1- Y2+ Y2-").unwrap();
    let pick = |mask: u8| -> Vec<Channel> {
        universe
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, &c)| c)
            .collect()
    };
    let a = pick(mask_a & !mask_b);
    let b = pick(mask_b & !mask_a);
    if a.is_empty() || b.is_empty() {
        return None;
    }
    let seq = PartitionSeq::from_partitions(vec![
        Partition::from_channels(a).ok()?,
        Partition::from_channels(b).ok()?,
    ]);
    seq.validate().ok()?;
    Some(seq)
}

/// Draws mask pairs until one builds a valid design.
fn random_design(rng: &mut Rng64) -> PartitionSeq {
    loop {
        let mask_a = 1 + rng.gen_index(254) as u8;
        let mask_b = 1 + rng.gen_index(254) as u8;
        if let Some(seq) = build(mask_a, mask_b) {
            return seq;
        }
    }
}

/// A design can route all pairs only if each direction is present somewhere.
fn covers_all_directions(seq: &PartitionSeq) -> bool {
    use ebda_core::Direction::*;
    let chans: Vec<Channel> = seq
        .partitions()
        .iter()
        .flat_map(|p| p.channels().iter().copied())
        .collect();
    [(0, Plus), (0, Minus), (1, Plus), (1, Minus)]
        .iter()
        .all(|&(d, dir)| chans.iter().any(|c| c.dim.index() == d && c.dir == dir))
}

/// Every random valid design that covers all four directions delivers
/// everywhere on a mesh, and its exact relation-level CDG is acyclic.
#[test]
fn random_designs_deliver_and_stay_acyclic() {
    let mut rng = Rng64::new(0xF061);
    for case in 0..64 {
        let seq = random_design(&mut rng);
        let relation = TurnRouting::from_design("prop", &seq).unwrap();
        let topo = Topology::mesh(&[4, 4]);
        if covers_all_directions(&seq) {
            assert_eq!(
                find_delivery_failure(&relation, &topo, 32),
                None,
                "case {case}: design {seq} failed delivery"
            );
        }
        assert!(
            verify_relation(&topo, &relation).is_ok(),
            "case {case}: design {seq} produced a cyclic exact CDG"
        );
    }
}

/// Paths are always minimal on full meshes (the product-graph distance
/// equals the Manhattan distance whenever the pair is deliverable).
#[test]
fn deliverable_pairs_route_minimally() {
    let mut rng = Rng64::new(0xF062);
    for case in 0..64 {
        let seq = random_design(&mut rng);
        let s = rng.gen_index(16);
        let d = rng.gen_index(16);
        if s == d {
            continue;
        }
        let relation = TurnRouting::from_design("prop", &seq).unwrap();
        let topo = Topology::mesh(&[4, 4]);
        if let Some(dist) = relation.legal_distance(&topo, s, INJECT, d) {
            assert_eq!(
                u64::from(dist),
                topo.distance(s, d),
                "case {case}: design {seq}, {s}->{d}"
            );
        }
    }
}

/// The relation only ever emits ports matching a channel of its own
/// universe that exists at the current node.
#[test]
fn emitted_ports_are_in_universe() {
    let mut rng = Rng64::new(0xF063);
    for case in 0..64 {
        let seq = random_design(&mut rng);
        let s = rng.gen_index(16);
        let d = rng.gen_index(16);
        if s == d {
            continue;
        }
        let relation = TurnRouting::from_design("prop", &seq).unwrap();
        let topo = Topology::mesh(&[4, 4]);
        let coords = topo.coords(s);
        for ch in relation.route(&topo, s, INJECT, s, d) {
            let matching = relation.universe().iter().any(|c| {
                c.dim == ch.port.dim
                    && c.dir == ch.port.dir
                    && c.vc == ch.port.vc
                    && c.class.contains(&coords)
            });
            assert!(
                matching,
                "case {case}: port {} not in universe at {coords:?}",
                ch.port
            );
        }
    }
}
