//! Partitions of channels (Definition 2) and the Theorem 1 check.
//!
//! A [`Partition`] is an *ordered* set of pairwise-disjoint channels. Packets
//! may take the channels of a partition arbitrarily and repeatedly (90°
//! turns), while U- and I-turns inside the partition follow the ascending
//! channel numbering of Theorem 2 — the order of insertion *is* that
//! numbering.

use crate::channel::{Channel, Dimension, Direction};
use crate::error::{EbdaError, Result};
use std::fmt;

/// An ordered set of pairwise-disjoint channels (Definition 2).
///
/// ```
/// use ebda_core::Partition;
/// // The Fig. 3 partition: everything but North.
/// let p = Partition::parse("X+ X- Y-").unwrap();
/// assert!(p.theorem1_holds());
/// assert_eq!(p.complete_pair_dims(), vec![ebda_core::Dimension::X]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Partition {
    channels: Vec<Channel>,
}

impl Partition {
    /// Creates an empty partition.
    pub fn new() -> Partition {
        Partition::default()
    }

    /// Builds a partition from channels, rejecting overlapping entries.
    ///
    /// # Errors
    ///
    /// Returns [`EbdaError::OverlappingChannels`] if any two of the given
    /// channels overlap (Definition 2 requires a partition's channels to be
    /// disjoint resources). Exact duplicates are silently dropped.
    pub fn from_channels<I: IntoIterator<Item = Channel>>(iter: I) -> Result<Partition> {
        let mut p = Partition::new();
        for c in iter {
            p.push(c)?;
        }
        Ok(p)
    }

    /// Parses a space/comma-separated channel list, expanding `*` wildcards.
    ///
    /// # Errors
    ///
    /// Returns a parse error for malformed tokens or an overlap error for
    /// non-disjoint channels.
    pub fn parse(s: &str) -> Result<Partition> {
        Partition::from_channels(crate::channel::parse_channels(s)?)
    }

    /// Appends a channel, keeping insertion order (the Theorem 2 numbering).
    ///
    /// Exact duplicates are ignored.
    ///
    /// # Errors
    ///
    /// Returns [`EbdaError::OverlappingChannels`] if the new channel overlaps
    /// (but does not equal) an existing one.
    pub fn push(&mut self, c: Channel) -> Result<()> {
        for &existing in &self.channels {
            if existing == c {
                return Ok(());
            }
            if existing.overlaps(c) {
                return Err(EbdaError::OverlappingChannels {
                    a: existing.to_string(),
                    b: c.to_string(),
                });
            }
        }
        self.channels.push(c);
        Ok(())
    }

    /// Appends both directions of a dimension/VC (the paper's `Z1*`).
    ///
    /// # Errors
    ///
    /// Propagates overlap errors from [`Partition::push`].
    pub fn push_star(&mut self, template: Channel) -> Result<()> {
        self.push(template)?;
        self.push(template.reversed())
    }

    /// The channels in insertion (Theorem 2 numbering) order.
    pub fn channels(&self) -> &[Channel] {
        &self.channels
    }

    /// Iterates over the channels in insertion order.
    pub fn iter(&self) -> std::slice::Iter<'_, Channel> {
        self.channels.iter()
    }

    /// Number of channels.
    pub fn len(&self) -> usize {
        self.channels.len()
    }

    /// Returns `true` if the partition has no channels.
    pub fn is_empty(&self) -> bool {
        self.channels.is_empty()
    }

    /// Returns `true` if the partition covers the given channel exactly.
    pub fn contains(&self, c: Channel) -> bool {
        self.channels.contains(&c)
    }

    /// Dimensions in which this partition covers a *complete D-pair*
    /// (Definition 3): at least one channel in each direction of the
    /// dimension, regardless of VC number or parity class.
    pub fn complete_pair_dims(&self) -> Vec<Dimension> {
        let mut dims: Vec<Dimension> = self.channels.iter().map(|c| c.dim).collect();
        dims.sort_unstable();
        dims.dedup();
        dims.into_iter()
            .filter(|&d| {
                let has_plus = self
                    .channels
                    .iter()
                    .any(|c| c.dim == d && c.dir == Direction::Plus);
                let has_minus = self
                    .channels
                    .iter()
                    .any(|c| c.dim == d && c.dir == Direction::Minus);
                has_plus && has_minus
            })
            .collect()
    }

    /// Theorem 1: the partition is cycle-free (ignoring U-/I-turns) iff it
    /// covers at most one complete D-pair.
    pub fn theorem1_holds(&self) -> bool {
        self.complete_pair_dims().len() <= 1
    }

    /// Like [`Partition::theorem1_holds`] but returns the offending
    /// dimensions as an error for diagnostics.
    ///
    /// # Errors
    ///
    /// Returns [`EbdaError::TooManyPairs`] listing every dimension with a
    /// complete pair when there is more than one.
    pub fn check_theorem1(&self) -> Result<()> {
        let dims = self.complete_pair_dims();
        if dims.len() <= 1 {
            Ok(())
        } else {
            Err(EbdaError::TooManyPairs {
                dims: dims.iter().map(|d| d.to_string()).collect(),
            })
        }
    }

    /// Definition 6: two partitions are disjoint if no channel of one
    /// overlaps a channel of the other.
    pub fn is_disjoint_from(&self, other: &Partition) -> bool {
        self.shared_channel(other).is_none()
    }

    /// Returns a pair of overlapping channels across the two partitions, if
    /// any — useful for error messages.
    pub fn shared_channel(&self, other: &Partition) -> Option<(Channel, Channel)> {
        for &a in &self.channels {
            for &b in &other.channels {
                if a.overlaps(b) {
                    return Some((a, b));
                }
            }
        }
        None
    }

    /// The distinct dimensions this partition touches, ascending.
    pub fn dims(&self) -> Vec<Dimension> {
        let mut dims: Vec<Dimension> = self.channels.iter().map(|c| c.dim).collect();
        dims.sort_unstable();
        dims.dedup();
        dims
    }

    /// The set of direction sign-vectors (regions) this partition can route
    /// within, expressed per dimension of an `n`-dimensional network:
    /// `Some(Plus)` / `Some(Minus)` when only one direction is covered,
    /// `None` when both or neither are covered (both ⇒ free, neither ⇒ the
    /// partition cannot move in that dimension at all).
    ///
    /// See [`Partition::covers_region`] for the quadrant/octant test used by
    /// the minimum-channel constructions of Section 4.
    pub fn direction_profile(&self, n: usize) -> Vec<DirectionCoverage> {
        (0..n)
            .map(|i| {
                let d = Dimension::new(i as u8);
                let plus = self
                    .channels
                    .iter()
                    .any(|c| c.dim == d && c.dir == Direction::Plus);
                let minus = self
                    .channels
                    .iter()
                    .any(|c| c.dim == d && c.dir == Direction::Minus);
                match (plus, minus) {
                    (true, true) => DirectionCoverage::Both,
                    (true, false) => DirectionCoverage::Only(Direction::Plus),
                    (false, true) => DirectionCoverage::Only(Direction::Minus),
                    (false, false) => DirectionCoverage::None,
                }
            })
            .collect()
    }

    /// Returns `true` if the partition alone can carry a packet whose
    /// per-dimension offsets have the signs in `region` (entries may be
    /// `Plus`, `Minus`; a dimension the packet does not need to move in is
    /// satisfied by any coverage).
    ///
    /// This is the Section 4 notion: "channels grouped into a partition can
    /// be translated as a fully adaptive routing for the region they cover".
    pub fn covers_region(&self, region: &[Option<Direction>]) -> bool {
        let profile = self.direction_profile(region.len());
        region.iter().enumerate().all(|(i, need)| match need {
            None => true,
            Some(dir) => match profile[i] {
                DirectionCoverage::Both => true,
                DirectionCoverage::Only(d) => d == *dir,
                DirectionCoverage::None => false,
            },
        })
    }
}

/// Per-dimension directional coverage of a partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DirectionCoverage {
    /// Both directions covered (a complete D-pair).
    Both,
    /// Only the given direction covered.
    Only(Direction),
    /// No channel in this dimension.
    None,
}

impl fmt::Display for Partition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, c) in self.channels.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "]")
    }
}

impl<'a> IntoIterator for &'a Partition {
    type Item = &'a Channel;
    type IntoIter = std::slice::Iter<'a, Channel>;

    fn into_iter(self) -> Self::IntoIter {
        self.channels.iter()
    }
}

impl FromIterator<Channel> for Partition {
    /// Collects channels into a partition.
    ///
    /// # Panics
    ///
    /// Panics if the channels are not pairwise disjoint; use
    /// [`Partition::from_channels`] for a fallible version.
    fn from_iter<T: IntoIterator<Item = Channel>>(iter: T) -> Partition {
        Partition::from_channels(iter).expect("channels must be pairwise disjoint")
    }
}

impl Extend<Channel> for Partition {
    /// Extends the partition with channels.
    ///
    /// # Panics
    ///
    /// Panics if a new channel overlaps an existing one.
    fn extend<T: IntoIterator<Item = Channel>>(&mut self, iter: T) {
        for c in iter {
            self.push(c).expect("channels must be pairwise disjoint");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::Parity;

    #[test]
    fn theorem1_basic_examples() {
        // The largest cycle-free partition in 2D: one pair + one extra.
        let p = Partition::parse("X+ X- Y-").unwrap();
        assert!(p.theorem1_holds());
        // All four directions: two pairs, violates Theorem 1.
        let p = Partition::parse("X+ X- Y+ Y-").unwrap();
        assert!(!p.theorem1_holds());
        assert!(matches!(
            p.check_theorem1(),
            Err(EbdaError::TooManyPairs { dims }) if dims == ["X", "Y"]
        ));
    }

    #[test]
    fn note_to_theorem1_vc_pairs() {
        // P = {X1+ X2- Y1+ Y2-} is NOT cycle-free: the X pair is (X1+, X2-)
        // and the Y pair is (Y1+, Y2-).
        let p = Partition::parse("X1+ X2- Y1+ Y2-").unwrap();
        assert!(!p.theorem1_holds());
        // P = {X1+ Y1+ Y1- Y2+ Y2-} is cycle-free: only Y has a pair,
        // regardless of how many Y-pairs can be formed.
        let p = Partition::parse("X1+ Y1+ Y1- Y2+ Y2-").unwrap();
        assert!(p.theorem1_holds());
        assert_eq!(p.complete_pair_dims(), vec![Dimension::Y]);
    }

    #[test]
    fn four_dimensional_example() {
        // Paper: {X+, Y+, Y-, Z+, T-} in 4D is cycle-free (only Y-pair).
        let p = Partition::parse("X+ Y+ Y- Z+ T1-").unwrap();
        assert!(p.theorem1_holds());
        assert_eq!(p.complete_pair_dims(), vec![Dimension::Y]);
    }

    #[test]
    fn duplicate_channels_are_deduped() {
        let p = Partition::parse("X+ X+ X1+").unwrap();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn overlapping_channels_rejected() {
        // Y1+ (everywhere) overlaps Ye1+ (even columns).
        let y = Channel::parse("Y1+").unwrap();
        let ye = y.at_parity(Dimension::X, Parity::Even);
        let mut p = Partition::new();
        p.push(y).unwrap();
        assert!(matches!(
            p.push(ye),
            Err(EbdaError::OverlappingChannels { .. })
        ));
    }

    #[test]
    fn disjointness_across_partitions() {
        let pa = Partition::parse("X+ X- Y-").unwrap();
        let pb = Partition::parse("Y+").unwrap();
        assert!(pa.is_disjoint_from(&pb));
        let pc = Partition::parse("Y- Z+").unwrap();
        assert!(!pa.is_disjoint_from(&pc));
        let (a, b) = pa.shared_channel(&pc).unwrap();
        assert_eq!(a.to_string(), "Y1-");
        assert_eq!(b.to_string(), "Y1-");
    }

    #[test]
    fn odd_even_partitions_are_disjoint_and_valid() {
        // PA = {X-, Ye*}, PB = {X+, Yo*} — Section 6.2.
        let mut pa = Partition::parse("X-").unwrap();
        pa.push_star(
            Channel::new(Dimension::Y, Direction::Plus).at_parity(Dimension::X, Parity::Even),
        )
        .unwrap();
        let mut pb = Partition::parse("X+").unwrap();
        pb.push_star(
            Channel::new(Dimension::Y, Direction::Plus).at_parity(Dimension::X, Parity::Odd),
        )
        .unwrap();
        assert!(pa.theorem1_holds());
        assert!(pb.theorem1_holds());
        assert!(pa.is_disjoint_from(&pb));
        assert_eq!(pa.complete_pair_dims(), vec![Dimension::Y]);
    }

    #[test]
    fn region_coverage() {
        use Direction::*;
        let pa = Partition::parse("X1+ Y1+ Y1-").unwrap(); // Fig. 7(b) PA
        assert!(pa.covers_region(&[Some(Plus), Some(Plus)])); // NE
        assert!(pa.covers_region(&[Some(Plus), Some(Minus)])); // SE
        assert!(!pa.covers_region(&[Some(Minus), Some(Plus)])); // NW
        assert!(pa.covers_region(&[Some(Plus), None]));
        assert!(pa.covers_region(&[None, None]));
    }

    #[test]
    fn direction_profile_reports_missing_dims() {
        let p = Partition::parse("X+").unwrap();
        let prof = p.direction_profile(3);
        assert_eq!(prof[0], DirectionCoverage::Only(Direction::Plus));
        assert_eq!(prof[1], DirectionCoverage::None);
        assert_eq!(prof[2], DirectionCoverage::None);
    }

    #[test]
    fn display_lists_channels_in_order() {
        let p = Partition::parse("Z1+ Z1- X1+ Y1+").unwrap();
        assert_eq!(p.to_string(), "[Z1+ Z1- X1+ Y1+]");
    }
}
