//! The paper's named partitioning designs, verbatim.
//!
//! Every function returns the exact partition sequence printed in the paper
//! (Sections 4–6), ready for turn extraction and verification. Each is
//! covered by tests asserting validity and, where the paper states them,
//! the resulting turn counts.

use crate::channel::{Channel, Dimension, Direction, Parity};
use crate::partition::Partition;
use crate::sequence::PartitionSeq;

fn parse(s: &str) -> PartitionSeq {
    let seq = PartitionSeq::parse(s).expect("catalog entries are well-formed");
    seq.validate().expect("catalog entries are valid designs");
    seq
}

/// Section 4, `P1`: four singleton partitions — the XY routing algorithm
/// (Fig. 6a).
pub fn p1_xy() -> PartitionSeq {
    parse("X+ | X- | Y+ | Y-")
}

/// Section 4, `P2`: `{PA[Y-] → PB[X-] → PC[Y+ X+]}` — partially adaptive
/// (fully adaptive in the NE region only, Fig. 6b).
pub fn p2_partially_adaptive() -> PartitionSeq {
    parse("Y- | X- | Y+ X+")
}

/// Section 4, `P3`: `{PA[X-] → PB[X+ Y+ Y-]}` — the west-first routing
/// algorithm (Fig. 6c).
pub fn p3_west_first() -> PartitionSeq {
    parse("X- | X+ Y+ Y-")
}

/// Section 4, `P4`: `{PA[X- Y-] → PB[X+ Y+]}` — the negative-first routing
/// algorithm (Fig. 6d).
pub fn p4_negative_first() -> PartitionSeq {
    parse("X- Y- | X+ Y+")
}

/// Section 4, `P5`: `{PA[X-] → PB[X+ Y1+ Y1- Y2+ Y2-]}` — west-first with
/// extra VCs in `PB`; more identical/U/I-turns, no extra adaptiveness
/// (Fig. 6e).
pub fn p5_west_first_vcs() -> PartitionSeq {
    parse("X- | X+ Y1+ Y1- Y2+ Y2-")
}

/// Figure 5's running example: `{PA[X+ X- Y-] → PB[Y+]}` — the north-last
/// routing algorithm.
pub fn north_last() -> PartitionSeq {
    parse("X+ X- Y- | Y+")
}

/// Figure 7a: the naive 2D fully adaptive design, one partition per
/// quadrant, 8 channels.
pub fn fig7a() -> PartitionSeq {
    parse("X1+ Y1+ | X2+ Y1- | X2- Y2- | X1- Y2+")
}

/// Figure 7b: the 6-channel 2D fully adaptive design
/// `{PA[X1+ Y1+ Y1-]; PB[X1- Y2+ Y2-]}`, "the same routing algorithm as
/// DyXY".
pub fn fig7b_dyxy() -> PartitionSeq {
    parse("X1+ Y1+ Y1- | X1- Y2+ Y2-")
}

/// Figure 7c: the alternative 6-channel 2D fully adaptive design
/// `{PA[X1+ X1- Y1+]; PB[X2+ X2- Y1-]}`.
pub fn fig7c() -> PartitionSeq {
    parse("X1+ X1- Y1+ | X2+ X2- Y1-")
}

/// Figure 9a: the naive 3D fully adaptive design — eight partitions, one
/// per octant, 24 channels.
pub fn fig9a() -> PartitionSeq {
    parse(
        "X1+ Y1+ Z1+ | X1- Y2+ Z4+ | X2+ Y1- Z2+ | X2- Y2- Z3+ | \
         X3+ Y3+ Z1- | X3- Y4+ Z4- | X4- Y4- Z3- | X4+ Y3- Z2-",
    )
}

/// Figure 9b: the 16-channel 3D fully adaptive design with 2, 2 and 4 VCs
/// along X, Y and Z — the partitioning Figure 8's turn extraction uses.
pub fn fig9b() -> PartitionSeq {
    parse("X1+ Y1+ Z1+ Z1- | X1- Y2+ Z4+ Z4- | X2+ Y1- Z2+ Z2- | X2- Y2- Z3+ Z3-")
}

/// Figure 9c: the alternative 16-channel 3D design with 3, 2 and 3 VCs
/// along X, Y and Z — the output of the Section 5 worked example.
pub fn fig9c() -> PartitionSeq {
    parse("Z1+ Z1- X1+ Y1+ | Z2+ Z2- X1- Y2+ | X2+ X2- Z3+ Y1- | X3+ X3- Z3- Y2-")
}

/// Section 6.2: the Odd-Even turn model as a partitioning —
/// `PA = {X- Ye*}`, `PB = {X+ Yo*}` where `Ye`/`Yo` are the `Y` channels in
/// even/odd columns.
pub fn odd_even() -> PartitionSeq {
    let ye = Channel::new(Dimension::Y, Direction::Plus).at_parity(Dimension::X, Parity::Even);
    let yo = Channel::new(Dimension::Y, Direction::Plus).at_parity(Dimension::X, Parity::Odd);
    let mut pa = Partition::new();
    pa.push(Channel::new(Dimension::X, Direction::Minus))
        .expect("fresh partition");
    pa.push_star(ye).expect("disjoint channels");
    let mut pb = Partition::new();
    pb.push(Channel::new(Dimension::X, Direction::Plus))
        .expect("fresh partition");
    pb.push_star(yo).expect("disjoint channels");
    let seq = PartitionSeq::from_partitions(vec![pa, pb]);
    seq.validate().expect("odd-even design is valid");
    seq
}

/// Section 6.2: the Hamiltonian-path strategy as a partitioning —
/// `PA = {Xe+ Xo- Y+}`, `PB = {Xe- Xo+ Y-}` where `Xe`/`Xo` are the `X`
/// channels in even/odd rows.
pub fn hamiltonian() -> PartitionSeq {
    let xe = |dir| Channel::new(Dimension::X, dir).at_parity(Dimension::Y, Parity::Even);
    let xo = |dir| Channel::new(Dimension::X, dir).at_parity(Dimension::Y, Parity::Odd);
    let pa = Partition::from_channels([
        xe(Direction::Plus),
        xo(Direction::Minus),
        Channel::new(Dimension::Y, Direction::Plus),
    ])
    .expect("disjoint channels");
    let pb = Partition::from_channels([
        xe(Direction::Minus),
        xo(Direction::Plus),
        Channel::new(Dimension::Y, Direction::Minus),
    ])
    .expect("disjoint channels");
    let seq = PartitionSeq::from_partitions(vec![pa, pb]);
    seq.validate().expect("hamiltonian design is valid");
    seq
}

/// Section 6.3: the improved design for vertically partially connected 3D
/// networks (reference 39 in the paper) —
/// `P = {PA[X1+ Y1* Z1+]; PB[X1- Y2* Z1-]}` — thirty 90° turns (Table 5)
/// with 1, 2, 1 VCs along X, Y, Z.
pub fn table5_partial3d() -> PartitionSeq {
    parse("X1+ Y1+ Y1- Z1+ | X1- Y2+ Y2- Z1-")
}

/// Planar-adaptive routing (Chien & Kim, the paper's reference 2) as an
/// EbDa partition sequence: the packet resolves dimensions through a chain
/// of adaptive 2D planes `(d0,d1), (d1,d2), …`; each plane is the Fig. 7b
/// double-channel pattern, and the plane order is the Theorem 3 partition
/// order. For `n = 2` this is exactly [`fig7b_dyxy`].
///
/// Channel budget: 1 VC on the first dimension, 2 on the last, 3 on the
/// middle dimensions — `6(n-1)` channels for `n ≥ 2`, linear in `n` and
/// far under the `(n+1)·2^(n-1)` needed for *full* adaptiveness
/// (planar-adaptive is partially adaptive by design).
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn planar_adaptive(n: usize) -> PartitionSeq {
    assert!(n >= 2, "planar-adaptive needs at least two dimensions");
    let mut partitions = Vec::with_capacity(2 * (n - 1));
    for i in 0..(n - 1) {
        let first = Dimension::new(i as u8);
        let second = Dimension::new((i + 1) as u8);
        // Middle dimensions already used VCs 1/2 as a second dimension;
        // their first-dimension role uses VC 3.
        let first_vc = if i == 0 { 1 } else { 3 };
        let mut pa = Partition::new();
        pa.push(Channel::with_vc(first, Direction::Plus, first_vc))
            .expect("fresh partition");
        pa.push_star(Channel::with_vc(second, Direction::Plus, 1))
            .expect("disjoint channels");
        let mut pb = Partition::new();
        pb.push(Channel::with_vc(first, Direction::Minus, first_vc))
            .expect("fresh partition");
        pb.push_star(Channel::with_vc(second, Direction::Plus, 2))
            .expect("disjoint channels");
        partitions.push(pa);
        partitions.push(pb);
    }
    let seq = PartitionSeq::from_partitions(partitions);
    seq.validate().expect("planar-adaptive design is valid");
    seq
}

/// The torus dateline design as an EbDa partition sequence, using
/// coordinate-restricted channel classes (the Theorem 2 note: "each
/// wraparound channel … can be seen as two unidirectional channels and two
/// U-turns", combined with Definition 6's position-based disjointness).
///
/// Per dimension `d` of radix `k_d`, three partitions in Theorem 3 order:
///
/// 1. the VC 1 non-wrap channels (`+` except at the last coordinate, `-`
///    except at the first) — the pre-dateline stage;
/// 2. the VC 2 wrap channels (only at the dateline coordinates);
/// 3. the VC 2 non-wrap channels — the post-dateline stage.
///
/// Dimensions follow each other in order (dimension-ordered torus
/// routing). Unlike ad-hoc dateline implementations, this form is checked
/// by the *class-level* Dally verifier: the wrap/non-wrap split breaks the
/// VC 2 ring in the channel-class graph itself.
///
/// # Panics
///
/// Panics if any radix is smaller than 3 (radix-2 rings have no distinct
/// wrap link and radix-1 has no ring at all).
pub fn torus_dateline(radix: &[usize]) -> PartitionSeq {
    assert!(
        radix.iter().all(|&k| k >= 3),
        "dateline partitions need radix >= 3"
    );
    let mut partitions = Vec::with_capacity(3 * radix.len());
    for (d, &k) in radix.iter().enumerate() {
        let dim = Dimension::new(d as u8);
        let last = (k - 1) as i64;
        let plus = |vc| Channel::with_vc(dim, Direction::Plus, vc);
        let minus = |vc| Channel::with_vc(dim, Direction::Minus, vc);
        let pre = Partition::from_channels([
            plus(1).not_at_coord(dim, last),
            minus(1).not_at_coord(dim, 0),
        ])
        .expect("disjoint channels");
        let wrap =
            Partition::from_channels([plus(2).at_coord(dim, last), minus(2).at_coord(dim, 0)])
                .expect("disjoint channels");
        let post = Partition::from_channels([
            plus(2).not_at_coord(dim, last),
            minus(2).not_at_coord(dim, 0),
        ])
        .expect("disjoint channels");
        partitions.push(pre);
        partitions.push(wrap);
        partitions.push(post);
    }
    let seq = PartitionSeq::from_partitions(partitions);
    seq.validate().expect("dateline design is valid");
    seq
}

/// The dateline design generalized to mixed mesh/torus networks: wrapped
/// dimensions get the three-stage dateline treatment of
/// [`torus_dateline`], mesh dimensions a single complete-pair partition
/// (their monotone progress needs no dateline). Dimensions follow each
/// other in index order.
///
/// ```
/// use ebda_core::catalog::dateline_design;
/// // X wraps, Y is a mesh dimension.
/// let seq = dateline_design(&[4, 4], &[true, false]);
/// assert_eq!(seq.len(), 4); // 3 X stages + 1 Y partition
/// ```
///
/// # Panics
///
/// Panics if the slices' lengths differ or a wrapped dimension has radix
/// below 3.
pub fn dateline_design(radix: &[usize], wrap: &[bool]) -> PartitionSeq {
    assert_eq!(radix.len(), wrap.len(), "one wrap flag per dimension");
    let mut partitions = Vec::new();
    for (d, (&k, &wraps)) in radix.iter().zip(wrap.iter()).enumerate() {
        let dim = Dimension::new(d as u8);
        if wraps {
            assert!(k >= 3, "dateline partitions need radix >= 3");
            let last = (k - 1) as i64;
            let plus = |vc| Channel::with_vc(dim, Direction::Plus, vc);
            let minus = |vc| Channel::with_vc(dim, Direction::Minus, vc);
            partitions.push(
                Partition::from_channels([
                    plus(1).not_at_coord(dim, last),
                    minus(1).not_at_coord(dim, 0),
                ])
                .expect("disjoint channels"),
            );
            partitions.push(
                Partition::from_channels([plus(2).at_coord(dim, last), minus(2).at_coord(dim, 0)])
                    .expect("disjoint channels"),
            );
            partitions.push(
                Partition::from_channels([
                    plus(2).not_at_coord(dim, last),
                    minus(2).not_at_coord(dim, 0),
                ])
                .expect("disjoint channels"),
            );
        } else {
            partitions.push(
                Partition::from_channels([
                    Channel::new(dim, Direction::Plus),
                    Channel::new(dim, Direction::Minus),
                ])
                .expect("disjoint channels"),
            );
        }
    }
    let seq = PartitionSeq::from_partitions(partitions);
    seq.validate().expect("dateline design is valid");
    seq
}

/// All catalog designs with their paper names, for exhaustive verification
/// sweeps.
pub fn all_designs() -> Vec<(&'static str, PartitionSeq)> {
    vec![
        ("P1 (XY)", p1_xy()),
        ("P2 (partially adaptive)", p2_partially_adaptive()),
        ("P3 (west-first)", p3_west_first()),
        ("P4 (negative-first)", p4_negative_first()),
        ("P5 (west-first + VCs)", p5_west_first_vcs()),
        ("north-last (Fig. 5)", north_last()),
        ("Fig. 7a (2D naive)", fig7a()),
        ("Fig. 7b (DyXY)", fig7b_dyxy()),
        ("Fig. 7c", fig7c()),
        ("Fig. 9a (3D naive)", fig9a()),
        ("Fig. 9b", fig9b()),
        ("Fig. 9c", fig9c()),
        ("Odd-Even", odd_even()),
        ("Hamiltonian", hamiltonian()),
        ("Table 5 (partial 3D)", table5_partial3d()),
        ("planar-adaptive 3D", planar_adaptive(3)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptiveness::is_fully_adaptive;
    use crate::extract::extract_turns;
    use crate::min_channels::{min_channels, vcs_per_dimension};

    #[test]
    fn every_catalog_design_is_valid() {
        for (name, seq) in all_designs() {
            assert!(seq.validate().is_ok(), "{name} failed validation");
            assert!(extract_turns(&seq).is_ok(), "{name} failed extraction");
        }
    }

    #[test]
    fn fig6_turn_counts() {
        // P1 (XY): four 90° turns — EN, ES, WN, WS — via Theorem 3.
        let ex = extract_turns(&p1_xy()).unwrap();
        assert_eq!(ex.turn_set().counts().ninety, 4);
        // P3/P4 give the maximum six 90° turns plus two U-turns each.
        for seq in [p3_west_first(), p4_negative_first()] {
            let c = extract_turns(&seq).unwrap().turn_set().counts();
            assert_eq!(c.ninety, 6);
            assert_eq!(c.u_turns, 2);
        }
    }

    #[test]
    fn p5_vcs_add_turns_but_no_adaptiveness() {
        let base = extract_turns(&p3_west_first()).unwrap();
        let vcs = extract_turns(&p5_west_first_vcs()).unwrap();
        let cb = base.turn_set().counts();
        let cv = vcs.turn_set().counts();
        assert!(cv.ninety > cb.ninety, "identical turns multiply with VCs");
        assert!(cv.i_turns > cb.i_turns);
        // Adaptiveness at the region level does not improve.
        use crate::channel::Direction::*;
        for region in [[Some(Minus), Some(Plus)], [Some(Minus), Some(Minus)]] {
            assert_eq!(
                crate::adaptiveness::region_is_fully_adaptive(&p3_west_first(), &region),
                crate::adaptiveness::region_is_fully_adaptive(&p5_west_first_vcs(), &region),
            );
        }
    }

    #[test]
    fn minimum_channel_designs_have_paper_budgets() {
        assert_eq!(fig7b_dyxy().channel_count() as u64, min_channels(2));
        assert_eq!(fig7c().channel_count() as u64, min_channels(2));
        assert_eq!(fig9b().channel_count() as u64, min_channels(3));
        assert_eq!(fig9c().channel_count() as u64, min_channels(3));
        assert_eq!(fig7a().channel_count(), 8);
        assert_eq!(fig9a().channel_count(), 24);
        assert_eq!(vcs_per_dimension(&fig9b(), 3), vec![2, 2, 4]);
        assert_eq!(vcs_per_dimension(&fig9c(), 3), vec![3, 2, 3]);
    }

    #[test]
    fn fully_adaptive_designs_cover_all_regions() {
        for (name, seq, n) in [
            ("Fig. 7a", fig7a(), 2),
            ("Fig. 7b", fig7b_dyxy(), 2),
            ("Fig. 7c", fig7c(), 2),
            ("Fig. 9a", fig9a(), 3),
            ("Fig. 9b", fig9b(), 3),
            ("Fig. 9c", fig9c(), 3),
        ] {
            assert!(is_fully_adaptive(&seq, n), "{name} must be fully adaptive");
        }
        for (name, seq) in [("P1", p1_xy()), ("P2", p2_partially_adaptive())] {
            assert!(!is_fully_adaptive(&seq, 2), "{name} is not fully adaptive");
        }
    }

    #[test]
    fn odd_even_has_twelve_ninety_degree_mesh_turns() {
        // Table 4: 4 turns in PA, 4 in PB, 4 by transition (one transition
        // entry, N_eE/S_eE-style, is unusable in a mesh but still allowed);
        // the extraction yields 12 90° turns total… plus the WN_o/WS_o pair
        // = the table's 4 transition turns. Count all Theorem-justified 90°
        // turns: PA 4 + PB 4 + transition 4 = 12.
        let ex = extract_turns(&odd_even()).unwrap();
        assert_eq!(ex.turn_set().counts().ninety, 12);
    }

    #[test]
    fn hamiltonian_has_twelve_ninety_degree_turns() {
        // Section 6.2: "twelve 90-degree turns are allowed including all the
        // eight ones suggested by the Hamiltonian-path strategy".
        let ex = extract_turns(&hamiltonian()).unwrap();
        assert_eq!(ex.turn_set().counts().ninety, 12);
    }

    #[test]
    fn table5_has_thirty_ninety_degree_turns() {
        let ex = extract_turns(&table5_partial3d()).unwrap();
        let c = ex.turn_set().counts();
        assert_eq!(c.ninety, 30, "Table 5 lists exactly thirty 90° turns");
        // The paper says "six U- and I-turns"; full extraction finds eight —
        // the two extras are the cross-VC Y U-turns (Y1+→Y2-, Y1-→Y2+)
        // Theorem 3 enables, redundant with the intra-partition ones the
        // paper counts. See EXPERIMENTS.md.
        assert_eq!(c.u_turns + c.i_turns, 8);
        assert_eq!(vcs_per_dimension(&table5_partial3d(), 3), vec![1, 2, 1]);
    }

    #[test]
    fn planar_adaptive_construction() {
        // n = 2 degenerates to the Fig. 7b design.
        assert_eq!(planar_adaptive(2), fig7b_dyxy());
        for n in 2..=5usize {
            let seq = planar_adaptive(n);
            assert!(seq.validate().is_ok(), "n={n}");
            assert_eq!(seq.len(), 2 * (n - 1));
            assert_eq!(seq.channel_count(), 6 * (n - 1));
            // Partially adaptive for n >= 3: cheaper than full adaptiveness.
            if n >= 3 {
                assert!((seq.channel_count() as u64) < crate::min_channels::min_channels(n as u32));
                assert!(!is_fully_adaptive(&seq, n));
            }
        }
    }

    #[test]
    fn torus_dateline_structure() {
        let seq = torus_dateline(&[4, 4]);
        assert!(seq.validate().is_ok());
        assert_eq!(seq.len(), 6); // three stages per dimension
        assert_eq!(seq.channel_count(), 12);
        for p in seq.partitions() {
            assert_eq!(p.complete_pair_dims().len(), 1);
        }
    }

    #[test]
    #[should_panic(expected = "radix >= 3")]
    fn torus_dateline_rejects_small_rings() {
        let _ = torus_dateline(&[2, 4]);
    }

    #[test]
    fn fig8_turn_extraction_totals() {
        // The Figure 8 design: within each partition 10 90° turns + 1
        // U-turn; each of the six ordered partition transitions is a 4x4
        // cross product.
        let ex = extract_turns(&fig9b()).unwrap();
        let c = ex.turn_set().counts();
        // 90°: 4 partitions × 10 + transitions contribute 10 each
        // (per the Fig. 8 boxes: each transition block lists 10 turns).
        assert_eq!(c.ninety, 4 * 10 + 6 * 10);
        // U-turns: 4 intra (one per pair) + per-transition U-turns.
        // I-turns: transitions only.
        assert_eq!(c.total(), 4 * 11 + 6 * 16);
    }
}
