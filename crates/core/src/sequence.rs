//! Ordered sequences of disjoint partitions (the object Theorem 3 acts on).
//!
//! A [`PartitionSeq`] is the complete description of an EbDa design: packets
//! may roam freely inside their current partition and may move to any *later*
//! partition, never back. The sequence order is the "consecutive
//! (ascending) order" of Theorem 3.

use crate::error::{EbdaError, Result};
use crate::partition::Partition;
use std::fmt;

/// An ordered sequence of pairwise-disjoint, Theorem-1-valid partitions.
///
/// ```
/// use ebda_core::PartitionSeq;
/// // North-last (Fig. 5): PA[X+ X- Y-] -> PB[Y+].
/// let seq = PartitionSeq::parse("X+ X- Y- | Y+").unwrap();
/// assert_eq!(seq.len(), 2);
/// assert!(seq.validate().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PartitionSeq {
    partitions: Vec<Partition>,
}

impl PartitionSeq {
    /// Creates an empty sequence.
    pub fn new() -> PartitionSeq {
        PartitionSeq::default()
    }

    /// Builds a sequence from partitions *without* validating; call
    /// [`PartitionSeq::validate`] to check Theorem 1 and disjointness.
    pub fn from_partitions(partitions: Vec<Partition>) -> PartitionSeq {
        PartitionSeq { partitions }
    }

    /// Builds and validates in one step.
    ///
    /// # Errors
    ///
    /// Returns the first violation found, as documented on
    /// [`PartitionSeq::validate`].
    pub fn try_from_partitions(partitions: Vec<Partition>) -> Result<PartitionSeq> {
        let seq = PartitionSeq { partitions };
        seq.validate()?;
        Ok(seq)
    }

    /// Parses a `|`- or `->`-separated list of partitions, each a channel
    /// list in the notation of [`crate::parse_channels`].
    ///
    /// ```
    /// use ebda_core::PartitionSeq;
    /// let p3 = PartitionSeq::parse("X- -> X+ Y+ Y-").unwrap(); // west-first
    /// assert_eq!(p3.len(), 2);
    /// ```
    ///
    /// # Errors
    ///
    /// Returns parse errors for malformed channels or overlap errors for
    /// channels duplicated inside one partition. Cross-partition validity is
    /// *not* checked here; call [`PartitionSeq::validate`].
    pub fn parse(s: &str) -> Result<PartitionSeq> {
        let normalized = s.replace("->", "|");
        let mut partitions = Vec::new();
        for part in normalized.split('|') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            partitions.push(Partition::parse(part)?);
        }
        Ok(PartitionSeq { partitions })
    }

    /// Appends a partition at the end (the latest position in the Theorem 3
    /// order).
    pub fn push(&mut self, p: Partition) {
        self.partitions.push(p);
    }

    /// The partitions in ascending (Theorem 3) order.
    pub fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.partitions.len()
    }

    /// Returns `true` if there are no partitions.
    pub fn is_empty(&self) -> bool {
        self.partitions.is_empty()
    }

    /// Total number of channels across all partitions.
    pub fn channel_count(&self) -> usize {
        self.partitions.iter().map(Partition::len).sum()
    }

    /// Every channel of the design, flattened in partition order — the
    /// design's channel universe.
    ///
    /// ```
    /// use ebda_core::PartitionSeq;
    /// let seq = PartitionSeq::parse("X- | X+ Y+ Y-").unwrap();
    /// assert_eq!(seq.channels().len(), 4);
    /// assert_eq!(seq.channels()[0].to_string(), "X1-");
    /// ```
    pub fn channels(&self) -> Vec<crate::channel::Channel> {
        self.partitions
            .iter()
            .flat_map(|p| p.channels().iter().copied())
            .collect()
    }

    /// Checks the two structural conditions EbDa requires:
    ///
    /// 1. every partition satisfies Theorem 1 (at most one complete D-pair);
    /// 2. partitions are pairwise disjoint (Definition 6).
    ///
    /// # Errors
    ///
    /// Returns [`EbdaError::TooManyPairs`] or
    /// [`EbdaError::PartitionsOverlap`] for the first violation found.
    pub fn validate(&self) -> Result<()> {
        for p in &self.partitions {
            p.check_theorem1()?;
        }
        for i in 0..self.partitions.len() {
            for j in (i + 1)..self.partitions.len() {
                if let Some((a, _)) = self.partitions[i].shared_channel(&self.partitions[j]) {
                    return Err(EbdaError::PartitionsOverlap {
                        first: i,
                        second: j,
                        shared: a.to_string(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Returns a copy with the partition order reversed — the Section 5.3.3
    /// "tracing partitions in different orders" derivation in its simplest
    /// form.
    pub fn reversed(&self) -> PartitionSeq {
        PartitionSeq {
            partitions: self.partitions.iter().rev().cloned().collect(),
        }
    }

    /// Returns a copy with the partitions permuted by `order` (indices into
    /// the current sequence).
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of `0..len`.
    pub fn permuted(&self, order: &[usize]) -> PartitionSeq {
        assert_eq!(order.len(), self.partitions.len(), "order length mismatch");
        let mut seen = vec![false; order.len()];
        for &i in order {
            assert!(!seen[i], "order must be a permutation");
            seen[i] = true;
        }
        PartitionSeq {
            partitions: order.iter().map(|&i| self.partitions[i].clone()).collect(),
        }
    }

    /// A canonical, whitespace-normalized rendering used for deduplication
    /// by the derivation machinery.
    pub fn canonical_string(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for PartitionSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, p) in self.partitions.iter().enumerate() {
            if i > 0 {
                write!(f, " -> ")?;
            }
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

impl std::str::FromStr for PartitionSeq {
    type Err = EbdaError;

    /// Parses and validates in one step (unlike [`PartitionSeq::parse`],
    /// which defers validation).
    fn from_str(s: &str) -> Result<PartitionSeq> {
        let seq = PartitionSeq::parse(s)?;
        seq.validate()?;
        Ok(seq)
    }
}

impl FromIterator<Partition> for PartitionSeq {
    fn from_iter<T: IntoIterator<Item = Partition>>(iter: T) -> PartitionSeq {
        PartitionSeq {
            partitions: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_both_separators() {
        let a = PartitionSeq::parse("X+ X- Y- | Y+").unwrap();
        let b = PartitionSeq::parse("X+ X- Y- -> Y+").unwrap();
        assert_eq!(a, b);
        assert_eq!(a.channel_count(), 4);
    }

    #[test]
    fn validate_accepts_the_papers_designs() {
        // Section 4, P1..P4.
        for s in [
            "X+ | X- | Y+ | Y-",
            "Y- | X- | Y+ X+",
            "X- | X+ Y+ Y-",
            "X- Y- | X+ Y+",
        ] {
            let seq = PartitionSeq::parse(s).unwrap();
            assert!(seq.validate().is_ok(), "{s} should validate");
        }
    }

    #[test]
    fn validate_rejects_two_pairs_in_one_partition() {
        let seq = PartitionSeq::parse("X+ X- Y+ Y-").unwrap();
        assert!(matches!(
            seq.validate(),
            Err(EbdaError::TooManyPairs { .. })
        ));
    }

    #[test]
    fn validate_rejects_overlapping_partitions() {
        let seq = PartitionSeq::parse("X+ Y+ | X+ Y-").unwrap();
        assert!(matches!(
            seq.validate(),
            Err(EbdaError::PartitionsOverlap {
                first: 0,
                second: 1,
                ..
            })
        ));
    }

    #[test]
    fn reversal_and_permutation() {
        let seq = PartitionSeq::parse("X+ | Y+ | X-").unwrap();
        assert_eq!(seq.reversed().to_string(), "[X1-] -> [Y1+] -> [X1+]");
        assert_eq!(
            seq.permuted(&[1, 0, 2]).to_string(),
            "[Y1+] -> [X1+] -> [X1-]"
        );
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn bad_permutation_panics() {
        let seq = PartitionSeq::parse("X+ | Y+").unwrap();
        let _ = seq.permuted(&[0, 0]);
    }

    #[test]
    fn display_matches_paper_notation() {
        let seq = PartitionSeq::parse("X- Y- | X+ Y+").unwrap();
        assert_eq!(seq.to_string(), "[X1- Y1-] -> [X1+ Y1+]");
    }
}
