//! Canonical content hashing of verification problems.
//!
//! A verification problem — a concrete topology shape, a per-dimension VC
//! budget, a channel-class universe, and a turn relation — is identified
//! by a canonical 64-bit content hash. *Canonical* means the hash is
//! independent of how the caller happened to enumerate the channels or
//! turns: the encoding sorts both before hashing, so two descriptions of
//! the same design always collide (on purpose).
//!
//! The hash is the address of corpus entries on disk
//! (`corpus/seed/<hash>.json`) and the key a persistent verdict cache can
//! use to skip re-verifying a design it has already decided.

use crate::{Channel, TurnSet};
use std::fmt::Write as _;

/// Version tag folded into every canonical encoding. Bump when the
/// encoding (not the design) changes, so stale caches cannot alias.
pub const CANONICAL_VERSION: u32 = 1;

/// The canonical text encoding of a verification problem: a single line
/// with sorted channel and turn renderings, suitable for hashing or
/// golden-file comparison.
///
/// ```
/// use ebda_core::{canonical, parse_channels, TurnSet};
/// let a = canonical::canonical_string(
///     &[4, 4], &[false, false], &[1, 1],
///     &parse_channels("X+ Y+").unwrap(), &TurnSet::new());
/// let b = canonical::canonical_string(
///     &[4, 4], &[false, false], &[1, 1],
///     &parse_channels("Y+ X+").unwrap(), &TurnSet::new());
/// assert_eq!(a, b); // enumeration order does not matter
/// ```
pub fn canonical_string(
    radix: &[usize],
    wrap: &[bool],
    vcs: &[u8],
    universe: &[Channel],
    turns: &TurnSet,
) -> String {
    let mut channels: Vec<String> = universe.iter().map(|c| c.to_string()).collect();
    channels.sort();
    channels.dedup();
    // `TurnSet` iterates in sorted order already; render as `from>to`.
    let turn_text: Vec<String> = turns
        .iter()
        .map(|t| format!("{}>{}", t.from, t.to))
        .collect();
    let mut out = String::new();
    let _ = write!(out, "ebda-canonical-v{CANONICAL_VERSION}|radix=");
    join_into(&mut out, radix.iter().map(|r| r.to_string()));
    out.push_str("|wrap=");
    join_into(&mut out, wrap.iter().map(|w| if *w { "1" } else { "0" }));
    out.push_str("|vcs=");
    join_into(&mut out, vcs.iter().map(|v| v.to_string()));
    out.push_str("|universe=");
    join_into(&mut out, channels);
    out.push_str("|turns=");
    join_into(&mut out, turn_text);
    out
}

fn join_into<S: AsRef<str>>(out: &mut String, items: impl IntoIterator<Item = S>) {
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(item.as_ref());
    }
}

/// The canonical 64-bit content hash of a verification problem (FNV-1a
/// over [`canonical_string`]). Deterministic across runs, platforms and
/// enumeration orders.
pub fn canonical_hash(
    radix: &[usize],
    wrap: &[bool],
    vcs: &[u8],
    universe: &[Channel],
    turns: &TurnSet,
) -> u64 {
    fnv1a(canonical_string(radix, wrap, vcs, universe, turns).as_bytes())
}

/// Renders a canonical hash as the fixed-width lowercase hex used in
/// corpus file names.
pub fn hash_hex(hash: u64) -> String {
    format!("{hash:016x}")
}

/// 64-bit FNV-1a over a byte string.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{catalog, extract_turns, parse_channels};

    #[test]
    fn hash_ignores_universe_order() {
        let turns = TurnSet::new();
        let a = parse_channels("X+ X- Y+ Y-").unwrap();
        let mut b = a.clone();
        b.reverse();
        assert_eq!(
            canonical_hash(&[4, 4], &[false; 2], &[1, 1], &a, &turns),
            canonical_hash(&[4, 4], &[false; 2], &[1, 1], &b, &turns),
        );
    }

    #[test]
    fn hash_distinguishes_every_field() {
        let turns = TurnSet::new();
        let universe = parse_channels("X+ X-").unwrap();
        let base = canonical_hash(&[4, 4], &[false; 2], &[1, 1], &universe, &turns);
        assert_ne!(
            base,
            canonical_hash(&[4, 3], &[false; 2], &[1, 1], &universe, &turns)
        );
        assert_ne!(
            base,
            canonical_hash(&[4, 4], &[true, false], &[1, 1], &universe, &turns)
        );
        assert_ne!(
            base,
            canonical_hash(&[4, 4], &[false; 2], &[2, 1], &universe, &turns)
        );
        let wider = parse_channels("X+ X- Y+").unwrap();
        assert_ne!(
            base,
            canonical_hash(&[4, 4], &[false; 2], &[1, 1], &wider, &turns)
        );
        let seq = catalog::p3_west_first();
        let with_turns = extract_turns(&seq).unwrap().into_turn_set();
        assert_ne!(
            base,
            canonical_hash(&[4, 4], &[false; 2], &[1, 1], &universe, &with_turns)
        );
    }

    #[test]
    fn coordinate_restricted_channels_render_distinctly() {
        // Dateline designs differ from plain designs only in channel
        // classes; the hash must see that.
        let seq = catalog::dateline_design(&[4, 4], &[true, true]);
        let plain = crate::PartitionSeq::parse("X1+ X1- | Y1+ Y1-").unwrap();
        let t1 = extract_turns(&seq).unwrap().into_turn_set();
        let t2 = extract_turns(&plain).unwrap().into_turn_set();
        assert_ne!(
            canonical_hash(&[4, 4], &[true, true], &[2, 2], &seq.channels(), &t1),
            canonical_hash(&[4, 4], &[true, true], &[1, 1], &plain.channels(), &t2),
        );
    }

    #[test]
    fn hex_rendering_is_fixed_width() {
        assert_eq!(hash_hex(0), "0000000000000000");
        assert_eq!(hash_hex(u64::MAX), "ffffffffffffffff");
        assert_eq!(hash_hex(0xabc), "0000000000000abc");
    }

    #[test]
    fn canonical_string_shape() {
        let s = canonical_string(
            &[3, 3],
            &[true, false],
            &[1, 2],
            &parse_channels("Y+ X+").unwrap(),
            &TurnSet::new(),
        );
        assert_eq!(
            s,
            "ebda-canonical-v1|radix=3,3|wrap=1,0|vcs=1,2|universe=X1+,Y1+|turns="
        );
    }
}
