//! The exceptional no-VC partitioning of Section 5.2.2.
//!
//! When no virtual channels are available, channels can be divided into two
//! partitions neither of which covers a complete pair: one channel per
//! dimension in `PA`, the opposite channels in `PB`. Exchanging channels
//! between the two partitions yields `2^n` options in total (including the
//! `PB → PA` orders).

use crate::channel::{Channel, Dimension, Direction};
use crate::error::{EbdaError, Result};
use crate::partition::Partition;
use crate::sequence::PartitionSeq;

/// Enumerates all `2^n` exceptional partitionings of an `n`-dimensional
/// network without VCs: for every sign vector σ, `PA` holds `d_i^{σ_i}` and
/// `PB` holds the opposite channels.
///
/// The first `2^(n-1)` options start with a `PA` containing `X+`; the rest
/// are the complement orders ("switching from PBs to PAs").
///
/// ```
/// use ebda_core::exceptional::exceptional_partitionings;
/// let opts = exceptional_partitionings(2).unwrap();
/// let strings: Vec<String> = opts.iter().map(|s| s.to_string()).collect();
/// assert_eq!(strings, [
///     "[X1+ Y1+] -> [X1- Y1-]",
///     "[X1+ Y1-] -> [X1- Y1+]",
///     "[X1- Y1+] -> [X1+ Y1-]",
///     "[X1- Y1-] -> [X1+ Y1+]",
/// ]);
/// ```
///
/// # Errors
///
/// Returns [`EbdaError::BadDimension`] for `n == 0` or `n > 16`.
pub fn exceptional_partitionings(n: usize) -> Result<Vec<PartitionSeq>> {
    if n == 0 {
        return Err(EbdaError::BadDimension {
            n,
            reason: "at least one dimension is required",
        });
    }
    if n > 16 {
        return Err(EbdaError::BadDimension {
            n,
            reason: "2^n options would be enormous; cap is n = 16",
        });
    }
    let mut out = Vec::with_capacity(1 << n);
    for mask in 0..(1u32 << n) {
        let mut pa = Partition::new();
        let mut pb = Partition::new();
        for d in 0..n {
            let dim = Dimension::new(d as u8);
            let dir = if mask & (1 << (n - 1 - d)) == 0 {
                Direction::Plus
            } else {
                Direction::Minus
            };
            pa.push(Channel::new(dim, dir))?;
            pb.push(Channel::new(dim, dir.opposite()))?;
        }
        out.push(PartitionSeq::from_partitions(vec![pa, pb]));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_d_has_eight_options_matching_section_5_2_2() {
        let opts = exceptional_partitionings(3).unwrap();
        assert_eq!(opts.len(), 8);
        let strings: Vec<String> = opts.iter().map(|s| s.to_string()).collect();
        // The paper lists the first four; the rest are the PB→PA switches.
        assert_eq!(strings[0], "[X1+ Y1+ Z1+] -> [X1- Y1- Z1-]");
        assert_eq!(strings[1], "[X1+ Y1+ Z1-] -> [X1- Y1- Z1+]");
        assert_eq!(strings[2], "[X1+ Y1- Z1+] -> [X1- Y1+ Z1-]");
        assert_eq!(strings[3], "[X1+ Y1- Z1-] -> [X1- Y1+ Z1+]");
        assert_eq!(strings[4], "[X1- Y1+ Z1+] -> [X1+ Y1- Z1-]");
    }

    #[test]
    fn all_options_validate_with_no_complete_pairs() {
        for n in 1..=4 {
            for seq in exceptional_partitionings(n).unwrap() {
                assert!(seq.validate().is_ok());
                for p in seq.partitions() {
                    assert!(p.complete_pair_dims().is_empty());
                    assert_eq!(p.len(), n);
                }
            }
        }
    }

    #[test]
    fn bounds_are_enforced() {
        assert!(exceptional_partitionings(0).is_err());
        assert!(exceptional_partitionings(17).is_err());
        let msg = exceptional_partitionings(0).unwrap_err().to_string();
        assert!(msg.contains("dimension"), "unhelpful error: {msg}");
    }

    #[test]
    fn one_dimension_yields_exactly_the_two_ring_orders() {
        // The smallest accepting boundary: a 1-D network has one channel
        // per direction, so the only options are which direction leads.
        let opts = exceptional_partitionings(1).unwrap();
        let strings: Vec<String> = opts.iter().map(|s| s.to_string()).collect();
        assert_eq!(strings, ["[X1+] -> [X1-]", "[X1-] -> [X1+]"]);
        for seq in &opts {
            assert!(seq.validate().is_ok());
            assert!(crate::theorems::design_verdict(seq).is_deadlock_free());
        }
    }

    #[test]
    fn sixteen_dimensions_is_the_accepted_boundary() {
        // n = 16 is the last accepted dimension count: 2^16 options, each
        // pairing a 16-channel PA with its opposite PB. Enumerating all of
        // them is cheap; validating every one is not, so spot-check the
        // corners of the sign-vector lattice.
        let opts = exceptional_partitionings(16).unwrap();
        assert_eq!(opts.len(), 1 << 16);
        for seq in [&opts[0], &opts[(1 << 16) - 1]] {
            assert!(seq.validate().is_ok());
            for p in seq.partitions() {
                assert_eq!(p.len(), 16);
                assert!(p.complete_pair_dims().is_empty());
            }
        }
        // The first option is all-Plus-first; the last is its mirror.
        assert!(opts[0].to_string().starts_with("[X1+ Y1+ Z1+"));
        assert!(opts[(1 << 16) - 1].to_string().starts_with("[X1- Y1- Z1-"));
    }

    #[test]
    fn merging_the_exceptional_partitions_violates_theorem_1() {
        // The whole point of the exceptional case: each partition alone has
        // no complete pair, but their union has one per dimension — merging
        // them back into a single partition must be rejected, with the
        // verdict naming Theorem 1.
        let opts = exceptional_partitionings(2).unwrap();
        let mut merged = Partition::new();
        for p in opts[0].partitions() {
            for &c in p.channels() {
                merged.push(c).unwrap();
            }
        }
        assert_eq!(merged.complete_pair_dims().len(), 2);
        let seq = PartitionSeq::from_partitions(vec![merged]);
        let err = seq.validate().unwrap_err();
        assert!(err.to_string().contains("Theorem 1"), "{err}");
        let verdict = crate::theorems::design_verdict(&seq);
        assert!(!verdict.is_deadlock_free());
        assert!(verdict.reason().unwrap().contains("Theorem 1"));
    }
}
