//! EbDa as a *verification* procedure: given an arbitrary turn set, try to
//! reconstruct a partition sequence whose Theorem 1–3 extraction allows
//! every given turn. Such a sequence is a *certificate* of deadlock
//! freedom — the paper's "algorithms can be verified on their freedom from
//! deadlock" made executable.
//!
//! The reconstruction is direct, not a search:
//!
//! 1. channels connected by *mutual* turns must share a partition (a
//!    transition between distinct partitions is one-way by Theorem 3), so
//!    the strongly connected components of the turn relation are the
//!    candidate partitions;
//! 2. each component must satisfy Theorem 1 (at most one complete D-pair)
//!    and its same-dimension turns must be linearizable (Theorem 2's
//!    ascending numbering);
//! 3. the components must topologically order by the remaining one-way
//!    turns (Theorem 3's consecutive order).
//!
//! Failure does **not** prove deadlock — EbDa certificates are sufficient,
//! not necessary — but on the classic 2D/4-channel space the procedure is
//! exact: it certifies precisely the deadlock-free turn-model combinations
//! (see the tests and `ebda-bench --bin scalability`).
//!
//! **Scope.** Certificates assume mesh-like monotone progress within a
//! channel class: going straight on one class never returns to the same
//! physical link. Wrap-around rings violate that, so on tori a class-level
//! certificate alone is not sufficient — pair it with an exact check, as
//! `ebda_routing::certify_relation` does.

use crate::channel::Channel;
use crate::error::{EbdaError, Result};
use crate::extract::extract_turns;
use crate::partition::Partition;
use crate::sequence::PartitionSeq;
use crate::turn::TurnSet;
use std::collections::BTreeMap;

/// Why certification failed. Carried by [`certify`]'s error value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertifyFailure {
    /// A would-be partition (an SCC of the turn relation) covers more than
    /// one complete D-pair, violating Theorem 1.
    TooManyPairs {
        /// Printable channel list of the offending component.
        component: Vec<String>,
    },
    /// Same-dimension turns inside a component are cyclic, so no Theorem 2
    /// numbering can realize them.
    UnorderableChannels {
        /// Printable channel list of the offending dimension group.
        channels: Vec<String>,
    },
}

impl std::fmt::Display for CertifyFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CertifyFailure::TooManyPairs { component } => write!(
                f,
                "component {{{}}} needs two complete D-pairs in one partition",
                component.join(" ")
            ),
            CertifyFailure::UnorderableChannels { channels } => write!(
                f,
                "same-dimension turns among {{{}}} cannot be linearized",
                channels.join(" ")
            ),
        }
    }
}

/// Attempts to certify a turn set as deadlock-free by reconstructing an
/// EbDa partition sequence whose extraction is a superset of it.
///
/// `universe` lists every channel class the routing uses (channels that
/// appear in no turn still need a home partition).
///
/// ```
/// use ebda_core::certify::certify;
/// use ebda_core::{extract_turns, catalog, parse_channels};
/// // Certify west-first from its raw turn set alone.
/// let ex = extract_turns(&catalog::p3_west_first())?;
/// let universe = parse_channels("X+ X- Y+ Y-")?;
/// let cert = certify(&universe, ex.turn_set()).expect("west-first is certifiable");
/// assert!(cert.validate().is_ok());
/// # Ok::<(), ebda_core::EbdaError>(())
/// ```
///
/// # Errors
///
/// Returns the first structural obstruction found. A failure means *EbDa
/// cannot certify this relation as-is* (it may still be deadlock-free for
/// other reasons, or become certifiable with finer channel classes — the
/// Odd-Even model needs its parity split, for example).
pub fn certify(
    universe: &[Channel],
    turns: &TurnSet,
) -> std::result::Result<PartitionSeq, CertifyFailure> {
    // Index the universe (including any turn endpoints not listed).
    let mut channels: Vec<Channel> = universe.to_vec();
    for t in turns.iter() {
        if !channels.contains(&t.from) {
            channels.push(t.from);
        }
        if !channels.contains(&t.to) {
            channels.push(t.to);
        }
    }
    let idx: BTreeMap<Channel, usize> = channels.iter().enumerate().map(|(i, &c)| (c, i)).collect();
    let n = channels.len();

    // SCCs of the turn relation = forced partitions.
    let mut adj = vec![Vec::new(); n];
    for t in turns.iter() {
        adj[idx[&t.from]].push(idx[&t.to] as u32);
    }
    let comp_of = scc_ids(&adj);
    let comp_count = comp_of.iter().map(|&c| c + 1).max().unwrap_or(0);

    // Build each component; check Theorem 1 and Theorem 2 orderability.
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); comp_count];
    for (i, &c) in comp_of.iter().enumerate() {
        members[c].push(i);
    }
    let mut parts: Vec<Partition> = Vec::with_capacity(comp_count);
    for comp in &members {
        let chans: Vec<Channel> = comp.iter().map(|&i| channels[i]).collect();
        let ordered = order_component(&chans, turns)?;
        let part = Partition::from_channels(ordered).map_err(|_| CertifyFailure::TooManyPairs {
            component: chans.iter().map(|c| c.to_string()).collect(),
        })?;
        if !part.theorem1_holds() {
            return Err(CertifyFailure::TooManyPairs {
                component: chans.iter().map(|c| c.to_string()).collect(),
            });
        }
        parts.push(part);
    }

    // Order the components by the one-way cross turns (always acyclic:
    // SCC condensation is a DAG).
    let mut comp_adj = vec![Vec::new(); comp_count];
    for t in turns.iter() {
        let (a, b) = (comp_of[idx[&t.from]], comp_of[idx[&t.to]]);
        if a != b && !comp_adj[a].contains(&(b as u32)) {
            comp_adj[a].push(b as u32);
        }
    }
    let order = topological_order(&comp_adj).expect("SCC condensation is acyclic");
    let seq = PartitionSeq::from_partitions(order.into_iter().map(|c| parts[c].clone()).collect());
    debug_assert!(seq.validate().is_ok(), "certificate must be valid");
    Ok(seq)
}

/// Certifies and cross-checks: the certificate's extraction must allow
/// every input turn. Returns the certificate and the extraction's turn
/// surplus (allowed-but-unused turns).
///
/// # Errors
///
/// Propagates [`certify`] failures as [`EbdaError`]-style strings inside
/// [`CertifyFailure`]; returns an internal-consistency error if the
/// certificate fails to cover the input (which would be a bug).
pub fn certify_checked(
    universe: &[Channel],
    turns: &TurnSet,
) -> std::result::Result<(PartitionSeq, TurnSet), CertifyFailure> {
    let seq = certify(universe, turns)?;
    let extraction = extract_turns(&seq).expect("certificates are valid designs");
    let missing: Vec<String> = turns
        .iter()
        .filter(|t| !extraction.turn_set().contains(*t))
        .map(|t| t.to_string())
        .collect();
    assert!(
        missing.is_empty(),
        "internal error: certificate does not cover turns {missing:?}"
    );
    let surplus = extraction.turn_set().difference(turns);
    Ok((seq, surplus))
}

/// Independently re-checks a partition-sequence certificate against the
/// turn set it claims to cover, walking every theorem obligation directly
/// instead of re-running [`certify`]. This is the checker half of the
/// prover/checker split: the walk below shares no code with the
/// reconstruction above (no SCCs, no Kahn ordering), so a bug in the
/// prover cannot silently validate its own output.
///
/// Obligations walked, in order:
///
/// 1. **coverage** — every universe channel and every turn endpoint sits
///    in exactly one partition;
/// 2. **disjointness** (Definition 6) — no channel of one partition
///    overlaps a channel of another;
/// 3. **Theorem 1** — each partition covers at most one complete D-pair;
/// 4. **Theorem 2** — a same-dimension turn inside a partition whose
///    dimension has a complete pair must move *forward* in the
///    partition's channel numbering;
/// 5. **Theorem 3** — a turn crossing partitions must land in a *later*
///    partition.
///
/// Returns the number of obligations checked (useful for reporting that
/// the walk actually covered something).
///
/// # Errors
///
/// Returns a human-readable description of the first violated obligation.
pub fn check_certificate(
    seq: &PartitionSeq,
    universe: &[Channel],
    turns: &TurnSet,
) -> std::result::Result<usize, String> {
    let mut obligations = 0usize;

    // 1. Coverage: channel -> (partition index, position within it).
    let mut home: BTreeMap<Channel, (usize, usize)> = BTreeMap::new();
    for (pi, part) in seq.partitions().iter().enumerate() {
        for (ci, &c) in part.channels().iter().enumerate() {
            if home.insert(c, (pi, ci)).is_some() {
                return Err(format!("channel {c} appears in more than one partition"));
            }
        }
    }
    for &c in universe {
        obligations += 1;
        if !home.contains_key(&c) {
            return Err(format!(
                "universe channel {c} is not covered by any partition"
            ));
        }
    }
    for t in turns.iter() {
        for c in [t.from, t.to] {
            obligations += 1;
            if !home.contains_key(&c) {
                return Err(format!("turn endpoint {c} is not covered by any partition"));
            }
        }
    }

    // 2. Pairwise disjointness (class-level overlap, not just equality).
    let parts = seq.partitions();
    for i in 0..parts.len() {
        for j in i + 1..parts.len() {
            obligations += 1;
            if let Some((a, b)) = parts[i].shared_channel(&parts[j]) {
                return Err(format!(
                    "partitions {} and {} overlap on {a} / {b}",
                    i + 1,
                    j + 1
                ));
            }
        }
    }

    // 3. Theorem 1 in every partition.
    for (pi, part) in parts.iter().enumerate() {
        obligations += 1;
        let dims = part.complete_pair_dims();
        if dims.len() > 1 {
            return Err(format!(
                "partition {} covers {} complete D-pairs; Theorem 1 allows at most one",
                pi + 1,
                dims.len()
            ));
        }
    }

    // 4 & 5. Every turn is allowed by the sequence.
    for t in turns.iter() {
        let (pa, ia) = home[&t.from];
        let (pb, ib) = home[&t.to];
        if pa == pb {
            // Within a partition 90° turns are free; same-dimension turns
            // obey the ascending Theorem 2 numbering when the dimension
            // has a complete pair (elsewhere the corollary frees them).
            if t.from.dim == t.to.dim && parts[pa].complete_pair_dims().contains(&t.from.dim) {
                obligations += 1;
                if ia >= ib {
                    return Err(format!(
                        "turn {t} moves against the Theorem 2 numbering of partition {}",
                        pa + 1
                    ));
                }
            }
        } else {
            obligations += 1;
            if pa > pb {
                return Err(format!(
                    "turn {t} crosses from partition {} back to {}, violating Theorem 3",
                    pa + 1,
                    pb + 1
                ));
            }
        }
    }
    Ok(obligations)
}

/// Produces a channel order for one component realizing its
/// same-dimension turns as ascending transitions.
fn order_component(
    chans: &[Channel],
    turns: &TurnSet,
) -> std::result::Result<Vec<Channel>, CertifyFailure> {
    // Ordering constraints only bind in dimensions with a complete pair:
    // elsewhere the corollary of Theorem 2 grants every I-turn, mutual
    // ones included.
    let paired: Vec<_> = {
        let mut dims = Vec::new();
        for &c in chans {
            let plus = chans
                .iter()
                .any(|o| o.dim == c.dim && o.dir == crate::channel::Direction::Plus);
            let minus = chans
                .iter()
                .any(|o| o.dim == c.dim && o.dir == crate::channel::Direction::Minus);
            if plus && minus && !dims.contains(&c.dim) {
                dims.push(c.dim);
            }
        }
        dims
    };
    let n = chans.len();
    let mut adj = vec![Vec::new(); n];
    for (i, &a) in chans.iter().enumerate() {
        for (j, &b) in chans.iter().enumerate() {
            if i != j
                && a.dim == b.dim
                && paired.contains(&a.dim)
                && turns.contains(crate::turn::Turn::new(a, b))
            {
                adj[i].push(j as u32);
            }
        }
    }
    match topological_order(&adj) {
        Some(order) => Ok(order.into_iter().map(|i| chans[i]).collect()),
        None => Err(CertifyFailure::UnorderableChannels {
            channels: chans.iter().map(|c| c.to_string()).collect(),
        }),
    }
}

/// Kahn topological order; `None` when cyclic.
fn topological_order(adj: &[Vec<u32>]) -> Option<Vec<usize>> {
    let n = adj.len();
    let mut indeg = vec![0usize; n];
    for out in adj {
        for &b in out {
            indeg[b as usize] += 1;
        }
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    let mut head = 0;
    while head < queue.len() {
        let v = queue[head];
        head += 1;
        order.push(v);
        for &b in &adj[v] {
            indeg[b as usize] -= 1;
            if indeg[b as usize] == 0 {
                queue.push(b as usize);
            }
        }
    }
    (order.len() == n).then_some(order)
}

/// Tarjan SCC returning a component id per node, ids numbered in reverse
/// topological order of discovery (we renumber to appearance order).
fn scc_ids(adj: &[Vec<u32>]) -> Vec<usize> {
    let n = adj.len();
    let mut index = vec![u32::MAX; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next = 0u32;
    let mut comp = vec![usize::MAX; n];
    let mut comp_count = 0usize;
    let mut work: Vec<(u32, usize)> = Vec::new();
    for start in 0..n as u32 {
        if index[start as usize] != u32::MAX {
            continue;
        }
        work.push((start, 0));
        index[start as usize] = next;
        low[start as usize] = next;
        next += 1;
        stack.push(start);
        on_stack[start as usize] = true;
        while let Some(&mut (node, ref mut cursor)) = work.last_mut() {
            let succs = &adj[node as usize];
            if *cursor < succs.len() {
                let s = succs[*cursor];
                *cursor += 1;
                if index[s as usize] == u32::MAX {
                    index[s as usize] = next;
                    low[s as usize] = next;
                    next += 1;
                    stack.push(s);
                    on_stack[s as usize] = true;
                    work.push((s, 0));
                } else if on_stack[s as usize] {
                    low[node as usize] = low[node as usize].min(index[s as usize]);
                }
            } else {
                work.pop();
                if let Some(&(p, _)) = work.last() {
                    low[p as usize] = low[p as usize].min(low[node as usize]);
                }
                if low[node as usize] == index[node as usize] {
                    loop {
                        let v = stack.pop().expect("scc stack underflow");
                        on_stack[v as usize] = false;
                        comp[v as usize] = comp_count;
                        if v == node {
                            break;
                        }
                    }
                    comp_count += 1;
                }
            }
        }
    }
    comp
}

impl From<CertifyFailure> for EbdaError {
    fn from(f: CertifyFailure) -> EbdaError {
        EbdaError::MalformedPairSet {
            reason: match f {
                CertifyFailure::TooManyPairs { .. } => {
                    "turn set forces two complete pairs into one partition"
                }
                CertifyFailure::UnorderableChannels { .. } => {
                    "turn set has cyclic same-dimension transitions"
                }
            },
        }
    }
}

/// Convenience: certify returning [`crate::error::Result`].
///
/// # Errors
///
/// See [`certify`].
pub fn certify_to_result(universe: &[Channel], turns: &TurnSet) -> Result<PartitionSeq> {
    certify(universe, turns).map_err(EbdaError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use crate::channel::parse_channels;
    use crate::turn::Turn;

    fn design_turns(seq: &PartitionSeq) -> (Vec<Channel>, TurnSet) {
        let universe = seq.channels();
        let ex = extract_turns(seq).unwrap();
        (universe, ex.into_turn_set())
    }

    #[test]
    fn certifies_every_catalog_design_from_its_own_turns() {
        for (name, seq) in catalog::all_designs() {
            let (universe, turns) = design_turns(&seq);
            let (cert, _surplus) =
                certify_checked(&universe, &turns).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(cert.validate().is_ok(), "{name} certificate invalid");
        }
    }

    #[test]
    fn certificate_covers_and_orders_north_last() {
        let (universe, turns) = design_turns(&catalog::north_last());
        let cert = certify(&universe, &turns).unwrap();
        // North-last's mutual turns force {X+, X-, Y-} together with Y+
        // after them.
        assert_eq!(cert.len(), 2);
        assert_eq!(cert.partitions()[0].len(), 3);
        assert_eq!(cert.partitions()[1].len(), 1);
    }

    #[test]
    fn rejects_the_all_turns_relation() {
        let universe = parse_channels("X+ X- Y+ Y-").unwrap();
        let mut turns = TurnSet::new();
        for &a in &universe {
            for &b in &universe {
                if a != b && a.dim != b.dim {
                    turns.insert(Turn::new(a, b));
                }
            }
        }
        let err = certify(&universe, &turns).unwrap_err();
        assert!(matches!(err, CertifyFailure::TooManyPairs { .. }));
    }

    #[test]
    fn rejects_cyclic_same_dimension_turns() {
        let universe = parse_channels("X1+ X2+ X1- Y1+").unwrap();
        let mut turns = TurnSet::new();
        // Mutual I-turns in a dimension *with* a complete pair: X1+ <-> X2+
        // plus the pair X1+/X1- in the same component via mutual U-turns.
        turns.insert(Turn::new(universe[0], universe[1]));
        turns.insert(Turn::new(universe[1], universe[0]));
        turns.insert(Turn::new(universe[0], universe[2]));
        turns.insert(Turn::new(universe[2], universe[0]));
        let err = certify(&universe, &turns).unwrap_err();
        assert!(
            matches!(err, CertifyFailure::UnorderableChannels { .. }),
            "{err}"
        );
    }

    #[test]
    fn parity_classes_recover_certifiability() {
        // The Odd-Even turn budget on *plain* channels is not certifiable:
        // the mutual turns weld all four directions into one two-pair
        // component. The same algorithm expressed with the paper's parity
        // classes certifies — finer channel classes are the escape hatch.
        let plain = parse_channels("X+ X- Y+ Y-").unwrap();
        let mut plain_turns = TurnSet::new();
        // Collapse Odd-Even's column-split turns onto plain channels:
        // WN, WS, NW, SW, EN, ES, NE, SE all become allowed somewhere.
        for (a, b) in [
            (1usize, 2),
            (1, 3),
            (2, 1),
            (3, 1),
            (0, 2),
            (0, 3),
            (2, 0),
            (3, 0),
        ] {
            plain_turns.insert(Turn::new(plain[a], plain[b]));
        }
        assert!(certify(&plain, &plain_turns).is_err());

        let (universe, turns) = design_turns(&catalog::odd_even());
        let cert = certify(&universe, &turns).unwrap();
        assert_eq!(cert.len(), 2, "odd-even certificate has two partitions");
    }

    #[test]
    fn channels_without_turns_get_singleton_partitions() {
        let universe = parse_channels("X+ X- Y+ Y-").unwrap();
        let turns = TurnSet::new(); // no turns at all: still certifiable
        let cert = certify(&universe, &turns).unwrap();
        assert_eq!(cert.len(), 4);
        assert!(cert.validate().is_ok());
    }

    #[test]
    fn checker_accepts_every_catalog_certificate() {
        for (name, seq) in catalog::all_designs() {
            let (universe, turns) = design_turns(&seq);
            let cert = certify(&universe, &turns).unwrap_or_else(|e| panic!("{name}: {e}"));
            let obligations = check_certificate(&cert, &universe, &turns)
                .unwrap_or_else(|e| panic!("{name}: checker rejected certificate: {e}"));
            assert!(obligations > 0, "{name}: checker walked no obligations");
        }
    }

    #[test]
    fn checker_rejects_tampered_certificates() {
        let (universe, turns) = design_turns(&catalog::north_last());
        let cert = certify(&universe, &turns).unwrap();

        // Reversing the partition order flips cross-partition turns
        // backwards (Theorem 3).
        let reversed = cert.reversed();
        let err = check_certificate(&reversed, &universe, &turns).unwrap_err();
        assert!(err.contains("Theorem 3"), "{err}");

        // Dropping a partition leaves turn endpoints homeless.
        let truncated = PartitionSeq::from_partitions(cert.partitions()[..1].to_vec());
        let err = check_certificate(&truncated, &universe, &turns).unwrap_err();
        assert!(err.contains("not covered"), "{err}");

        // Welding all four directions into one partition violates Theorem 1.
        let welded =
            PartitionSeq::from_partitions(vec![
                Partition::from_channels(universe.iter().copied()).unwrap()
            ]);
        let err = check_certificate(&welded, &universe, &turns).unwrap_err();
        assert!(err.contains("Theorem 1"), "{err}");
    }

    #[test]
    fn checker_rejects_reversed_theorem2_numbering() {
        // X1+ -> X2+ is an I-turn; with the complete X pair present the
        // partition numbering must realize it ascending.
        let universe = parse_channels("X1+ X2+ X1-").unwrap();
        let mut turns = TurnSet::new();
        turns.insert(Turn::new(universe[0], universe[1]));
        let good = PartitionSeq::from_partitions(vec![Partition::parse("X1+ X2+ X1-").unwrap()]);
        assert!(check_certificate(&good, &universe, &turns).is_ok());
        let bad = PartitionSeq::from_partitions(vec![Partition::parse("X2+ X1+ X1-").unwrap()]);
        let err = check_certificate(&bad, &universe, &turns).unwrap_err();
        assert!(err.contains("Theorem 2"), "{err}");
    }

    #[test]
    fn surplus_is_reported() {
        // Certifying XY's 4 turns yields a certificate that may allow
        // more (transitions grant extras); the surplus must be disjoint
        // from the input.
        let (universe, turns) = design_turns(&catalog::p1_xy());
        let (_, surplus) = certify_checked(&universe, &turns).unwrap();
        for t in surplus.iter() {
            assert!(!turns.contains(t));
        }
    }
}
