//! Adaptiveness metrics: region coverage, minimal-path counting and the
//! Figure 4 turn-counting identities.

use crate::channel::{Channel, Direction};

use crate::sequence::PartitionSeq;
use crate::turn::TurnSet;
use std::collections::HashMap;

/// Returns `true` if some single partition of the design covers the region
/// given by per-dimension required directions (`None` = no movement
/// needed). Inside one partition routing is fully adaptive, so covering a
/// region with one partition means full adaptiveness there (Section 4).
pub fn region_is_fully_adaptive(seq: &PartitionSeq, region: &[Option<Direction>]) -> bool {
    seq.partitions().iter().any(|p| p.covers_region(region))
}

/// Returns `true` if every one of the `2^n` regions is covered by a single
/// partition — the paper's definition of a fully adaptive design.
///
/// ```
/// use ebda_core::{adaptiveness::is_fully_adaptive, PartitionSeq};
/// let dyxy = PartitionSeq::parse("X1+ Y1+ Y1- | X1- Y2+ Y2-").unwrap();
/// assert!(is_fully_adaptive(&dyxy, 2));
/// let xy = PartitionSeq::parse("X+ | X- | Y+ | Y-").unwrap();
/// assert!(!is_fully_adaptive(&xy, 2));
/// ```
pub fn is_fully_adaptive(seq: &PartitionSeq, n: usize) -> bool {
    assert!(n < 32, "dimension too large for region enumeration");
    (0..(1u32 << n)).all(|mask| {
        let region: Vec<Option<Direction>> = (0..n)
            .map(|d| {
                Some(if mask & (1 << d) == 0 {
                    Direction::Plus
                } else {
                    Direction::Minus
                })
            })
            .collect();
        region_is_fully_adaptive(seq, &region)
    })
}

/// Counts the distinct minimal geometric paths a turn set permits between
/// two nodes of an `n`-dimensional mesh.
///
/// `channels` is the channel-class universe of the design (at most 64
/// classes). A geometric path (a sequence of `±dimension` moves) counts as
/// allowed when *some* assignment of channel classes to its hops satisfies
/// the turn set — computed by tracking the set of classes the packet could
/// currently occupy as a bitmask.
///
/// `src` and `dst` are coordinate vectors of equal length `n`.
///
/// The fully adaptive upper bound is the multinomial
/// `(Σ|Δ_i|)! / Π |Δ_i|!`; XY-style deterministic routing yields exactly 1.
///
/// # Panics
///
/// Panics if more than 64 channel classes are supplied or the coordinate
/// lengths differ.
pub fn count_minimal_paths(turns: &TurnSet, channels: &[Channel], src: &[i64], dst: &[i64]) -> u64 {
    assert!(channels.len() <= 64, "at most 64 channel classes supported");
    assert_eq!(src.len(), dst.len(), "coordinate dimension mismatch");
    // Initial mask: any class is available at injection.
    let full: u64 = if channels.len() == 64 {
        u64::MAX
    } else {
        (1u64 << channels.len()) - 1
    };
    let mut memo: HashMap<(Vec<i64>, u64), u64> = HashMap::new();
    count_rec(
        turns,
        channels,
        &mut src.to_vec(),
        dst,
        full,
        true,
        &mut memo,
    )
}

fn count_rec(
    turns: &TurnSet,
    channels: &[Channel],
    pos: &mut Vec<i64>,
    dst: &[i64],
    mask: u64,
    at_injection: bool,
    memo: &mut HashMap<(Vec<i64>, u64), u64>,
) -> u64 {
    if pos.as_slice() == dst {
        return 1;
    }
    let key = (pos.clone(), mask);
    if let Some(&v) = memo.get(&key) {
        return v;
    }
    let mut total = 0u64;
    for d in 0..pos.len() {
        let delta = dst[d] - pos[d];
        if delta == 0 {
            continue;
        }
        let need = if delta > 0 {
            Direction::Plus
        } else {
            Direction::Minus
        };
        // Classes that can carry this hop, reachable from the current mask.
        let mut new_mask = 0u64;
        for (ci, &c) in channels.iter().enumerate() {
            if c.dim.index() != d || c.dir != need || !c.class.contains(pos) {
                continue;
            }
            let reachable = if at_injection {
                // Injection can start on any class.
                mask & (1u64 << ci) != 0 || mask == compute_full(channels)
            } else {
                (0..channels.len())
                    .any(|pi| mask & (1u64 << pi) != 0 && turns.allows(channels[pi], c))
            };
            if reachable {
                new_mask |= 1u64 << ci;
            }
        }
        if new_mask == 0 {
            continue;
        }
        pos[d] += need.sign();
        total = total.saturating_add(count_rec(turns, channels, pos, dst, new_mask, false, memo));
        pos[d] -= need.sign();
    }
    memo.insert(key, total);
    total
}

fn compute_full(channels: &[Channel]) -> u64 {
    if channels.len() == 64 {
        u64::MAX
    } else {
        (1u64 << channels.len()) - 1
    }
}

/// The fully adaptive minimal-path count between two nodes: the multinomial
/// coefficient `(Σ|Δ_i|)! / Π |Δ_i|!`.
///
/// ```
/// use ebda_core::adaptiveness::max_minimal_paths;
/// assert_eq!(max_minimal_paths(&[0, 0], &[3, 2]), 10);
/// assert_eq!(max_minimal_paths(&[0, 0, 0], &[1, 1, 1]), 6);
/// ```
pub fn max_minimal_paths(src: &[i64], dst: &[i64]) -> u64 {
    let deltas: Vec<u64> = src
        .iter()
        .zip(dst.iter())
        .map(|(a, b)| a.abs_diff(*b))
        .collect();
    let total: u64 = deltas.iter().sum();
    let mut result = 1u64;
    let mut k = 0u64;
    for &d in &deltas {
        for i in 1..=d {
            k += 1;
            result = result * k / i;
        }
    }
    debug_assert_eq!(k, total);
    result
}

/// Figure 4's counting identity for a paired dimension with `a` positive
/// and `b` negative channels inside one partition:
///
/// `n(n-1)/2 = a·b + C(a,2) + C(b,2)` where `n = a + b`,
///
/// with `a·b` the U-turn count and the binomials the I-turn counts.
/// Returns `(total, u_turns, i_turns)`.
///
/// ```
/// use ebda_core::adaptiveness::fig4_turn_counts;
/// let (total, u, i) = fig4_turn_counts(3, 3);
/// assert_eq!((total, u, i), (15, 9, 6)); // the paper's 3-VC example
/// ```
pub fn fig4_turn_counts(a: u64, b: u64) -> (u64, u64, u64) {
    let n = a + b;
    let total = n * n.saturating_sub(1) / 2;
    let u = a * b;
    let i = a * a.saturating_sub(1) / 2 + b * b.saturating_sub(1) / 2;
    debug_assert_eq!(total, u + i, "the Fig. 4 identity must hold");
    (total, u, i)
}

/// Degree-of-adaptiveness summary of a design over every source/destination
/// pair of a `k^n` mesh: `(minimum, maximum, sum, pairs)` of allowed
/// minimal-path counts. A deterministic algorithm has max = 1; a fully
/// adaptive one matches [`max_minimal_paths`] everywhere.
pub fn adaptiveness_profile(
    turns: &TurnSet,
    channels: &[Channel],
    radix: i64,
    n: usize,
) -> AdaptivenessProfile {
    let mut min = u64::MAX;
    let mut max = 0u64;
    let mut sum = 0u64;
    let mut full = 0u64;
    let mut pairs = 0u64;
    let nodes: Vec<Vec<i64>> = enumerate_nodes(radix, n);
    for src in &nodes {
        for dst in &nodes {
            if src == dst {
                continue;
            }
            let c = count_minimal_paths(turns, channels, src, dst);
            let bound = max_minimal_paths(src, dst);
            min = min.min(c);
            max = max.max(c);
            sum += c;
            if c == bound {
                full += 1;
            }
            pairs += 1;
        }
    }
    AdaptivenessProfile {
        min,
        max,
        sum,
        fully_adaptive_pairs: full,
        pairs,
    }
}

/// The adaptiveness class of one region (orthant) under a design.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionClass {
    /// Every minimal path is allowed for every pair in the region.
    FullyAdaptive,
    /// Some pairs have several allowed minimal paths, but not all of them.
    PartiallyAdaptive,
    /// Exactly one minimal path per pair.
    Deterministic,
    /// Some pair in the region cannot be routed minimally at all.
    Unreachable,
}

impl std::fmt::Display for RegionClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegionClass::FullyAdaptive => write!(f, "fully adaptive"),
            RegionClass::PartiallyAdaptive => write!(f, "partially adaptive"),
            RegionClass::Deterministic => write!(f, "deterministic"),
            RegionClass::Unreachable => write!(f, "unreachable"),
        }
    }
}

/// Classifies every region (orthant) of an `n`-dimensional design by
/// sweeping all source/destination pairs of a `radix^n` mesh whose offset
/// signs match the region — the machine-checked version of statements like
/// Section 6.3's "fully adaptive routing can be utilized in four regions
/// as NEU, SEU, NWD, SWD and partially adaptive routing … in the other
/// four".
///
/// Returns one `(region signs, class)` entry per orthant, where the sign
/// vector gives the required direction per dimension.
pub fn region_classes(
    turns: &TurnSet,
    channels: &[Channel],
    radix: i64,
    n: usize,
) -> Vec<(Vec<Direction>, RegionClass)> {
    assert!(n < 16, "dimension too large for region enumeration");
    let nodes = enumerate_nodes(radix, n);
    let mut out = Vec::with_capacity(1 << n);
    for mask in 0..(1u32 << n) {
        let region: Vec<Direction> = (0..n)
            .map(|d| {
                if mask & (1 << d) == 0 {
                    Direction::Plus
                } else {
                    Direction::Minus
                }
            })
            .collect();
        let mut all_full = true;
        let mut all_single = true;
        let mut reachable = true;
        for src in &nodes {
            for dst in &nodes {
                // The pair must move in every dimension, with the region's
                // signs (pure-orthant pairs characterize the region).
                let in_region = (0..n).all(|d| match region[d] {
                    Direction::Plus => dst[d] > src[d],
                    Direction::Minus => dst[d] < src[d],
                });
                if !in_region {
                    continue;
                }
                let count = count_minimal_paths(turns, channels, src, dst);
                let bound = max_minimal_paths(src, dst);
                if count == 0 {
                    reachable = false;
                }
                if count != bound {
                    all_full = false;
                }
                if count > 1 {
                    all_single = false;
                }
            }
        }
        let class = if !reachable {
            RegionClass::Unreachable
        } else if all_full {
            RegionClass::FullyAdaptive
        } else if all_single {
            RegionClass::Deterministic
        } else {
            RegionClass::PartiallyAdaptive
        };
        out.push((region, class));
    }
    out
}

/// Summary statistics returned by [`adaptiveness_profile`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptivenessProfile {
    /// Minimum allowed minimal-path count over all pairs.
    pub min: u64,
    /// Maximum allowed minimal-path count over all pairs.
    pub max: u64,
    /// Sum of allowed minimal-path counts.
    pub sum: u64,
    /// Number of pairs at the fully adaptive bound.
    pub fully_adaptive_pairs: u64,
    /// Total number of ordered source/destination pairs.
    pub pairs: u64,
}

fn enumerate_nodes(radix: i64, n: usize) -> Vec<Vec<i64>> {
    let mut nodes = vec![vec![]];
    for _ in 0..n {
        let mut next = Vec::new();
        for node in &nodes {
            for c in 0..radix {
                let mut v = node.clone();
                v.push(c);
                next.push(v);
            }
        }
        nodes = next;
    }
    nodes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::extract_turns;

    #[test]
    fn fig4_identity_holds_broadly() {
        for a in 0..20u64 {
            for b in 0..20u64 {
                let (total, u, i) = fig4_turn_counts(a, b);
                assert_eq!(total, u + i, "identity fails for a={a}, b={b}");
            }
        }
    }

    #[test]
    fn multinomial_path_bound() {
        assert_eq!(max_minimal_paths(&[0, 0], &[0, 0]), 1);
        assert_eq!(max_minimal_paths(&[0, 0], &[1, 1]), 2);
        assert_eq!(max_minimal_paths(&[2, 3], &[0, 0]), 10);
        assert_eq!(max_minimal_paths(&[0, 0, 0], &[2, 1, 1]), 12);
    }

    #[test]
    fn xy_routing_is_deterministic() {
        // XY = partitions [X+][X-][Y+][Y-] in that order.
        let seq = PartitionSeq::parse("X+ | X- | Y+ | Y-").unwrap();
        let ex = extract_turns(&seq).unwrap();
        let channels: Vec<Channel> = crate::channel::parse_channels("X+ X- Y+ Y-").unwrap();
        for (src, dst) in [([0, 0], [3, 3]), ([3, 0], [0, 2]), ([2, 2], [0, 0])] {
            assert_eq!(
                count_minimal_paths(ex.turn_set(), &channels, &src, &dst),
                1,
                "XY must be deterministic for {src:?}->{dst:?}"
            );
        }
    }

    #[test]
    fn north_last_counts() {
        // North-last: fully adaptive when heading south, deterministic when
        // the packet must end going north.
        let seq = PartitionSeq::parse("X+ X- Y- | Y+").unwrap();
        let ex = extract_turns(&seq).unwrap();
        let channels: Vec<Channel> = crate::channel::parse_channels("X+ X- Y+ Y-").unwrap();
        // Southeast-bound: full adaptiveness (bound = 10 for 3x2 offsets).
        assert_eq!(
            count_minimal_paths(ex.turn_set(), &channels, &[0, 3], &[3, 1]),
            10
        );
        // Northeast-bound: east first then north, exactly 1 path.
        assert_eq!(
            count_minimal_paths(ex.turn_set(), &channels, &[0, 0], &[3, 2]),
            1
        );
    }

    #[test]
    fn negative_first_counts() {
        let seq = PartitionSeq::parse("X- Y- | X+ Y+").unwrap();
        let ex = extract_turns(&seq).unwrap();
        let channels: Vec<Channel> = crate::channel::parse_channels("X+ X- Y+ Y-").unwrap();
        // Pure-negative and pure-positive quadrants are fully adaptive.
        assert_eq!(
            count_minimal_paths(ex.turn_set(), &channels, &[3, 3], &[1, 1]),
            6
        );
        assert_eq!(
            count_minimal_paths(ex.turn_set(), &channels, &[0, 0], &[2, 2]),
            6
        );
        // Mixed quadrant: negative hops must all precede positive hops.
        assert_eq!(
            count_minimal_paths(ex.turn_set(), &channels, &[0, 2], &[2, 0]),
            1
        );
    }

    #[test]
    fn fully_adaptive_design_hits_the_bound_everywhere() {
        let seq = crate::min_channels::merged_partitioning(2).unwrap();
        let ex = extract_turns(&seq).unwrap();
        let channels = seq.channels();
        let profile = adaptiveness_profile(ex.turn_set(), &channels, 3, 2);
        assert_eq!(profile.fully_adaptive_pairs, profile.pairs);
    }

    #[test]
    fn profile_distinguishes_algorithms() {
        let channels: Vec<Channel> = crate::channel::parse_channels("X+ X- Y+ Y-").unwrap();
        let xy = extract_turns(&PartitionSeq::parse("X+ | X- | Y+ | Y-").unwrap()).unwrap();
        let nl = extract_turns(&PartitionSeq::parse("X+ X- Y- | Y+").unwrap()).unwrap();
        let pxy = adaptiveness_profile(xy.turn_set(), &channels, 3, 2);
        let pnl = adaptiveness_profile(nl.turn_set(), &channels, 3, 2);
        assert_eq!(pxy.max, 1);
        assert!(pnl.sum > pxy.sum);
        assert!(pnl.max > 1);
    }

    #[test]
    fn table5_region_claim_from_section_6_3() {
        // "fully adaptive routing can be utilized in four regions as NEU,
        // SEU, NWD, SWD and partially adaptive routing can be used in the
        // other four regions as NED, SED, NWU, and SWU."
        use Direction::*;
        let seq = crate::catalog::table5_partial3d();
        let ex = extract_turns(&seq).unwrap();
        let channels = seq.channels();
        let classes = region_classes(ex.turn_set(), &channels, 3, 3);
        let class_of = |x: Direction, y: Direction, z: Direction| {
            classes
                .iter()
                .find(|(r, _)| r == &vec![x, y, z])
                .map(|(_, c)| *c)
                .unwrap()
        };
        // (x, y, z) signs: N/S = Y, E/W = X, U/D = Z.
        for (x, y, z) in [
            (Plus, Plus, Plus),    // NEU
            (Plus, Minus, Plus),   // SEU
            (Minus, Plus, Minus),  // NWD
            (Minus, Minus, Minus), // SWD
        ] {
            assert_eq!(class_of(x, y, z), RegionClass::FullyAdaptive);
        }
        for (x, y, z) in [
            (Plus, Plus, Minus),  // NED
            (Plus, Minus, Minus), // SED
            (Minus, Plus, Plus),  // NWU
            (Minus, Minus, Plus), // SWU
        ] {
            assert_eq!(class_of(x, y, z), RegionClass::PartiallyAdaptive);
        }
    }

    #[test]
    fn region_classes_for_classic_2d_designs() {
        use Direction::*;
        let channels: Vec<Channel> = crate::channel::parse_channels("X+ X- Y+ Y-").unwrap();
        // XY: every quadrant deterministic.
        let xy = extract_turns(&PartitionSeq::parse("X+ | X- | Y+ | Y-").unwrap()).unwrap();
        for (_, class) in region_classes(xy.turn_set(), &channels, 4, 2) {
            assert_eq!(class, RegionClass::Deterministic);
        }
        // West-first: east quadrants fully adaptive, west deterministic.
        let wf = extract_turns(&PartitionSeq::parse("X- | X+ Y+ Y-").unwrap()).unwrap();
        let classes = region_classes(wf.turn_set(), &channels, 4, 2);
        for (region, class) in classes {
            match region[0] {
                Plus => assert_eq!(class, RegionClass::FullyAdaptive, "{region:?}"),
                Minus => assert_eq!(class, RegionClass::Deterministic, "{region:?}"),
            }
        }
    }

    #[test]
    fn region_coverage_queries() {
        use Direction::*;
        let dyxy = PartitionSeq::parse("X1+ Y1+ Y1- | X1- Y2+ Y2-").unwrap();
        assert!(region_is_fully_adaptive(&dyxy, &[Some(Plus), Some(Minus)]));
        assert!(region_is_fully_adaptive(&dyxy, &[Some(Minus), None]));
        let wf = PartitionSeq::parse("X- | X+ Y+ Y-").unwrap();
        // West-first: west-bound regions are NOT fully adaptive…
        assert!(!region_is_fully_adaptive(&wf, &[Some(Minus), Some(Plus)]));
        // …but east-bound ones are.
        assert!(region_is_fully_adaptive(&wf, &[Some(Plus), Some(Minus)]));
    }
}
