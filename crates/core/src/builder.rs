//! A fluent builder for partition sequences — ergonomic construction of
//! designs with validation at the end.

use crate::channel::Channel;
use crate::error::Result;
use crate::partition::Partition;
use crate::sequence::PartitionSeq;

/// Builds a [`PartitionSeq`] incrementally; validation (Theorem 1 +
/// disjointness) runs once at [`DesignBuilder::build`].
///
/// ```
/// use ebda_core::builder::DesignBuilder;
/// // West-first, fluently.
/// let design = DesignBuilder::new()
///     .partition(["X-"])?
///     .partition(["X+", "Y+", "Y-"])?
///     .build()?;
/// assert_eq!(design.to_string(), "[X1-] -> [X1+ Y1+ Y1-]");
/// # Ok::<(), ebda_core::EbdaError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct DesignBuilder {
    partitions: Vec<Partition>,
}

impl DesignBuilder {
    /// Creates an empty builder.
    pub fn new() -> DesignBuilder {
        DesignBuilder::default()
    }

    /// Appends a partition from channel tokens (the `X1+`/`Ye-`/`Z*`
    /// notation of [`crate::parse_channels`]).
    ///
    /// # Errors
    ///
    /// Returns parse errors for malformed tokens or overlap errors for
    /// non-disjoint channels within the partition.
    pub fn partition<'a, I>(mut self, tokens: I) -> Result<DesignBuilder>
    where
        I: IntoIterator<Item = &'a str>,
    {
        let joined: Vec<&str> = tokens.into_iter().collect();
        self.partitions.push(Partition::parse(&joined.join(" "))?);
        Ok(self)
    }

    /// Appends a partition from already-built channels.
    ///
    /// # Errors
    ///
    /// Returns an overlap error for non-disjoint channels.
    pub fn partition_channels<I>(mut self, channels: I) -> Result<DesignBuilder>
    where
        I: IntoIterator<Item = Channel>,
    {
        self.partitions.push(Partition::from_channels(channels)?);
        Ok(self)
    }

    /// Finishes the design, validating Theorem 1 and partition
    /// disjointness.
    ///
    /// # Errors
    ///
    /// Returns the first structural violation, as documented on
    /// [`PartitionSeq::validate`].
    pub fn build(self) -> Result<PartitionSeq> {
        PartitionSeq::try_from_partitions(self.partitions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use crate::channel::{Channel, Dimension, Direction};

    #[test]
    fn builds_the_catalog_classics() {
        let wf = DesignBuilder::new()
            .partition(["X-"])
            .unwrap()
            .partition(["X+", "Y+", "Y-"])
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(wf, catalog::p3_west_first());
        let nf = DesignBuilder::new()
            .partition(["X-", "Y-"])
            .unwrap()
            .partition(["X+", "Y+"])
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(nf, catalog::p4_negative_first());
    }

    #[test]
    fn wildcards_expand_inside_builder_partitions() {
        let seq = DesignBuilder::new()
            .partition(["X1+", "Y1*"])
            .unwrap()
            .partition(["X1-", "Y2*"])
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(seq, catalog::fig7b_dyxy());
    }

    #[test]
    fn build_rejects_invalid_designs() {
        let err = DesignBuilder::new()
            .partition(["X+", "X-", "Y+", "Y-"])
            .unwrap()
            .build();
        assert!(err.is_err(), "two pairs must be rejected at build time");
        let err = DesignBuilder::new()
            .partition(["X+"])
            .unwrap()
            .partition(["X+", "Y+"])
            .unwrap()
            .build();
        assert!(err.is_err(), "overlapping partitions must be rejected");
    }

    #[test]
    fn channel_variant_works() {
        let seq = DesignBuilder::new()
            .partition_channels([
                Channel::new(Dimension::X, Direction::Plus),
                Channel::new(Dimension::Y, Direction::Plus),
            ])
            .unwrap()
            .partition_channels([
                Channel::new(Dimension::X, Direction::Minus),
                Channel::new(Dimension::Y, Direction::Minus),
            ])
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(seq.to_string(), "[X1+ Y1+] -> [X1- Y1-]");
    }

    #[test]
    fn parse_errors_surface_immediately() {
        assert!(DesignBuilder::new().partition(["Q9+"]).is_err());
    }
}
