//! The turn-extraction engine: Theorems 1, 2 and 3 made executable.
//!
//! Given a validated [`PartitionSeq`], this module computes the complete set
//! of allowable turns exactly as Figure 8 of the paper does by hand:
//!
//! * **Theorem 1** — inside each partition, every ordered pair of channels in
//!   *different* dimensions is an allowed 90° turn.
//! * **Theorem 2** — inside each partition, channels of a dimension that has
//!   a complete D-pair are numbered by their position in the partition and
//!   may only be taken in ascending order (yielding the allowed U- and
//!   I-turns, half of all possibilities: `n(n-1)/2`). In dimensions without
//!   a complete pair, every I-turn is allowed.
//! * **Theorem 3** — from any channel of partition *i* to any channel of
//!   partition *j > i*, every transition (90°, U or I) is allowed.

use crate::channel::Channel;
use crate::error::Result;
use crate::partition::Partition;
use crate::sequence::PartitionSeq;
use crate::turn::{Turn, TurnSet};

/// Which theorem justified a turn — used to reproduce the grouped
/// presentation of Figure 8 and Tables 4–5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Justification {
    /// Theorem 1: 90° turn inside partition `partition`.
    Theorem1 {
        /// Index of the partition.
        partition: usize,
    },
    /// Theorem 2: ascending-order U-/I-turn inside partition `partition`.
    Theorem2 {
        /// Index of the partition.
        partition: usize,
    },
    /// Theorem 3: transition from partition `from` to partition `to`.
    Theorem3 {
        /// Index of the source partition.
        from: usize,
        /// Index of the destination partition.
        to: usize,
    },
}

impl Justification {
    /// Coverage-map label of the proof obligation this justification
    /// discharges: `theorem1/p0`, `theorem2/p1`, `theorem3/p0>p2`.
    /// Recorded under the `obligation` coverage family.
    pub fn coverage_key(&self) -> String {
        match self {
            Justification::Theorem1 { partition } => format!("theorem1/p{partition}"),
            Justification::Theorem2 { partition } => format!("theorem2/p{partition}"),
            Justification::Theorem3 { from, to } => format!("theorem3/p{from}>p{to}"),
        }
    }
}

/// The full result of turn extraction: every allowed turn plus the theorem
/// that justifies it.
#[derive(Debug, Clone, Default)]
pub struct Extraction {
    turns: TurnSet,
    justified: Vec<(Turn, Justification)>,
}

impl Extraction {
    /// All allowed turns as a flat set.
    pub fn turn_set(&self) -> &TurnSet {
        &self.turns
    }

    /// Consumes the extraction, returning the flat turn set.
    pub fn into_turn_set(self) -> TurnSet {
        self.turns
    }

    /// Every `(turn, justification)` pair, in generation order
    /// (Theorem 1 and 2 of partition 0, then Theorem 3 into later
    /// partitions, …).
    pub fn justified_turns(&self) -> &[(Turn, Justification)] {
        &self.justified
    }

    /// The turns justified by a specific theorem instance.
    pub fn turns_for(&self, j: Justification) -> TurnSet {
        self.justified
            .iter()
            .filter(|(_, jj)| *jj == j)
            .map(|(t, _)| *t)
            .collect()
    }

    /// The distinct theorem obligations this extraction discharged, as
    /// sorted, deduplicated [`Justification::coverage_key`] labels —
    /// what campaigns feed the `obligation` coverage family.
    pub fn obligation_keys(&self) -> Vec<String> {
        let mut keys: Vec<String> = self
            .justified
            .iter()
            .map(|(_, j)| j.coverage_key())
            .collect();
        keys.sort();
        keys.dedup();
        keys
    }

    fn record(&mut self, t: Turn, j: Justification) {
        if self.turns.insert(t) {
            self.justified.push((t, j));
        }
    }
}

/// Extracts every allowed turn from a partition sequence.
///
/// This is the Figure 8 engine; see the module docs for the exact rules.
///
/// ```
/// use ebda_core::{extract_turns, PartitionSeq, TurnKind};
/// // North-last (Fig. 5): PA[X+ X- Y-] -> PB[Y+].
/// let seq = PartitionSeq::parse("X+ X- Y- | Y+").unwrap();
/// let ex = extract_turns(&seq).unwrap();
/// let counts = ex.turn_set().counts();
/// assert_eq!(counts.ninety, 6); // max adaptiveness in 2D: 6 turns
/// assert_eq!(counts.u_turns, 2); // one per complete pair + Y-..Y+ via Th.3
/// ```
///
/// # Errors
///
/// Returns an error if the sequence fails [`PartitionSeq::validate`]: turns
/// may only be extracted from a structurally valid design.
pub fn extract_turns(seq: &PartitionSeq) -> Result<Extraction> {
    seq.validate()?;
    let mut ex = Extraction::default();
    let parts = seq.partitions();

    for (pi, p) in parts.iter().enumerate() {
        intra_partition_theorem1(&mut ex, p, pi);
        intra_partition_theorem2(&mut ex, p, pi);
    }
    for i in 0..parts.len() {
        for j in (i + 1)..parts.len() {
            let just = Justification::Theorem3 { from: i, to: j };
            for &a in parts[i].channels() {
                for &b in parts[j].channels() {
                    ex.record(Turn::new(a, b), just);
                }
            }
        }
    }
    Ok(ex)
}

/// Theorem 1: all ordered cross-dimension pairs inside the partition.
fn intra_partition_theorem1(ex: &mut Extraction, p: &Partition, pi: usize) {
    let just = Justification::Theorem1 { partition: pi };
    for &a in p.channels() {
        for &b in p.channels() {
            if a.dim != b.dim {
                ex.record(Turn::new(a, b), just);
            }
        }
    }
}

/// Theorem 2: same-dimension transitions inside the partition.
///
/// In a dimension with a complete pair, the partition's insertion order is
/// the channel numbering and only ascending transitions are allowed; in a
/// dimension without a complete pair every I-turn is allowed (corollary of
/// Theorem 2).
fn intra_partition_theorem2(ex: &mut Extraction, p: &Partition, pi: usize) {
    let just = Justification::Theorem2 { partition: pi };
    let paired = p.complete_pair_dims();
    let dims = p.dims();
    for d in dims {
        let in_dim: Vec<Channel> = p
            .channels()
            .iter()
            .copied()
            .filter(|c| c.dim == d)
            .collect();
        if in_dim.len() < 2 {
            continue;
        }
        if paired.contains(&d) {
            // Ascending order only: i < j.
            for i in 0..in_dim.len() {
                for j in (i + 1)..in_dim.len() {
                    ex.record(Turn::new(in_dim[i], in_dim[j]), just);
                }
            }
        } else {
            // Single direction: all I-turns are allowed.
            for &a in &in_dim {
                for &b in &in_dim {
                    if a != b {
                        ex.record(Turn::new(a, b), just);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::Channel;
    use crate::turn::TurnKind;

    fn ch(s: &str) -> Channel {
        Channel::parse(s).unwrap()
    }

    fn turn(a: &str, b: &str) -> Turn {
        Turn::new(ch(a), ch(b))
    }

    #[test]
    fn obligation_keys_name_each_discharged_theorem() {
        // North-last: Theorem 1/2 inside p0, Theorem 3 into p1.
        let seq = PartitionSeq::parse("X+ X- Y- | Y+").unwrap();
        let ex = extract_turns(&seq).unwrap();
        let keys = ex.obligation_keys();
        assert!(keys.contains(&"theorem1/p0".to_string()), "{keys:?}");
        assert!(keys.contains(&"theorem3/p0>p1".to_string()), "{keys:?}");
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "sorted: {keys:?}");
        assert_eq!(
            Justification::Theorem2 { partition: 3 }.coverage_key(),
            "theorem2/p3"
        );
    }

    #[test]
    fn fig3_three_channel_partition() {
        // P = {X+ X- Y-}: four 90-degree turns WS, SE, ES, SW.
        let seq = PartitionSeq::parse("X+ X- Y-").unwrap();
        let ex = extract_turns(&seq).unwrap();
        let ninety: TurnSet = ex.turn_set().of_kind(TurnKind::Ninety).collect();
        let expected: TurnSet = [
            turn("X1-", "Y1-"), // WS
            turn("Y1-", "X1+"), // SE
            turn("X1+", "Y1-"), // ES
            turn("Y1-", "X1-"), // SW
        ]
        .into_iter()
        .collect();
        assert!(ninety.same_as(&expected), "got {ninety}");
        // Theorem 2: one U-turn for the X pair, fixed by insertion order.
        let u: Vec<Turn> = ex.turn_set().of_kind(TurnKind::UTurn).collect();
        assert_eq!(u, vec![turn("X1+", "X1-")]);
    }

    #[test]
    fn fig5_north_last() {
        // PA[X+ X- Y-] -> PB[Y+] yields the north-last turn set:
        // all eight 90-degree turns except NE and NW.
        let seq = PartitionSeq::parse("X+ X- Y- | Y+").unwrap();
        let ex = extract_turns(&seq).unwrap();
        let ninety: TurnSet = ex.turn_set().of_kind(TurnKind::Ninety).collect();
        assert_eq!(ninety.len(), 6);
        assert!(!ninety.contains(turn("Y1+", "X1+"))); // NE prohibited
        assert!(!ninety.contains(turn("Y1+", "X1-"))); // NW prohibited
        assert!(ninety.contains(turn("X1+", "Y1+"))); // EN allowed (Th. 3)
        assert!(ninety.contains(turn("X1-", "Y1+"))); // WN allowed (Th. 3)
                                                      // The Theorem-3 U-turn S->N is enabled, N->S is naturally avoided.
        let u: TurnSet = ex.turn_set().of_kind(TurnKind::UTurn).collect();
        assert!(u.contains(turn("Y1-", "Y1+")));
        assert!(!u.contains(turn("Y1+", "Y1-")));
    }

    #[test]
    fn fig4_three_vcs_on_y() {
        // Three VCs on Y inside one partition: 6 channels numbered in
        // insertion order; ascending transitions = n(n-1)/2 = 15 turns,
        // of which a*b = 9 are U-turns and C(3,2)+C(3,2) = 6 are I-turns.
        let seq = PartitionSeq::parse("Y1+ Y1- Y2+ Y2- Y3+ Y3-").unwrap();
        let ex = extract_turns(&seq).unwrap();
        let c = ex.turn_set().counts();
        assert_eq!(c.ninety, 0);
        assert_eq!(c.u_turns, 9);
        assert_eq!(c.i_turns, 6);
        assert_eq!(c.total(), 15);
    }

    #[test]
    fn fig4b_alternative_numbering_same_counts() {
        // A different channel arrangement still yields 9 U- and 6 I-turns.
        let seq = PartitionSeq::parse("Y1+ Y2+ Y3+ Y1- Y2- Y3-").unwrap();
        let c = extract_turns(&seq).unwrap().turn_set().counts();
        assert_eq!((c.u_turns, c.i_turns), (9, 6));
    }

    #[test]
    fn unpaired_dimension_allows_all_i_turns() {
        // Corollary of Theorem 2: X1+ and X2+ (no complete X-pair) permit
        // I-turns in both orders.
        let seq = PartitionSeq::parse("X1+ X2+ Y1-").unwrap();
        let ex = extract_turns(&seq).unwrap();
        assert!(ex.turn_set().contains(turn("X1+", "X2+")));
        assert!(ex.turn_set().contains(turn("X2+", "X1+")));
    }

    #[test]
    fn paired_dimension_restricts_i_turns_to_ascending() {
        // With a complete pair present, I-turns follow the numbering too.
        let seq = PartitionSeq::parse("X1+ X1- X2+").unwrap();
        let ex = extract_turns(&seq).unwrap();
        assert!(ex.turn_set().contains(turn("X1+", "X2+")));
        assert!(!ex.turn_set().contains(turn("X2+", "X1+")));
        assert!(ex.turn_set().contains(turn("X1-", "X2+")));
    }

    #[test]
    fn theorem3_is_full_cross_product() {
        let seq = PartitionSeq::parse("X+ Y- | X- Y+").unwrap();
        let ex = extract_turns(&seq).unwrap();
        let th3 = ex.turns_for(Justification::Theorem3 { from: 0, to: 1 });
        assert_eq!(th3.len(), 4); // 2x2 cross product
        assert!(th3.contains(turn("X1+", "X1-")));
        assert!(th3.contains(turn("Y1-", "Y1+")));
        assert!(th3.contains(turn("X1+", "Y1+")));
        assert!(th3.contains(turn("Y1-", "X1-")));
        // No turn goes backwards from partition 1 to partition 0.
        assert!(!ex.turn_set().contains(turn("X1-", "X1+")));
        assert!(!ex.turn_set().contains(turn("Y1+", "X1+")));
    }

    #[test]
    fn extraction_rejects_invalid_sequences() {
        let seq = PartitionSeq::parse("X+ X- Y+ Y-").unwrap();
        assert!(extract_turns(&seq).is_err());
    }

    #[test]
    fn justifications_partition_the_turns() {
        let seq = PartitionSeq::parse("X+ X- Y- | Y+").unwrap();
        let ex = extract_turns(&seq).unwrap();
        let total: usize = ex.justified_turns().len();
        assert_eq!(total, ex.turn_set().len());
        let th1 = ex.turns_for(Justification::Theorem1 { partition: 0 });
        let th2 = ex.turns_for(Justification::Theorem2 { partition: 0 });
        let th3 = ex.turns_for(Justification::Theorem3 { from: 0, to: 1 });
        assert_eq!(th1.len() + th2.len() + th3.len(), total);
    }
}
