//! Graphviz DOT export of turn graphs — the channel-class-level dependency
//! structure a design allows, ready for `dot -Tsvg`.

use crate::channel::Channel;
use crate::extract::{Extraction, Justification};
use crate::turn::TurnSet;
use std::fmt::Write;

/// Renders the turn graph of a turn set over a channel universe: one node
/// per channel class, one edge per allowed turn.
///
/// ```
/// use ebda_core::{catalog, dot::turn_graph_dot, extract_turns};
/// let seq = catalog::p3_west_first();
/// let ex = extract_turns(&seq)?;
/// let dot = turn_graph_dot(&seq.partitions().iter().flat_map(|p| p.channels().iter().copied()).collect::<Vec<_>>(), ex.turn_set());
/// assert!(dot.starts_with("digraph turns"));
/// assert!(dot.contains("\"X1-\" -> \"Y1+\""));
/// # Ok::<(), ebda_core::EbdaError>(())
/// ```
pub fn turn_graph_dot(universe: &[Channel], turns: &TurnSet) -> String {
    let mut out = String::from("digraph turns {\n  rankdir=LR;\n  node [shape=box];\n");
    for c in universe {
        let _ = writeln!(out, "  \"{c}\";");
    }
    for t in turns.iter() {
        let style = match t.kind() {
            crate::turn::TurnKind::Ninety => "solid",
            crate::turn::TurnKind::UTurn => "dashed",
            crate::turn::TurnKind::ITurn => "dotted",
        };
        let _ = writeln!(out, "  \"{}\" -> \"{}\" [style={style}];", t.from, t.to);
    }
    out.push_str("}\n");
    out
}

/// Renders an extraction with partitions as clusters and edges coloured by
/// the theorem that justifies them (Theorem 1 black, Theorem 2 blue,
/// Theorem 3 red) — a machine-drawn Figure 8.
pub fn extraction_dot(seq: &crate::sequence::PartitionSeq, ex: &Extraction) -> String {
    let mut out = String::from("digraph extraction {\n  rankdir=LR;\n  node [shape=box];\n");
    for (pi, p) in seq.partitions().iter().enumerate() {
        let _ = writeln!(out, "  subgraph cluster_{pi} {{\n    label=\"P{pi}\";");
        for c in p.channels() {
            let _ = writeln!(out, "    \"{c}\";");
        }
        out.push_str("  }\n");
    }
    for (t, j) in ex.justified_turns() {
        let color = match j {
            Justification::Theorem1 { .. } => "black",
            Justification::Theorem2 { .. } => "blue",
            Justification::Theorem3 { .. } => "red",
        };
        let _ = writeln!(out, "  \"{}\" -> \"{}\" [color={color}];", t.from, t.to);
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use crate::extract::extract_turns;

    fn universe(seq: &crate::sequence::PartitionSeq) -> Vec<Channel> {
        seq.partitions()
            .iter()
            .flat_map(|p| p.channels().iter().copied())
            .collect()
    }

    #[test]
    fn turn_graph_dot_is_well_formed() {
        let seq = catalog::north_last();
        let ex = extract_turns(&seq).unwrap();
        let dot = turn_graph_dot(&universe(&seq), ex.turn_set());
        assert!(dot.starts_with("digraph"));
        assert!(dot.ends_with("}\n"));
        // One edge line per turn.
        let edges = dot.matches(" -> ").count();
        assert_eq!(edges, ex.turn_set().len());
        // U-turns are dashed.
        assert!(dot.contains("[style=dashed]"));
    }

    #[test]
    fn extraction_dot_clusters_partitions() {
        let seq = catalog::fig7b_dyxy();
        let ex = extract_turns(&seq).unwrap();
        let dot = extraction_dot(&seq, &ex);
        assert!(dot.contains("cluster_0"));
        assert!(dot.contains("cluster_1"));
        assert!(dot.contains("color=red"), "Theorem 3 edges must appear");
        assert!(dot.contains("color=black"), "Theorem 1 edges must appear");
        assert_eq!(dot.matches(" -> ").count(), ex.turn_set().len());
    }
}
