//! # ebda-core — the EbDa theory, executable
//!
//! A faithful implementation of *EbDa: A New Theory on Design and
//! Verification of Deadlock-free Interconnection Networks* (Ebrahimi &
//! Daneshtalab, ISCA 2017).
//!
//! EbDa replaces the search for an acyclic channel dependency graph with a
//! constructive recipe: divide the network's channels into disjoint
//! partitions, each containing **at most one complete D-pair** (Theorem 1);
//! take U-/I-turns inside a partition in ascending numbering order
//! (Theorem 2); and move between partitions only in one fixed consecutive
//! order (Theorem 3). Every design built this way is deadlock-free by
//! construction, and sweeping the number of partitions trades adaptiveness
//! for simplicity — from maximally fully adaptive down to deterministic
//! routing.
//!
//! ## Quick start
//!
//! ```
//! use ebda_core::{extract_turns, PartitionSeq};
//!
//! // West-first routing as a partitioning: PA[X-] -> PB[X+ Y+ Y-].
//! let design = PartitionSeq::parse("X- | X+ Y+ Y-")?;
//! design.validate()?; // Theorem 1 + disjointness
//! let turns = extract_turns(&design)?; // Theorems 1+2+3
//! assert_eq!(turns.turn_set().counts().ninety, 6); // max adaptiveness in 2D
//! # Ok::<(), ebda_core::EbdaError>(())
//! ```
//!
//! ## Crate map
//!
//! * [`channel`] — dimensions, directions, VCs, parity classes
//!   (Definitions 1, 4–6).
//! * [`partition`] / [`sequence`] — partitions and partition sequences with
//!   the Theorem 1 and disjointness checks (Definitions 2–3, 6).
//! * [`extract`] — the turn-extraction engine (Theorems 1–3; Figure 8).
//! * [`sets`], [`algorithm1`], [`algorithm2`], [`exceptional`] — the
//!   Section 5 partitioning methodology (arrangements, Algorithm 1,
//!   Algorithm 2, the no-VC exceptional case).
//! * [`min_channels`] — Section 4's `(n+1)·2^(n-1)` minimum-channel
//!   constructions.
//! * [`adaptiveness`] — region coverage and minimal-path counting.
//! * [`canonical`] — order-independent content hashing of verification
//!   problems (corpus addressing, verdict-cache keys).
//! * [`catalog`] — the paper's named designs (XY, west-first,
//!   negative-first, north-last, DyXY, Odd-Even, Hamiltonian, Figures 7
//!   and 9, Table 5).
//! * [`theorems`] — one-call design analysis reports.
//!
//! Structural *verification* of these designs on concrete topologies
//! (channel dependency graphs, cycle detection, Dally's criterion) lives in
//! the companion `ebda-cdg` crate; routing functions and the wormhole
//! simulator live in `ebda-routing` and `noc-sim`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptiveness;
pub mod algorithm1;
pub mod algorithm2;
pub mod builder;
pub mod canonical;
pub mod catalog;
pub mod certify;
pub mod channel;
pub mod dot;
pub mod error;
pub mod exceptional;
pub mod extract;
pub mod min_channels;
pub mod partition;
pub mod sequence;
pub mod sets;
pub mod theorems;
pub mod turn;

pub use channel::{parse_channels, Channel, ChannelClass, Dimension, Direction, Parity};
pub use error::{EbdaError, Result};
pub use extract::{extract_turns, Extraction, Justification};
pub use partition::{DirectionCoverage, Partition};
pub use sequence::PartitionSeq;
pub use theorems::{design_verdict, DesignVerdict};
pub use turn::{Turn, TurnCounts, TurnKind, TurnSet};

#[cfg(test)]
mod tests {
    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<crate::Channel>();
        assert_send_sync::<crate::Partition>();
        assert_send_sync::<crate::PartitionSeq>();
        assert_send_sync::<crate::TurnSet>();
        assert_send_sync::<crate::Extraction>();
        assert_send_sync::<crate::EbdaError>();
    }
}
