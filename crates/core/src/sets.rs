//! Dimension sets and the arrangements of Section 5.1.
//!
//! Algorithm 1 consumes one ordered *set* of channels per dimension. The
//! order of the sets (which dimension plays "Set1") and of the channels
//! inside each set fully determines the resulting partitioning — this module
//! provides the constructors and the three arrangements the paper defines.

use crate::channel::{Channel, Dimension, Direction};
use crate::error::{EbdaError, Result};
use std::fmt;

/// An ordered list of channels, all in one dimension (one of Algorithm 1's
/// `Set1..Setn`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimensionSet {
    dim: Dimension,
    channels: Vec<Channel>,
}

impl DimensionSet {
    /// Builds a set from explicit channels.
    ///
    /// # Errors
    ///
    /// Returns [`EbdaError::MalformedPairSet`] if the channels are not all in
    /// one dimension.
    pub fn from_channels(channels: Vec<Channel>) -> Result<DimensionSet> {
        let Some(first) = channels.first() else {
            return Err(EbdaError::MalformedPairSet {
                reason: "a dimension set needs at least one channel",
            });
        };
        let dim = first.dim;
        if channels.iter().any(|c| c.dim != dim) {
            return Err(EbdaError::MalformedPairSet {
                reason: "all channels of one set must share a dimension",
            });
        }
        Ok(DimensionSet { dim, channels })
    }

    /// Pair-interleaved ordering `d1+ d1- d2+ d2- …` with `vcs` virtual
    /// channels — the natural ordering for a set playing the pair role
    /// (Set1), matching the paper's `Set1: D_Z = {Z1+ Z1- Z2+ Z2- Z3+ Z3-}`.
    ///
    /// # Panics
    ///
    /// Panics if `vcs == 0`.
    pub fn interleaved(dim: Dimension, vcs: u8) -> DimensionSet {
        assert!(vcs >= 1, "a dimension needs at least one virtual channel");
        let mut channels = Vec::with_capacity(2 * vcs as usize);
        for v in 1..=vcs {
            channels.push(Channel::with_vc(dim, Direction::Plus, v));
            channels.push(Channel::with_vc(dim, Direction::Minus, v));
        }
        DimensionSet { dim, channels }
    }

    /// Sign-grouped ordering `d1+ d2+ … d1- d2- …` — the ordering that makes
    /// plain left-shifting reproduce the paper's region-covering channel
    /// selection for channel-role sets (Section 5's worked example selects
    /// `Y2+` for the second partition, i.e. positives first).
    ///
    /// # Panics
    ///
    /// Panics if `vcs == 0`.
    pub fn grouped(dim: Dimension, vcs: u8) -> DimensionSet {
        assert!(vcs >= 1, "a dimension needs at least one virtual channel");
        let mut channels = Vec::with_capacity(2 * vcs as usize);
        for v in 1..=vcs {
            channels.push(Channel::with_vc(dim, Direction::Plus, v));
        }
        for v in 1..=vcs {
            channels.push(Channel::with_vc(dim, Direction::Minus, v));
        }
        DimensionSet { dim, channels }
    }

    /// The dimension all channels share.
    pub fn dim(&self) -> Dimension {
        self.dim
    }

    /// The remaining channels in order.
    pub fn channels(&self) -> &[Channel] {
        &self.channels
    }

    /// Number of remaining channels.
    pub fn len(&self) -> usize {
        self.channels.len()
    }

    /// Returns `true` when no channels remain.
    pub fn is_empty(&self) -> bool {
        self.channels.is_empty()
    }

    /// Number of complete D-pairs the remaining channels can form:
    /// `min(#positive, #negative)` (Definition 3 lets any positive channel
    /// pair with any negative one).
    pub fn pair_count(&self) -> usize {
        let plus = self
            .channels
            .iter()
            .filter(|c| c.dir == Direction::Plus)
            .count();
        let minus = self.channels.len() - plus;
        plus.min(minus)
    }

    /// Removes and returns the first channel ("channel-wise left shift").
    pub fn take_one(&mut self) -> Option<Channel> {
        if self.channels.is_empty() {
            None
        } else {
            Some(self.channels.remove(0))
        }
    }

    /// Returns `true` if the first two channels form a complete D-pair
    /// (opposite directions, any VC numbers).
    pub fn front_is_pair(&self) -> bool {
        matches!(&self.channels[..], [a, b, ..] if a.dir != b.dir)
    }

    /// Removes and returns the leading D-pair ("pair-wise left shift").
    ///
    /// Returns `None` when fewer than two channels remain or the first two
    /// do not have opposite directions.
    pub fn take_pair(&mut self) -> Option<(Channel, Channel)> {
        if self.front_is_pair() {
            let a = self.channels.remove(0);
            let b = self.channels.remove(0);
            Some((a, b))
        } else {
            None
        }
    }

    /// Circularly left-shifts the channels by one position (Algorithm 2's
    /// "channel-wise left-circular-shift").
    pub fn rotate_channels(&mut self) {
        if !self.channels.is_empty() {
            self.channels.rotate_left(1);
        }
    }

    /// Circularly left-shifts by two positions (Algorithm 2's "pair-wise
    /// left-circular-shift" for Set1).
    pub fn rotate_pairs(&mut self) {
        if self.channels.len() >= 2 {
            self.channels.rotate_left(2);
        }
    }
}

impl fmt::Display for DimensionSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "D_{} = {{", self.dim)?;
        for (i, c) in self.channels.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "}}")
    }
}

/// An ordered collection of dimension sets — the input of Algorithm 1.
pub type SetArrangement = Vec<DimensionSet>;

/// Arrangement 1 (Section 5.1): one set per dimension, ordered by
/// descending D-pair count; the leading (pair-role) set is interleaved, the
/// channel-role sets are sign-grouped so that plain left-shifting covers
/// complementary regions, as in the paper's worked 3/2/3-VC example.
///
/// `vcs_per_dim[i]` is the number of virtual channels along dimension `i`.
///
/// ```
/// use ebda_core::sets::arrangement1;
/// let sets = arrangement1(&[3, 2, 3]).unwrap();
/// assert_eq!(sets[0].dim().to_string(), "X"); // 3 pairs
/// assert_eq!(sets[1].dim().to_string(), "Z"); // 3 pairs, after X (stable)
/// assert_eq!(sets[2].dim().to_string(), "Y"); // 2 pairs last
/// ```
///
/// # Errors
///
/// Returns [`EbdaError::BadDimension`] when `vcs_per_dim` is empty or any
/// entry is zero.
pub fn arrangement1(vcs_per_dim: &[u8]) -> Result<SetArrangement> {
    if vcs_per_dim.is_empty() {
        return Err(EbdaError::BadDimension {
            n: 0,
            reason: "at least one dimension is required",
        });
    }
    if vcs_per_dim.contains(&0) {
        return Err(EbdaError::BadDimension {
            n: vcs_per_dim.len(),
            reason: "every dimension needs at least one virtual channel",
        });
    }
    let mut order: Vec<usize> = (0..vcs_per_dim.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(vcs_per_dim[i]));
    let lead = order[0];
    Ok(order
        .iter()
        .map(|&i| {
            let dim = Dimension::new(i as u8);
            if i == lead {
                DimensionSet::interleaved(dim, vcs_per_dim[i])
            } else {
                DimensionSet::grouped(dim, vcs_per_dim[i])
            }
        })
        .collect())
}

/// Arrangement 2 (Section 5.1): when other sets tie with Set1 on pair
/// count, they may be swapped to the front. Returns every arrangement
/// obtained by promoting one of the tied sets to the lead (pair) role.
///
/// # Errors
///
/// Propagates the validation errors of [`arrangement1`].
pub fn arrangement2(vcs_per_dim: &[u8]) -> Result<Vec<SetArrangement>> {
    let base = arrangement1(vcs_per_dim)?;
    let lead_pairs = base[0].pair_count();
    let tied: Vec<usize> = base
        .iter()
        .enumerate()
        .filter(|(_, s)| s.pair_count() == lead_pairs)
        .map(|(i, _)| i)
        .collect();
    let mut out = Vec::new();
    for &t in &tied {
        let mut arr = base.clone();
        let promoted = arr.remove(t);
        // The promoted set takes the pair role and must be interleaved.
        let mut sets = vec![DimensionSet::interleaved(
            promoted.dim(),
            (promoted.len() / 2) as u8,
        )];
        for s in arr {
            // Demoted lead becomes a channel-role set, sign-grouped.
            sets.push(DimensionSet::grouped(s.dim(), (s.len() / 2) as u8));
        }
        out.push(sets);
    }
    Ok(out)
}

/// Arrangement 3 (Section 5.1): when Set1 has several VCs, its D-pairs can
/// be re-formed across VC numbers (`q!` ways). Returns the distinct
/// pairings of Set1's positive and negative channels, each expressed as a
/// reordered interleaved set; the remaining sets are passed through
/// unchanged.
///
/// For `q` VCs this yields `q!` arrangements (the identity pairing first).
///
/// # Errors
///
/// Propagates the validation errors of [`arrangement1`].
pub fn arrangement3(vcs_per_dim: &[u8]) -> Result<Vec<SetArrangement>> {
    let base = arrangement1(vcs_per_dim)?;
    let lead = &base[0];
    let q = lead.len() / 2;
    let dim = lead.dim();
    let mut out = Vec::new();
    for perm in permutations(q) {
        // Pair v-th positive channel with perm[v]-th negative channel.
        let mut channels = Vec::with_capacity(2 * q);
        for (v, &m) in perm.iter().enumerate() {
            channels.push(Channel::with_vc(dim, Direction::Plus, (v + 1) as u8));
            channels.push(Channel::with_vc(dim, Direction::Minus, (m + 1) as u8));
        }
        let mut arr = vec![DimensionSet::from_channels(channels)?];
        arr.extend(base.iter().skip(1).cloned());
        out.push(arr);
    }
    Ok(out)
}

/// The region-covering arrangement: like [`arrangement1`], but the
/// channel-role sets are ordered so that consecutive partitions enumerate
/// the sign combinations of the channel dimensions in binary-counting
/// order — the ordering behind Figures 7b and 9b, which makes Algorithm 1
/// produce *fully adaptive* designs whenever the VC budget suffices.
///
/// Concretely, the `i`-th channel-role dimension flips its sign every
/// `2^i` rounds; VC numbers are assigned ordinally per sign.
///
/// ```
/// use ebda_core::sets::region_covering;
/// // The Fig. 9b budget: 2, 2, 4 VCs along X, Y, Z.
/// let sets = region_covering(&[2, 2, 4]).unwrap();
/// assert_eq!(sets[0].dim().to_string(), "Z"); // pair role
/// let x: Vec<String> = sets[1].channels().iter().map(|c| c.to_string()).collect();
/// assert_eq!(x, ["X1+", "X1-", "X2+", "X2-"]); // flips every round
/// let y: Vec<String> = sets[2].channels().iter().map(|c| c.to_string()).collect();
/// assert_eq!(y, ["Y1+", "Y2+", "Y1-", "Y2-"]); // flips every 2 rounds
/// ```
///
/// # Errors
///
/// Returns [`EbdaError::BadDimension`] under the same conditions as
/// [`arrangement1`].
pub fn region_covering(vcs_per_dim: &[u8]) -> Result<SetArrangement> {
    let base = arrangement1(vcs_per_dim)?;
    let rounds = base[0].pair_count();
    let mut out = vec![base[0].clone()];
    for (i, set) in base.iter().enumerate().skip(1) {
        let dim = set.dim();
        let q = vcs_per_dim[dim.index()];
        let mut used = [0u8; 2]; // next VC ordinal per sign
        let mut channels = Vec::with_capacity(2 * q as usize);
        let period = 1usize << (i - 1);
        // Enough rounds to place every VC of both signs even when one
        // sign's block is skipped while exhausted.
        let bound = (2 * period * (q as usize + 1)).max(rounds);
        for r in 0..bound {
            let dir = if (r / period).is_multiple_of(2) {
                Direction::Plus
            } else {
                Direction::Minus
            };
            let slot = &mut used[usize::from(dir == Direction::Minus)];
            if *slot >= q {
                continue; // this sign's VCs are exhausted
            }
            *slot += 1;
            channels.push(Channel::with_vc(dim, dir, *slot));
            if channels.len() == 2 * q as usize {
                break;
            }
        }
        out.push(DimensionSet::from_channels(channels)?);
    }
    Ok(out)
}

/// All permutations of `0..n` in lexicographic order (helper for
/// Arrangement 3 and the derivation machinery).
pub fn permutations(n: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut current: Vec<usize> = (0..n).collect();
    let mut used = vec![false; n];
    fn rec(
        n: usize,
        depth: usize,
        current: &mut Vec<usize>,
        used: &mut Vec<bool>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if depth == n {
            out.push(current[..n].to_vec());
            return;
        }
        for v in 0..n {
            if !used[v] {
                used[v] = true;
                current[depth] = v;
                rec(n, depth + 1, current, used, out);
                used[v] = false;
            }
        }
    }
    rec(n, 0, &mut current, &mut used, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleaved_matches_paper_set1() {
        let s = DimensionSet::interleaved(Dimension::Z, 3);
        let printed: Vec<String> = s.channels().iter().map(|c| c.to_string()).collect();
        assert_eq!(printed, ["Z1+", "Z1-", "Z2+", "Z2-", "Z3+", "Z3-"]);
        assert_eq!(s.pair_count(), 3);
        assert!(s.front_is_pair());
    }

    #[test]
    fn grouped_orders_positives_first() {
        let s = DimensionSet::grouped(Dimension::Y, 2);
        let printed: Vec<String> = s.channels().iter().map(|c| c.to_string()).collect();
        assert_eq!(printed, ["Y1+", "Y2+", "Y1-", "Y2-"]);
        assert!(!s.front_is_pair());
    }

    #[test]
    fn pair_count_uses_min_of_signs() {
        let mut s = DimensionSet::interleaved(Dimension::X, 3);
        assert_eq!(s.pair_count(), 3);
        s.take_one(); // removes X1+
        assert_eq!(s.pair_count(), 2); // 2 plus, 3 minus
        s.take_one(); // removes X1-
        assert_eq!(s.pair_count(), 2); // 2 plus, 2 minus
    }

    #[test]
    fn take_pair_requires_opposite_directions() {
        let mut s = DimensionSet::grouped(Dimension::X, 2);
        assert!(s.take_pair().is_none());
        let mut s = DimensionSet::interleaved(Dimension::X, 2);
        let (a, b) = s.take_pair().unwrap();
        assert_eq!(a.to_string(), "X1+");
        assert_eq!(b.to_string(), "X1-");
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn rotations() {
        let mut s = DimensionSet::interleaved(Dimension::X, 2);
        s.rotate_channels();
        assert_eq!(s.channels()[0].to_string(), "X1-");
        let mut s = DimensionSet::interleaved(Dimension::X, 2);
        s.rotate_pairs();
        assert_eq!(s.channels()[0].to_string(), "X2+");
    }

    #[test]
    fn arrangement1_sorts_by_pair_count() {
        // The Section 5 example: 3, 2, 3 VCs along X, Y, Z.
        let sets = arrangement1(&[3, 2, 3]).unwrap();
        assert_eq!(sets.len(), 3);
        assert_eq!(sets[0].dim(), Dimension::X);
        assert_eq!(sets[1].dim(), Dimension::Z);
        assert_eq!(sets[2].dim(), Dimension::Y);
        assert_eq!(sets[0].pair_count(), 3);
    }

    #[test]
    fn arrangement1_rejects_bad_input() {
        assert!(arrangement1(&[]).is_err());
        assert!(arrangement1(&[2, 0]).is_err());
    }

    #[test]
    fn arrangement2_promotes_ties() {
        let arrs = arrangement2(&[1, 1]).unwrap();
        assert_eq!(arrs.len(), 2);
        assert_eq!(arrs[0][0].dim(), Dimension::X);
        assert_eq!(arrs[1][0].dim(), Dimension::Y);
    }

    #[test]
    fn arrangement3_counts_factorial() {
        let arrs = arrangement3(&[2, 1]).unwrap();
        assert_eq!(arrs.len(), 2); // 2! pairings of Set1's VCs
                                   // The second pairing crosses VC numbers: X1+ with X2-.
        let second: Vec<String> = arrs[1][0]
            .channels()
            .iter()
            .map(|c| c.to_string())
            .collect();
        assert_eq!(second, ["X1+", "X2-", "X2+", "X1-"]);
    }

    #[test]
    fn permutations_basic() {
        assert_eq!(permutations(0), vec![Vec::<usize>::new()]);
        assert_eq!(permutations(3).len(), 6);
        assert_eq!(permutations(3)[0], vec![0, 1, 2]);
    }

    #[test]
    fn mixed_dimension_set_rejected() {
        let chs = vec![
            Channel::parse("X1+").unwrap(),
            Channel::parse("Y1+").unwrap(),
        ];
        assert!(DimensionSet::from_channels(chs).is_err());
    }
}
