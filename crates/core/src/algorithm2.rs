//! Derivation of alternative partitioning options — Algorithm 2 and
//! Section 5.3 of the paper.
//!
//! Three knobs generate new deadlock-free designs from a set arrangement:
//!
//! 1. **Reordering channels inside the sets** (Algorithm 2): circularly
//!    shifting Set1 pair-wise and the other sets channel-wise, re-running
//!    Algorithm 1 for every combination.
//! 2. **Increasing the number of partitions** (5.3.2): splitting channels
//!    over more partitions trades adaptiveness away, down to deterministic
//!    routing when every partition holds a single channel.
//! 3. **Tracing partitions in different orders** (5.3.3): permuting the
//!    transition order between the partitions.

use crate::channel::Channel;
use crate::error::Result;
use crate::partition::Partition;
use crate::sequence::PartitionSeq;
use crate::sets::{permutations, SetArrangement};
use std::collections::BTreeSet;

/// Algorithm 2: enumerates the partitionings produced by every circular
/// shift combination of the arranged sets (Set1 pair-wise, the rest
/// channel-wise), deduplicated.
///
/// ```
/// use ebda_core::{algorithm2::derive_all, sets::arrangement1};
/// let options = derive_all(arrangement1(&[1, 1]).unwrap()).unwrap();
/// let strings: Vec<String> = options.iter().map(|s| s.to_string()).collect();
/// assert!(strings.contains(&"[X1+ X1- Y1+] -> [Y1-]".to_string()));
/// assert!(strings.contains(&"[X1+ X1- Y1-] -> [Y1+]".to_string()));
/// ```
///
/// # Errors
///
/// Propagates Algorithm 1 errors for any shift combination.
pub fn derive_all(sets: SetArrangement) -> Result<Vec<PartitionSeq>> {
    let _span = ebda_obs::span("core.algorithm2.derive_all");
    let mut combinations = 0u64;
    let mut duplicates = 0u64;
    let mut shift_counts: Vec<usize> = Vec::with_capacity(sets.len());
    for (i, s) in sets.iter().enumerate() {
        if i == 0 {
            // Pair-wise rotations of Set1: one per leading pair position.
            shift_counts.push((s.len() / 2).max(1));
        } else {
            shift_counts.push(s.len().max(1));
        }
    }
    let mut seen = BTreeSet::new();
    let mut out = Vec::new();
    let mut shifts = vec![0usize; sets.len()];
    loop {
        // Apply the current shift vector to a fresh copy of the sets.
        let mut current = sets.clone();
        for (k, set) in current.iter_mut().enumerate() {
            for _ in 0..shifts[k] {
                if k == 0 {
                    set.rotate_pairs();
                } else {
                    set.rotate_channels();
                }
            }
        }
        let seq = crate::algorithm1::partition_sets(current)?;
        combinations += 1;
        if seen.insert(seq.canonical_string()) {
            out.push(seq);
        } else {
            duplicates += 1;
        }
        // Odometer increment over the shift space.
        let mut k = 0;
        loop {
            if k == shifts.len() {
                ebda_obs::counter_add("core.algorithm2.shift_combinations", combinations);
                ebda_obs::counter_add("core.algorithm2.duplicates_pruned", duplicates);
                ebda_obs::counter_add("core.algorithm2.options_derived", out.len() as u64);
                return Ok(out);
            }
            shifts[k] += 1;
            if shifts[k] < shift_counts[k] {
                break;
            }
            shifts[k] = 0;
            k += 1;
        }
    }
}

/// Section 5.3.3: every transition (partition) order of a sequence, as new
/// sequences. All permutations of disjoint Theorem-1-valid partitions remain
/// valid; only the extracted turn sets differ.
pub fn transition_reorderings(seq: &PartitionSeq) -> Vec<PartitionSeq> {
    permutations(seq.len())
        .into_iter()
        .map(|perm| seq.permuted(&perm))
        .collect()
}

/// Section 5.3.2: enumerates every ordered partitioning of `channels` into
/// exactly `k` non-empty, pairwise-disjoint, Theorem-1-valid partitions.
///
/// Channel order inside each partition follows the input order (which fixes
/// the Theorem 2 numbering). The result is deduplicated and deterministic.
///
/// Use small inputs: the count grows as an ordered Stirling number.
///
/// ```
/// use ebda_core::algorithm2::enumerate_partitionings;
/// use ebda_core::parse_channels;
/// let chs = parse_channels("X+ X- Y+ Y-").unwrap();
/// // Deterministic designs: every ordering of four singletons.
/// assert_eq!(enumerate_partitionings(&chs, 4).len(), 24);
/// ```
pub fn enumerate_partitionings(channels: &[Channel], k: usize) -> Vec<PartitionSeq> {
    let _span = ebda_obs::span("core.algorithm2.enumerate_partitionings");
    let mut out = Vec::new();
    if k == 0 || k > channels.len() {
        return out;
    }
    // Assign each channel to one of k blocks; keep assignments where every
    // block is non-empty, then order blocks in every permutation.
    let mut assignment = vec![0usize; channels.len()];
    let mut stats = AssignStats::default();
    assign(channels, k, 0, &mut assignment, &mut out, &mut stats);
    ebda_obs::counter_add("core.algorithm2.assignments_explored", stats.explored);
    ebda_obs::counter_add("core.algorithm2.assignments_pruned", stats.pruned);
    out
}

/// Exploration/prune counts accumulated across the [`assign`] recursion
/// and flushed to telemetry once per enumeration.
#[derive(Default)]
struct AssignStats {
    explored: u64,
    pruned: u64,
}

fn assign(
    channels: &[Channel],
    k: usize,
    idx: usize,
    assignment: &mut Vec<usize>,
    out: &mut Vec<PartitionSeq>,
    stats: &mut AssignStats,
) {
    if idx == channels.len() {
        stats.explored += 1;
        // Build blocks.
        let mut blocks: Vec<Vec<Channel>> = vec![Vec::new(); k];
        for (i, &b) in assignment.iter().enumerate() {
            blocks[b].push(channels[i]);
        }
        if blocks.iter().any(Vec::is_empty) {
            stats.pruned += 1;
            return;
        }
        // Canonical set-partition: require blocks in first-appearance order
        // to avoid emitting the same unordered partition k! times here…
        let mut first_seen = Vec::new();
        for &b in assignment.iter() {
            if !first_seen.contains(&b) {
                first_seen.push(b);
            }
        }
        if first_seen != (0..k).collect::<Vec<_>>() {
            stats.pruned += 1;
            return;
        }
        // …then emit every ordering of the blocks explicitly.
        let parts: Option<Vec<Partition>> = blocks
            .iter()
            .map(|b| Partition::from_channels(b.iter().copied()).ok())
            .collect();
        let Some(parts) = parts else {
            stats.pruned += 1;
            return;
        };
        if parts.iter().any(|p| !p.theorem1_holds()) {
            stats.pruned += 1;
            return;
        }
        for perm in permutations(k) {
            let seq =
                PartitionSeq::from_partitions(perm.iter().map(|&i| parts[i].clone()).collect());
            if seq.validate().is_ok() {
                out.push(seq);
            }
        }
        return;
    }
    for b in 0..k {
        assignment[idx] = b;
        assign(channels, k, idx + 1, assignment, out, stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::parse_channels;
    use crate::sets::arrangement1;

    #[test]
    fn derive_all_2d_single_vc() {
        let options = derive_all(arrangement1(&[1, 1]).unwrap()).unwrap();
        // Set1 has one pair rotation, Set2 two channel rotations.
        assert_eq!(options.len(), 2);
        for o in &options {
            assert!(o.validate().is_ok());
        }
    }

    #[test]
    fn derive_all_respects_set1_pairings() {
        // 2 VCs on X as Set1: two pair rotations; Y: two rotations.
        let options = derive_all(arrangement1(&[2, 1]).unwrap()).unwrap();
        assert!(options.len() >= 2);
        for o in &options {
            assert!(o.validate().is_ok());
        }
    }

    #[test]
    fn reorderings_cover_all_permutations() {
        let seq = PartitionSeq::parse("X+ | Y+ | X-").unwrap();
        let all = transition_reorderings(&seq);
        assert_eq!(all.len(), 6);
        let strings: BTreeSet<String> = all.iter().map(|s| s.to_string()).collect();
        assert_eq!(strings.len(), 6);
    }

    #[test]
    fn enumerate_two_blocks_2d() {
        let chs = parse_channels("X+ X- Y+ Y-").unwrap();
        let opts = enumerate_partitionings(&chs, 2);
        // Unordered 2-block partitions of 4 elements: S(4,2) = 7, of which
        // the {X+X-}|{Y+Y-} style splits and all 3-1 splits are legal, but
        // {X+X-Y+Y-} never appears (that needs k=1). One unordered option —
        // {X+ X- Y+ Y-} in a single block — is impossible; all blocks here
        // have ≤ 3 channels so at most one pair. Every ordered option
        // validates (2 orderings each): 14 total.
        assert_eq!(opts.len(), 14);
        for o in &opts {
            assert!(o.validate().is_ok());
            assert_eq!(o.len(), 2);
        }
        let strings: Vec<String> = opts.iter().map(|s| s.to_string()).collect();
        assert!(strings.contains(&"[X1- Y1-] -> [X1+ Y1+]".to_string()));
        assert!(strings.contains(&"[X1+ X1- Y1+] -> [Y1-]".to_string()));
    }

    #[test]
    fn enumerate_three_blocks_includes_table2_entries() {
        let chs = parse_channels("X+ X- Y+ Y-").unwrap();
        let opts = enumerate_partitionings(&chs, 3);
        let strings: Vec<String> = opts.iter().map(|s| s.to_string()).collect();
        for expected in [
            "[X1+ Y1+] -> [X1-] -> [Y1-]",
            "[X1+ Y1-] -> [X1-] -> [Y1+]",
            "[X1- Y1+] -> [X1+] -> [Y1-]",
            "[X1- Y1-] -> [X1+] -> [Y1+]",
        ] {
            assert!(
                strings.contains(&expected.to_string()),
                "missing {expected}"
            );
        }
    }

    #[test]
    fn enumerate_rejects_invalid_blocks() {
        // k = 1 would put two complete pairs in one partition: no options.
        let chs = parse_channels("X+ X- Y+ Y-").unwrap();
        assert!(enumerate_partitionings(&chs, 1).is_empty());
    }

    #[test]
    fn enumerate_edge_cases() {
        let chs = parse_channels("X+ X-").unwrap();
        assert!(enumerate_partitionings(&chs, 0).is_empty());
        assert!(enumerate_partitionings(&chs, 3).is_empty());
        assert_eq!(enumerate_partitionings(&chs, 2).len(), 2);
    }

    use std::collections::BTreeSet;
}
