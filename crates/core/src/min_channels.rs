//! Section 4: maximum adaptiveness with the minimum number of channels.
//!
//! The paper proves that a fully adaptive routing in an `n`-dimensional
//! network needs at least `N = (n+1)·2^(n-1)` channels, via two
//! constructions: the naive one-partition-per-region design (`n·2^n`
//! channels, Figs 7a/9a) and the merged design where neighbouring regions
//! share a partition through a complete pair in one dimension
//! (`(n+1)·2^(n-1)` channels, Figs 7b/9b).

use crate::channel::{Channel, Dimension, Direction};
use crate::error::{EbdaError, Result};
use crate::partition::Partition;
use crate::sequence::PartitionSeq;

/// The paper's minimum channel count for fully adaptive routing:
/// `(n+1) · 2^(n-1)`.
///
/// ```
/// use ebda_core::min_channels::min_channels;
/// assert_eq!(min_channels(2), 6);  // 2D (Fig. 7)
/// assert_eq!(min_channels(3), 16); // 3D (Fig. 9)
/// assert_eq!(min_channels(4), 40);
/// ```
///
/// # Panics
///
/// Panics if `n == 0` or the result overflows `u64` (n ≥ 58).
pub fn min_channels(n: u32) -> u64 {
    assert!(n >= 1, "network dimension must be at least 1");
    assert!(n < 58, "channel count overflows u64");
    (n as u64 + 1) * (1u64 << (n - 1))
}

/// Number of regions (orthants) an `n`-dimensional space divides into:
/// `2^n`.
pub fn region_count(n: u32) -> u64 {
    assert!(n < 64, "region count overflows u64");
    1u64 << n
}

/// The naive fully adaptive design: one partition per region, `n` dedicated
/// channels each, `n·2^n` channels in total (Fig. 7a for `n = 2`,
/// Fig. 9a for `n = 3`).
///
/// Virtual-channel numbers are assigned ordinally per `(dimension,
/// direction)` in region-enumeration order; the labels differ from the
/// figures' hand assignment but the structure (counts, disjointness,
/// Theorem 1 validity, full region coverage) is identical.
///
/// # Errors
///
/// Returns [`EbdaError::BadDimension`] for `n == 0` or `n > 8`.
pub fn region_partitioning(n: usize) -> Result<PartitionSeq> {
    check_dim(n)?;
    let regions = 1usize << n;
    let mut vc_next = vec![[0u8; 2]; n]; // per dim, per direction
    let mut partitions = Vec::with_capacity(regions);
    for r in 0..regions {
        let mut p = Partition::new();
        #[allow(clippy::needless_range_loop)] // the index doubles as the dimension id
        for d in 0..n {
            let dir = region_dir(r, d, n);
            let slot = &mut vc_next[d][dir_index(dir)];
            *slot += 1;
            p.push(Channel::with_vc(Dimension::new(d as u8), dir, *slot))?;
        }
        partitions.push(p);
    }
    PartitionSeq::try_from_partitions(partitions)
}

/// The merged fully adaptive design achieving the minimum
/// `(n+1)·2^(n-1)` channels: each partition covers two neighbouring
/// regions through a complete pair in the last dimension (Fig. 7b — the
/// DyXY design — for `n = 2`, Fig. 9b for `n = 3`).
///
/// ```
/// use ebda_core::min_channels::{merged_partitioning, min_channels};
/// let seq = merged_partitioning(3).unwrap();
/// assert_eq!(seq.channel_count() as u64, min_channels(3));
/// assert_eq!(seq.len(), 4); // 2^(n-1) partitions
/// ```
///
/// # Errors
///
/// Returns [`EbdaError::BadDimension`] for `n == 0` or `n > 8`.
pub fn merged_partitioning(n: usize) -> Result<PartitionSeq> {
    check_dim(n)?;
    let last = Dimension::new((n - 1) as u8);
    let regions = 1usize << (n - 1);
    let mut vc_next = vec![[0u8; 2]; n.max(1)];
    let mut partitions = Vec::with_capacity(regions);
    for r in 0..regions {
        let mut p = Partition::new();
        #[allow(clippy::needless_range_loop)] // the index doubles as the dimension id
        for d in 0..n.saturating_sub(1) {
            let dir = region_dir(r, d, n - 1);
            let slot = &mut vc_next[d][dir_index(dir)];
            *slot += 1;
            p.push(Channel::with_vc(Dimension::new(d as u8), dir, *slot))?;
        }
        // The complete pair along the last dimension, dedicated VC.
        let vc = (r + 1) as u8;
        p.push(Channel::with_vc(last, Direction::Plus, vc))?;
        p.push(Channel::with_vc(last, Direction::Minus, vc))?;
        partitions.push(p);
    }
    PartitionSeq::try_from_partitions(partitions)
}

/// Virtual channels the design uses along each dimension — e.g. Fig. 9b's
/// "2, 2, and 4 virtual channels along the X, Y, and Z dimensions".
pub fn vcs_per_dimension(seq: &PartitionSeq, n: usize) -> Vec<u8> {
    let mut maxima = vec![0u8; n];
    for p in seq.partitions() {
        for c in p.channels() {
            if c.dim.index() < n {
                maxima[c.dim.index()] = maxima[c.dim.index()].max(c.vc);
            }
        }
    }
    maxima
}

fn check_dim(n: usize) -> Result<()> {
    if n == 0 {
        return Err(EbdaError::BadDimension {
            n,
            reason: "at least one dimension is required",
        });
    }
    if n > 8 {
        return Err(EbdaError::BadDimension {
            n,
            reason: "construction is exponential in n; cap is n = 8",
        });
    }
    Ok(())
}

/// Direction of dimension `d` inside region `r` of a `bits`-dimensional
/// sign space, using the binary-reflected enumeration (bit 0 = last dim).
fn region_dir(r: usize, d: usize, bits: usize) -> Direction {
    if r & (1 << (bits - 1 - d)) == 0 {
        Direction::Plus
    } else {
        Direction::Minus
    }
}

fn dir_index(d: Direction) -> usize {
    match d {
        Direction::Plus => 0,
        Direction::Minus => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptiveness::is_fully_adaptive;

    #[test]
    fn formula_values() {
        assert_eq!(min_channels(1), 2);
        assert_eq!(min_channels(2), 6);
        assert_eq!(min_channels(3), 16);
        assert_eq!(min_channels(4), 40);
        assert_eq!(min_channels(5), 96);
        assert_eq!(region_count(3), 8);
    }

    #[test]
    fn naive_design_counts() {
        for n in 1..=4usize {
            let seq = region_partitioning(n).unwrap();
            assert_eq!(seq.len(), 1 << n, "2^n partitions for n={n}");
            assert_eq!(seq.channel_count(), n << n, "n·2^n channels for n={n}");
            assert!(seq.validate().is_ok());
            // No partition has a complete pair: each covers one region only.
            for p in seq.partitions() {
                assert!(p.complete_pair_dims().is_empty());
            }
        }
    }

    #[test]
    fn naive_2d_matches_fig7a_structure() {
        let seq = region_partitioning(2).unwrap();
        // 2 VCs along each dimension, as the figure requires.
        assert_eq!(vcs_per_dimension(&seq, 2), vec![2, 2]);
        assert!(is_fully_adaptive(&seq, 2));
    }

    #[test]
    fn merged_design_reaches_the_minimum() {
        for n in 1..=5usize {
            let seq = merged_partitioning(n).unwrap();
            assert_eq!(seq.len(), 1 << (n - 1), "2^(n-1) partitions for n={n}");
            assert_eq!(
                seq.channel_count() as u64,
                min_channels(n as u32),
                "minimum channels for n={n}"
            );
            assert!(seq.validate().is_ok());
            // Every partition has exactly one complete pair: the last dim.
            for p in seq.partitions() {
                assert_eq!(p.complete_pair_dims().len(), 1);
            }
            assert!(is_fully_adaptive(&seq, n));
        }
    }

    #[test]
    fn merged_2d_is_the_dyxy_design() {
        let seq = merged_partitioning(2).unwrap();
        assert_eq!(seq.to_string(), "[X1+ Y1+ Y1-] -> [X1- Y2+ Y2-]");
        assert_eq!(vcs_per_dimension(&seq, 2), vec![1, 2]);
    }

    #[test]
    fn merged_3d_matches_fig9b_vc_budget() {
        let seq = merged_partitioning(3).unwrap();
        // Fig. 9b: 2, 2 and 4 VCs along X, Y and Z.
        assert_eq!(vcs_per_dimension(&seq, 3), vec![2, 2, 4]);
    }

    #[test]
    fn dimension_bounds() {
        assert!(region_partitioning(0).is_err());
        assert!(region_partitioning(9).is_err());
        assert!(merged_partitioning(0).is_err());
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn min_channels_rejects_zero() {
        let _ = min_channels(0);
    }
}
