//! The channel algebra of EbDa (Definitions 1–6 of the paper).
//!
//! A *channel* is the unit resource EbDa reasons about: one direction of one
//! dimension, optionally distinguished by a virtual-channel number and by a
//! node-parity class (the Odd-Even and Hamiltonian-path constructions split
//! channels by the parity of the column/row they sit in).
//!
//! Channels at this level are *classes*: `X1+` names every eastward VC-1 link
//! in the network at once. Concrete, per-link instantiation happens in the
//! `ebda-cdg` crate when a design is verified on a real topology.

use crate::error::{EbdaError, Result};
use std::fmt;

/// A network dimension (`X`, `Y`, `Z`, `T`, `D4`, `D5`, …).
///
/// Dimensions are identified by a zero-based index; the first four display as
/// the letters used throughout the paper.
///
/// ```
/// use ebda_core::Dimension;
/// assert_eq!(Dimension::X.to_string(), "X");
/// assert_eq!(Dimension::new(5).to_string(), "D5");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Dimension(pub u8);

impl Dimension {
    /// The `X` dimension (index 0).
    pub const X: Dimension = Dimension(0);
    /// The `Y` dimension (index 1).
    pub const Y: Dimension = Dimension(1);
    /// The `Z` dimension (index 2).
    pub const Z: Dimension = Dimension(2);
    /// The `T` dimension (index 3), as used in the paper's 4-D example.
    pub const T: Dimension = Dimension(3);

    /// Creates a dimension from its zero-based index.
    pub fn new(index: u8) -> Dimension {
        Dimension(index)
    }

    /// Zero-based index of this dimension.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Parses a dimension letter (`X`, `Y`, `Z`, `T`) or `D<k>` form.
    pub fn parse(s: &str) -> Option<Dimension> {
        match s {
            "X" | "x" => Some(Dimension::X),
            "Y" | "y" => Some(Dimension::Y),
            "Z" | "z" => Some(Dimension::Z),
            "T" | "t" => Some(Dimension::T),
            _ => {
                let rest = s.strip_prefix('D').or_else(|| s.strip_prefix('d'))?;
                rest.parse::<u8>().ok().map(Dimension)
            }
        }
    }
}

impl fmt::Display for Dimension {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            0 => write!(f, "X"),
            1 => write!(f, "Y"),
            2 => write!(f, "Z"),
            3 => write!(f, "T"),
            k => write!(f, "D{k}"),
        }
    }
}

/// One of the two directions of a dimension (Definition 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Direction {
    /// The positive direction (`+`), e.g. East for `X`, North for `Y`.
    Plus,
    /// The negative direction (`-`), e.g. West for `X`, South for `Y`.
    Minus,
}

impl Direction {
    /// The opposite direction.
    ///
    /// ```
    /// use ebda_core::Direction;
    /// assert_eq!(Direction::Plus.opposite(), Direction::Minus);
    /// ```
    pub fn opposite(self) -> Direction {
        match self {
            Direction::Plus => Direction::Minus,
            Direction::Minus => Direction::Plus,
        }
    }

    /// `+1` for [`Direction::Plus`], `-1` for [`Direction::Minus`].
    pub fn sign(self) -> i64 {
        match self {
            Direction::Plus => 1,
            Direction::Minus => -1,
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Direction::Plus => write!(f, "+"),
            Direction::Minus => write!(f, "-"),
        }
    }
}

/// Node-coordinate parity, used by parity-restricted channel classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Parity {
    /// Even coordinate value.
    Even,
    /// Odd coordinate value.
    Odd,
}

impl Parity {
    /// Parity of an integer coordinate.
    pub fn of(v: i64) -> Parity {
        if v % 2 == 0 {
            Parity::Even
        } else {
            Parity::Odd
        }
    }

    /// The opposite parity.
    pub fn opposite(self) -> Parity {
        match self {
            Parity::Even => Parity::Odd,
            Parity::Odd => Parity::Even,
        }
    }
}

impl fmt::Display for Parity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Parity::Even => write!(f, "e"),
            Parity::Odd => write!(f, "o"),
        }
    }
}

/// Restriction of a channel class to a subset of network nodes
/// (Definition 6: "channels in different columns/rows are disjoint").
///
/// [`ChannelClass::All`] is the ordinary, unrestricted channel of the paper's
/// main development. [`ChannelClass::AtParity`] restricts the channel to links
/// whose node coordinate along `axis` has the given parity — e.g. the
/// Odd-Even turn model's `Ye*` ("Y channels located in even columns") is a
/// `Y` channel with `AtParity { axis: X, parity: Even }`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ChannelClass {
    /// The channel exists at every node.
    All,
    /// The channel exists only where the coordinate along `axis` has the
    /// given `parity`.
    AtParity {
        /// Which coordinate's parity is examined.
        axis: Dimension,
        /// The required parity.
        parity: Parity,
    },
    /// The channel exists only where the coordinate along `axis` equals
    /// `value` — e.g. a torus dateline's wrap channel lives only at the
    /// last coordinate.
    AtCoord {
        /// Which coordinate is examined.
        axis: Dimension,
        /// The required coordinate value.
        value: i64,
    },
    /// The channel exists everywhere *except* where the coordinate along
    /// `axis` equals `value` — the non-wrap remainder of a torus ring.
    NotAtCoord {
        /// Which coordinate is examined.
        axis: Dimension,
        /// The excluded coordinate value.
        value: i64,
    },
}

impl ChannelClass {
    /// Returns `true` if the two classes can co-exist at some node, i.e.
    /// their node sets intersect. Conservative for combinations whose
    /// emptiness depends on the network size (treated as overlapping,
    /// which only makes the disjointness checks stricter, never unsound).
    pub fn overlaps(self, other: ChannelClass) -> bool {
        use ChannelClass::*;
        match (self, other) {
            (All, _) | (_, All) => true,
            (
                AtParity {
                    axis: a1,
                    parity: p1,
                },
                AtParity {
                    axis: a2,
                    parity: p2,
                },
            ) => a1 != a2 || p1 == p2,
            (
                AtCoord {
                    axis: a1,
                    value: v1,
                },
                AtCoord {
                    axis: a2,
                    value: v2,
                },
            ) => a1 != a2 || v1 == v2,
            (
                AtCoord { axis: a1, value },
                NotAtCoord {
                    axis: a2,
                    value: ex,
                },
            )
            | (
                NotAtCoord {
                    axis: a2,
                    value: ex,
                },
                AtCoord { axis: a1, value },
            ) => a1 != a2 || value != ex,
            (AtCoord { axis: a1, value }, AtParity { axis: a2, parity })
            | (AtParity { axis: a2, parity }, AtCoord { axis: a1, value }) => {
                a1 != a2 || Parity::of(value) == parity
            }
            // NotAtCoord/NotAtCoord and NotAtCoord/AtParity exclude at
            // most one value each; for any radix >= 3 they intersect.
            (NotAtCoord { .. }, _) | (_, NotAtCoord { .. }) => true,
        }
    }

    /// Returns `true` if a node with the given coordinates belongs to the
    /// class.
    pub fn contains(self, coords: &[i64]) -> bool {
        match self {
            ChannelClass::All => true,
            ChannelClass::AtParity { axis, parity } => coords
                .get(axis.index())
                .is_some_and(|&c| Parity::of(c) == parity),
            ChannelClass::AtCoord { axis, value } => {
                coords.get(axis.index()).is_some_and(|&c| c == value)
            }
            ChannelClass::NotAtCoord { axis, value } => {
                coords.get(axis.index()).is_some_and(|&c| c != value)
            }
        }
    }
}

/// A channel class (Definition 1 plus Assumption 5): one direction of one
/// dimension, on one virtual channel, optionally parity-restricted.
///
/// The paper writes channels as `X1+`, `Y2-`, `Ye*`-style tokens; the same
/// notation round-trips through [`Channel::parse`] and [`fmt::Display`]:
///
/// ```
/// use ebda_core::Channel;
/// let c = Channel::parse("X2-").unwrap();
/// assert_eq!(c.to_string(), "X2-");
/// assert_eq!(Channel::parse("Y+").unwrap().to_string(), "Y1+");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Channel {
    /// The dimension the channel moves along.
    pub dim: Dimension,
    /// The direction of motion.
    pub dir: Direction,
    /// Virtual-channel number, 1-based as in the paper (`X1+`, `X2+`, …).
    /// A network "without VCs" uses VC 1 everywhere.
    pub vc: u8,
    /// Node-parity restriction ([`ChannelClass::All`] for ordinary channels).
    pub class: ChannelClass,
}

impl Channel {
    /// Creates an ordinary (unrestricted, VC 1) channel.
    ///
    /// ```
    /// use ebda_core::{Channel, Dimension, Direction};
    /// let east = Channel::new(Dimension::X, Direction::Plus);
    /// assert_eq!(east.to_string(), "X1+");
    /// ```
    pub fn new(dim: Dimension, dir: Direction) -> Channel {
        Channel {
            dim,
            dir,
            vc: 1,
            class: ChannelClass::All,
        }
    }

    /// Creates a channel on a specific virtual channel (1-based).
    pub fn with_vc(dim: Dimension, dir: Direction, vc: u8) -> Channel {
        Channel {
            dim,
            dir,
            vc,
            class: ChannelClass::All,
        }
    }

    /// Returns a copy restricted to nodes whose coordinate along `axis` has
    /// the given parity.
    pub fn at_parity(mut self, axis: Dimension, parity: Parity) -> Channel {
        self.class = ChannelClass::AtParity { axis, parity };
        self
    }

    /// Returns a copy restricted to nodes whose coordinate along `axis`
    /// equals `value` (e.g. a torus wrap channel at the dateline).
    pub fn at_coord(mut self, axis: Dimension, value: i64) -> Channel {
        self.class = ChannelClass::AtCoord { axis, value };
        self
    }

    /// Returns a copy restricted to nodes whose coordinate along `axis`
    /// differs from `value` (the non-wrap remainder of a ring).
    pub fn not_at_coord(mut self, axis: Dimension, value: i64) -> Channel {
        self.class = ChannelClass::NotAtCoord { axis, value };
        self
    }

    /// Returns the channel moving the opposite way on the same VC and class.
    pub fn reversed(mut self) -> Channel {
        self.dir = self.dir.opposite();
        self
    }

    /// Returns `true` if the two channel classes denote overlapping physical
    /// resources (same dimension, direction and VC, with intersecting node
    /// classes). Overlapping channels may not appear in disjoint partitions
    /// and may not both appear inside a single partition.
    pub fn overlaps(self, other: Channel) -> bool {
        self.dim == other.dim
            && self.dir == other.dir
            && self.vc == other.vc
            && self.class.overlaps(other.class)
    }

    /// Parses the paper's channel notation.
    ///
    /// Accepted forms: `X+`, `X1+`, `Y2-`, `Ye+`, `Yo2-`, `Ze*`-free forms
    /// (the `*` wildcard is *not* a single channel; expand it with
    /// [`crate::Partition::push_star`]). The parity letter (`e`/`o`), when
    /// present, restricts by the parity convention of the paper: `Y`
    /// channels by column (`X` coordinate), `X` channels by row (`Y`
    /// coordinate); for any other dimension the parity axis defaults to `X`.
    /// Coordinate-restricted classes use the bracketed display suffix:
    /// `X2+[X=3]` ([`ChannelClass::AtCoord`]), `X2+[X!=3]`
    /// ([`ChannelClass::NotAtCoord`]), and `Z1+[Z%2=0]`
    /// ([`ChannelClass::AtParity`] on a non-conventional axis), so every
    /// [`fmt::Display`] rendering round-trips.
    ///
    /// # Errors
    ///
    /// Returns [`EbdaError::ParseChannel`] on malformed input.
    pub fn parse(s: &str) -> Result<Channel> {
        let err = |reason: &'static str| EbdaError::ParseChannel {
            input: s.to_string(),
            reason,
        };
        let s = s.trim();
        let mut chars = s.chars().peekable();
        // Dimension: letter or D<k>.
        let first = chars.next().ok_or_else(|| err("empty input"))?;
        let dim = if first == 'D' || first == 'd' {
            let mut digits = String::new();
            while let Some(c) = chars.peek() {
                if c.is_ascii_digit() {
                    digits.push(*c);
                    chars.next();
                } else {
                    break;
                }
            }
            // "D4" style needs at least one digit; but the digits may also be
            // the VC number for dimension T... The paper never uses D<k> with
            // VCs in text form, so treat all digits here as the index.
            if digits.is_empty() {
                return Err(err("dimension D needs an index, e.g. D4"));
            }
            Dimension(
                digits
                    .parse::<u8>()
                    .map_err(|_| err("dimension index out of range"))?,
            )
        } else {
            Dimension::parse(&first.to_string()).ok_or_else(|| err("unknown dimension letter"))?
        };
        // Optional parity letter.
        let mut parity = None;
        if let Some(&c) = chars.peek() {
            if c == 'e' || c == 'o' {
                parity = Some(if c == 'e' { Parity::Even } else { Parity::Odd });
                chars.next();
            }
        }
        // Optional VC digits; `D<k>` channels separate the VC with a colon
        // ("D4:2+") since digits would otherwise extend the index.
        if chars.peek() == Some(&':') {
            chars.next();
        }
        let mut digits = String::new();
        while let Some(c) = chars.peek() {
            if c.is_ascii_digit() {
                digits.push(*c);
                chars.next();
            } else {
                break;
            }
        }
        let vc = if digits.is_empty() {
            1
        } else {
            let v: u8 = digits
                .parse()
                .map_err(|_| err("virtual-channel number out of range"))?;
            if v == 0 {
                return Err(err("virtual-channel numbers are 1-based"));
            }
            v
        };
        // Direction.
        let dir = match chars.next() {
            Some('+') => Direction::Plus,
            Some('-') => Direction::Minus,
            Some(_) => return Err(err("expected '+' or '-' direction suffix")),
            None => return Err(err("missing '+' or '-' direction suffix")),
        };
        // Optional bracketed coordinate restriction: `[X=3]` / `[X!=3]`.
        let mut coord_class = None;
        if chars.peek() == Some(&'[') {
            chars.next();
            let mut body = String::new();
            loop {
                match chars.next() {
                    Some(']') => break,
                    Some(c) => body.push(c),
                    None => return Err(err("unterminated coordinate restriction bracket")),
                }
            }
            // `[Z%2=0]` restricts by parity on a non-conventional axis;
            // it must be recognised before the plain '=' split.
            if let Some((axis_text, bit_text)) = body.split_once("%2=") {
                let axis = Dimension::parse(axis_text.trim())
                    .ok_or_else(|| err("bad axis in parity restriction"))?;
                let parity = match bit_text.trim() {
                    "0" => Parity::Even,
                    "1" => Parity::Odd,
                    _ => return Err(err("parity restriction needs %2=0 or %2=1")),
                };
                coord_class = Some(ChannelClass::AtParity { axis, parity });
            } else {
                let (axis_text, value_text, negated) = match body.split_once("!=") {
                    Some((a, v)) => (a, v, true),
                    None => match body.split_once('=') {
                        Some((a, v)) => (a, v, false),
                        None => return Err(err("coordinate restriction needs '=' or '!='")),
                    },
                };
                let axis = Dimension::parse(axis_text.trim())
                    .ok_or_else(|| err("bad axis in coordinate restriction"))?;
                let value: i64 = value_text
                    .trim()
                    .parse()
                    .map_err(|_| err("bad value in coordinate restriction"))?;
                coord_class = Some(if negated {
                    ChannelClass::NotAtCoord { axis, value }
                } else {
                    ChannelClass::AtCoord { axis, value }
                });
            }
        }
        if chars.next().is_some() {
            return Err(err("trailing characters after direction"));
        }
        let class = match (parity, coord_class) {
            (Some(_), Some(_)) => {
                return Err(err("parity and coordinate restrictions are exclusive"))
            }
            (None, Some(c)) => c,
            (Some(p), None) => ChannelClass::AtParity {
                axis: Channel::conventional_parity_axis(dim),
                parity: p,
            },
            (None, None) => ChannelClass::All,
        };
        Ok(Channel {
            dim,
            dir,
            vc,
            class,
        })
    }

    /// The paper's parity-axis convention: `Y` channels are classified by
    /// column (the `X` coordinate), `X` channels by row (the `Y`
    /// coordinate); any other dimension defaults to classification by `X`.
    pub fn conventional_parity_axis(dim: Dimension) -> Dimension {
        if dim == Dimension::X {
            Dimension::Y
        } else {
            Dimension::X
        }
    }
}

impl fmt::Display for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.dim)?;
        // The short parity letter only encodes the paper's conventional
        // axis; any other parity axis uses the bracketed suffix below so
        // the rendering stays lossless.
        let conventional = Channel::conventional_parity_axis(self.dim);
        if let ChannelClass::AtParity { axis, parity } = self.class {
            if axis == conventional {
                write!(f, "{parity}")?;
            }
        }
        // Beyond T the dimension prints as `D<k>`, so a colon separates the
        // VC number from the index to keep parsing unambiguous.
        if self.dim.0 > 3 {
            write!(f, ":")?;
        }
        write!(f, "{}{}", self.vc, self.dir)?;
        // Coordinate restrictions use a bracketed suffix, accepted back by
        // `parse`.
        match self.class {
            ChannelClass::AtCoord { axis, value } => write!(f, "[{axis}={value}]"),
            ChannelClass::NotAtCoord { axis, value } => write!(f, "[{axis}!={value}]"),
            ChannelClass::AtParity { axis, parity } if axis != conventional => {
                write!(
                    f,
                    "[{axis}%2={}]",
                    if parity == Parity::Even { 0 } else { 1 }
                )
            }
            _ => Ok(()),
        }
    }
}

impl std::str::FromStr for Channel {
    type Err = EbdaError;

    fn from_str(s: &str) -> Result<Channel> {
        Channel::parse(s)
    }
}

/// Parses a whitespace- or comma-separated list of channel tokens, expanding
/// the `*` direction wildcard into a `+`/`-` pair (the paper's `Z1*`).
///
/// ```
/// use ebda_core::parse_channels;
/// let chs = parse_channels("Z1* X1+ Y1+").unwrap();
/// assert_eq!(chs.len(), 4);
/// assert_eq!(chs[0].to_string(), "Z1+");
/// assert_eq!(chs[1].to_string(), "Z1-");
/// ```
///
/// # Errors
///
/// Returns [`EbdaError::ParseChannel`] if any token is malformed.
pub fn parse_channels(s: &str) -> Result<Vec<Channel>> {
    let mut out = Vec::new();
    for token in s.split([' ', ',', ';']).filter(|t| !t.is_empty()) {
        if let Some(stem) = token.strip_suffix('*') {
            let plus = Channel::parse(&format!("{stem}+"))?;
            out.push(plus);
            out.push(plus.reversed());
        } else {
            out.push(Channel::parse(token)?);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimension_roundtrip() {
        for i in 0..10u8 {
            let d = Dimension::new(i);
            assert_eq!(Dimension::parse(&d.to_string()), Some(d));
        }
    }

    #[test]
    fn parse_plain_channels() {
        let c = Channel::parse("X+").unwrap();
        assert_eq!(c.dim, Dimension::X);
        assert_eq!(c.dir, Direction::Plus);
        assert_eq!(c.vc, 1);
        assert_eq!(c.class, ChannelClass::All);

        let c = Channel::parse("Y2-").unwrap();
        assert_eq!(c.dim, Dimension::Y);
        assert_eq!(c.dir, Direction::Minus);
        assert_eq!(c.vc, 2);
    }

    #[test]
    fn parse_parity_channels() {
        // Odd-Even's "Ye" = Y channels in even columns (X parity).
        let c = Channel::parse("Ye+").unwrap();
        assert_eq!(
            c.class,
            ChannelClass::AtParity {
                axis: Dimension::X,
                parity: Parity::Even
            }
        );
        // Hamiltonian's "Xo" = X channels in odd rows (Y parity).
        let c = Channel::parse("Xo-").unwrap();
        assert_eq!(
            c.class,
            ChannelClass::AtParity {
                axis: Dimension::Y,
                parity: Parity::Odd
            }
        );
    }

    #[test]
    fn parse_higher_dimension() {
        let c = Channel::parse("D4+").unwrap();
        assert_eq!(c.dim, Dimension::new(4));
        assert_eq!(c.vc, 1);
        let c = Channel::parse("T2-").unwrap();
        assert_eq!(c.dim, Dimension::T);
        assert_eq!(c.vc, 2);
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "X", "X0+", "Q1+", "X1", "X1?", "X1+x", "D+"] {
            assert!(Channel::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn display_roundtrip() {
        for s in [
            "X1+",
            "Y2-",
            "Z3+",
            "T1-",
            "Ye1+",
            "Xo2-",
            "D4:1+",
            "D4:2-",
            "X2+[X=3]",
            "X2-[X!=0]",
            "Y1+[Y=-2]",
            "D4:2-[D4!=1]",
            "Z1+[Z%2=0]",
            "Z1-[Z%2=1]",
            "X1+[X%2=0]",
        ] {
            let c = Channel::parse(s).unwrap();
            let printed = c.to_string();
            let reparsed = Channel::parse(&printed).unwrap();
            assert_eq!(c, reparsed, "roundtrip failed for {s}");
        }
    }

    #[test]
    fn parse_coordinate_restrictions() {
        let c = Channel::parse("X2+[X=3]").unwrap();
        assert_eq!(
            c.class,
            ChannelClass::AtCoord {
                axis: Dimension::X,
                value: 3
            }
        );
        assert_eq!(c.vc, 2);
        let c = Channel::parse("Y2-[Y!=0]").unwrap();
        assert_eq!(
            c.class,
            ChannelClass::NotAtCoord {
                axis: Dimension::Y,
                value: 0
            }
        );
        for bad in ["X1+[X=3", "X1+[X~3]", "X1+[Q=3]", "X1+[X=a]", "Ye1+[X=2]"] {
            assert!(Channel::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn nonconventional_parity_axes_round_trip() {
        // A Z channel classified by Z parity cannot use the `Ze` short form
        // (that implies the conventional X axis); the bracketed rendering
        // must carry the axis through a print/parse cycle unchanged.
        let c = Channel::with_vc(Dimension::Z, Direction::Plus, 1)
            .at_parity(Dimension::Z, Parity::Even);
        assert_eq!(c.to_string(), "Z1+[Z%2=0]");
        assert_eq!(Channel::parse(&c.to_string()).unwrap(), c);
        // The conventional axis keeps its compact historical spelling.
        let conventional =
            Channel::new(Dimension::Z, Direction::Plus).at_parity(Dimension::X, Parity::Odd);
        assert_eq!(conventional.to_string(), "Zo1+");
        assert_eq!(Channel::parse("Zo1+").unwrap(), conventional);
        for bad in ["Z1+[Z%2=2]", "Z1+[Q%2=0]", "Ze1+[Z%2=0]"] {
            assert!(Channel::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn overlap_rules_match_definition_6() {
        let xp = Channel::parse("X1+").unwrap();
        let xm = Channel::parse("X1-").unwrap();
        let yp = Channel::parse("Y1+").unwrap();
        let xp2 = Channel::parse("X2+").unwrap();
        let ye_p = Channel::parse("Ye1+").unwrap();
        let yo_p = Channel::parse("Yo1+").unwrap();

        // Different dimensions are disjoint (Fig. 2a).
        assert!(!xp.overlaps(yp));
        // Opposite directions are disjoint (Fig. 2b).
        assert!(!xp.overlaps(xm));
        // Different VC numbers are disjoint (Fig. 2c).
        assert!(!xp.overlaps(xp2));
        // Different column parities are disjoint (Fig. 2d).
        assert!(!ye_p.overlaps(yo_p));
        // A channel overlaps itself.
        assert!(xp.overlaps(xp));
        // An unrestricted channel overlaps its parity-restricted slices.
        assert!(yp.overlaps(ye_p) && yp.overlaps(yo_p));
    }

    #[test]
    fn class_membership() {
        let ye = ChannelClass::AtParity {
            axis: Dimension::X,
            parity: Parity::Even,
        };
        assert!(ye.contains(&[0, 5]));
        assert!(ye.contains(&[2, 1]));
        assert!(!ye.contains(&[3, 0]));
        assert!(ChannelClass::All.contains(&[7, 7, 7]));
    }

    #[test]
    fn wildcard_expansion() {
        let chs = parse_channels("X1- Ye1*").unwrap();
        assert_eq!(chs.len(), 3);
        assert_eq!(chs[1].to_string(), "Ye1+");
        assert_eq!(chs[2].to_string(), "Ye1-");
    }

    #[test]
    fn coordinate_class_overlap_rules() {
        use ChannelClass::*;
        let at3 = AtCoord {
            axis: Dimension::X,
            value: 3,
        };
        let at0 = AtCoord {
            axis: Dimension::X,
            value: 0,
        };
        let not3 = NotAtCoord {
            axis: Dimension::X,
            value: 3,
        };
        let y_at3 = AtCoord {
            axis: Dimension::Y,
            value: 3,
        };
        // Same axis, different values: disjoint.
        assert!(!at3.overlaps(at0));
        // Complementary at/not on the same axis+value: disjoint.
        assert!(!at3.overlaps(not3));
        assert!(!not3.overlaps(at3));
        // But AtCoord(0) intersects NotAtCoord(3).
        assert!(at0.overlaps(not3));
        // Different axes always intersect.
        assert!(at3.overlaps(y_at3));
        // Parity interaction: AtCoord(3) is odd, so it misses Even classes.
        let even = AtParity {
            axis: Dimension::X,
            parity: Parity::Even,
        };
        assert!(!at3.overlaps(even));
        assert!(at0.overlaps(even));
        // Conservative cases stay overlapping.
        assert!(not3.overlaps(not3));
        assert!(not3.overlaps(even));
        assert!(All.overlaps(at3));
    }

    #[test]
    fn coordinate_class_membership_and_display() {
        let c = Channel::new(Dimension::X, Direction::Plus).at_coord(Dimension::X, 3);
        assert!(c.class.contains(&[3, 0]));
        assert!(!c.class.contains(&[2, 0]));
        assert_eq!(c.to_string(), "X1+[X=3]");
        let nc = Channel::new(Dimension::X, Direction::Minus).not_at_coord(Dimension::X, 0);
        assert!(nc.class.contains(&[1, 0]));
        assert!(!nc.class.contains(&[0, 5]));
        assert_eq!(nc.to_string(), "X1-[X!=0]");
    }

    #[test]
    fn direction_helpers() {
        assert_eq!(Direction::Plus.sign(), 1);
        assert_eq!(Direction::Minus.sign(), -1);
        assert_eq!(Direction::Minus.opposite(), Direction::Plus);
        assert_eq!(Parity::of(-2), Parity::Even);
        assert_eq!(Parity::of(-1), Parity::Odd);
        assert_eq!(Parity::Even.opposite(), Parity::Odd);
    }
}
