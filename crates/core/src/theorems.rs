//! Design analysis: one-call verdicts tying Theorems 1–3 together.
//!
//! [`analyze`] condenses everything EbDa says about a partition sequence —
//! per-partition pair inventory, validity, extracted turn counts, region
//! adaptiveness — into a printable report used by the table/figure
//! regeneration binaries.

use crate::adaptiveness::is_fully_adaptive;
use crate::channel::Dimension;
use crate::error::Result;
use crate::extract::extract_turns;
use crate::sequence::PartitionSeq;
use crate::turn::TurnCounts;
use std::fmt;

/// Per-partition findings in a [`DesignAnalysis`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionAnalysis {
    /// Rendered channel list.
    pub channels: String,
    /// Number of channels.
    pub len: usize,
    /// Dimensions holding a complete D-pair (at most one for valid designs).
    pub pair_dims: Vec<Dimension>,
}

/// The result of [`analyze`]: a structural summary of an EbDa design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DesignAnalysis {
    /// Per-partition findings, in sequence order.
    pub partitions: Vec<PartitionAnalysis>,
    /// Total channel count.
    pub channels: usize,
    /// Turn counts of the full extraction (Theorems 1+2+3).
    pub turns: TurnCounts,
    /// Whether every region of the `n`-dimensional space is covered by a
    /// single partition (fully adaptive design).
    pub fully_adaptive: bool,
    /// The dimensionality used for the adaptiveness check.
    pub dims: usize,
}

impl fmt::Display for DesignAnalysis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "design: {} partitions, {} channels",
            self.partitions.len(),
            self.channels
        )?;
        for (i, p) in self.partitions.iter().enumerate() {
            let pairs = if p.pair_dims.is_empty() {
                "no complete pair".to_string()
            } else {
                format!(
                    "complete pair in {}",
                    p.pair_dims
                        .iter()
                        .map(|d| d.to_string())
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            };
            writeln!(
                f,
                "  P{}: {} ({} channels, {})",
                i, p.channels, p.len, pairs
            )?;
        }
        writeln!(f, "turns: {}", self.turns)?;
        write!(
            f,
            "adaptiveness: {} in {}D",
            if self.fully_adaptive {
                "fully adaptive"
            } else {
                "not fully adaptive"
            },
            self.dims
        )
    }
}

/// A one-call EbDa verdict on a partition sequence, with the reason
/// attached — the machine-friendly face of [`analyze`] used by the
/// differential oracle and any caller that needs to know *why* a design
/// was rejected without pattern-matching on error types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DesignVerdict {
    /// The design satisfies Theorem 1 and partition disjointness, so the
    /// turn extraction (Theorems 1–3) succeeded: deadlock-free by
    /// construction on meshes.
    DeadlockFree {
        /// Number of partitions in the sequence.
        partitions: usize,
        /// Total channel count across partitions.
        channels: usize,
        /// Turn counts of the full extraction.
        turns: TurnCounts,
    },
    /// The design violates the EbDa preconditions; `reason` is the
    /// rendered validation error (which theorem failed, and where).
    Rejected {
        /// Human-readable rejection reason.
        reason: String,
    },
}

impl DesignVerdict {
    /// Returns `true` when EbDa accepts the design.
    pub fn is_deadlock_free(&self) -> bool {
        matches!(self, DesignVerdict::DeadlockFree { .. })
    }

    /// The rejection reason, or `None` for accepted designs.
    pub fn reason(&self) -> Option<&str> {
        match self {
            DesignVerdict::DeadlockFree { .. } => None,
            DesignVerdict::Rejected { reason } => Some(reason),
        }
    }
}

impl fmt::Display for DesignVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DesignVerdict::DeadlockFree {
                partitions,
                channels,
                turns,
            } => write!(
                f,
                "deadlock-free by construction: {partitions} partitions, {channels} channels, turns {turns}"
            ),
            DesignVerdict::Rejected { reason } => write!(f, "rejected: {reason}"),
        }
    }
}

/// Runs the EbDa checks on a partition sequence and returns the verdict
/// with its reason.
///
/// ```
/// use ebda_core::theorems::design_verdict;
/// use ebda_core::PartitionSeq;
/// let ok = design_verdict(&PartitionSeq::parse("X- | X+ Y+ Y-").unwrap());
/// assert!(ok.is_deadlock_free());
/// let bad = design_verdict(&PartitionSeq::parse("X+ X- Y+ Y-").unwrap());
/// assert!(bad.reason().unwrap().contains("Theorem 1"));
/// ```
pub fn design_verdict(seq: &PartitionSeq) -> DesignVerdict {
    match extract_turns(seq) {
        Ok(extraction) => DesignVerdict::DeadlockFree {
            partitions: seq.len(),
            channels: seq.channel_count(),
            turns: extraction.turn_set().counts(),
        },
        Err(e) => DesignVerdict::Rejected {
            reason: e.to_string(),
        },
    }
}

/// Analyzes a design: validates it (Theorem 1 + disjointness), extracts all
/// turns (Theorems 1–3) and evaluates region adaptiveness over `n`
/// dimensions.
///
/// ```
/// use ebda_core::theorems::analyze;
/// use ebda_core::catalog;
/// let report = analyze(&catalog::fig7b_dyxy(), 2).unwrap();
/// assert!(report.fully_adaptive);
/// assert_eq!(report.channels, 6);
/// ```
///
/// # Errors
///
/// Returns the validation error when the sequence violates Theorem 1 or
/// partition disjointness.
pub fn analyze(seq: &PartitionSeq, n: usize) -> Result<DesignAnalysis> {
    let extraction = extract_turns(seq)?;
    let partitions = seq
        .partitions()
        .iter()
        .map(|p| PartitionAnalysis {
            channels: p.to_string(),
            len: p.len(),
            pair_dims: p.complete_pair_dims(),
        })
        .collect();
    Ok(DesignAnalysis {
        partitions,
        channels: seq.channel_count(),
        turns: extraction.turn_set().counts(),
        fully_adaptive: is_fully_adaptive(seq, n),
        dims: n,
    })
}

/// Renders a complete markdown design report: structure, per-theorem turn
/// inventory, region classification and the analysis summary — the
/// document a designer would attach to a design review.
///
/// `radix` controls the mesh used for the region sweep (small values
/// suffice; the classification is exact for the swept size).
///
/// # Errors
///
/// Returns the validation error for invalid designs.
pub fn markdown_report(seq: &PartitionSeq, n: usize, radix: i64) -> Result<String> {
    use crate::adaptiveness::region_classes;
    use crate::extract::Justification;
    use std::fmt::Write;

    let analysis = analyze(seq, n)?;
    let extraction = extract_turns(seq)?;
    let mut out = String::new();
    let _ = writeln!(out, "# Design report: `{seq}`\n");
    let _ = writeln!(
        out,
        "- partitions: {}\n- channels: {}\n- turns: {}\n- fully adaptive: {}\n",
        analysis.partitions.len(),
        analysis.channels,
        analysis.turns,
        if analysis.fully_adaptive { "yes" } else { "no" }
    );

    let _ = writeln!(out, "## Partitions\n");
    let _ = writeln!(out, "| # | channels | complete pair |");
    let _ = writeln!(out, "|---|---|---|");
    for (i, p) in analysis.partitions.iter().enumerate() {
        let pair = p
            .pair_dims
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(
            out,
            "| P{i} | `{}` | {} |",
            p.channels,
            if pair.is_empty() {
                "—".to_string()
            } else {
                pair
            }
        );
    }

    let _ = writeln!(out, "\n## Turns by justification\n");
    for (t, j) in extraction.justified_turns() {
        let label = match j {
            Justification::Theorem1 { partition } => format!("Theorem 1 (P{partition})"),
            Justification::Theorem2 { partition } => format!("Theorem 2 (P{partition})"),
            Justification::Theorem3 { from, to } => format!("Theorem 3 (P{from}→P{to})"),
        };
        let _ = writeln!(out, "- `{t}` ({}) — {label}", t.kind());
    }

    let _ = writeln!(out, "\n## Regions ({radix}^{n} mesh sweep)\n");
    let channels = seq.channels();
    let _ = writeln!(out, "| region | class |");
    let _ = writeln!(out, "|---|---|");
    for (region, class) in region_classes(extraction.turn_set(), &channels, radix, n) {
        let signs: String = region.iter().map(|d| d.to_string()).collect();
        let _ = writeln!(out, "| {signs} | {class} |");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    #[test]
    fn analysis_of_west_first() {
        let report = analyze(&catalog::p3_west_first(), 2).unwrap();
        assert_eq!(report.partitions.len(), 2);
        assert_eq!(report.channels, 4);
        assert_eq!(report.turns.ninety, 6);
        assert!(!report.fully_adaptive);
        assert!(report.partitions[0].pair_dims.is_empty());
        assert_eq!(report.partitions[1].pair_dims.len(), 1);
    }

    #[test]
    fn analysis_rejects_invalid_designs() {
        let seq = PartitionSeq::parse("X+ X- Y+ Y-").unwrap();
        assert!(analyze(&seq, 2).is_err());
    }

    #[test]
    fn markdown_report_covers_all_sections() {
        let report = markdown_report(&catalog::p3_west_first(), 2, 3).unwrap();
        assert!(report.contains("# Design report"));
        assert!(report.contains("| P0 | `[X1-]` |"));
        assert!(report.contains("Theorem 3 (P0→P1)"));
        assert!(report.contains("| ++ | fully adaptive |"));
        assert!(report.contains("| -- | deterministic |"));
        // Invalid designs are refused.
        let bad = PartitionSeq::parse("X+ X- Y+ Y-").unwrap();
        assert!(markdown_report(&bad, 2, 3).is_err());
    }

    #[test]
    fn verdict_accepts_catalog_designs_with_counts() {
        let v = design_verdict(&catalog::fig7b_dyxy());
        match &v {
            DesignVerdict::DeadlockFree {
                partitions,
                channels,
                ..
            } => {
                assert_eq!(*partitions, 2);
                assert_eq!(*channels, 6);
            }
            other => panic!("expected acceptance, got {other}"),
        }
        assert!(v.is_deadlock_free());
        assert!(v.reason().is_none());
        assert!(v.to_string().contains("deadlock-free by construction"));
    }

    #[test]
    fn verdict_rejects_with_the_validation_reason() {
        let bad = PartitionSeq::parse("X+ X- Y+ Y-").unwrap();
        let v = design_verdict(&bad);
        assert!(!v.is_deadlock_free());
        let reason = v.reason().unwrap();
        assert!(reason.contains("Theorem 1"), "reason was: {reason}");
        assert!(v.to_string().starts_with("rejected: "));
    }

    #[test]
    fn display_is_multiline_and_complete() {
        let report = analyze(&catalog::fig9b(), 3).unwrap();
        let text = report.to_string();
        assert!(text.contains("4 partitions"));
        assert!(text.contains("16 channels"));
        assert!(text.contains("fully adaptive"));
        assert!(text.lines().count() >= 6);
    }
}
