//! Error types for the EbDa core crate.

use std::fmt;

/// Errors produced while constructing or validating EbDa objects.
///
/// Every fallible public function in this crate returns [`EbdaError`] inside
/// a [`Result`]. The variants carry enough context to print an actionable
/// message; the [`fmt::Display`] output is a lowercase sentence fragment per
/// Rust API guidelines.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EbdaError {
    /// A channel string such as `"X1+"` could not be parsed.
    ParseChannel {
        /// The offending input.
        input: String,
        /// Why parsing failed.
        reason: &'static str,
    },
    /// Two channels inside one partition overlap (occupy a common physical
    /// resource), violating Definition 2 (channels of a partition are
    /// disjoint resources).
    OverlappingChannels {
        /// Printable form of the first channel.
        a: String,
        /// Printable form of the second channel.
        b: String,
    },
    /// A partition covers more than one complete D-pair, violating
    /// Theorem 1.
    TooManyPairs {
        /// Printable names of the dimensions with complete pairs.
        dims: Vec<String>,
    },
    /// Two partitions of one partition sequence share a channel, violating
    /// Definition 6 (partitions must be disjoint).
    PartitionsOverlap {
        /// Index of the first partition.
        first: usize,
        /// Index of the second partition.
        second: usize,
        /// Printable form of a shared channel resource.
        shared: String,
    },
    /// `Set1` fed to Algorithm 1 does not start with a complete D-pair
    /// (two channels of the same dimension in opposite directions).
    MalformedPairSet {
        /// Why the leading pair is malformed.
        reason: &'static str,
    },
    /// A requested construction needs at least one channel per dimension
    /// but a dimension's set ran dry.
    EmptySet {
        /// Printable name of the empty dimension.
        dim: String,
    },
    /// The network dimensionality is outside the supported range.
    BadDimension {
        /// The dimension count that was requested.
        n: usize,
        /// Why it is rejected.
        reason: &'static str,
    },
}

impl fmt::Display for EbdaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EbdaError::ParseChannel { input, reason } => {
                write!(f, "cannot parse channel {input:?}: {reason}")
            }
            EbdaError::OverlappingChannels { a, b } => {
                write!(f, "channels {a} and {b} overlap inside one partition")
            }
            EbdaError::TooManyPairs { dims } => {
                write!(
                    f,
                    "partition covers {} complete D-pairs ({}), Theorem 1 allows at most one",
                    dims.len(),
                    dims.join(", ")
                )
            }
            EbdaError::PartitionsOverlap {
                first,
                second,
                shared,
            } => {
                write!(
                    f,
                    "partitions #{first} and #{second} both cover channel {shared}"
                )
            }
            EbdaError::MalformedPairSet { reason } => {
                write!(f, "set arrangement is malformed: {reason}")
            }
            EbdaError::EmptySet { dim } => {
                write!(f, "dimension set {dim} is empty but a channel is required")
            }
            EbdaError::BadDimension { n, reason } => {
                write!(f, "unsupported network dimension {n}: {reason}")
            }
        }
    }
}

impl std::error::Error for EbdaError {}

/// Convenience alias used by fallible functions in this crate.
pub type Result<T> = std::result::Result<T, EbdaError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let errors: Vec<EbdaError> = vec![
            EbdaError::ParseChannel {
                input: "Q9".into(),
                reason: "unknown dimension letter",
            },
            EbdaError::OverlappingChannels {
                a: "X1+".into(),
                b: "X1+".into(),
            },
            EbdaError::TooManyPairs {
                dims: vec!["X".into(), "Y".into()],
            },
            EbdaError::PartitionsOverlap {
                first: 0,
                second: 1,
                shared: "Y1-".into(),
            },
            EbdaError::MalformedPairSet {
                reason: "fewer than two channels",
            },
            EbdaError::EmptySet { dim: "Z".into() },
            EbdaError::BadDimension {
                n: 0,
                reason: "must be at least 1",
            },
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EbdaError>();
    }
}
