//! The partitioning procedure — Algorithm 1 of the paper (Section 5.2.1).
//!
//! Each round, the first (pair-role) set contributes its leading complete
//! D-pair and every other set contributes its leading channel; the sets are
//! then left-shifted and re-ordered by remaining pair count. When all sets
//! are empty, trailing deficient partitions whose directional region is a
//! subset of an earlier partition's are merged into it.

use crate::error::Result;
use crate::partition::{DirectionCoverage, Partition};
use crate::sequence::PartitionSeq;
use crate::sets::SetArrangement;

/// Runs Algorithm 1 on an arranged collection of dimension sets, producing
/// an ordered partition sequence.
///
/// The exact paper pseudocode:
///
/// ```text
/// Procedure Partitioning(Set1, Set2, … Setn, i) {
///   if (All sets are empty) then Merge matching partitions and exit;
///   else
///     Pi = {(Set1[1] Set1[2]); Set2[1]; … Setn[1]};
///     Set1 is pair-wise left-shifted;
///     Set2 to Setn are channel-wise left-shifted;
///     Sets are reordered if necessary;
///     CALL Partitioning(Set1, …, Setn, i+1);
/// }
/// ```
///
/// "Reordered if necessary" re-sorts the sets by descending remaining
/// D-pair count (stable). If the leading set's first two channels do not
/// form a complete pair (or fewer than two channels remain), it contributes
/// a single channel like the others — this covers the tail rounds where the
/// pair-role set has run dry.
///
/// ```
/// use ebda_core::{algorithm1::partition_sets, sets::arrangement1};
/// // 2D, one VC per dimension: Table 1's first entry.
/// let seq = partition_sets(arrangement1(&[1, 1]).unwrap()).unwrap();
/// assert_eq!(seq.to_string(), "[X1+ X1- Y1+] -> [Y1-]");
/// ```
///
/// # Errors
///
/// Returns an error if the produced sequence fails validation (cannot
/// happen for well-formed inputs — each partition takes at most one pair —
/// but malformed custom sets are reported rather than silently accepted).
pub fn partition_sets(mut sets: SetArrangement) -> Result<PartitionSeq> {
    let _span = ebda_obs::span("core.algorithm1.partition_sets");
    let mut rounds = 0u64;
    let mut partitions: Vec<Partition> = Vec::new();
    reorder(&mut sets);
    while sets.iter().any(|s| !s.is_empty()) {
        rounds += 1;
        let mut p = Partition::new();
        let mut pair_taken = false;
        for set in sets.iter_mut() {
            if set.is_empty() {
                continue;
            }
            if !pair_taken {
                // Pair role: the first non-empty set contributes a pair when
                // its front two channels have opposite directions.
                if let Some((a, b)) = set.take_pair() {
                    p.push(a)?;
                    p.push(b)?;
                    pair_taken = true;
                    continue;
                }
            }
            if let Some(c) = set.take_one() {
                p.push(c)?;
            }
        }
        partitions.push(p);
        reorder(&mut sets);
    }
    let before_merge = partitions.len();
    let merged = merge_matching(partitions);
    ebda_obs::counter_add("core.algorithm1.rounds", rounds);
    ebda_obs::counter_add("core.algorithm1.partitions_created", before_merge as u64);
    ebda_obs::counter_add(
        "core.algorithm1.partitions_merged",
        (before_merge - merged.len()) as u64,
    );
    PartitionSeq::try_from_partitions(merged)
}

/// Stable re-sort by descending remaining D-pair count ("sets are reordered
/// if necessary").
fn reorder(sets: &mut SetArrangement) {
    sets.sort_by_key(|s| std::cmp::Reverse(s.pair_count()));
}

/// "Merge matching partitions": fold each trailing deficient partition into
/// the earliest earlier partition whose directional coverage is a superset,
/// provided the union still satisfies Theorem 1.
fn merge_matching(mut partitions: Vec<Partition>) -> Vec<Partition> {
    let Some(max_len) = partitions.iter().map(Partition::len).max() else {
        return partitions;
    };
    let mut i = partitions.len();
    while i > 1 {
        i -= 1;
        if partitions[i].len() >= max_len {
            continue;
        }
        let candidate = partitions[i].clone();
        let target = (0..i).find(|&t| {
            region_subset(&candidate, &partitions[t]) && union_ok(&partitions[t], &candidate)
        });
        if let Some(t) = target {
            let mut merged = partitions[t].clone();
            for &c in candidate.channels() {
                // Disjointness is pre-established, push cannot fail.
                merged.push(c).expect("disjoint partitions cannot overlap");
            }
            if merged.theorem1_holds() {
                partitions[t] = merged;
                partitions.remove(i);
            }
        }
    }
    partitions
}

/// Returns `true` when every direction `small` covers is also covered by
/// `big` (so `small`'s routable region is a subset of `big`'s).
fn region_subset(small: &Partition, big: &Partition) -> bool {
    let n = small
        .dims()
        .iter()
        .chain(big.dims().iter())
        .map(|d| d.index() + 1)
        .max()
        .unwrap_or(0);
    let sp = small.direction_profile(n);
    let bp = big.direction_profile(n);
    sp.iter().zip(bp.iter()).all(|(s, b)| match (s, b) {
        (DirectionCoverage::None, _) => true,
        (DirectionCoverage::Only(d), DirectionCoverage::Only(bd)) => d == bd,
        (DirectionCoverage::Only(_), DirectionCoverage::Both) => true,
        (DirectionCoverage::Both, DirectionCoverage::Both) => true,
        _ => false,
    })
}

/// Returns `true` when the merged partition would still satisfy Theorem 1.
fn union_ok(a: &Partition, b: &Partition) -> bool {
    let mut merged = a.clone();
    for &c in b.channels() {
        if merged.push(c).is_err() {
            return false;
        }
    }
    merged.theorem1_holds()
}

/// Runs Algorithm 1 on explicit sets built from per-dimension VC counts
/// using Arrangement 1 — the most common entry point.
///
/// # Errors
///
/// Propagates arrangement and partitioning errors.
pub fn partition_network(vcs_per_dim: &[u8]) -> Result<PartitionSeq> {
    partition_sets(crate::sets::arrangement1(vcs_per_dim)?)
}

/// Runs Algorithm 1 on the region-covering arrangement
/// ([`crate::sets::region_covering`]): consecutive partitions enumerate
/// complementary sign regions, reproducing the Figure 7b/9b designs and
/// reaching full adaptiveness whenever the VC budget allows.
///
/// ```
/// use ebda_core::{adaptiveness::is_fully_adaptive, algorithm1::partition_network_region_covering};
/// let seq = partition_network_region_covering(&[2, 2, 4]).unwrap(); // Fig. 9b budget
/// assert!(is_fully_adaptive(&seq, 3));
/// ```
///
/// # Errors
///
/// Propagates arrangement and partitioning errors.
pub fn partition_network_region_covering(vcs_per_dim: &[u8]) -> Result<PartitionSeq> {
    partition_sets(crate::sets::region_covering(vcs_per_dim)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::Dimension;
    use crate::sets::{arrangement1, DimensionSet};

    /// The Section 5 worked example: 3, 2, 3 VCs along X, Y, Z with the
    /// paper's choice of Z as Set1 must reproduce
    /// `P = {PA[Z1* X1+ Y1+]; PB[Z2* X1- Y2+]; PC[X2* Z3+ Y1-]; PD[X3* Z3- Y2-]}`.
    #[test]
    fn section5_worked_example() {
        let sets = vec![
            DimensionSet::interleaved(Dimension::Z, 3),
            DimensionSet::interleaved(Dimension::X, 3),
            DimensionSet::grouped(Dimension::Y, 2),
        ];
        let seq = partition_sets(sets).unwrap();
        assert_eq!(
            seq.to_string(),
            "[Z1+ Z1- X1+ Y1+] -> [Z2+ Z2- X1- Y2+] -> [X2+ X2- Z3+ Y1-] -> [X3+ X3- Z3- Y2-]"
        );
        assert!(seq.validate().is_ok());
        assert_eq!(seq.channel_count(), 16);
    }

    #[test]
    fn two_d_single_vc_first_table1_entry() {
        let seq = partition_network(&[1, 1]).unwrap();
        assert_eq!(seq.to_string(), "[X1+ X1- Y1+] -> [Y1-]");
    }

    #[test]
    fn fig7b_dyxy_design() {
        // 1 VC along X, 2 along Y: Set1 = Y (2 pairs), Set2 = X.
        let seq = partition_network(&[1, 2]).unwrap();
        assert_eq!(seq.to_string(), "[Y1+ Y1- X1+] -> [Y2+ Y2- X1-]");
        assert_eq!(seq.channel_count(), 6);
    }

    #[test]
    fn fig7c_alternative_design() {
        // 2 VCs along X, 1 along Y.
        let seq = partition_network(&[2, 1]).unwrap();
        assert_eq!(seq.to_string(), "[X1+ X1- Y1+] -> [X2+ X2- Y1-]");
    }

    #[test]
    fn merging_folds_leftover_pairs() {
        // 3 VCs along X, 1 along Y: the third X-pair has no Y channel left;
        // its X*-only region is a subset of partition 0's region, so it is
        // merged rather than left as a third partition.
        let seq = partition_network(&[3, 1]).unwrap();
        assert_eq!(seq.len(), 2);
        assert!(seq.validate().is_ok());
        assert_eq!(seq.channel_count(), 8);
        // The merged partition holds both X-pairs: still one pair *dimension*.
        assert_eq!(seq.partitions()[0].complete_pair_dims().len(), 1);
    }

    #[test]
    fn every_output_is_valid_for_many_vc_mixes() {
        for x in 1..=4u8 {
            for y in 1..=4u8 {
                let seq = partition_network(&[x, y]).unwrap();
                assert!(seq.validate().is_ok(), "invalid for vcs ({x},{y})");
                assert_eq!(
                    seq.channel_count(),
                    2 * (x as usize + y as usize),
                    "channel loss for vcs ({x},{y})"
                );
            }
        }
        for x in 1..=3u8 {
            for y in 1..=3u8 {
                for z in 1..=3u8 {
                    let seq = partition_network(&[x, y, z]).unwrap();
                    assert!(seq.validate().is_ok(), "invalid for vcs ({x},{y},{z})");
                    assert_eq!(seq.channel_count(), 2 * (x + y + z) as usize);
                }
            }
        }
    }

    #[test]
    fn three_d_uniform_vcs() {
        let seq = partition_network(&[2, 2, 2]).unwrap();
        assert!(seq.validate().is_ok());
        // 12 channels, each partition takes a pair + 2 channels = 4; two
        // rounds exhaust one dimension; remaining rounds redistribute.
        assert_eq!(seq.channel_count(), 12);
    }

    #[test]
    fn region_covering_reproduces_fig9b_structure() {
        use crate::adaptiveness::is_fully_adaptive;
        let seq = partition_network_region_covering(&[2, 2, 4]).unwrap();
        assert_eq!(seq.len(), 4);
        assert_eq!(seq.channel_count(), 16);
        assert!(is_fully_adaptive(&seq, 3), "{seq}");
        // Each partition holds a Z-pair plus one X and one Y channel,
        // enumerating the four (x, y) sign regions.
        for p in seq.partitions() {
            assert_eq!(p.complete_pair_dims(), vec![Dimension::Z]);
            assert_eq!(p.len(), 4);
        }
    }

    #[test]
    fn region_covering_is_fully_adaptive_when_budget_allows() {
        use crate::adaptiveness::is_fully_adaptive;
        // The minimum budgets from Section 4 per dimension count.
        for (vcs, n) in [
            (vec![1u8, 2], 2),
            (vec![2, 1], 2),
            (vec![2, 2, 4], 3),
            (vec![4, 2, 2], 3),
        ] {
            let seq = partition_network_region_covering(&vcs).unwrap();
            assert!(seq.validate().is_ok());
            assert!(is_fully_adaptive(&seq, n), "vcs {vcs:?}: {seq}");
        }
    }

    #[test]
    fn arrangement1_entry_point_matches_explicit_sets() {
        let a = partition_network(&[1, 2]).unwrap();
        let b = partition_sets(arrangement1(&[1, 2]).unwrap()).unwrap();
        assert_eq!(a, b);
    }
}
