//! Turns between channel classes (Definitions 4–5) and turn sets.
//!
//! A turn is a transition from one channel class to another taken by a packet
//! at a router. EbDa classifies turns by the angle between the two channels:
//! 90° turns change dimension, I-turns (0°) stay in the same dimension and
//! direction, U-turns (180°) reverse direction within a dimension.

use crate::channel::Channel;
use std::collections::BTreeSet;
use std::fmt;

/// The kind of a turn, by angle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TurnKind {
    /// A 90-degree turn: the dimensions of the two channels differ.
    Ninety,
    /// An I-turn (0 degrees, Definition 4): same dimension, same direction,
    /// different VC or parity class.
    ITurn,
    /// A U-turn (180 degrees, Definition 5): same dimension, opposite
    /// directions.
    UTurn,
}

impl fmt::Display for TurnKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TurnKind::Ninety => write!(f, "90-degree"),
            TurnKind::ITurn => write!(f, "I-turn"),
            TurnKind::UTurn => write!(f, "U-turn"),
        }
    }
}

/// A directed transition from one channel class to another.
///
/// ```
/// use ebda_core::{Channel, Turn, TurnKind};
/// let t = Turn::new("X1+".parse()?, "Y1-".parse()?);
/// assert_eq!(t.kind(), TurnKind::Ninety);
/// # Ok::<(), ebda_core::EbdaError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Turn {
    /// The channel the packet arrives on.
    pub from: Channel,
    /// The channel the packet continues on.
    pub to: Channel,
}

impl Turn {
    /// Creates a turn between two distinct channel classes.
    ///
    /// # Panics
    ///
    /// Panics if `from == to`: continuing straight on the same channel class
    /// is not a turn.
    pub fn new(from: Channel, to: Channel) -> Turn {
        assert!(from != to, "a turn requires two distinct channel classes");
        Turn { from, to }
    }

    /// Classifies the turn by the angle between its channels.
    pub fn kind(self) -> TurnKind {
        if self.from.dim != self.to.dim {
            TurnKind::Ninety
        } else if self.from.dir == self.to.dir {
            TurnKind::ITurn
        } else {
            TurnKind::UTurn
        }
    }

    /// The reverse transition.
    pub fn reversed(self) -> Turn {
        Turn {
            from: self.to,
            to: self.from,
        }
    }
}

impl fmt::Display for Turn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}->{}", self.from, self.to)
    }
}

/// A set of allowed turns, the output of EbDa's extraction (Section 5.4:
/// "all allowable 0-degree, U- and I-turns can be extracted from the
/// partitions and the routing algorithm can be developed based on them").
///
/// Iteration order is deterministic (lexicographic by channel fields).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TurnSet {
    turns: BTreeSet<Turn>,
}

impl TurnSet {
    /// Creates an empty turn set.
    pub fn new() -> TurnSet {
        TurnSet::default()
    }

    /// Inserts a turn; returns `true` if it was not already present.
    pub fn insert(&mut self, t: Turn) -> bool {
        self.turns.insert(t)
    }

    /// Removes a turn; returns `true` if it was present.
    pub fn remove(&mut self, t: Turn) -> bool {
        self.turns.remove(&t)
    }

    /// Returns `true` if the turn is allowed.
    pub fn contains(&self, t: Turn) -> bool {
        self.turns.contains(&t)
    }

    /// Returns `true` if the transition `from -> to` is allowed. Unlike
    /// [`TurnSet::contains`], identical channel classes (going straight) are
    /// always allowed.
    pub fn allows(&self, from: Channel, to: Channel) -> bool {
        from == to || self.turns.contains(&Turn { from, to })
    }

    /// Number of turns in the set.
    pub fn len(&self) -> usize {
        self.turns.len()
    }

    /// Returns `true` if the set has no turns.
    pub fn is_empty(&self) -> bool {
        self.turns.is_empty()
    }

    /// Iterates over all turns in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = Turn> + '_ {
        self.turns.iter().copied()
    }

    /// Iterates over turns of one kind.
    pub fn of_kind(&self, kind: TurnKind) -> impl Iterator<Item = Turn> + '_ {
        self.turns.iter().copied().filter(move |t| t.kind() == kind)
    }

    /// Counts turns of each kind: `(ninety, u_turns, i_turns)`.
    pub fn counts(&self) -> TurnCounts {
        let mut c = TurnCounts::default();
        for t in &self.turns {
            match t.kind() {
                TurnKind::Ninety => c.ninety += 1,
                TurnKind::UTurn => c.u_turns += 1,
                TurnKind::ITurn => c.i_turns += 1,
            }
        }
        c
    }

    /// The distinct channel classes mentioned by any turn.
    pub fn channels(&self) -> Vec<Channel> {
        let mut set: BTreeSet<Channel> = BTreeSet::new();
        for t in &self.turns {
            set.insert(t.from);
            set.insert(t.to);
        }
        set.into_iter().collect()
    }

    /// Set union, consuming `other`.
    pub fn merge(&mut self, other: TurnSet) {
        self.turns.extend(other.turns);
    }

    /// Returns the turns present in `self` but not `other`.
    pub fn difference(&self, other: &TurnSet) -> TurnSet {
        TurnSet {
            turns: self.turns.difference(&other.turns).copied().collect(),
        }
    }

    /// Returns `true` when both sets allow exactly the same turns.
    pub fn same_as(&self, other: &TurnSet) -> bool {
        self.turns == other.turns
    }
}

impl FromIterator<Turn> for TurnSet {
    fn from_iter<T: IntoIterator<Item = Turn>>(iter: T) -> TurnSet {
        TurnSet {
            turns: iter.into_iter().collect(),
        }
    }
}

impl Extend<Turn> for TurnSet {
    fn extend<T: IntoIterator<Item = Turn>>(&mut self, iter: T) {
        self.turns.extend(iter);
    }
}

impl<'a> IntoIterator for &'a TurnSet {
    type Item = Turn;
    type IntoIter = std::iter::Copied<std::collections::btree_set::Iter<'a, Turn>>;

    fn into_iter(self) -> Self::IntoIter {
        self.turns.iter().copied()
    }
}

impl fmt::Display for TurnSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, t) in self.turns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "}}")
    }
}

/// Counts of turns by kind, as reported in the paper's tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TurnCounts {
    /// Number of 90-degree turns.
    pub ninety: usize,
    /// Number of U-turns (180 degrees).
    pub u_turns: usize,
    /// Number of I-turns (0 degrees).
    pub i_turns: usize,
}

impl TurnCounts {
    /// Total number of turns.
    pub fn total(self) -> usize {
        self.ninety + self.u_turns + self.i_turns
    }
}

impl fmt::Display for TurnCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} 90-degree, {} U-turns, {} I-turns",
            self.ninety, self.u_turns, self.i_turns
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::Channel;

    fn ch(s: &str) -> Channel {
        Channel::parse(s).unwrap()
    }

    #[test]
    fn turn_kinds() {
        assert_eq!(Turn::new(ch("X1+"), ch("Y1+")).kind(), TurnKind::Ninety);
        assert_eq!(Turn::new(ch("X1+"), ch("X2+")).kind(), TurnKind::ITurn);
        assert_eq!(Turn::new(ch("X1+"), ch("X1-")).kind(), TurnKind::UTurn);
        assert_eq!(Turn::new(ch("X1+"), ch("X2-")).kind(), TurnKind::UTurn);
    }

    #[test]
    #[should_panic(expected = "distinct channel classes")]
    fn self_turn_panics() {
        let _ = Turn::new(ch("X1+"), ch("X1+"));
    }

    #[test]
    fn turnset_allows_straight_through() {
        let ts = TurnSet::new();
        assert!(ts.allows(ch("X1+"), ch("X1+")));
        assert!(!ts.allows(ch("X1+"), ch("Y1+")));
    }

    #[test]
    fn counts_by_kind() {
        let mut ts = TurnSet::new();
        ts.insert(Turn::new(ch("X1+"), ch("Y1+")));
        ts.insert(Turn::new(ch("Y1+"), ch("X1+")));
        ts.insert(Turn::new(ch("X1+"), ch("X1-")));
        ts.insert(Turn::new(ch("X1+"), ch("X2+")));
        let c = ts.counts();
        assert_eq!(c.ninety, 2);
        assert_eq!(c.u_turns, 1);
        assert_eq!(c.i_turns, 1);
        assert_eq!(c.total(), 4);
    }

    #[test]
    fn merge_and_difference() {
        let a: TurnSet = [Turn::new(ch("X1+"), ch("Y1+"))].into_iter().collect();
        let mut b: TurnSet = [Turn::new(ch("Y1+"), ch("X1+"))].into_iter().collect();
        b.merge(a.clone());
        assert_eq!(b.len(), 2);
        assert_eq!(b.difference(&a).len(), 1);
        assert!(!b.same_as(&a));
    }

    #[test]
    fn channels_lists_endpoints() {
        let ts: TurnSet = [
            Turn::new(ch("X1+"), ch("Y1+")),
            Turn::new(ch("Y1+"), ch("Z1-")),
        ]
        .into_iter()
        .collect();
        let chans = ts.channels();
        assert_eq!(chans.len(), 3);
    }

    #[test]
    fn display_formats() {
        let t = Turn::new(ch("X1+"), ch("Y1-"));
        assert_eq!(t.to_string(), "X1+->Y1-");
        assert_eq!(t.reversed().to_string(), "Y1-->X1+");
        let ts: TurnSet = [t].into_iter().collect();
        assert_eq!(ts.to_string(), "{X1+->Y1-}");
    }
}
