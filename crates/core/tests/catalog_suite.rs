//! Golden regression values for the catalog designs: adaptiveness
//! profiles, turn inventories and region splits pinned so behavioural
//! drift is caught immediately.

use ebda_core::adaptiveness::{adaptiveness_profile, region_classes, RegionClass};
use ebda_core::{catalog, extract_turns, PartitionSeq};

fn profile(seq: &PartitionSeq) -> ebda_core::adaptiveness::AdaptivenessProfile {
    let ex = extract_turns(seq).unwrap();
    adaptiveness_profile(ex.turn_set(), &seq.channels(), 4, 2)
}

#[test]
fn adaptiveness_profiles_locked() {
    // 4x4 mesh, 240 ordered pairs.
    let xy = profile(&catalog::p1_xy());
    assert_eq!((xy.min, xy.max), (1, 1));
    assert_eq!(xy.sum, 240, "XY: exactly one path per pair");

    let wf = profile(&catalog::p3_west_first());
    assert_eq!(wf.min, 1);
    assert_eq!(wf.max, 20, "3+3 offsets fully adaptive: C(6,3) = 20");
    assert_eq!(wf.sum, 492, "west-first path budget on 4x4");

    let nf = profile(&catalog::p4_negative_first());
    assert_eq!(nf.sum, wf.sum, "negative-first is west-first's mirror");

    let fa = profile(&catalog::fig7b_dyxy());
    assert_eq!(
        fa.fully_adaptive_pairs, fa.pairs,
        "the 6-channel design is fully adaptive everywhere"
    );
    assert_eq!(fa.sum, 744, "full multinomial budget on 4x4");

    let oe = profile(&catalog::odd_even());
    assert!(oe.sum > xy.sum && oe.sum < fa.sum);
    assert_eq!(oe.min, 1);
}

#[test]
fn turn_inventories_locked() {
    let counts = |seq: &PartitionSeq| extract_turns(seq).unwrap().turn_set().counts();
    let c = counts(&catalog::p1_xy());
    assert_eq!((c.ninety, c.u_turns, c.i_turns), (4, 2, 0));
    let c = counts(&catalog::p3_west_first());
    assert_eq!((c.ninety, c.u_turns, c.i_turns), (6, 2, 0));
    let c = counts(&catalog::north_last());
    assert_eq!((c.ninety, c.u_turns, c.i_turns), (6, 2, 0));
    let c = counts(&catalog::fig7b_dyxy());
    assert_eq!(c.ninety, 12);
    let c = counts(&catalog::fig9b());
    assert_eq!((c.ninety, c.u_turns, c.i_turns), (100, 24, 16));
    let c = counts(&catalog::table5_partial3d());
    assert_eq!(c.ninety, 30);
}

#[test]
fn region_splits_locked() {
    let count = |seq: &PartitionSeq, class: RegionClass| {
        let ex = extract_turns(seq).unwrap();
        region_classes(ex.turn_set(), &seq.channels(), 3, 2)
            .into_iter()
            .filter(|(_, c)| *c == class)
            .count()
    };
    // XY: 4 deterministic quadrants.
    assert_eq!(count(&catalog::p1_xy(), RegionClass::Deterministic), 4);
    // West-first: 2 fully adaptive (east), 2 deterministic (west).
    assert_eq!(
        count(&catalog::p3_west_first(), RegionClass::FullyAdaptive),
        2
    );
    assert_eq!(
        count(&catalog::p3_west_first(), RegionClass::Deterministic),
        2
    );
    // The 6-channel designs: all 4 quadrants fully adaptive.
    for seq in [catalog::fig7b_dyxy(), catalog::fig7c()] {
        assert_eq!(count(&seq, RegionClass::FullyAdaptive), 4);
    }
    // P2: fully adaptive only in NE.
    assert_eq!(
        count(
            &catalog::p2_partially_adaptive(),
            RegionClass::FullyAdaptive
        ),
        1
    );
}

#[test]
fn every_catalog_design_round_trips_through_display() {
    for (name, seq) in catalog::all_designs() {
        // Designs without parity/coordinate classes round-trip textually.
        let text = seq.to_string();
        if text.contains('[') && !text.contains('=') {
            let spec = text.replace(['[', ']'], " ").replace(" -> ", "|");
            let reparsed = PartitionSeq::parse(&spec).unwrap();
            assert_eq!(reparsed, seq, "{name} failed textual round-trip");
        }
    }
}
