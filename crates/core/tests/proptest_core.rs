//! Property-based tests of the core channel algebra, partitions, turn sets
//! and the extraction invariants.

use ebda_core::{
    extract_turns, Channel, ChannelClass, Dimension, Direction, Parity, Partition, PartitionSeq,
    Turn, TurnKind, TurnSet,
};
use proptest::prelude::*;

fn arb_direction() -> impl Strategy<Value = Direction> {
    prop_oneof![Just(Direction::Plus), Just(Direction::Minus)]
}

fn arb_class() -> impl Strategy<Value = ChannelClass> {
    prop_oneof![
        3 => Just(ChannelClass::All),
        1 => (0u8..3, prop_oneof![Just(Parity::Even), Just(Parity::Odd)]).prop_map(
            |(axis, parity)| ChannelClass::AtParity {
                axis: Dimension::new(axis),
                parity,
            }
        ),
    ]
}

fn arb_channel() -> impl Strategy<Value = Channel> {
    (0u8..4, arb_direction(), 1u8..5, arb_class()).prop_map(|(dim, dir, vc, class)| Channel {
        dim: Dimension::new(dim),
        dir,
        vc,
        class,
    })
}

proptest! {
    /// Display -> parse is the identity for every representable channel
    /// with the conventional parity axis.
    #[test]
    fn channel_display_parse_roundtrip(mut c in arb_channel()) {
        // The textual form can only carry the conventional parity axis.
        if let ChannelClass::AtParity { parity, .. } = c.class {
            c.class = ChannelClass::AtParity {
                axis: Channel::conventional_parity_axis(c.dim),
                parity,
            };
        }
        let printed = c.to_string();
        let parsed = Channel::parse(&printed).unwrap();
        prop_assert_eq!(parsed, c, "failed for {}", printed);
    }

    /// Channel overlap is reflexive and symmetric.
    #[test]
    fn overlap_is_reflexive_and_symmetric(a in arb_channel(), b in arb_channel()) {
        prop_assert!(a.overlaps(a));
        prop_assert_eq!(a.overlaps(b), b.overlaps(a));
    }

    /// A partition never stores overlapping channels, and its pair
    /// inventory is consistent with its direction profile.
    #[test]
    fn partition_invariants(channels in proptest::collection::vec(arb_channel(), 0..8)) {
        let mut p = Partition::new();
        for c in channels {
            let _ = p.push(c); // overlapping pushes are rejected
        }
        let chans = p.channels();
        for i in 0..chans.len() {
            for j in (i + 1)..chans.len() {
                prop_assert!(!chans[i].overlaps(chans[j]));
            }
        }
        // Pair dims must actually have both directions present.
        for d in p.complete_pair_dims() {
            prop_assert!(chans.iter().any(|c| c.dim == d && c.dir == Direction::Plus));
            prop_assert!(chans.iter().any(|c| c.dim == d && c.dir == Direction::Minus));
        }
    }

    /// TurnSet::counts always sums to len, and merge is monotone.
    #[test]
    fn turnset_counts_and_merge(
        pairs in proptest::collection::vec((arb_channel(), arb_channel()), 0..20)
    ) {
        let mut a = TurnSet::new();
        let mut b = TurnSet::new();
        for (i, (x, y)) in pairs.into_iter().enumerate() {
            if x == y { continue; }
            if i % 2 == 0 { a.insert(Turn::new(x, y)); } else { b.insert(Turn::new(x, y)); }
        }
        let ca = a.counts();
        prop_assert_eq!(ca.total(), a.len());
        let before = b.len();
        let a_len = a.len();
        b.merge(a);
        prop_assert!(b.len() <= before + a_len);
        prop_assert!(b.len() >= before.max(a_len));
    }

    /// Extraction invariants on random valid two-partition 2D designs:
    /// every justified turn appears exactly once, same-dimension turns
    /// inside a paired dimension are never mutual (ascending order), and
    /// no turn crosses partitions backwards.
    #[test]
    fn extraction_invariants(mask_a in 1u8..255, mask_b in 1u8..255) {
        let universe: Vec<Channel> =
            ebda_core::parse_channels("X1+ X1- X2+ X2- Y1+ Y1- Y2+ Y2-").unwrap();
        let pick = |mask: u8| -> Vec<Channel> {
            universe
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, &c)| c)
                .collect()
        };
        let a = pick(mask_a & !mask_b);
        let b = pick(mask_b & !mask_a);
        if a.is_empty() || b.is_empty() {
            return Ok(());
        }
        let (Ok(pa), Ok(pb)) = (Partition::from_channels(a), Partition::from_channels(b)) else {
            return Ok(());
        };
        let seq = PartitionSeq::from_partitions(vec![pa.clone(), pb.clone()]);
        if seq.validate().is_err() {
            return Ok(());
        }
        let ex = extract_turns(&seq).unwrap();
        // Uniqueness of justification.
        prop_assert_eq!(ex.justified_turns().len(), ex.turn_set().len());
        // Ascending order within paired dimensions of one partition.
        for (p, part) in [(0usize, &pa), (1, &pb)] {
            let paired = part.complete_pair_dims();
            let th2 = ex.turns_for(ebda_core::Justification::Theorem2 { partition: p });
            for t in th2.iter() {
                if paired.contains(&t.from.dim) {
                    prop_assert!(
                        !th2.contains(t.reversed()),
                        "mutual U/I-turns in a paired dimension"
                    );
                }
            }
        }
        // No backwards cross-partition turn.
        for t in ex.turn_set().iter() {
            let from_b = pb.contains(t.from);
            let to_a = pa.contains(t.to);
            prop_assert!(!(from_b && to_a), "turn {} goes backwards", t);
        }
    }

    /// Sequence display/parse roundtrip.
    #[test]
    fn sequence_roundtrip(mask_a in 1u8..15, mask_b in 1u8..15) {
        let universe: Vec<Channel> = ebda_core::parse_channels("X1+ X1- Y1+ Y1-").unwrap();
        let a: Vec<Channel> = universe.iter().enumerate()
            .filter(|(i, _)| mask_a & (1 << i) != 0).map(|(_, &c)| c).collect();
        let b: Vec<Channel> = universe.iter().enumerate()
            .filter(|(i, _)| mask_b & !mask_a & (1 << i) != 0).map(|(_, &c)| c).collect();
        if a.is_empty() || b.is_empty() { return Ok(()); }
        let seq = PartitionSeq::from_partitions(vec![
            Partition::from_channels(a).unwrap(),
            Partition::from_channels(b).unwrap(),
        ]);
        let printed = seq.to_string().replace(['[', ']'], " ");
        let reparsed = PartitionSeq::parse(&printed.replace(" -> ", "|")).unwrap();
        prop_assert_eq!(reparsed, seq);
    }

    /// Turn kinds partition all turns: exactly one kind per turn, and
    /// reversal preserves U-turn-ness and I-turn-ness.
    #[test]
    fn turn_kind_laws(a in arb_channel(), b in arb_channel()) {
        prop_assume!(a != b);
        let t = Turn::new(a, b);
        let r = t.reversed();
        match t.kind() {
            TurnKind::UTurn => prop_assert_eq!(r.kind(), TurnKind::UTurn),
            TurnKind::ITurn => prop_assert_eq!(r.kind(), TurnKind::ITurn),
            TurnKind::Ninety => prop_assert_eq!(r.kind(), TurnKind::Ninety),
        }
        prop_assert_eq!(r.reversed(), t);
    }
}
