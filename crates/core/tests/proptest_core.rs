//! Randomized tests of the core channel algebra, partitions, turn sets
//! and the extraction invariants.
//!
//! Driven by a seeded [`Rng64`] instead of a property-testing framework
//! so the suite is fully deterministic and dependency-free; every assert
//! message carries the case index for replay.

use ebda_core::{
    extract_turns, Channel, ChannelClass, Dimension, Direction, Parity, Partition, PartitionSeq,
    Turn, TurnKind, TurnSet,
};
use ebda_obs::Rng64;

fn rand_direction(rng: &mut Rng64) -> Direction {
    if rng.gen_bool(0.5) {
        Direction::Plus
    } else {
        Direction::Minus
    }
}

fn rand_class(rng: &mut Rng64) -> ChannelClass {
    // 3:1 weighting towards All, mirroring the old proptest strategy.
    if rng.gen_index(4) < 3 {
        ChannelClass::All
    } else {
        ChannelClass::AtParity {
            axis: Dimension::new(rng.gen_index(3) as u8),
            parity: if rng.gen_bool(0.5) {
                Parity::Even
            } else {
                Parity::Odd
            },
        }
    }
}

fn rand_channel(rng: &mut Rng64) -> Channel {
    Channel {
        dim: Dimension::new(rng.gen_index(4) as u8),
        dir: rand_direction(rng),
        vc: 1 + rng.gen_index(4) as u8,
        class: rand_class(rng),
    }
}

/// Display -> parse is the identity for every representable channel
/// with the conventional parity axis.
#[test]
fn channel_display_parse_roundtrip() {
    let mut rng = Rng64::new(0xC0E1);
    for case in 0..256 {
        let mut c = rand_channel(&mut rng);
        // The textual form can only carry the conventional parity axis.
        if let ChannelClass::AtParity { parity, .. } = c.class {
            c.class = ChannelClass::AtParity {
                axis: Channel::conventional_parity_axis(c.dim),
                parity,
            };
        }
        let printed = c.to_string();
        let parsed = Channel::parse(&printed).unwrap();
        assert_eq!(parsed, c, "case {case} failed for {printed}");
    }
}

/// Channel overlap is reflexive and symmetric.
#[test]
fn overlap_is_reflexive_and_symmetric() {
    let mut rng = Rng64::new(0xC0E2);
    for case in 0..256 {
        let a = rand_channel(&mut rng);
        let b = rand_channel(&mut rng);
        assert!(a.overlaps(a), "case {case}");
        assert_eq!(a.overlaps(b), b.overlaps(a), "case {case}: {a} vs {b}");
    }
}

/// A partition never stores overlapping channels, and its pair
/// inventory is consistent with its direction profile.
#[test]
fn partition_invariants() {
    let mut rng = Rng64::new(0xC0E3);
    for case in 0..128 {
        let mut p = Partition::new();
        for _ in 0..rng.gen_index(8) {
            let _ = p.push(rand_channel(&mut rng)); // overlapping pushes are rejected
        }
        let chans = p.channels();
        for i in 0..chans.len() {
            for j in (i + 1)..chans.len() {
                assert!(!chans[i].overlaps(chans[j]), "case {case}");
            }
        }
        // Pair dims must actually have both directions present.
        for d in p.complete_pair_dims() {
            assert!(
                chans.iter().any(|c| c.dim == d && c.dir == Direction::Plus),
                "case {case}"
            );
            assert!(
                chans
                    .iter()
                    .any(|c| c.dim == d && c.dir == Direction::Minus),
                "case {case}"
            );
        }
    }
}

/// TurnSet::counts always sums to len, and merge is monotone.
#[test]
fn turnset_counts_and_merge() {
    let mut rng = Rng64::new(0xC0E4);
    for case in 0..128 {
        let mut a = TurnSet::new();
        let mut b = TurnSet::new();
        for i in 0..rng.gen_index(20) {
            let x = rand_channel(&mut rng);
            let y = rand_channel(&mut rng);
            if x == y {
                continue;
            }
            if i % 2 == 0 {
                a.insert(Turn::new(x, y));
            } else {
                b.insert(Turn::new(x, y));
            }
        }
        let ca = a.counts();
        assert_eq!(ca.total(), a.len(), "case {case}");
        let before = b.len();
        let a_len = a.len();
        b.merge(a);
        assert!(b.len() <= before + a_len, "case {case}");
        assert!(b.len() >= before.max(a_len), "case {case}");
    }
}

/// Extraction invariants on random valid two-partition 2D designs:
/// every justified turn appears exactly once, same-dimension turns
/// inside a paired dimension are never mutual (ascending order), and
/// no turn crosses partitions backwards.
#[test]
fn extraction_invariants() {
    let mut rng = Rng64::new(0xC0E5);
    let universe: Vec<Channel> =
        ebda_core::parse_channels("X1+ X1- X2+ X2- Y1+ Y1- Y2+ Y2-").unwrap();
    let mut checked = 0;
    for case in 0..512 {
        let mask_a = 1 + rng.gen_index(254) as u8;
        let mask_b = 1 + rng.gen_index(254) as u8;
        let pick = |mask: u8| -> Vec<Channel> {
            universe
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, &c)| c)
                .collect()
        };
        let a = pick(mask_a & !mask_b);
        let b = pick(mask_b & !mask_a);
        if a.is_empty() || b.is_empty() {
            continue;
        }
        let (Ok(pa), Ok(pb)) = (Partition::from_channels(a), Partition::from_channels(b)) else {
            continue;
        };
        let seq = PartitionSeq::from_partitions(vec![pa.clone(), pb.clone()]);
        if seq.validate().is_err() {
            continue;
        }
        checked += 1;
        let ex = extract_turns(&seq).unwrap();
        // Uniqueness of justification.
        assert_eq!(
            ex.justified_turns().len(),
            ex.turn_set().len(),
            "case {case}"
        );
        // Ascending order within paired dimensions of one partition.
        for (p, part) in [(0usize, &pa), (1, &pb)] {
            let paired = part.complete_pair_dims();
            let th2 = ex.turns_for(ebda_core::Justification::Theorem2 { partition: p });
            for t in th2.iter() {
                if paired.contains(&t.from.dim) {
                    assert!(
                        !th2.contains(t.reversed()),
                        "case {case}: mutual U/I-turns in a paired dimension"
                    );
                }
            }
        }
        // No backwards cross-partition turn.
        for t in ex.turn_set().iter() {
            let from_b = pb.contains(t.from);
            let to_a = pa.contains(t.to);
            assert!(!(from_b && to_a), "case {case}: turn {t} goes backwards");
        }
    }
    assert!(checked > 20, "only {checked} valid designs drawn");
}

/// Sequence display/parse roundtrip.
#[test]
fn sequence_roundtrip() {
    let mut rng = Rng64::new(0xC0E6);
    let universe: Vec<Channel> = ebda_core::parse_channels("X1+ X1- Y1+ Y1-").unwrap();
    let mut checked = 0;
    for case in 0..256 {
        let mask_a = 1 + rng.gen_index(14) as u8;
        let mask_b = 1 + rng.gen_index(14) as u8;
        let a: Vec<Channel> = universe
            .iter()
            .enumerate()
            .filter(|(i, _)| mask_a & (1 << i) != 0)
            .map(|(_, &c)| c)
            .collect();
        let b: Vec<Channel> = universe
            .iter()
            .enumerate()
            .filter(|(i, _)| mask_b & !mask_a & (1 << i) != 0)
            .map(|(_, &c)| c)
            .collect();
        if a.is_empty() || b.is_empty() {
            continue;
        }
        checked += 1;
        let seq = PartitionSeq::from_partitions(vec![
            Partition::from_channels(a).unwrap(),
            Partition::from_channels(b).unwrap(),
        ]);
        let printed = seq.to_string().replace(['[', ']'], " ");
        let reparsed = PartitionSeq::parse(&printed.replace(" -> ", "|")).unwrap();
        assert_eq!(reparsed, seq, "case {case}");
    }
    assert!(checked > 20, "only {checked} sequences drawn");
}

/// Turn kinds partition all turns: exactly one kind per turn, and
/// reversal preserves U-turn-ness and I-turn-ness.
#[test]
fn turn_kind_laws() {
    let mut rng = Rng64::new(0xC0E7);
    for case in 0..256 {
        let a = rand_channel(&mut rng);
        let b = rand_channel(&mut rng);
        if a == b {
            continue;
        }
        let t = Turn::new(a, b);
        let r = t.reversed();
        match t.kind() {
            TurnKind::UTurn => assert_eq!(r.kind(), TurnKind::UTurn, "case {case}"),
            TurnKind::ITurn => assert_eq!(r.kind(), TurnKind::ITurn, "case {case}"),
            TurnKind::Ninety => assert_eq!(r.kind(), TurnKind::Ninety, "case {case}"),
        }
        assert_eq!(r.reversed(), t, "case {case}");
    }
}
