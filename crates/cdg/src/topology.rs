//! Concrete network topologies for verification: `n`-dimensional meshes,
//! `k`-ary `n`-cubes (tori), and vertically partially connected 3D meshes.

use ebda_core::{Dimension, Direction};
use std::collections::BTreeSet;

/// A node index, row-major over the topology's radices.
pub type NodeId = usize;

/// Connectivity restrictions beyond the regular mesh/torus links.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum Connectivity {
    /// Every regular link is present.
    #[default]
    Full,
    /// Links along `dim` exist only at base coordinates (the coordinates
    /// with the `dim` entry removed) listed in `columns` — the "vertically
    /// partially connected" 3D networks of Section 6.3, where only some
    /// (x, y) positions have elevators.
    Partial {
        /// The restricted dimension (e.g. `Z`).
        dim: Dimension,
        /// Base coordinates that keep their links along `dim`.
        columns: BTreeSet<Vec<i64>>,
    },
}

/// A concrete topology instance: per-dimension radices, wrap flags (torus
/// dimensions), optional connectivity restrictions and failed links.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    radix: Vec<usize>,
    wrap: Vec<bool>,
    connectivity: Connectivity,
    /// Failed directed links as `(from_node, dim_index, direction)`.
    failed: BTreeSet<(NodeId, usize, Direction)>,
}

impl Topology {
    /// An `n`-dimensional mesh with the given per-dimension radices.
    ///
    /// ```
    /// use ebda_cdg::Topology;
    /// let mesh = Topology::mesh(&[4, 4]);
    /// assert_eq!(mesh.node_count(), 16);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `radix` is empty or contains a dimension smaller than 1.
    pub fn mesh(radix: &[usize]) -> Topology {
        assert!(!radix.is_empty(), "a topology needs at least one dimension");
        assert!(radix.iter().all(|&r| r >= 1), "radix must be at least 1");
        Topology {
            radix: radix.to_vec(),
            wrap: vec![false; radix.len()],
            connectivity: Connectivity::Full,
            failed: BTreeSet::new(),
        }
    }

    /// A `k`-ary `n`-cube: like a mesh but every dimension wraps around.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Topology::mesh`].
    pub fn torus(radix: &[usize]) -> Topology {
        let mut t = Topology::mesh(radix);
        t.wrap = vec![true; radix.len()];
        t
    }

    /// An `n`-dimensional hypercube — the radix-2 mesh (each dimension has
    /// coordinates 0/1, so every mesh link *is* the hypercube link).
    ///
    /// ```
    /// use ebda_cdg::Topology;
    /// let h = Topology::hypercube(4);
    /// assert_eq!(h.node_count(), 16);
    /// assert_eq!(h.links().len(), 4 * 16); // n links per node, directed
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn hypercube(n: usize) -> Topology {
        assert!(n >= 1, "a hypercube needs at least one dimension");
        Topology::mesh(&vec![2; n])
    }

    /// Makes individual dimensions wrap.
    ///
    /// # Panics
    ///
    /// Panics if `wrap.len()` differs from the dimension count.
    pub fn with_wrap(mut self, wrap: &[bool]) -> Topology {
        assert_eq!(wrap.len(), self.radix.len(), "wrap flag per dimension");
        self.wrap = wrap.to_vec();
        self
    }

    /// Restricts links along `dim` to the given base coordinates (the
    /// coordinate vectors with the `dim` entry removed). Models the
    /// vertically partially connected 3D NoCs of Section 6.3.
    ///
    /// ```
    /// use ebda_cdg::Topology;
    /// use ebda_core::Dimension;
    /// // 3x3x2 mesh with elevators only at (0,0) and (2,2).
    /// let t = Topology::mesh(&[3, 3, 2])
    ///     .with_partial_dim(Dimension::Z, [vec![0, 0], vec![2, 2]]);
    /// assert!(t.neighbor(0, Dimension::Z, ebda_core::Direction::Plus).is_some());
    /// assert!(t.neighbor(1, Dimension::Z, ebda_core::Direction::Plus).is_none());
    /// ```
    pub fn with_partial_dim<I>(mut self, dim: Dimension, columns: I) -> Topology
    where
        I: IntoIterator<Item = Vec<i64>>,
    {
        self.connectivity = Connectivity::Partial {
            dim,
            columns: columns.into_iter().collect(),
        };
        self
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.radix.len()
    }

    /// Per-dimension radices.
    pub fn radix(&self) -> &[usize] {
        &self.radix
    }

    /// Returns `true` if the given dimension wraps (torus dimension).
    pub fn wraps(&self, dim: Dimension) -> bool {
        self.wrap.get(dim.index()).copied().unwrap_or(false)
    }

    /// Total node count.
    pub fn node_count(&self) -> usize {
        self.radix.iter().product()
    }

    /// Coordinates of a node (row-major decoding).
    pub fn coords(&self, node: NodeId) -> Vec<i64> {
        let mut coords = vec![0i64; self.radix.len()];
        let mut rest = node;
        for d in (0..self.radix.len()).rev() {
            coords[d] = (rest % self.radix[d]) as i64;
            rest /= self.radix[d];
        }
        debug_assert_eq!(rest, 0, "node index out of range");
        coords
    }

    /// Node id from coordinates.
    ///
    /// # Panics
    ///
    /// Panics if a coordinate is outside the radix range.
    pub fn node_at(&self, coords: &[i64]) -> NodeId {
        assert_eq!(coords.len(), self.radix.len(), "coordinate arity");
        let mut id = 0usize;
        for (d, &c) in coords.iter().enumerate() {
            assert!(
                c >= 0 && (c as usize) < self.radix[d],
                "coordinate {c} out of range for dimension {d}"
            );
            id = id * self.radix[d] + c as usize;
        }
        id
    }

    /// Marks the physical link at `node` along `dim`/`dir` as failed —
    /// both traversal directions are removed (fault-injection for the
    /// Theorem 2 note: "enabling U-turns is essentially important in
    /// fault-tolerant designs").
    ///
    /// Unknown links (mesh edges) are ignored.
    pub fn with_failed_link(mut self, node: NodeId, dim: Dimension, dir: Direction) -> Topology {
        if let Some(other) = self.neighbor(node, dim, dir) {
            self.failed.insert((node, dim.index(), dir));
            self.failed.insert((other, dim.index(), dir.opposite()));
        }
        self
    }

    /// Number of failed directed links.
    pub fn failed_link_count(&self) -> usize {
        self.failed.len()
    }

    /// The neighbour of `node` along `dim` in direction `dir`, or `None`
    /// at a mesh edge, a missing partial link, or a failed link.
    pub fn neighbor(&self, node: NodeId, dim: Dimension, dir: Direction) -> Option<NodeId> {
        let d = dim.index();
        if d >= self.radix.len() {
            return None;
        }
        if self.failed.contains(&(node, d, dir)) {
            return None;
        }
        let coords = self.coords(node);
        if let Connectivity::Partial { dim: pdim, columns } = &self.connectivity {
            if *pdim == dim {
                let mut base = coords.clone();
                base.remove(d);
                if !columns.contains(&base) {
                    return None;
                }
            }
        }
        let r = self.radix[d] as i64;
        let next = coords[d] + dir.sign();
        let next = if self.wrap[d] {
            (next % r + r) % r
        } else if next < 0 || next >= r {
            return None;
        } else {
            next
        };
        if next == coords[d] {
            // Radix-1 dimensions have no distinct neighbour.
            return None;
        }
        let mut out = coords;
        out[d] = next;
        Some(self.node_at(&out))
    }

    /// Iterates over every node id.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        0..self.node_count()
    }

    /// Iterates over every directed link as `(from, to, dim, dir)`.
    pub fn links(&self) -> Vec<(NodeId, NodeId, Dimension, Direction)> {
        let mut out = Vec::new();
        for node in self.nodes() {
            for d in 0..self.dims() {
                let dim = Dimension::new(d as u8);
                for dir in [Direction::Plus, Direction::Minus] {
                    if let Some(to) = self.neighbor(node, dim, dir) {
                        out.push((node, to, dim, dir));
                    }
                }
            }
        }
        out
    }

    /// Minimal hop distance between two nodes (per-dimension offsets;
    /// torus dimensions take the shorter way around).
    pub fn distance(&self, a: NodeId, b: NodeId) -> u64 {
        let ca = self.coords(a);
        let cb = self.coords(b);
        (0..self.dims())
            .map(|d| {
                let diff = (ca[d] - cb[d]).unsigned_abs();
                if self.wrap[d] {
                    diff.min(self.radix[d] as u64 - diff)
                } else {
                    diff
                }
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coords_roundtrip() {
        let t = Topology::mesh(&[3, 4, 5]);
        for n in t.nodes() {
            assert_eq!(t.node_at(&t.coords(n)), n);
        }
    }

    #[test]
    fn mesh_edges_have_no_wrap() {
        let t = Topology::mesh(&[3, 3]);
        let corner = t.node_at(&[0, 0]);
        assert_eq!(t.neighbor(corner, Dimension::X, Direction::Minus), None);
        assert_eq!(t.neighbor(corner, Dimension::Y, Direction::Minus), None);
        assert_eq!(
            t.neighbor(corner, Dimension::X, Direction::Plus),
            Some(t.node_at(&[1, 0]))
        );
    }

    #[test]
    fn torus_wraps_both_ways() {
        let t = Topology::torus(&[4, 4]);
        let corner = t.node_at(&[0, 0]);
        assert_eq!(
            t.neighbor(corner, Dimension::X, Direction::Minus),
            Some(t.node_at(&[3, 0]))
        );
        let far = t.node_at(&[3, 3]);
        assert_eq!(
            t.neighbor(far, Dimension::Y, Direction::Plus),
            Some(t.node_at(&[3, 0]))
        );
    }

    #[test]
    fn link_counts() {
        // 3x3 mesh: 2 * 2 * 3 * 2 = 24 directed links.
        assert_eq!(Topology::mesh(&[3, 3]).links().len(), 24);
        // 3x3 torus: 2 dims * 9 nodes * 2 dirs = 36 directed links.
        assert_eq!(Topology::torus(&[3, 3]).links().len(), 36);
    }

    #[test]
    fn radix_one_dimension_has_no_neighbors() {
        let t = Topology::torus(&[1, 3]);
        let n = t.node_at(&[0, 1]);
        assert_eq!(t.neighbor(n, Dimension::X, Direction::Plus), None);
        assert!(t.neighbor(n, Dimension::Y, Direction::Plus).is_some());
    }

    #[test]
    fn partial_vertical_links() {
        let t = Topology::mesh(&[2, 2, 2]).with_partial_dim(Dimension::Z, [vec![0, 0]]);
        let has = t.node_at(&[0, 0, 0]);
        let hasnt = t.node_at(&[1, 0, 0]);
        assert!(t.neighbor(has, Dimension::Z, Direction::Plus).is_some());
        assert!(t.neighbor(hasnt, Dimension::Z, Direction::Plus).is_none());
        // X/Y links unaffected.
        assert!(t.neighbor(hasnt, Dimension::X, Direction::Minus).is_some());
    }

    #[test]
    fn failed_links_cut_both_directions() {
        let t = Topology::mesh(&[3, 3]);
        let a = t.node_at(&[0, 0]);
        let b = t.node_at(&[1, 0]);
        let t = t.with_failed_link(a, Dimension::X, Direction::Plus);
        assert_eq!(t.neighbor(a, Dimension::X, Direction::Plus), None);
        assert_eq!(t.neighbor(b, Dimension::X, Direction::Minus), None);
        // Other links unaffected.
        assert!(t.neighbor(a, Dimension::Y, Direction::Plus).is_some());
        assert_eq!(t.failed_link_count(), 2);
        // Failing a nonexistent (edge) link is a no-op.
        let t2 = Topology::mesh(&[3, 3]).with_failed_link(0, Dimension::X, Direction::Minus);
        assert_eq!(t2.failed_link_count(), 0);
    }

    #[test]
    fn distances() {
        let m = Topology::mesh(&[5, 5]);
        assert_eq!(m.distance(m.node_at(&[0, 0]), m.node_at(&[4, 3])), 7);
        let t = Topology::torus(&[5, 5]);
        assert_eq!(t.distance(t.node_at(&[0, 0]), t.node_at(&[4, 3])), 3);
    }
}
